//! Workspace test/example host crate. See `../tests` and `../examples`.
