//! Table 2 end-to-end: one representative application per class, run on
//! a real topology, asserting the class's headline benefit.

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::hula::testbed;
use edp_apps::hula::HulaLeaf;
use edp_apps::liveness::{LivenessMonitor, LivenessReflector, Neighbor, CP_OP_KILL};
use edp_apps::netcache::{NetCacheSwitch, TIMER_STATS};
use edp_apps::policer::compare_policers;
use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::{Host, HostApp, LinkSpec, Network, NodeRef};
use edp_packet::{KvHeader, KvOp, PacketBuilder};
use std::net::Ipv4Addr;

#[test]
fn congestion_aware_forwarding_beats_ecmp() {
    // Class 1 (Congestion Aware Forwarding): HULA via timer events.
    let (mut net, h0, h1) = testbed::fabric(&testbed::ecmp_leaf);
    let ecmp: f64 = testbed::drive(&mut net, h0, h1, 8).iter().sum();
    let (mut net, h0, h1) = testbed::fabric(&testbed::event_leaf);
    let hula: f64 = testbed::drive(&mut net, h0, h1, 8).iter().sum();
    assert!(hula > ecmp, "HULA {hula} vs ECMP {ecmp}");
    let leaf = &net.switch_as::<EventSwitch<HulaLeaf>>(0).program;
    assert!(leaf.probes_sent > 0, "probes came from the data plane");
}

#[test]
fn network_management_liveness_detects_soft_failure() {
    // Class 2 (Network Management): probe-based failure detection with
    // no control-plane involvement.
    let mut net = Network::new(61);
    let period = SimDuration::from_millis(1);
    let mon_cfg = EventSwitchConfig {
        n_ports: 2,
        timers: vec![
            TimerSpec {
                id: 0,
                period,
                start: period,
            },
            TimerSpec {
                id: 1,
                period,
                start: period,
            },
        ],
        ..Default::default()
    };
    let m = net.add_switch(Box::new(EventSwitch::new(
        LivenessMonitor::new(
            addr(1),
            vec![Neighbor {
                port: 1,
                addr: addr(2),
            }],
            3_000_000,
        ),
        mon_cfg,
    )));
    let r = net.add_switch(Box::new(EventSwitch::new(
        LivenessReflector::new(),
        EventSwitchConfig {
            n_ports: 2,
            switch_id: 2,
            ..Default::default()
        },
    )));
    net.connect(
        (NodeRef::Switch(m), 1),
        (NodeRef::Switch(r), 0),
        LinkSpec::ten_gig(SimDuration::from_micros(5)),
    );
    let h = net.add_host(Host::new(addr(100), HostApp::Sink));
    net.connect(
        (NodeRef::Host(h), 0),
        (NodeRef::Switch(m), 0),
        LinkSpec::ten_gig(SimDuration::from_micros(1)),
    );
    let mut sim: Sim<Network> = Sim::new();
    let kill_at = SimTime::from_millis(15);
    sim.schedule_at(kill_at, |w: &mut Network, s: &mut Sim<Network>| {
        w.control_plane_send(s, SimDuration::ZERO, 1, CP_OP_KILL, [0; 4]);
    });
    run_until(&mut net, &mut sim, SimTime::from_millis(40));
    let mon = &net.switch_as::<EventSwitch<LivenessMonitor>>(0).program;
    let dead = mon.declared_dead_at(0).expect("detected");
    assert!(dead - kill_at <= SimDuration::from_millis(6));
    assert!(
        net.cp_log.iter().any(|(sw, _)| *sw == 0),
        "monitor notified"
    );
}

#[test]
fn traffic_management_policer_enforces_rate() {
    // Class 4 (Traffic Management): a policer built from timer events
    // tracks the fixed-function meter closely at a fine refill period.
    let (timer_err, meter_err) = compare_policers(100_000, 17);
    assert!(timer_err < 0.2, "timer policer error {timer_err}");
    assert!(meter_err < 0.2, "meter policer error {meter_err}");
    assert!((timer_err - meter_err).abs() < 0.15);
}

#[test]
fn in_network_computing_cache_serves_hot_keys() {
    // Class 5 (In-Network Computing): NetCache with timer-cleared stats.
    let mut net = Network::new(62);
    let cfg = EventSwitchConfig {
        n_ports: 2,
        timers: vec![TimerSpec {
            id: TIMER_STATS,
            period: SimDuration::from_millis(2),
            start: SimDuration::from_millis(2),
        }],
        ..Default::default()
    };
    let sw = net.add_switch(Box::new(EventSwitch::new(
        NetCacheSwitch::new(0, 1, 8, 3, true),
        cfg,
    )));
    let client_addr = Ipv4Addr::new(10, 0, 0, 1);
    let server_addr = Ipv4Addr::new(10, 0, 0, 2);
    let client = net.add_host(Host::new(client_addr, HostApp::Sink));
    let server = net.add_host(Host::new(
        server_addr,
        HostApp::KvServer {
            store: (0..100u64).map(|k| (k, k)).collect(),
            served: 0,
        },
    ));
    let spec = LinkSpec::ten_gig(SimDuration::from_micros(2));
    net.connect((NodeRef::Host(client), 0), (NodeRef::Switch(sw), 0), spec);
    net.connect((NodeRef::Switch(sw), 1), (NodeRef::Host(server), 0), spec);
    let mut sim: Sim<Network> = Sim::new();
    // All requests for one hot key: a perfect caching workload.
    edp_netsim::traffic::start_cbr(
        &mut sim,
        client,
        SimTime::ZERO,
        SimDuration::from_micros(30),
        1000,
        move |_| {
            let get = KvHeader {
                op: KvOp::Get,
                key: 7,
                value: 0,
            };
            PacketBuilder::kv(client_addr, server_addr, &get).build()
        },
    );
    run_until(&mut net, &mut sim, SimTime::from_millis(60));
    let prog = &net.switch_as::<EventSwitch<NetCacheSwitch>>(0).program;
    assert!(
        prog.hit_rate() > 0.9,
        "hot-key hit rate {}",
        prog.hit_rate()
    );
    let served = match &net.hosts[server].app {
        HostApp::KvServer { served, .. } => *served,
        _ => unreachable!(),
    };
    assert!(served < 100, "server shed >90% of load, saw {served}");
    assert_eq!(net.hosts[client].stats.rx_pkts, 1000, "every GET answered");
}

#[test]
fn monitoring_cms_window_counts_are_clean() {
    // Class 3 (Network Monitoring): CMS with data-plane reset keeps
    // windows crisp — no cross-window bleed.
    use edp_apps::cms_reset::CmsMonitor;
    let period = SimDuration::from_millis(1);
    let cfg = EventSwitchConfig {
        n_ports: 2,
        timers: vec![TimerSpec {
            id: 0,
            period,
            start: period,
        }],
        ..Default::default()
    };
    let sw = EventSwitch::new(CmsMonitor::new(256, 4, 1), cfg);
    let (mut net, senders, _, _) = dumbbell(Box::new(sw), 1, 10_000_000_000, 63);
    let mut sim: Sim<Network> = Sim::new();
    let src = addr(1);
    edp_netsim::traffic::start_cbr(
        &mut sim,
        senders[0],
        SimTime::ZERO,
        SimDuration::from_micros(100),
        100,
        move |i| {
            PacketBuilder::udp(src, sink_addr(), 1, 2, &[])
                .ident(i as u16)
                .pad_to(1000)
                .build()
        },
    );
    run_until(&mut net, &mut sim, SimTime::from_millis(20));
    let prog = &net.switch_as::<EventSwitch<CmsMonitor>>(0).program;
    assert!(prog.resets.len() >= 19);
    assert_eq!(prog.mean_reset_lateness_ns(period.as_nanos()), 0.0);
    assert_eq!(net.cp_messages, 0);
}
