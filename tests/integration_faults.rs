//! Fault injection end-to-end: seeded fault plans are deterministic
//! across thread counts, FRR reroutes around injected failures with
//! measurable reconvergence, liveness detects a dead link, and the
//! packet impairment models (loss / corrupt / duplicate / reorder) and
//! switch stalls behave as specified.

use edp_apps::common::{addr, run_until};
use edp_apps::frr::{FrrBaseline, FrrEvent, CP_OP_SET_ROUTE};
use edp_apps::liveness::{LivenessMonitor, LivenessReflector, Neighbor, TIMER_CHECK, TIMER_PROBE};
use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
use edp_evsim::{sweep, Histogram, Sim, SimDuration, SimTime, Welford};
use edp_netsim::traffic::start_cbr;
use edp_netsim::{
    Dir, FaultPlan, Host, HostApp, LinkFaultModel, LinkSpec, Network, NodeRef, SwitchHarness,
};
use edp_packet::PacketBuilder;
use edp_pisa::{BaselineSwitch, ForwardTo, QueueConfig};

const FAIL_AT: SimTime = SimTime::from_millis(5);
const PKTS: u64 = 1000;
const INTERVAL: SimDuration = SimDuration::from_micros(10);

/// h0 — swA —(primary L1)— swR — sink, with a backup L2 between the
/// switches. Returns (net, sender, sink, primary link, backup link).
fn diamond(sw_a: Box<dyn SwitchHarness>) -> (Network, usize, usize, usize, usize) {
    let mut net = Network::new(21);
    let a = net.add_switch(sw_a);
    let r = net.add_switch(Box::new(BaselineSwitch::new(
        ForwardTo(2),
        3,
        QueueConfig::default(),
    )));
    let h0 = net.add_host(Host::new(addr(1), HostApp::Sink));
    let sink = net.add_host(Host::new(addr(9), HostApp::Sink));
    let spec = LinkSpec::ten_gig(SimDuration::from_micros(1));
    net.connect((NodeRef::Host(h0), 0), (NodeRef::Switch(a), 0), spec);
    let primary = net.connect((NodeRef::Switch(a), 1), (NodeRef::Switch(r), 0), spec);
    let backup = net.connect((NodeRef::Switch(a), 2), (NodeRef::Switch(r), 1), spec);
    net.connect((NodeRef::Switch(r), 2), (NodeRef::Host(sink), 0), spec);
    (net, h0, sink, primary, backup)
}

fn cbr(sim: &mut Sim<Network>, sender: usize) {
    let src = addr(1);
    start_cbr(sim, sender, SimTime::ZERO, INTERVAL, PKTS, move |i| {
        PacketBuilder::udp(src, addr(9), 1, 2, &[])
            .ident(i as u16)
            .pad_to(500)
            .build()
    });
}

/// h0 — sw — h1 line with an optional impairment model on the h0→sw
/// link. Returns (net, h0, h1, link id of the first hop).
fn line(model: Option<LinkFaultModel>, fault_seed: u64) -> (Network, usize, usize, usize) {
    let mut net = Network::new(7);
    let sw = net.add_switch(Box::new(BaselineSwitch::new(
        ForwardTo(1),
        2,
        QueueConfig::default(),
    )));
    let h0 = net.add_host(Host::new(addr(1), HostApp::Sink));
    let h1 = net.add_host(Host::new(addr(2), HostApp::Sink));
    let spec = LinkSpec::ten_gig(SimDuration::from_micros(1));
    let l0 = net.connect((NodeRef::Host(h0), 0), (NodeRef::Switch(sw), 0), spec);
    net.connect((NodeRef::Switch(sw), 1), (NodeRef::Host(h1), 0), spec);
    if let Some(m) = model {
        // FaultPlan::apply is exercised in the scenario tests; here we go
        // through the same plan machinery for a single-link model.
        let plan = FaultPlan::new(fault_seed).link_model(l0, m);
        let mut sim: Sim<Network> = Sim::new();
        plan.apply(&mut net, &mut sim);
    }
    (net, h0, h1, l0)
}

// ---------------------------------------------------------------------
// Determinism across thread counts
// ---------------------------------------------------------------------

/// A fault-heavy scenario: FRR under a flapping primary, a lossy backup,
/// and a stalled downstream switch. Returns every observable that could
/// plausibly diverge.
fn fault_scenario(fault_seed: u64) -> (u64, u64, u64, u64, u64, u64, u64) {
    let cfg = EventSwitchConfig {
        n_ports: 3,
        ..Default::default()
    };
    let sw = EventSwitch::new(FrrEvent::new(1, 2), cfg);
    let (mut net, sender, sink, primary, backup) = diamond(Box::new(sw));
    let mut sim: Sim<Network> = Sim::new();
    let plan = FaultPlan::new(fault_seed)
        .link_flap(
            primary,
            FAIL_AT,
            SimDuration::from_millis(1),
            SimDuration::from_millis(3),
            2,
        )
        .link_model(backup, LinkFaultModel::loss(0.05))
        .switch_stall(1, SimTime::from_millis(6), SimTime::from_micros(6_200));
    plan.apply(&mut net, &mut sim);
    cbr(&mut sim, sender);
    run_until(&mut net, &mut sim, SimTime::from_millis(30));
    let swa = net.switch_as::<EventSwitch<FrrEvent>>(0);
    let bdir = net.link_dir_state(backup, Dir::AtoB);
    (
        net.hosts[sink].stats.rx_pkts,
        net.hosts[sink].stats.rx_bytes,
        sim.events_fired(),
        swa.program.stats.reroutes,
        swa.counters().link_transitions,
        bdir.fault_drops,
        bdir.tx_frames,
    )
}

#[test]
fn seeded_fault_runs_are_identical_across_thread_counts() {
    // The env var EDP_SWEEP_THREADS is process-wide, so exercise the
    // sweep machinery directly at several widths within one process.
    let seeds: Vec<u64> = vec![11, 22, 33, 44];
    let reference = sweep(seeds.clone(), 1, fault_scenario);
    for threads in [2, 8] {
        let got = sweep(seeds.clone(), threads, fault_scenario);
        assert_eq!(got, reference, "diverged at {threads} threads");
    }
    // Sanity: faults actually fired in the scenario.
    let (rx, _, _, reroutes, transitions, drops, carried) = reference[0];
    assert!(
        rx > 0 && rx < PKTS,
        "flap+loss should cost packets, rx={rx}"
    );
    assert!(reroutes >= 3, "two flaps = at least 3 route changes");
    assert_eq!(transitions, 4, "2 downs + 2 ups");
    assert!(drops > 0, "lossy backup dropped nothing");
    assert!(carried > 0, "backup carried nothing");
}

#[test]
fn fault_seed_changes_the_run_workload_seed_untouched() {
    let a = fault_scenario(11);
    let b = fault_scenario(12);
    assert_ne!(a, b, "different fault seeds must change loss outcomes");
}

// ---------------------------------------------------------------------
// FRR reconvergence, measured via stats.rs
// ---------------------------------------------------------------------

#[test]
fn frr_reconvergence_tracks_the_control_loop() {
    // Baseline FRR: reconvergence equals the control-plane delay.
    let delays_us: [u64; 4] = [500, 1000, 2000, 4000];
    let mut rec = Welford::new();
    let mut hist = Histogram::new();
    for &d in &delays_us {
        let sw = BaselineSwitch::new(FrrBaseline::new(1), 3, QueueConfig::default());
        let (mut net, sender, sink, primary, _) = diamond(Box::new(sw));
        let mut sim: Sim<Network> = Sim::new();
        net.schedule_link_failure(&mut sim, primary, FAIL_AT, None);
        let cp_delay = SimDuration::from_micros(d);
        sim.schedule_at(FAIL_AT, move |w: &mut Network, s: &mut Sim<Network>| {
            w.control_plane_send(s, cp_delay, 0, CP_OP_SET_ROUTE, [2, 0, 0, 0]);
        });
        cbr(&mut sim, sender);
        run_until(&mut net, &mut sim, SimTime::from_millis(30));
        let prog = &net.switch_as::<BaselineSwitch<FrrBaseline>>(0).program;
        let r = prog.stats.reconvergence(FAIL_AT).expect("failed over");
        assert_eq!(r, cp_delay, "baseline reconvergence is the cp delay");
        rec.add(r.as_nanos() as f64);
        hist.record(r.as_nanos());
        // The blackhole cost scales with the delay (one packet / 10 us).
        let lost = PKTS - net.hosts[sink].stats.rx_pkts;
        let expect = d / 10;
        assert!(
            lost >= expect / 2 && lost <= expect * 2 + 10,
            "cp_delay {d}us lost {lost}, expected ≈{expect}"
        );
    }
    let want_mean = delays_us.iter().map(|&d| d as f64 * 1000.0).sum::<f64>() / 4.0;
    assert!((rec.mean() - want_mean).abs() < 1.0, "mean {}", rec.mean());
    assert_eq!(hist.max(), 4_000_000, "worst case is the 4 ms loop");
    assert!(hist.p50() <= 2_000_000, "p50 {}", hist.p50());

    // Event-driven FRR: reconvergence is zero by construction.
    let cfg = EventSwitchConfig {
        n_ports: 3,
        ..Default::default()
    };
    let sw = EventSwitch::new(FrrEvent::new(1, 2), cfg);
    let (mut net, sender, sink, primary, _) = diamond(Box::new(sw));
    let mut sim: Sim<Network> = Sim::new();
    let plan = FaultPlan::new(9).link_down_at(primary, FAIL_AT, None);
    plan.apply(&mut net, &mut sim);
    cbr(&mut sim, sender);
    run_until(&mut net, &mut sim, SimTime::from_millis(30));
    let prog = &net.switch_as::<EventSwitch<FrrEvent>>(0).program;
    assert_eq!(prog.stats.reconvergence(FAIL_AT), Some(SimDuration::ZERO));
    let lost = PKTS - net.hosts[sink].stats.rx_pkts;
    assert!(lost <= 2, "event FRR lost {lost}");
}

// ---------------------------------------------------------------------
// Liveness under an injected hard failure
// ---------------------------------------------------------------------

#[test]
fn liveness_declares_dead_after_injected_link_failure() {
    let timeout = SimDuration::from_millis(3);
    let period = SimDuration::from_millis(1);
    let mut net = Network::new(31);
    let mon_cfg = EventSwitchConfig {
        n_ports: 2,
        timers: vec![
            TimerSpec {
                id: TIMER_PROBE,
                period,
                start: period,
            },
            TimerSpec {
                id: TIMER_CHECK,
                period,
                start: period,
            },
        ],
        switch_id: 1,
        ..Default::default()
    };
    let monitor = LivenessMonitor::new(
        addr(1),
        vec![Neighbor {
            port: 1,
            addr: addr(2),
        }],
        timeout.as_nanos(),
    );
    let m = net.add_switch(Box::new(EventSwitch::new(monitor, mon_cfg)));
    let refl_cfg = EventSwitchConfig {
        n_ports: 2,
        switch_id: 2,
        ..Default::default()
    };
    let r = net.add_switch(Box::new(EventSwitch::new(
        LivenessReflector::new(),
        refl_cfg,
    )));
    let probe_link = net.connect(
        (NodeRef::Switch(m), 1),
        (NodeRef::Switch(r), 0),
        LinkSpec::ten_gig(SimDuration::from_micros(5)),
    );
    let h = net.add_host(Host::new(addr(100), HostApp::Sink));
    net.connect(
        (NodeRef::Host(h), 0),
        (NodeRef::Switch(m), 0),
        LinkSpec::ten_gig(SimDuration::from_micros(1)),
    );
    let kill_at = SimTime::from_millis(20);
    let mut sim: Sim<Network> = Sim::new();
    let plan = FaultPlan::new(3).link_down_at(probe_link, kill_at, None);
    plan.apply(&mut net, &mut sim);
    run_until(&mut net, &mut sim, SimTime::from_millis(40));
    let msw = net.switch_as::<EventSwitch<LivenessMonitor>>(0);
    let dead_at = msw.program.declared_dead_at(0).expect("detected");
    // Timer-driven expiry: the last reply landed shortly before the
    // failure, so detection fires on the first sweep after
    // last_heard + timeout — within one period either side of
    // kill + timeout.
    assert!(
        dead_at >= kill_at + timeout - period,
        "declared at {dead_at}"
    );
    assert!(
        dead_at <= kill_at + timeout + period * 2,
        "declared late at {dead_at}"
    );
    // The link-status event reached the monitor's harness, and probes
    // kept flowing into the dead port (dropped at egress).
    assert_eq!(msw.counters().link_transitions, 1);
    assert!(msw.counters().dropped_link_down > 0);
}

// ---------------------------------------------------------------------
// Impairment models on the wire
// ---------------------------------------------------------------------

#[test]
fn loss_model_drops_a_predictable_fraction() {
    let (mut net, h0, h1, l0) = line(Some(LinkFaultModel::loss(0.3)), 5);
    let mut sim: Sim<Network> = Sim::new();
    let src = addr(1);
    start_cbr(&mut sim, h0, SimTime::ZERO, INTERVAL, PKTS, move |i| {
        PacketBuilder::udp(src, addr(2), 1, 2, &[])
            .ident(i as u16)
            .pad_to(125)
            .build()
    });
    run_until(&mut net, &mut sim, SimTime::from_millis(30));
    let d = net.link_dir_state(l0, Dir::AtoB);
    let rx = net.hosts[h1].stats.rx_pkts;
    assert_eq!(rx + d.fault_drops, PKTS, "every frame delivered or counted");
    assert!(
        (200..=400).contains(&d.fault_drops),
        "p=0.3 dropped {}",
        d.fault_drops
    );
}

#[test]
fn corrupt_model_flips_bytes_and_checksums_catch_most() {
    let model = LinkFaultModel {
        corrupt_prob: 1.0,
        ..Default::default()
    };
    let (mut net, h0, h1, l0) = line(Some(model), 5);
    let mut sim: Sim<Network> = Sim::new();
    let n = 200u64;
    let src = addr(1);
    start_cbr(&mut sim, h0, SimTime::ZERO, INTERVAL, n, move |i| {
        PacketBuilder::udp(src, addr(2), 1, 2, &[])
            .ident(i as u16)
            .pad_to(100)
            .build()
    });
    run_until(&mut net, &mut sim, SimTime::from_millis(30));
    let d = net.link_dir_state(l0, Dir::AtoB);
    assert_eq!(d.corrupted, n, "p=1 corrupts every frame");
    // Flips inside the IP/UDP region fail checksum verification and the
    // switch drops them as parse errors; only flips in the unprotected
    // Ethernet fields slip through to the sink.
    let sw = net.switch_as::<BaselineSwitch<ForwardTo>>(0);
    let parse_errors = sw.counters().parse_errors;
    let rx = net.hosts[h1].stats.rx_pkts;
    assert_eq!(
        rx + parse_errors,
        n,
        "every corrupt frame dropped or forwarded"
    );
    assert!(
        parse_errors > n / 2,
        "checksums caught only {parse_errors}/{n}"
    );
    assert!(rx > 0, "no flip landed in the unprotected Ethernet bytes");
}

#[test]
fn duplicate_model_delivers_every_frame_twice() {
    let model = LinkFaultModel {
        duplicate_prob: 1.0,
        ..Default::default()
    };
    let (mut net, h0, h1, l0) = line(Some(model), 5);
    let mut sim: Sim<Network> = Sim::new();
    let n = 50u64;
    let src = addr(1);
    start_cbr(&mut sim, h0, SimTime::ZERO, INTERVAL, n, move |i| {
        PacketBuilder::udp(src, addr(2), 1, 2, &[])
            .ident(i as u16)
            .pad_to(125)
            .build()
    });
    run_until(&mut net, &mut sim, SimTime::from_millis(30));
    let d = net.link_dir_state(l0, Dir::AtoB);
    assert_eq!(d.duplicated, n);
    assert_eq!(net.hosts[h1].stats.rx_pkts, 2 * n, "original + copy each");
}

#[test]
fn reorder_model_adds_exactly_the_configured_delay() {
    let model = LinkFaultModel {
        reorder_prob: 1.0,
        reorder_delay: SimDuration::from_micros(50),
        ..Default::default()
    };
    let (mut net, h0, h1, l0) = line(Some(model), 5);
    let mut sim: Sim<Network> = Sim::new();
    let f = PacketBuilder::udp(addr(1), addr(2), 1, 2, &[])
        .pad_to(125)
        .build();
    sim.schedule_at(
        SimTime::ZERO,
        move |w: &mut Network, s: &mut Sim<Network>| {
            w.host_send(s, h0, f.clone());
        },
    );
    run_until(&mut net, &mut sim, SimTime::from_millis(1));
    assert_eq!(net.link_dir_state(l0, Dir::AtoB).reordered, 1);
    let fs = net.hosts[h1].stats.flows.values().next().expect("flow");
    // Base path latency 2.2 us (2 × ser 0.1 + prop 1) + 50 us hold-back.
    assert_eq!(fs.latency_ns.mean(), 52_200.0);
}

// ---------------------------------------------------------------------
// Switch stalls
// ---------------------------------------------------------------------

#[test]
fn stalled_switch_holds_frames_until_the_window_ends() {
    let (mut net, h0, h1, _) = line(None, 0);
    let mut sim: Sim<Network> = Sim::new();
    let stall_from = SimTime::from_micros(10);
    let stall_until = SimTime::from_micros(100);
    let plan = FaultPlan::new(1).switch_stall(0, stall_from, stall_until);
    plan.apply(&mut net, &mut sim);
    // One packet well before the stall, one into it.
    for t in [0u64, 20] {
        let f = PacketBuilder::udp(addr(1), addr(2), 1, 2, &[])
            .pad_to(125)
            .build();
        sim.schedule_at(
            SimTime::from_micros(t),
            move |w: &mut Network, s: &mut Sim<Network>| w.host_send(s, h0, f.clone()),
        );
    }
    run_until(&mut net, &mut sim, SimTime::from_millis(1));
    assert_eq!(net.hosts[h1].stats.rx_pkts, 2, "stall delays, never drops");
    let fs = net.hosts[h1].stats.flows.values().next().expect("flow");
    // First packet: 2.2 us. Second: sent at 20 us, held at the switch
    // until 100 us, then one more hop (1.1 us) => 81.1 us latency.
    assert_eq!(fs.latency_ns.min(), 2_200.0);
    assert_eq!(fs.latency_ns.max(), 81_100.0);
}

// ---------------------------------------------------------------------
// Tracer under a link down/up sequence
// ---------------------------------------------------------------------

#[test]
fn tracer_annotates_link_down_up_around_deliveries() {
    let (mut net, h0, h1, l0) = line(None, 0);
    net.tracer.enabled = true;
    let mut sim: Sim<Network> = Sim::new();
    let plan = FaultPlan::new(1).link_down_at(
        l0,
        SimTime::from_micros(10),
        Some(SimTime::from_micros(50)),
    );
    plan.apply(&mut net, &mut sim);
    // One packet while up, one while down (lost), one after recovery.
    for t in [0u64, 20, 60] {
        let f = PacketBuilder::udp(addr(1), addr(2), 1, 2, &[])
            .pad_to(125)
            .build();
        sim.schedule_at(
            SimTime::from_micros(t),
            move |w: &mut Network, s: &mut Sim<Network>| w.host_send(s, h0, f.clone()),
        );
    }
    run_until(&mut net, &mut sim, SimTime::from_millis(1));
    assert_eq!(net.hosts[h1].stats.rx_pkts, 2, "middle packet lost");
    let trace = net.tracer.render();
    let down = trace.find("link0 down").expect("down note");
    let up = trace.find("link0 up").expect("up note");
    assert!(down < up, "down precedes up:\n{trace}");
    // The lost packet produced no rx line between the two notes.
    let between = &trace[down..up];
    assert!(!between.contains(" rx "), "delivery while down:\n{trace}");
    // Four deliveries traced: two switch hops + two host arrivals.
    assert_eq!(trace.matches(" rx ").count(), 4, "{trace}");
}
