//! Reproducibility: a run is a pure function of (program, seed).
//!
//! The experiment harness depends on this — every table in
//! EXPERIMENTS.md must regenerate bit-identically.

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::fred::{FredAqm, TIMER_REPORT};
use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::{start_cbr, start_poisson};
use edp_netsim::Network;
use edp_packet::PacketBuilder;
use edp_pisa::QueueConfig;

/// A moderately complex run: FRED switch, CBR + Poisson traffic, timers.
/// Returns a fingerprint of everything observable.
fn fingerprint(seed: u64) -> (u64, u64, u64, Vec<(u64, u64)>) {
    let cfg = EventSwitchConfig {
        n_ports: 3,
        queue: QueueConfig {
            capacity_bytes: 40_000,
            ..QueueConfig::default()
        },
        timers: vec![TimerSpec {
            id: TIMER_REPORT,
            period: SimDuration::from_millis(1),
            start: SimDuration::from_millis(1),
        }],
        ..Default::default()
    };
    let sw = EventSwitch::new(FredAqm::new(32, 40_000, 1500, 2), cfg);
    let (mut net, senders, sink, _) = dumbbell(Box::new(sw), 2, 200_000_000, seed);
    let mut sim: Sim<Network> = Sim::new();
    let src0 = addr(1);
    start_cbr(
        &mut sim,
        senders[0],
        SimTime::ZERO,
        SimDuration::from_micros(40),
        u64::MAX,
        move |i| {
            PacketBuilder::udp(src0, sink_addr(), 1, 2, &[])
                .ident(i as u16)
                .pad_to(1200)
                .build()
        },
    );
    let src1 = addr(2);
    start_poisson(
        &mut sim,
        senders[1],
        SimTime::ZERO,
        SimDuration::from_micros(60),
        SimTime::from_millis(30),
        move |i| {
            PacketBuilder::udp(src1, sink_addr(), 3, 4, &[])
                .ident(i as u16)
                .pad_to(800)
                .build()
        },
    );
    run_until(&mut net, &mut sim, SimTime::from_millis(30));
    let prog = &net.switch_as::<EventSwitch<FredAqm>>(0).program;
    let series: Vec<(u64, u64)> = prog
        .occupancy_series
        .points()
        .iter()
        .map(|&(t, v)| (t, v as u64))
        .collect();
    (
        net.hosts[sink].stats.rx_pkts,
        net.hosts[sink].stats.rx_bytes,
        sim.events_fired(),
        series,
    )
}

#[test]
fn identical_seeds_produce_identical_runs() {
    let a = fingerprint(424242);
    let b = fingerprint(424242);
    assert_eq!(a, b, "same seed must be bit-identical");
}

#[test]
fn different_seeds_differ() {
    let a = fingerprint(1);
    let b = fingerprint(2);
    // Poisson arrivals differ => some observable difference.
    assert_ne!((a.0, a.1, a.2), (b.0, b.1, b.2), "seeds should matter");
}

#[test]
fn staleness_experiment_is_deterministic() {
    use edp_core::{run_staleness_experiment, AggregConfig};
    let cfg = AggregConfig {
        entries: 8,
        folds_per_idle_cycle: 1,
    };
    let a = run_staleness_experiment(cfg, 1.3, 10_000, |p| (p % 8) as usize);
    let b = run_staleness_experiment(cfg, 1.3, 10_000, |p| (p % 8) as usize);
    assert_eq!(a.max_staleness, b.max_staleness);
    assert_eq!(a.mean_staleness, b.mean_staleness);
    assert_eq!(a.stale_read_frac, b.stale_read_frac);
}
