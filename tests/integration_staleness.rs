//! §4 / Figure 3 end-to-end: the aggregation-register staleness bound.
//!
//! The paper's claim: "staleness is bounded if the pipeline runs slightly
//! faster than the line rate (as is typical)" — and, implicitly, grows
//! without bound at exactly line rate.

use edp_core::{run_staleness_experiment, AggregConfig, AggregatedState};

#[test]
fn staleness_bounded_iff_faster_than_line_rate() {
    let cfg = AggregConfig {
        entries: 16,
        folds_per_idle_cycle: 1,
    };
    let at_line_rate = run_staleness_experiment(cfg, 1.0, 30_000, |p| (p % 16) as usize);
    let slightly_faster = run_staleness_experiment(cfg, 1.25, 30_000, |p| (p % 16) as usize);
    let much_faster = run_staleness_experiment(cfg, 2.0, 30_000, |p| (p % 16) as usize);

    // At line rate: monotone growth, never drains. 30k packets spread 2
    // ops of 100 bytes over 16 entries: ~375 KB parked per entry.
    assert!(!at_line_rate.drained);
    assert!(at_line_rate.max_staleness > 300_000);

    // Faster than line rate: bounded, and more headroom = tighter.
    assert!(slightly_faster.max_staleness < at_line_rate.max_staleness / 10);
    assert!(much_faster.max_staleness <= slightly_faster.max_staleness);
    assert!(much_faster.mean_staleness <= slightly_faster.mean_staleness);
}

#[test]
fn staleness_scales_down_with_headroom_sweep() {
    // The figure's x-axis: pipeline speedup; y-axis: staleness. Must be
    // monotonically non-increasing (modulo small plateaus).
    let cfg = AggregConfig {
        entries: 8,
        folds_per_idle_cycle: 1,
    };
    let sweep: Vec<f64> = [1.05, 1.1, 1.25, 1.5, 2.0, 3.0]
        .iter()
        .map(|&s| run_staleness_experiment(cfg, s, 20_000, |p| (p % 8) as usize).mean_staleness)
        .collect();
    for w in sweep.windows(2) {
        assert!(
            w[1] <= w[0] * 1.05,
            "staleness not decreasing with speedup: {sweep:?}"
        );
    }
}

#[test]
fn reads_see_consistent_state_after_drain() {
    // After the workload ends and idle cycles drain the aggregation
    // arrays, the main register equals ground truth exactly.
    let mut st = AggregatedState::new(AggregConfig {
        entries: 4,
        folds_per_idle_cycle: 2,
    });
    let mut truth = [0i64; 4];
    for p in 0..1000u64 {
        let q = (p % 4) as usize;
        st.enqueue(q, 100);
        truth[q] += 100;
        if p % 3 == 0 {
            let dq = ((p / 3) % 4) as usize;
            st.dequeue(dq, 60);
            truth[dq] = (truth[dq] - 60).max(0);
        }
    }
    while !st.is_drained() {
        st.idle_cycle();
    }
    for (q, &t) in truth.iter().enumerate() {
        assert_eq!(st.packet_read(q) as i64, t, "queue {q}");
        assert_eq!(st.staleness(q), 0);
        assert_eq!(st.net_error(q), 0);
    }
}

#[test]
fn bandwidth_accuracy_tradeoff() {
    // §4: "packet processing bandwidth versus accuracy of the data-plane
    // algorithm" — freeing pipeline capacity (more folds per idle cycle,
    // i.e. fewer external ports in use) buys accuracy.
    let speedup = 1.1;
    let errs: Vec<f64> = [1usize, 2, 4, 8]
        .iter()
        .map(|&folds| {
            let cfg = AggregConfig {
                entries: 32,
                folds_per_idle_cycle: folds,
            };
            run_staleness_experiment(cfg, speedup, 30_000, |p| (p % 32) as usize).mean_staleness
        })
        .collect();
    assert!(
        errs.windows(2).all(|w| w[1] <= w[0] * 1.05),
        "more fold bandwidth must not worsen staleness: {errs:?}"
    );
    assert!(
        errs[3] < errs[0],
        "8x fold bandwidth should measurably help: {errs:?}"
    );
}
