//! §2 end-to-end: the microburst worked example's claims, measured.
//!
//! Claims under test, from the paper:
//! 1. the event-driven program needs ≥4× less stateful memory;
//! 2. it detects the culprit in the ingress pipeline, *before* the packet
//!    is enqueued (the baseline flags only after the buffer was hogged);
//! 3. the per-flow occupancy it maintains is exact (returns to zero).

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::microburst::{MicroburstBaseline, MicroburstEvent};
use edp_core::{EventSwitch, EventSwitchConfig};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::{start_burst, start_cbr};
use edp_netsim::Network;
use edp_packet::PacketBuilder;
use edp_pisa::{BaselineSwitch, QueueConfig};

const THRESH: u64 = 20_000;
const N_FLOWS: usize = 256;
const BURST_AT: SimTime = SimTime::from_millis(2);

fn qc() -> QueueConfig {
    QueueConfig {
        capacity_bytes: 300_000,
        ..QueueConfig::default()
    }
}

fn workload(sim: &mut Sim<Network>, senders: &[usize]) {
    for (i, &h) in senders.iter().take(2).enumerate() {
        let src = addr(i as u8 + 1);
        start_cbr(
            sim,
            h,
            SimTime::ZERO,
            SimDuration::from_micros(150),
            200,
            move |s| {
                PacketBuilder::udp(src, sink_addr(), 10 + i as u16, 20, &[])
                    .ident(s as u16)
                    .pad_to(1500)
                    .build()
            },
        );
    }
    let src = addr(3);
    start_burst(
        sim,
        senders[2],
        BURST_AT,
        120,
        SimDuration::ZERO,
        move |s| {
            PacketBuilder::udp(src, sink_addr(), 30, 40, &[])
                .ident(s as u16)
                .pad_to(1500)
                .build()
        },
    );
}

#[test]
fn state_reduction_detection_lead_and_exactness() {
    // Event-driven run.
    let cfg = EventSwitchConfig {
        n_ports: 4,
        queue: qc(),
        ..Default::default()
    };
    let sw = EventSwitch::new(MicroburstEvent::new(N_FLOWS, THRESH, 3), cfg);
    let (mut net, senders, _, _) = dumbbell(Box::new(sw), 3, 1_000_000_000, 3);
    let mut sim: Sim<Network> = Sim::new();
    workload(&mut sim, &senders);
    run_until(&mut net, &mut sim, SimTime::from_millis(40));
    let ev = &net.switch_as::<EventSwitch<MicroburstEvent>>(0).program;
    let ev_words = ev.state_words();
    let ev_first = ev.detections.first().map(|d| d.at).expect("event detects");

    // Baseline run, identical workload.
    let prog = MicroburstBaseline::new(N_FLOWS, THRESH, 240_000, 3);
    let sw = BaselineSwitch::new(prog, 4, qc());
    let (mut net, senders, _, _) = dumbbell(Box::new(sw), 3, 1_000_000_000, 3);
    let mut sim: Sim<Network> = Sim::new();
    workload(&mut sim, &senders);
    run_until(&mut net, &mut sim, SimTime::from_millis(40));
    let base = &net
        .switch_as::<BaselineSwitch<MicroburstBaseline>>(0)
        .program;
    let base_words = base.state_words();
    let base_first = base
        .detections
        .first()
        .map(|d| d.at)
        .expect("baseline detects");

    // Claim 1: ≥4× state reduction.
    assert!(
        base_words >= 4 * ev_words,
        "state: baseline {base_words} vs event {ev_words}"
    );
    // Claim 2: event-driven detects no later (ingress vs egress).
    assert!(
        ev_first <= base_first,
        "event {ev_first} vs baseline {base_first}"
    );
    // Both detect after the burst actually started.
    assert!(ev_first >= BURST_AT);
}

#[test]
fn event_occupancy_is_exact_and_self_cleaning() {
    let cfg = EventSwitchConfig {
        n_ports: 4,
        queue: qc(),
        ..Default::default()
    };
    let sw = EventSwitch::new(MicroburstEvent::new(N_FLOWS, THRESH, 3), cfg);
    let (mut net, senders, sink, _) = dumbbell(Box::new(sw), 3, 1_000_000_000, 4);
    let mut sim: Sim<Network> = Sim::new();
    workload(&mut sim, &senders);
    run_until(&mut net, &mut sim, SimTime::from_millis(100));
    let ev = &net.switch_as::<EventSwitch<MicroburstEvent>>(0).program;
    assert_eq!(
        ev.buf_size.nonzero_entries(),
        0,
        "exact accounting: every enqueued byte was dequeued"
    );
    // Shared-register ports: packet + enqueue + dequeue accessors.
    assert_eq!(ev.buf_size.ports_required(), 3);
    // Traffic flowed.
    assert!(net.hosts[sink].stats.rx_pkts > 400);
}

#[test]
fn no_false_positives_without_bursts() {
    let cfg = EventSwitchConfig {
        n_ports: 4,
        queue: qc(),
        ..Default::default()
    };
    let sw = EventSwitch::new(MicroburstEvent::new(N_FLOWS, THRESH, 3), cfg);
    let (mut net, senders, _, _) = dumbbell(Box::new(sw), 3, 1_000_000_000, 5);
    let mut sim: Sim<Network> = Sim::new();
    // Only the polite flows.
    for (i, &h) in senders.iter().take(2).enumerate() {
        let src = addr(i as u8 + 1);
        start_cbr(
            &mut sim,
            h,
            SimTime::ZERO,
            SimDuration::from_micros(150),
            300,
            move |s| {
                PacketBuilder::udp(src, sink_addr(), 10 + i as u16, 20, &[])
                    .ident(s as u16)
                    .pad_to(1500)
                    .build()
            },
        );
    }
    run_until(&mut net, &mut sim, SimTime::from_millis(60));
    let ev = &net.switch_as::<EventSwitch<MicroburstEvent>>(0).program;
    assert!(
        ev.detections.is_empty(),
        "polite traffic must not be flagged: {:?}",
        ev.detections
    );
}
