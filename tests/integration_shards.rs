//! Shard invariance end-to-end: every fault-injection scenario family
//! from `integration_faults.rs` re-run through the sharded engine at
//! 1, 2, and 4 shards must produce the same observables, the same
//! merged packet trace, and the same merged metrics JSON — and the
//! numeric observables must match the classic single-threaded engine.
//!
//! Topologies here deliberately put an impaired or failed link *between*
//! switches where possible, so the faulty frames actually cross a shard
//! boundary through the mailbox exchange instead of staying local.

use edp_apps::common::{addr, run_until};
use edp_apps::frr::{FrrBaseline, FrrEvent, CP_OP_SET_ROUTE};
use edp_apps::liveness::{LivenessMonitor, LivenessReflector, Neighbor, TIMER_CHECK, TIMER_PROBE};
use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
use edp_evsim::{HorizonMode, Sim, SimDuration, SimTime};
use edp_netsim::{
    merge_tracers, run_sharded_opts, Dir, FaultPlan, Host, HostApp, LinkFaultModel, LinkSpec,
    Network, NodeRef, Tracer,
};
use edp_packet::PacketBuilder;
use edp_pisa::{BaselineSwitch, ForwardTo, QueueConfig};
use edp_telemetry::Registry;

const SHARD_COUNTS: [usize; 2] = [2, 4];
const FAIL_AT: SimTime = SimTime::from_millis(5);
const PKTS: u64 = 1000;
const INTERVAL: SimDuration = SimDuration::from_micros(10);
const DEADLINE: SimTime = SimTime::from_millis(30);

/// Runs `build` on the sharded engine and returns every shard's final
/// network, the merged packet trace, and the merged metrics JSON.
fn run_shards<B>(shards: usize, deadline: SimTime, build: B) -> (Vec<Network>, String, String)
where
    B: Fn() -> (Network, Sim<Network>) + Sync,
{
    run_shards_at(shards, 1, HorizonMode::Classic, deadline, build)
}

/// Same, at an explicit burst factor (sub-windows per negotiated
/// window) and horizon mode. Passed explicitly rather than via
/// `EDP_BURST`/`EDP_HORIZON` so parallel tests never race on
/// process-global env state.
fn run_shards_at<B>(
    shards: usize,
    burst: usize,
    mode: HorizonMode,
    deadline: SimTime,
    build: B,
) -> (Vec<Network>, String, String)
where
    B: Fn() -> (Network, Sim<Network>) + Sync,
{
    let (nets, _stats) = run_sharded_opts(
        shards,
        burst,
        mode,
        deadline,
        |_s| build(),
        |_s, net, _sim| net,
    );
    let tracers: Vec<&Tracer> = nets.iter().map(|n| &n.tracer).collect();
    let trace = merge_tracers(&tracers);
    // One registry per shard, merged: `publish_metrics` *sets* net-scope
    // counters, so partial per-shard counts must be summed by `merge`,
    // not overwritten by publishing into a shared registry.
    let mut reg = Registry::new();
    for net in &nets {
        let mut part = Registry::new();
        net.publish_metrics(&mut part);
        reg.merge(&part);
    }
    (nets, trace, edp_telemetry::to_json(&reg))
}

/// Runs `build` on the classic single-threaded engine for reference.
fn run_classic<B>(deadline: SimTime, build: B) -> Network
where
    B: Fn() -> (Network, Sim<Network>),
{
    let (mut net, mut sim) = build();
    run_until(&mut net, &mut sim, deadline);
    net
}

fn sum_u64(nets: &[Network], f: impl Fn(&Network) -> u64) -> u64 {
    nets.iter().map(f).sum()
}

/// Asserts the scenario's observables, merged trace, and merged metrics
/// are identical for 1/2/4 shards and that the observables match the
/// classic engine. Returns the 1-shard networks for scenario-specific
/// sanity checks.
fn assert_invariant<B, O, T>(build: B, observe: O, deadline: SimTime) -> Vec<Network>
where
    B: Fn() -> (Network, Sim<Network>) + Sync,
    O: Fn(&[Network]) -> T,
    T: PartialEq + std::fmt::Debug,
{
    let classic = run_classic(deadline, &build);
    let classic_obs = observe(std::slice::from_ref(&classic));
    let (one, one_trace, one_json) = run_shards(1, deadline, &build);
    assert_eq!(
        observe(&one),
        classic_obs,
        "1-shard run diverged from the classic engine"
    );
    assert!(
        !one_trace.contains(" dropped (capacity") || one_trace.contains(", 0 dropped (capacity"),
        "tracer ring evicted; scenario too big for invariance checks"
    );
    for shards in SHARD_COUNTS {
        // Burst 1 is the legacy one-negotiation-per-window protocol;
        // burst 32 exercises the sub-window fast path; the effects
        // horizon exercises the certificate-extended windows. Every
        // scenario family must be invariant under all three.
        for (burst, mode) in [
            (1usize, HorizonMode::Classic),
            (32, HorizonMode::Classic),
            (32, HorizonMode::Effects),
        ] {
            let (many, trace, json) = run_shards_at(shards, burst, mode, deadline, &build);
            assert_eq!(
                observe(&many),
                classic_obs,
                "{shards}-shard burst-{burst} {mode:?} observables diverged"
            );
            assert_eq!(
                one_trace, trace,
                "{shards}-shard burst-{burst} {mode:?} merged trace diverged"
            );
            assert_eq!(
                one_json, json,
                "{shards}-shard burst-{burst} {mode:?} metrics JSON diverged"
            );
        }
    }
    one
}

// ---------------------------------------------------------------------
// Topology builders (mirroring integration_faults.rs, but with the
// interesting link between two switches so it crosses shards)
// ---------------------------------------------------------------------

/// h0 — swA —(primary L1)— swR — sink, with a backup L2 between the
/// switches. Returns (net, sender, sink, primary link, backup link).
fn diamond(sw_a: Box<dyn edp_netsim::SwitchHarness>) -> (Network, usize, usize, usize, usize) {
    let mut net = Network::new(21);
    let a = net.add_switch(sw_a);
    let r = net.add_switch(Box::new(BaselineSwitch::new(
        ForwardTo(2),
        3,
        QueueConfig::default(),
    )));
    let h0 = net.add_host(Host::new(addr(1), HostApp::Sink));
    let sink = net.add_host(Host::new(addr(9), HostApp::Sink));
    let spec = LinkSpec::ten_gig(SimDuration::from_micros(1));
    net.connect((NodeRef::Host(h0), 0), (NodeRef::Switch(a), 0), spec);
    let primary = net.connect((NodeRef::Switch(a), 1), (NodeRef::Switch(r), 0), spec);
    let backup = net.connect((NodeRef::Switch(a), 2), (NodeRef::Switch(r), 1), spec);
    net.connect((NodeRef::Switch(r), 2), (NodeRef::Host(sink), 0), spec);
    (net, h0, sink, primary, backup)
}

fn cbr(sim: &mut Sim<Network>, sender: usize, n: u64) {
    let src = addr(1);
    edp_netsim::traffic::start_cbr(sim, sender, SimTime::ZERO, INTERVAL, n, move |i| {
        PacketBuilder::udp(src, addr(9), 1, 2, &[])
            .ident(i as u16)
            .pad_to(500)
            .build()
    });
}

/// h0 — sw0 —(trunk, optionally impaired)— sw1 — h1. The trunk is the
/// only switch–switch link, so at 2+ shards every trunk frame goes
/// through the mailbox exchange. Returns (net, h0, h1, trunk link).
fn two_switch_line(
    model: Option<LinkFaultModel>,
    fault_seed: u64,
) -> (Network, usize, usize, usize) {
    let mut net = Network::new(7);
    let sw0 = net.add_switch(Box::new(BaselineSwitch::new(
        ForwardTo(1),
        2,
        QueueConfig::default(),
    )));
    let sw1 = net.add_switch(Box::new(BaselineSwitch::new(
        ForwardTo(1),
        2,
        QueueConfig::default(),
    )));
    let h0 = net.add_host(Host::new(addr(1), HostApp::Sink));
    let h1 = net.add_host(Host::new(addr(9), HostApp::Sink));
    let spec = LinkSpec::ten_gig(SimDuration::from_micros(1));
    net.connect((NodeRef::Host(h0), 0), (NodeRef::Switch(sw0), 0), spec);
    let trunk = net.connect((NodeRef::Switch(sw0), 1), (NodeRef::Switch(sw1), 0), spec);
    net.connect((NodeRef::Switch(sw1), 1), (NodeRef::Host(h1), 0), spec);
    if let Some(m) = model {
        let plan = FaultPlan::new(fault_seed).link_model(trunk, m);
        let mut sim: Sim<Network> = Sim::new();
        plan.apply(&mut net, &mut sim);
    }
    (net, h0, h1, trunk)
}

fn line_cbr(sim: &mut Sim<Network>, h0: usize, n: u64, pad: usize) {
    let src = addr(1);
    edp_netsim::traffic::start_cbr(sim, h0, SimTime::ZERO, INTERVAL, n, move |i| {
        PacketBuilder::udp(src, addr(9), 1, 2, &[])
            .ident(i as u16)
            .pad_to(pad)
            .build()
    });
}

// ---------------------------------------------------------------------
// 1+2. The fault-heavy diamond: flap + lossy backup + stalled switch
// ---------------------------------------------------------------------

fn build_fault_diamond(fault_seed: u64) -> (Network, Sim<Network>) {
    let cfg = EventSwitchConfig {
        n_ports: 3,
        ..Default::default()
    };
    let sw = EventSwitch::new(FrrEvent::new(1, 2), cfg);
    let (mut net, sender, _sink, primary, backup) = diamond(Box::new(sw));
    net.tracer.enabled = true;
    let mut sim: Sim<Network> = Sim::new();
    let plan = FaultPlan::new(fault_seed)
        .link_flap(
            primary,
            FAIL_AT,
            SimDuration::from_millis(1),
            SimDuration::from_millis(3),
            2,
        )
        .link_model(backup, LinkFaultModel::loss(0.05))
        .switch_stall(1, SimTime::from_millis(6), SimTime::from_micros(6_200));
    plan.apply(&mut net, &mut sim);
    cbr(&mut sim, sender, PKTS);
    (net, sim)
}

#[test]
fn fault_diamond_is_shard_invariant() {
    let nets = assert_invariant(
        || build_fault_diamond(11),
        |nets| {
            (
                sum_u64(nets, |n| n.hosts[1].stats.rx_pkts),
                sum_u64(nets, |n| n.hosts[1].stats.rx_bytes),
                sum_u64(nets, |n| {
                    n.switch_as::<EventSwitch<FrrEvent>>(0)
                        .program
                        .stats
                        .reroutes
                }),
                sum_u64(nets, |n| {
                    n.switch_as::<EventSwitch<FrrEvent>>(0)
                        .counters()
                        .link_transitions
                }),
                sum_u64(nets, |n| n.link_dir_state(2, Dir::AtoB).fault_drops),
                sum_u64(nets, |n| n.link_dir_state(2, Dir::AtoB).tx_frames),
            )
        },
        DEADLINE,
    );
    // Faults actually fired (same sanity bar as the classic suite).
    let rx = sum_u64(&nets, |n| n.hosts[1].stats.rx_pkts);
    assert!(
        rx > 0 && rx < PKTS,
        "flap+loss should cost packets, rx={rx}"
    );
    assert!(
        sum_u64(&nets, |n| n.link_dir_state(2, Dir::AtoB).fault_drops) > 0,
        "lossy backup dropped nothing"
    );
}

#[test]
fn fault_seed_changes_the_sharded_run_too() {
    let obs = |nets: &[Network]| {
        (
            sum_u64(nets, |n| n.hosts[1].stats.rx_pkts),
            sum_u64(nets, |n| n.link_dir_state(2, Dir::AtoB).fault_drops),
        )
    };
    let (a, _, _) = run_shards(2, DEADLINE, || build_fault_diamond(11));
    let (b, _, _) = run_shards(2, DEADLINE, || build_fault_diamond(12));
    assert_ne!(obs(&a), obs(&b), "fault seed must change sharded outcomes");
}

// ---------------------------------------------------------------------
// 3. Baseline FRR: control-plane reroute crossing shards
// ---------------------------------------------------------------------

#[test]
fn frr_baseline_reconvergence_is_shard_invariant() {
    let build = || {
        let sw = BaselineSwitch::new(FrrBaseline::new(1), 3, QueueConfig::default());
        let (mut net, sender, _sink, primary, _) = diamond(Box::new(sw));
        let mut sim: Sim<Network> = Sim::new();
        net.schedule_link_failure(&mut sim, primary, FAIL_AT, None);
        let cp_delay = SimDuration::from_micros(2000);
        sim.schedule_at(FAIL_AT, move |w: &mut Network, s: &mut Sim<Network>| {
            w.control_plane_send(s, cp_delay, 0, CP_OP_SET_ROUTE, [2, 0, 0, 0]);
        });
        cbr(&mut sim, sender, PKTS);
        (net, sim)
    };
    let nets = assert_invariant(
        build,
        |nets| {
            let rec = nets
                .iter()
                .find_map(|n| {
                    n.switch_as::<BaselineSwitch<FrrBaseline>>(0)
                        .program
                        .stats
                        .reconvergence(FAIL_AT)
                })
                .expect("failed over");
            (rec, sum_u64(nets, |n| n.hosts[1].stats.rx_pkts))
        },
        DEADLINE,
    );
    let rec = nets
        .iter()
        .find_map(|n| {
            n.switch_as::<BaselineSwitch<FrrBaseline>>(0)
                .program
                .stats
                .reconvergence(FAIL_AT)
        })
        .expect("failed over");
    assert_eq!(rec, SimDuration::from_micros(2000));
}

// ---------------------------------------------------------------------
// 4. Event FRR: zero-reconvergence reroute
// ---------------------------------------------------------------------

#[test]
fn frr_event_zero_reconvergence_is_shard_invariant() {
    let build = || {
        let cfg = EventSwitchConfig {
            n_ports: 3,
            ..Default::default()
        };
        let sw = EventSwitch::new(FrrEvent::new(1, 2), cfg);
        let (mut net, sender, _sink, primary, _) = diamond(Box::new(sw));
        let mut sim: Sim<Network> = Sim::new();
        let plan = FaultPlan::new(9).link_down_at(primary, FAIL_AT, None);
        plan.apply(&mut net, &mut sim);
        cbr(&mut sim, sender, PKTS);
        (net, sim)
    };
    let nets = assert_invariant(
        build,
        |nets| {
            let rec = nets.iter().find_map(|n| {
                n.switch_as::<EventSwitch<FrrEvent>>(0)
                    .program
                    .stats
                    .reconvergence(FAIL_AT)
            });
            (rec, sum_u64(nets, |n| n.hosts[1].stats.rx_pkts))
        },
        DEADLINE,
    );
    let lost = PKTS - sum_u64(&nets, |n| n.hosts[1].stats.rx_pkts);
    assert!(lost <= 2, "event FRR lost {lost}");
}

// ---------------------------------------------------------------------
// 5. Liveness detection over a cross-shard probe link
// ---------------------------------------------------------------------

#[test]
fn liveness_detection_is_shard_invariant() {
    let timeout = SimDuration::from_millis(3);
    let period = SimDuration::from_millis(1);
    let kill_at = SimTime::from_millis(20);
    let build = move || {
        let mut net = Network::new(31);
        let mon_cfg = EventSwitchConfig {
            n_ports: 2,
            timers: vec![
                TimerSpec {
                    id: TIMER_PROBE,
                    period,
                    start: period,
                },
                TimerSpec {
                    id: TIMER_CHECK,
                    period,
                    start: period,
                },
            ],
            switch_id: 1,
            ..Default::default()
        };
        let monitor = LivenessMonitor::new(
            addr(1),
            vec![Neighbor {
                port: 1,
                addr: addr(2),
            }],
            timeout.as_nanos(),
        );
        let m = net.add_switch(Box::new(EventSwitch::new(monitor, mon_cfg)));
        let refl_cfg = EventSwitchConfig {
            n_ports: 2,
            switch_id: 2,
            ..Default::default()
        };
        let r = net.add_switch(Box::new(EventSwitch::new(
            LivenessReflector::new(),
            refl_cfg,
        )));
        let probe_link = net.connect(
            (NodeRef::Switch(m), 1),
            (NodeRef::Switch(r), 0),
            LinkSpec::ten_gig(SimDuration::from_micros(5)),
        );
        let h = net.add_host(Host::new(addr(100), HostApp::Sink));
        net.connect(
            (NodeRef::Host(h), 0),
            (NodeRef::Switch(m), 0),
            LinkSpec::ten_gig(SimDuration::from_micros(1)),
        );
        let mut sim: Sim<Network> = Sim::new();
        let plan = FaultPlan::new(3).link_down_at(probe_link, kill_at, None);
        plan.apply(&mut net, &mut sim);
        (net, sim)
    };
    let nets = assert_invariant(
        build,
        |nets| {
            let dead_at = nets
                .iter()
                .find_map(|n| {
                    n.switch_as::<EventSwitch<LivenessMonitor>>(0)
                        .program
                        .declared_dead_at(0)
                })
                .expect("detected");
            (
                dead_at,
                sum_u64(nets, |n| {
                    n.switch_as::<EventSwitch<LivenessMonitor>>(0)
                        .counters()
                        .link_transitions
                }),
                sum_u64(nets, |n| {
                    n.switch_as::<EventSwitch<LivenessMonitor>>(0)
                        .counters()
                        .dropped_link_down
                }),
            )
        },
        SimTime::from_millis(40),
    );
    let dead_at = nets
        .iter()
        .find_map(|n| {
            n.switch_as::<EventSwitch<LivenessMonitor>>(0)
                .program
                .declared_dead_at(0)
        })
        .expect("detected");
    assert!(
        dead_at >= kill_at + timeout - period,
        "declared at {dead_at}"
    );
}

// ---------------------------------------------------------------------
// 6–9. Impairment models on a trunk that crosses shards
// ---------------------------------------------------------------------

#[test]
fn loss_model_is_shard_invariant() {
    let build = || {
        let (net, h0, _h1, _trunk) = two_switch_line(Some(LinkFaultModel::loss(0.3)), 5);
        let mut sim: Sim<Network> = Sim::new();
        line_cbr(&mut sim, h0, PKTS, 125);
        (net, sim)
    };
    let nets = assert_invariant(
        build,
        |nets| {
            (
                sum_u64(nets, |n| n.hosts[1].stats.rx_pkts),
                sum_u64(nets, |n| n.link_dir_state(1, Dir::AtoB).fault_drops),
            )
        },
        DEADLINE,
    );
    let rx = sum_u64(&nets, |n| n.hosts[1].stats.rx_pkts);
    let drops = sum_u64(&nets, |n| n.link_dir_state(1, Dir::AtoB).fault_drops);
    assert_eq!(rx + drops, PKTS, "every frame delivered or counted");
    assert!((200..=400).contains(&drops), "p=0.3 dropped {drops}");
}

#[test]
fn corrupt_model_is_shard_invariant() {
    let n = 200u64;
    let build = move || {
        let model = LinkFaultModel {
            corrupt_prob: 1.0,
            ..Default::default()
        };
        let (net, h0, _h1, _trunk) = two_switch_line(Some(model), 5);
        let mut sim: Sim<Network> = Sim::new();
        line_cbr(&mut sim, h0, n, 100);
        (net, sim)
    };
    let nets = assert_invariant(
        build,
        |nets| {
            (
                sum_u64(nets, |n| n.hosts[1].stats.rx_pkts),
                sum_u64(nets, |n| n.link_dir_state(1, Dir::AtoB).corrupted),
                sum_u64(nets, |n| {
                    n.switch_as::<BaselineSwitch<ForwardTo>>(1)
                        .counters()
                        .parse_errors
                }),
            )
        },
        DEADLINE,
    );
    let corrupted = sum_u64(&nets, |n| n.link_dir_state(1, Dir::AtoB).corrupted);
    assert_eq!(corrupted, n, "p=1 corrupts every trunk frame");
    let rx = sum_u64(&nets, |n| n.hosts[1].stats.rx_pkts);
    let parse_errors = sum_u64(&nets, |n| {
        n.switch_as::<BaselineSwitch<ForwardTo>>(1)
            .counters()
            .parse_errors
    });
    assert_eq!(
        rx + parse_errors,
        n,
        "every corrupt frame dropped or forwarded"
    );
}

#[test]
fn duplicate_model_is_shard_invariant() {
    let n = 50u64;
    let build = move || {
        let model = LinkFaultModel {
            duplicate_prob: 1.0,
            ..Default::default()
        };
        let (net, h0, _h1, _trunk) = two_switch_line(Some(model), 5);
        let mut sim: Sim<Network> = Sim::new();
        line_cbr(&mut sim, h0, n, 125);
        (net, sim)
    };
    let nets = assert_invariant(
        build,
        |nets| {
            (
                sum_u64(nets, |n| n.hosts[1].stats.rx_pkts),
                sum_u64(nets, |n| n.link_dir_state(1, Dir::AtoB).duplicated),
            )
        },
        DEADLINE,
    );
    assert_eq!(
        sum_u64(&nets, |n| n.hosts[1].stats.rx_pkts),
        2 * n,
        "original + copy each"
    );
}

#[test]
fn reorder_model_is_shard_invariant() {
    let build = || {
        let model = LinkFaultModel {
            reorder_prob: 1.0,
            reorder_delay: SimDuration::from_micros(50),
            ..Default::default()
        };
        let (net, h0, _h1, _trunk) = two_switch_line(Some(model), 5);
        let mut sim: Sim<Network> = Sim::new();
        let f = PacketBuilder::udp(addr(1), addr(9), 1, 2, &[])
            .pad_to(125)
            .build();
        sim.schedule_at(
            SimTime::ZERO,
            move |w: &mut Network, s: &mut Sim<Network>| {
                w.host_send(s, h0, f.clone());
            },
        );
        (net, sim)
    };
    let nets = assert_invariant(
        build,
        |nets| {
            let mean = nets
                .iter()
                .flat_map(|n| n.hosts[1].stats.flows.values())
                .map(|fs| fs.latency_ns.mean() as u64)
                .max()
                .unwrap_or(0);
            (
                sum_u64(nets, |n| n.link_dir_state(1, Dir::AtoB).reordered),
                sum_u64(nets, |n| n.hosts[1].stats.rx_pkts),
                mean,
            )
        },
        SimTime::from_millis(1),
    );
    assert_eq!(
        sum_u64(&nets, |n| n.link_dir_state(1, Dir::AtoB).reordered),
        1
    );
    // End-to-end latency survives the shard crossing: 3 hops of
    // 1.1 us (ser 0.1 + prop 1) plus the 50 us hold-back on the trunk.
    let mean = nets
        .iter()
        .flat_map(|n| n.hosts[1].stats.flows.values())
        .map(|fs| fs.latency_ns.mean())
        .fold(0.0f64, f64::max);
    assert_eq!(mean, 53_300.0);
}

// ---------------------------------------------------------------------
// 10. Switch stalls and tracer annotations across the boundary
// ---------------------------------------------------------------------

#[test]
fn stalled_switch_is_shard_invariant() {
    let build = || {
        let (mut net, h0, _h1, _trunk) = two_switch_line(None, 0);
        let mut sim: Sim<Network> = Sim::new();
        // Stall the *downstream* switch: frames arrive over the trunk
        // while it is stalled, so the hold-and-release logic runs on the
        // far side of the shard boundary.
        let plan =
            FaultPlan::new(1).switch_stall(1, SimTime::from_micros(10), SimTime::from_micros(100));
        plan.apply(&mut net, &mut sim);
        for t in [0u64, 20] {
            let f = PacketBuilder::udp(addr(1), addr(9), 1, 2, &[])
                .pad_to(125)
                .build();
            sim.schedule_at(
                SimTime::from_micros(t),
                move |w: &mut Network, s: &mut Sim<Network>| w.host_send(s, h0, f.clone()),
            );
        }
        (net, sim)
    };
    let nets = assert_invariant(
        build,
        |nets| {
            let (mut lo, mut hi) = (0u64, 0u64);
            for n in nets {
                for fs in n.hosts[1].stats.flows.values() {
                    lo = fs.latency_ns.min() as u64;
                    hi = fs.latency_ns.max() as u64;
                }
            }
            (sum_u64(nets, |n| n.hosts[1].stats.rx_pkts), lo, hi)
        },
        SimTime::from_millis(1),
    );
    assert_eq!(
        sum_u64(&nets, |n| n.hosts[1].stats.rx_pkts),
        2,
        "stall delays, never drops"
    );
}

#[test]
fn tracer_merge_annotates_link_down_up_in_order() {
    let build = || {
        let (mut net, h0, _h1, trunk) = two_switch_line(None, 0);
        net.tracer.enabled = true;
        let mut sim: Sim<Network> = Sim::new();
        let plan = FaultPlan::new(1).link_down_at(
            trunk,
            SimTime::from_micros(10),
            Some(SimTime::from_micros(50)),
        );
        plan.apply(&mut net, &mut sim);
        for t in [0u64, 20, 60] {
            let f = PacketBuilder::udp(addr(1), addr(9), 1, 2, &[])
                .pad_to(125)
                .build();
            sim.schedule_at(
                SimTime::from_micros(t),
                move |w: &mut Network, s: &mut Sim<Network>| w.host_send(s, h0, f.clone()),
            );
        }
        (net, sim)
    };
    let nets = assert_invariant(
        build,
        |nets| sum_u64(nets, |n| n.hosts[1].stats.rx_pkts),
        SimTime::from_millis(1),
    );
    assert_eq!(sum_u64(&nets, |n| n.hosts[1].stats.rx_pkts), 2);
    let (_, trace, _) = run_shards(4, SimTime::from_millis(1), build);
    let down = trace.find("link1 down").expect("down note");
    let up = trace.find("link1 up").expect("up note");
    assert!(down < up, "down precedes up:\n{trace}");
    // The dead trunk carried nothing: sw0 still receives from its live
    // host link, but nothing reaches sw1 (or h1 behind it) while down.
    let between = &trace[down..up];
    assert!(
        !between.contains("sw1:p0 rx") && !between.contains("host1 rx"),
        "delivery across the dead trunk:\n{trace}"
    );
}

// ---------------------------------------------------------------------
// PR 9: the wall-clock profiler is outside the determinism boundary
// ---------------------------------------------------------------------

/// Like [`run_shards`], but with a profiling session on every shard
/// worker (shared epoch, enabled in the build closure on the shard's
/// own thread). Returns the canonical outputs plus each shard's
/// profile, in shard order.
fn run_shards_profiled<B>(
    shards: usize,
    deadline: SimTime,
    build: B,
) -> (String, String, Vec<edp_telemetry::prof::Profile>)
where
    B: Fn() -> (Network, Sim<Network>) + Sync,
{
    use edp_telemetry::prof;
    let epoch = std::time::Instant::now();
    let (pairs, _stats) = run_sharded_opts(
        shards,
        1,
        HorizonMode::Classic,
        deadline,
        |s| {
            prof::enable(epoch, s, shards);
            build()
        },
        |_s, net, _sim| (net, prof::disable().expect("profiling enabled in build")),
    );
    let (nets, profiles): (Vec<Network>, Vec<prof::Profile>) = pairs.into_iter().unzip();
    let tracers: Vec<&Tracer> = nets.iter().map(|n| &n.tracer).collect();
    let trace = merge_tracers(&tracers);
    let mut reg = Registry::new();
    for net in &nets {
        let mut part = Registry::new();
        net.publish_metrics(&mut part);
        reg.merge(&part);
    }
    (trace, edp_telemetry::to_json(&reg), profiles)
}

/// Profiling a sharded run must not move a byte of the canonical merged
/// trace or metrics JSON — and the profiles themselves must satisfy the
/// acceptance bar: >= 95% of each worker's wall-clock attributed to
/// named phases (the lap model actually guarantees 100%), with the
/// cross-shard message matrix populated where the trunk was cut.
#[test]
fn profiling_is_outside_the_determinism_boundary() {
    use edp_telemetry::prof;
    let build = || {
        let (mut net, h0, _h1, _trunk) = two_switch_line(None, 0);
        net.tracer.enabled = true;
        let mut sim: Sim<Network> = Sim::new();
        line_cbr(&mut sim, h0, 200, 300);
        (net, sim)
    };
    let deadline = SimTime::from_millis(5);
    let (_, base_trace, base_json) = run_shards(2, deadline, build);
    let (trace, json, profiles) = run_shards_profiled(2, deadline, build);
    assert_eq!(base_trace, trace, "profiling changed the merged trace");
    assert_eq!(base_json, json, "profiling changed the metrics JSON");
    assert_eq!(profiles.len(), 2, "one profile per shard");
    let mut crossed = 0u64;
    for (shard, p) in profiles.iter().enumerate() {
        assert_eq!(p.shard, shard, "profiles arrive in shard order");
        // The ISSUE acceptance criterion, stated as the pin: >= 95% of
        // the worker's wall-clock span attributed to named phases.
        assert!(
            p.attributed_ns() * 100 >= p.total_ns * 95,
            "shard {shard}: only {}/{} ns attributed",
            p.attributed_ns(),
            p.total_ns
        );
        assert!(
            p.phase_ns[prof::Phase::Negotiate.index()] > 0,
            "shard {shard}: a windowed run must have negotiated"
        );
        crossed += p.msgs_to.iter().sum::<u64>();
    }
    assert!(
        crossed > 0,
        "the cut trunk must populate the message matrix"
    );
}
