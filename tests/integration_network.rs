//! Cross-crate network-substrate checks: multi-hop forwarding with real
//! byte-level packets, latency accounting, fault injection, and mixed
//! baseline/event topologies.

use edp_core::{EventActions, EventProgram, EventSwitch, EventSwitchConfig};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::start_cbr;
use edp_netsim::{Host, HostApp, LinkSpec, Network, NodeRef};
use edp_packet::{Packet, PacketBuilder, ParsedPacket};
use edp_pisa::{BaselineSwitch, Destination, PisaProgram, QueueConfig, StdMeta};
use std::net::Ipv4Addr;

fn a(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, n)
}

/// Forwards by destination address parity of the last octet: odd → port
/// 0 side, even → port 1 side. Enough routing for a line of switches.
struct UpDown;
impl PisaProgram for UpDown {
    fn ingress(&mut self, _p: &mut Packet, h: &ParsedPacket, m: &mut StdMeta, _n: SimTime) {
        let Some(ip) = h.ipv4 else {
            m.dest = Destination::Drop;
            return;
        };
        m.dest = Destination::Port(if ip.dst.octets()[3] <= 1 { 0 } else { 1 });
    }
}

struct UpDownEvent;
impl EventProgram for UpDownEvent {
    fn on_ingress(
        &mut self,
        _p: &mut Packet,
        h: &ParsedPacket,
        m: &mut StdMeta,
        _n: SimTime,
        _a: &mut EventActions,
    ) {
        let Some(ip) = h.ipv4 else {
            m.dest = Destination::Drop;
            return;
        };
        m.dest = Destination::Port(if ip.dst.octets()[3] <= 1 { 0 } else { 1 });
    }
}

/// h1 — baseline — event — baseline — h2 (a 3-switch line, mixed).
fn line() -> (Network, usize, usize) {
    let mut net = Network::new(8);
    let s0 = net.add_switch(Box::new(BaselineSwitch::new(
        UpDown,
        2,
        QueueConfig::default(),
    )));
    let s1 = net.add_switch(Box::new(EventSwitch::new(
        UpDownEvent,
        EventSwitchConfig {
            n_ports: 2,
            ..Default::default()
        },
    )));
    let s2 = net.add_switch(Box::new(BaselineSwitch::new(
        UpDown,
        2,
        QueueConfig::default(),
    )));
    let h1 = net.add_host(Host::new(a(1), HostApp::Sink));
    let h2 = net.add_host(Host::new(a(2), HostApp::Sink));
    let spec = LinkSpec::ten_gig(SimDuration::from_micros(1));
    net.connect((NodeRef::Host(h1), 0), (NodeRef::Switch(s0), 0), spec);
    net.connect((NodeRef::Switch(s0), 1), (NodeRef::Switch(s1), 0), spec);
    net.connect((NodeRef::Switch(s1), 1), (NodeRef::Switch(s2), 0), spec);
    net.connect((NodeRef::Switch(s2), 1), (NodeRef::Host(h2), 0), spec);
    (net, h1, h2)
}

#[test]
fn multi_hop_mixed_architectures_forward_both_ways() {
    let (mut net, h1, h2) = line();
    let mut sim: Sim<Network> = Sim::new();
    start_cbr(
        &mut sim,
        h1,
        SimTime::ZERO,
        SimDuration::from_micros(10),
        50,
        move |i| {
            PacketBuilder::udp(a(1), a(2), 100, 200, &[])
                .ident(i as u16)
                .pad_to(500)
                .build()
        },
    );
    start_cbr(
        &mut sim,
        h2,
        SimTime::ZERO,
        SimDuration::from_micros(10),
        50,
        move |i| {
            PacketBuilder::udp(a(2), a(1), 300, 400, &[])
                .ident(i as u16)
                .pad_to(500)
                .build()
        },
    );
    sim.run(&mut net);
    assert_eq!(net.hosts[h2].stats.rx_pkts, 50);
    assert_eq!(net.hosts[h1].stats.rx_pkts, 50);
    // Event switch in the middle saw traffic in both directions.
    let mid = net.switch_as::<EventSwitch<UpDownEvent>>(1);
    assert_eq!(mid.counters().rx, 100);
    assert_eq!(mid.counters().tx, 100);
}

#[test]
fn latency_is_sum_of_hops() {
    let (mut net, h1, h2) = line();
    let mut sim: Sim<Network> = Sim::new();
    let f = PacketBuilder::udp(a(1), a(2), 1, 2, &[])
        .pad_to(1250)
        .build();
    sim.schedule_at(
        SimTime::ZERO,
        move |w: &mut Network, s: &mut Sim<Network>| {
            w.host_send(s, h1, f.clone());
        },
    );
    sim.run(&mut net);
    let fs = net.hosts[h2].stats.flows.values().next().expect("flow");
    // 4 links × (1 us ser for 1250 B at 10G + 1 us prop) = 8 us exactly.
    assert_eq!(fs.latency_ns.mean(), 8_000.0);
}

#[test]
fn fault_injection_loses_roughly_the_configured_fraction() {
    let mut net = Network::new(99);
    let h1 = net.add_host(Host::new(a(1), HostApp::Sink));
    let h2 = net.add_host(Host::new(a(2), HostApp::Sink));
    net.connect(
        (NodeRef::Host(h1), 0),
        (NodeRef::Host(h2), 0),
        LinkSpec {
            bandwidth_bps: 10_000_000_000,
            latency: SimDuration::from_micros(1),
            drop_prob: 0.2,
        },
    );
    let mut sim: Sim<Network> = Sim::new();
    start_cbr(
        &mut sim,
        h1,
        SimTime::ZERO,
        SimDuration::from_micros(5),
        2000,
        move |i| {
            PacketBuilder::udp(a(1), a(2), 1, 2, &[])
                .ident(i as u16)
                .build()
        },
    );
    sim.run(&mut net);
    let got = net.hosts[h2].stats.rx_pkts;
    assert!(
        (1500..1700).contains(&got),
        "20% drop_prob delivered {got}/2000"
    );
    let (fault_drops, _) = net.link_drops(0);
    assert_eq!(fault_drops + got, 2000);
}

#[test]
fn tracer_captures_deliveries() {
    let (mut net, h1, _h2) = line();
    net.tracer.enabled = true;
    let mut sim: Sim<Network> = Sim::new();
    start_cbr(
        &mut sim,
        h1,
        SimTime::ZERO,
        SimDuration::from_micros(10),
        3,
        move |i| {
            PacketBuilder::udp(a(1), a(2), 100, 200, &[])
                .ident(i as u16)
                .pad_to(500)
                .build()
        },
    );
    sim.run(&mut net);
    // 3 packets × 4 hops (sw0, sw1, sw2, host) = 12 deliveries.
    assert_eq!(net.tracer.len(), 12);
    let rendered = net.tracer.render();
    assert!(
        rendered.contains("10.0.0.1:100 > 10.0.0.2:200 UDP 500B"),
        "{rendered}"
    );
    assert!(rendered.contains("host1"), "{rendered}");
    assert!(rendered.contains("sw1:p0"), "{rendered}");
}

#[test]
fn queue_overflow_under_severe_congestion() {
    // 10G in, 10M out: the switch queue must overflow and count drops.
    let mut net = Network::new(13);
    let s0 = net.add_switch(Box::new(BaselineSwitch::new(
        UpDown,
        2,
        QueueConfig {
            capacity_bytes: 10_000,
            ..QueueConfig::default()
        },
    )));
    let h1 = net.add_host(Host::new(a(1), HostApp::Sink));
    let h2 = net.add_host(Host::new(a(2), HostApp::Sink));
    net.connect(
        (NodeRef::Host(h1), 0),
        (NodeRef::Switch(s0), 0),
        LinkSpec::ten_gig(SimDuration::from_micros(1)),
    );
    net.connect(
        (NodeRef::Switch(s0), 1),
        (NodeRef::Host(h2), 0),
        LinkSpec {
            bandwidth_bps: 10_000_000,
            latency: SimDuration::from_micros(1),
            drop_prob: 0.0,
        },
    );
    let mut sim: Sim<Network> = Sim::new();
    start_cbr(
        &mut sim,
        h1,
        SimTime::ZERO,
        SimDuration::from_micros(2),
        500,
        move |i| {
            PacketBuilder::udp(a(1), a(2), 1, 2, &[])
                .ident(i as u16)
                .pad_to(1000)
                .build()
        },
    );
    sim.run_until(&mut net, SimTime::from_millis(500));
    let sw = net.switch_as::<BaselineSwitch<UpDown>>(0);
    let c = sw.counters();
    assert!(
        c.dropped_overflow > 100,
        "overflow drops {}",
        c.dropped_overflow
    );
    assert_eq!(
        c.rx,
        c.tx + c.dropped_overflow,
        "every packet either forwarded or dropped"
    );
    assert_eq!(net.hosts[h2].stats.rx_pkts, c.tx);
}
