//! Endpoint model end-to-end: a client fleet against the RPC server over
//! an impaired wire. Timeout-driven retransmit reacts to injected drops,
//! heavy loss makes endpoints give up, reorder past the timeout produces
//! spurious retransmits whose stale responses are ignored — and every
//! one of those outcomes is byte-identical between the classic engine
//! and `run_sharded_opts` at 2/4 shards crossed with burst 1/32.

use edp_evsim::{HorizonMode, Sim, SimDuration, SimTime};
use edp_netsim::{
    run_sharded_opts, start_endpoints, EndpointConfig, EndpointFleet, FaultPlan, FleetStats, Host,
    HostApp, LinkFaultModel, LinkSpec, Network, NodeRef,
};
use std::net::Ipv4Addr;

fn a(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, n)
}

/// Pacer stop time; the run deadline leaves room for in-flight timeouts.
const UNTIL: SimTime = SimTime::from_millis(4);
const DEADLINE: SimTime = SimTime::from_millis(5);
const ENDPOINTS: u32 = 30;

fn cfg(seed: u64) -> EndpointConfig {
    EndpointConfig {
        endpoints: ENDPOINTS,
        seed,
        server: a(2),
        keys: 512,
        zipf_s: 1.0,
        think_mean_ns: 50_000.0,
        timeout: SimDuration::from_micros(40),
        max_retries: 3,
    }
}

/// Fleet host (id 0) — server host (id 1), direct 10G wire, optional
/// impairment model on the wire, pacer armed. The same closure body
/// serves as the `run_sharded_opts` build function.
fn build(seed: u64, model: Option<LinkFaultModel>) -> (Network, Sim<Network>) {
    let mut net = Network::new(seed);
    let fleet = EndpointFleet::new(a(1), cfg(seed));
    let h0 = net.add_host(Host::new(a(1), HostApp::ClientFleet(Box::new(fleet))));
    let h1 = net.add_host(Host::new(a(2), HostApp::RpcServer { served: 0 }));
    let link = net.connect(
        (NodeRef::Host(h0), 0),
        (NodeRef::Host(h1), 0),
        LinkSpec::ten_gig(SimDuration::from_micros(2)),
    );
    let mut sim: Sim<Network> = Sim::new();
    if let Some(m) = model {
        FaultPlan::new(seed)
            .link_model(link, m)
            .apply(&mut net, &mut sim);
    }
    start_endpoints(
        &mut sim,
        h0,
        SimTime::ZERO,
        SimDuration::from_micros(10),
        UNTIL,
    );
    (net, sim)
}

/// Fleet stats and server `served` count, but only from the world (or
/// shard) that owns each host — exactly how the telemetry layer sums.
fn harvest(net: &Network) -> (Option<FleetStats>, Option<u64>) {
    let fleet = if net.owns_node(NodeRef::Host(0)) {
        match &net.hosts[0].app {
            HostApp::ClientFleet(f) => Some(f.stats.clone()),
            _ => unreachable!(),
        }
    } else {
        None
    };
    let served = if net.owns_node(NodeRef::Host(1)) {
        match &net.hosts[1].app {
            HostApp::RpcServer { served } => Some(*served),
            _ => unreachable!(),
        }
    } else {
        None
    };
    (fleet, served)
}

fn run_classic(seed: u64, model: Option<LinkFaultModel>) -> (FleetStats, u64) {
    let (mut net, mut sim) = build(seed, model);
    sim.run_until(&mut net, DEADLINE);
    let (fleet, served) = harvest(&net);
    (
        fleet.expect("classic world owns all"),
        served.expect("owned"),
    )
}

fn run_sharded(
    seed: u64,
    model: Option<LinkFaultModel>,
    shards: usize,
    burst: usize,
) -> (FleetStats, u64) {
    let (results, _) = run_sharded_opts(
        shards,
        burst,
        HorizonMode::Classic,
        DEADLINE,
        |_shard| build(seed, model),
        |_shard, net, _sim| harvest(&net),
    );
    let fleet = results.iter().filter_map(|(f, _)| f.clone()).next();
    let served = results.iter().filter_map(|(_, s)| *s).next();
    (
        fleet.expect("one shard owns the fleet"),
        served.expect("one shard owns the server"),
    )
}

fn assert_invariants(st: &FleetStats, served: u64) {
    assert_eq!(st.responses, st.rtt_samples, "{st:?}");
    assert!(st.connected <= st.connects_sent, "{st:?}");
    // The server answers exactly the frames that reached it.
    assert!(
        served <= st.connects_sent + st.requests + st.retransmits,
        "{st:?} served={served}"
    );
}

#[test]
fn clean_wire_needs_no_retransmits() {
    let (st, served) = run_classic(11, None);
    assert_eq!(st.connected, u64::from(ENDPOINTS), "{st:?}");
    assert_eq!(st.retransmits, 0, "{st:?}");
    assert_eq!(st.gave_up, 0, "{st:?}");
    assert!(st.responses > 0, "{st:?}");
    assert_invariants(&st, served);
}

#[test]
fn drop_faults_trigger_retransmits() {
    let (st, served) = run_classic(12, Some(LinkFaultModel::loss(0.05)));
    assert!(st.retransmits > 0, "5% loss must cost retransmits: {st:?}");
    assert!(st.connected > 0, "{st:?}");
    assert!(st.responses > 0, "the loop still makes progress: {st:?}");
    assert_invariants(&st, served);
}

#[test]
fn heavy_loss_makes_endpoints_give_up() {
    let (st, served) = run_classic(13, Some(LinkFaultModel::loss(0.9)));
    assert!(st.gave_up > 0, "90% loss must exhaust retries: {st:?}");
    assert!(st.retransmits > 0, "{st:?}");
    assert_invariants(&st, served);
}

#[test]
fn reorder_past_timeout_causes_spurious_retransmits() {
    let model = LinkFaultModel {
        reorder_prob: 0.3,
        reorder_delay: SimDuration::from_micros(100),
        ..Default::default()
    };
    let (st, served) = run_classic(14, Some(model));
    // A 100 µs detour past the 40 µs timeout forces retransmits even
    // though nothing is lost; the late originals' responses arrive as
    // stale (seq-mismatched) and are dropped by the state machine.
    assert!(st.retransmits > 0, "{st:?}");
    assert!(st.responses > 0, "{st:?}");
    assert_invariants(&st, served);
}

/// The acceptance pin: under combined drop + reorder impairment, the
/// fleet's statistics and the server's count are identical between the
/// classic engine and every sharded execution mode.
#[test]
fn stats_identical_classic_vs_sharded_under_faults() {
    let model = LinkFaultModel {
        drop_prob: 0.05,
        reorder_prob: 0.2,
        reorder_delay: SimDuration::from_micros(100),
        ..Default::default()
    };
    for seed in [21u64, 22] {
        let classic = run_classic(seed, Some(model));
        assert!(
            classic.0.retransmits > 0,
            "impairment bites: {:?}",
            classic.0
        );
        for shards in [2usize, 4] {
            for burst in [1usize, 32] {
                let sharded = run_sharded(seed, Some(model), shards, burst);
                assert_eq!(
                    classic, sharded,
                    "seed {seed}: {shards} shards x burst {burst} diverged"
                );
            }
        }
    }
}
