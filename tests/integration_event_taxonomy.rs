//! T1 (Table 1): every one of the thirteen data-plane events can fire and
//! be handled in one SUME Event Switch run.

use edp_core::event::*;
use edp_core::{
    EventActions, EventKind, EventProgram, EventSwitch, EventSwitchConfig, PacketGenConfig,
    TimerSpec,
};
use edp_evsim::{SimDuration, SimTime};
use edp_packet::{Packet, PacketBuilder, ParsedPacket};
use edp_pisa::{Destination, QueueConfig, StdMeta};
use std::net::Ipv4Addr;

/// A program that touches every handler and records which ran.
#[derive(Default)]
struct FullCoverage {
    handled: std::collections::BTreeSet<&'static str>,
    recirculated_once: bool,
}

impl EventProgram for FullCoverage {
    fn on_ingress(
        &mut self,
        _p: &mut Packet,
        _h: &ParsedPacket,
        meta: &mut StdMeta,
        _n: SimTime,
        a: &mut EventActions,
    ) {
        self.handled.insert("ingress");
        // First packet recirculates once to produce the recirc event.
        if !self.recirculated_once && meta.recirc_count == 0 {
            meta.dest = Destination::Recirculate;
        } else {
            meta.dest = Destination::Port(1);
        }
        if !a.is_empty() {
            unreachable!("fresh actions");
        }
    }
    fn on_recirculated(
        &mut self,
        _p: &mut Packet,
        _h: &ParsedPacket,
        meta: &mut StdMeta,
        _n: SimTime,
        _a: &mut EventActions,
    ) {
        self.handled.insert("recirculated");
        self.recirculated_once = true;
        meta.dest = Destination::Port(1);
    }
    fn on_generated(
        &mut self,
        _p: &mut Packet,
        _h: &ParsedPacket,
        meta: &mut StdMeta,
        _n: SimTime,
        _a: &mut EventActions,
    ) {
        self.handled.insert("generated");
        meta.dest = Destination::Port(1);
    }
    fn on_egress(
        &mut self,
        _p: &mut Packet,
        _h: &ParsedPacket,
        _m: &mut StdMeta,
        _n: SimTime,
        _a: &mut EventActions,
    ) {
        self.handled.insert("egress");
    }
    fn on_enqueue(&mut self, _e: &EnqueueEvent, _n: SimTime, a: &mut EventActions) {
        self.handled.insert("enqueue");
        // Raise a user event from a handler — the UserEvent path.
        if !self.handled.contains("user-raised") {
            self.handled.insert("user-raised");
            a.raise_user_event(99, [1, 2, 3, 4]);
        }
    }
    fn on_dequeue(&mut self, _e: &DequeueEvent, _n: SimTime, _a: &mut EventActions) {
        self.handled.insert("dequeue");
    }
    fn on_overflow(&mut self, _e: &OverflowEvent, _n: SimTime, _a: &mut EventActions) {
        self.handled.insert("overflow");
    }
    fn on_underflow(&mut self, _e: &UnderflowEvent, _n: SimTime, _a: &mut EventActions) {
        self.handled.insert("underflow");
    }
    fn on_timer(&mut self, _e: &TimerEvent, _n: SimTime, _a: &mut EventActions) {
        self.handled.insert("timer");
    }
    fn on_control_plane(&mut self, _e: &ControlPlaneEvent, _n: SimTime, _a: &mut EventActions) {
        self.handled.insert("control-plane");
    }
    fn on_link_status(&mut self, _e: &LinkStatusEvent, _n: SimTime, _a: &mut EventActions) {
        self.handled.insert("link-status");
    }
    fn on_user(&mut self, e: &UserEvent, _n: SimTime, _a: &mut EventActions) {
        assert_eq!(e.code, 99);
        assert_eq!(e.args, [1, 2, 3, 4]);
        self.handled.insert("user");
    }
    fn on_transmit(&mut self, _e: &TransmitEvent, _n: SimTime, _a: &mut EventActions) {
        self.handled.insert("transmit");
    }
}

fn frame(len: usize) -> Packet {
    Packet::anonymous(
        PacketBuilder::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            5,
            6,
            &[],
        )
        .pad_to(len)
        .build(),
    )
}

#[test]
fn all_thirteen_events_fire_and_are_handled() {
    let cfg = EventSwitchConfig {
        n_ports: 2,
        queue: QueueConfig {
            capacity_bytes: 400,
            ..QueueConfig::default()
        },
        timers: vec![TimerSpec {
            id: 0,
            period: SimDuration::from_micros(10),
            start: SimDuration::from_micros(10),
        }],
        generator: Some(PacketGenConfig {
            period: SimDuration::from_micros(25),
            template: PacketBuilder::udp(
                Ipv4Addr::new(9, 9, 9, 9),
                Ipv4Addr::new(8, 8, 8, 8),
                7,
                8,
                &[],
            )
            .build(),
        }),
        switch_id: 0,
    };
    let mut sw = EventSwitch::new(FullCoverage::default(), cfg);

    // Ingress + recirculation + enqueue (+ user raised from the handler).
    sw.receive(SimTime::from_nanos(100), 0, frame(300));
    // Overflow: the 400-byte queue is full.
    sw.receive(SimTime::from_nanos(200), 0, frame(300));
    // Dequeue + egress + transmit.
    assert!(sw.transmit(SimTime::from_nanos(300), 1).is_some());
    // Underflow: transmit from the now-empty queue... port 0 never had data.
    assert!(sw.transmit(SimTime::from_nanos(400), 0).is_none());
    // Timer + generated packets.
    sw.fire_due_timers(SimTime::from_micros(30));
    // Control plane + link status.
    sw.control_plane(SimTime::from_micros(31), 1, [0; 4]);
    sw.set_link_status(SimTime::from_micros(32), 0, false);

    // Every kind fired at the architecture level…
    let counters = sw.event_counters();
    for kind in EventKind::ALL {
        assert!(
            counters.get(kind) > 0,
            "event kind {:?} never fired (coverage: {:?})",
            kind,
            counters.covered()
        );
    }
    // …and every handler actually ran.
    for h in [
        "ingress",
        "egress",
        "recirculated",
        "generated",
        "enqueue",
        "dequeue",
        "overflow",
        "underflow",
        "timer",
        "control-plane",
        "link-status",
        "user",
        "transmit",
    ] {
        assert!(
            sw.program.handled.contains(h),
            "handler {h} never ran: {:?}",
            sw.program.handled
        );
    }
}

#[test]
fn baseline_supported_kinds_are_exactly_the_packet_events() {
    let baseline: Vec<_> = EventKind::ALL
        .into_iter()
        .filter(|k| k.baseline_supported())
        .collect();
    assert_eq!(baseline.len(), 3);
    assert_eq!(
        EventKind::ALL.len() - baseline.len(),
        10,
        "ten kinds exist only in the event-driven model"
    );
}

#[test]
fn table1_names_match_paper() {
    let names: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
    for expected in [
        "Ingress Packet",
        "Egress Packet",
        "Recirculated Packet",
        "Generated Packet",
        "Packet Transmitted",
        "Buffer Enqueue",
        "Buffer Dequeue",
        "Buffer Overflow",
        "Buffer Underflow",
        "Timer Expiration",
        "Control-Plane Triggered",
        "Link Status Change",
        "User Event",
    ] {
        assert!(names.contains(&expected), "missing Table 1 row: {expected}");
    }
}
