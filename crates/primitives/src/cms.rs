//! Count-min sketch (Cormode & Muthukrishnan, 2005).
//!
//! The paper's running example of state that must be *periodically reset*:
//! on a baseline PISA device the control plane has to clear the counters,
//! while an event-driven device resets from a timer event in the data
//! plane. The sketch itself is the same either way — `edp-apps::cms_reset`
//! compares the two reset paths.

use serde::{Deserialize, Serialize};

/// A count-min sketch over `u64` keys with saturating `u64` counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    rows: Vec<Vec<u64>>,
    /// Row seeds; one independent hash stream per row.
    seeds: Vec<u64>,
    items: u64,
}

impl CountMinSketch {
    /// Creates a sketch with `width` counters per row and `depth` rows.
    ///
    /// Error bound: with probability ≥ 1 − (1/2)^depth, the estimate
    /// overshoots the true count by at most 2·N/width, where N is the total
    /// number of increments.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width > 0 && depth > 0, "degenerate sketch {width}x{depth}");
        CountMinSketch {
            width,
            depth,
            rows: vec![vec![0; width]; depth],
            seeds: (0..depth as u64)
                .map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1) ^ 0xD6E8_FEB8_6659_FD93)
                .collect(),
            items: 0,
        }
    }

    fn bucket(&self, row: usize, key: u64) -> usize {
        // SplitMix-style finalizer keyed by the row seed: cheap, uniform,
        // deterministic across platforms.
        let mut z = key ^ self.seeds[row];
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.width as u64) as usize
    }

    /// Adds `count` to `key`.
    pub fn update(&mut self, key: u64, count: u64) {
        for row in 0..self.depth {
            let b = self.bucket(row, key);
            let c = &mut self.rows[row][b];
            *c = c.saturating_add(count);
        }
        self.items = self.items.saturating_add(count);
    }

    /// Point estimate for `key` (an overestimate, never an underestimate).
    pub fn query(&self, key: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.rows[row][self.bucket(row, key)])
            .min()
            .expect("depth > 0")
    }

    /// Zeroes every counter (the periodic reset the paper talks about).
    pub fn reset(&mut self) {
        for row in &mut self.rows {
            row.fill(0);
        }
        self.items = 0;
    }

    /// Total increments since the last reset.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Memory footprint in counter words (what Table 3's BRAM cost prices).
    pub fn state_words(&self) -> usize {
        self.width * self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cms = CountMinSketch::new(64, 4);
        for k in 0..200u64 {
            cms.update(k, k + 1);
        }
        for k in 0..200u64 {
            assert!(cms.query(k) > k, "underestimate for {k}");
        }
    }

    #[test]
    fn exact_when_sparse() {
        let mut cms = CountMinSketch::new(1024, 4);
        cms.update(42, 7);
        cms.update(43, 3);
        assert_eq!(cms.query(42), 7);
        assert_eq!(cms.query(43), 3);
        assert_eq!(cms.query(44), 0);
    }

    #[test]
    fn reset_clears() {
        let mut cms = CountMinSketch::new(16, 2);
        cms.update(1, 100);
        assert!(cms.query(1) >= 100);
        cms.reset();
        assert_eq!(cms.query(1), 0);
        assert_eq!(cms.items(), 0);
    }

    #[test]
    fn error_bound_holds_statistically() {
        // 10k increments into a 256-wide sketch: estimates should stay
        // within 2*N/width = ~78 of truth for almost all keys.
        let mut cms = CountMinSketch::new(256, 4);
        let n_keys = 1000u64;
        for k in 0..n_keys {
            cms.update(k, 10);
        }
        let n_total = 10 * n_keys;
        let bound = 2 * n_total / 256;
        let violations = (0..n_keys).filter(|&k| cms.query(k) > 10 + bound).count();
        assert!(
            violations < (n_keys as usize) / 16,
            "{violations} of {n_keys} exceed the CMS error bound"
        );
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut cms = CountMinSketch::new(4, 1);
        cms.update(1, u64::MAX);
        cms.update(1, 10);
        assert_eq!(cms.query(1), u64::MAX);
    }

    #[test]
    fn state_words() {
        assert_eq!(CountMinSketch::new(64, 4).state_words(), 256);
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        CountMinSketch::new(0, 2);
    }
}
