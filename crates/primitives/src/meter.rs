//! Token-bucket policing.
//!
//! Two implementations of the same policer, mirroring §3 "Traffic
//! Management": [`TokenBucket`] is the fixed-function meter a baseline
//! PISA target exposes as a primitive extern, and [`TimerTokenBucket`] is
//! the paper's alternative — a policer a P4 programmer *builds themselves*
//! from plain registers plus a periodic timer event. The timer variant
//! quantizes refills to the timer period, which is precisely the accuracy
//! trade-off the event period controls.

use serde::{Deserialize, Serialize};

/// Policing verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Color {
    /// Conforming traffic.
    Green,
    /// Non-conforming traffic (drop or deprioritize).
    Red,
}

/// A continuous-time token bucket (fixed-function meter model).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TokenBucket {
    rate_bytes_per_sec: u64,
    burst_bytes: u64,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// Creates a bucket that refills at `rate_bytes_per_sec` with capacity
    /// `burst_bytes`, starting full.
    pub fn new(rate_bytes_per_sec: u64, burst_bytes: u64) -> Self {
        assert!(rate_bytes_per_sec > 0 && burst_bytes > 0);
        TokenBucket {
            rate_bytes_per_sec,
            burst_bytes,
            tokens: burst_bytes as f64,
            last_ns: 0,
        }
    }

    /// Offers a packet of `bytes` at time `now_ns`; consumes tokens and
    /// returns [`Color::Green`] if it conforms.
    pub fn offer(&mut self, now_ns: u64, bytes: u64) -> Color {
        let dt = now_ns.saturating_sub(self.last_ns) as f64 / 1e9;
        self.last_ns = now_ns;
        self.tokens =
            (self.tokens + dt * self.rate_bytes_per_sec as f64).min(self.burst_bytes as f64);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            Color::Green
        } else {
            Color::Red
        }
    }

    /// Remaining tokens (bytes).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// A token bucket built from registers + a periodic timer event.
///
/// The data-plane program keeps `tokens` in a register; the timer handler
/// calls [`TimerTokenBucket::refill`] every period; the packet handler
/// calls [`TimerTokenBucket::offer`]. No fixed-function meter required.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimerTokenBucket {
    tokens_per_refill: u64,
    burst_bytes: u64,
    tokens: u64,
    refills: u64,
}

impl TimerTokenBucket {
    /// Creates a timer-driven bucket. `rate_bytes_per_sec` and `period_ns`
    /// determine the per-refill quantum; `burst_bytes` caps accumulation.
    pub fn new(rate_bytes_per_sec: u64, period_ns: u64, burst_bytes: u64) -> Self {
        assert!(rate_bytes_per_sec > 0 && period_ns > 0 && burst_bytes > 0);
        let quantum = (rate_bytes_per_sec as u128 * period_ns as u128 / 1_000_000_000) as u64;
        TimerTokenBucket {
            tokens_per_refill: quantum.max(1),
            burst_bytes,
            tokens: burst_bytes,
            refills: 0,
        }
    }

    /// The timer-event handler: adds one refill quantum.
    pub fn refill(&mut self) {
        self.tokens = (self.tokens + self.tokens_per_refill).min(self.burst_bytes);
        self.refills += 1;
    }

    /// The packet-event handler: consumes tokens if available.
    pub fn offer(&mut self, bytes: u64) -> Color {
        if self.tokens >= bytes {
            self.tokens -= bytes;
            Color::Green
        } else {
            Color::Red
        }
    }

    /// Remaining tokens (bytes).
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Number of refills applied (observability for the policing bench).
    pub fn refills(&self) -> u64 {
        self.refills
    }

    /// Bytes added per refill.
    pub fn quantum(&self) -> u64 {
        self.tokens_per_refill
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_bucket_enforces_rate() {
        // 1000 B/s, 100 B burst; offer 100 B every 50 ms = 2000 B/s load.
        let mut tb = TokenBucket::new(1000, 100);
        let mut green = 0;
        for i in 0..100u64 {
            if tb.offer(i * 50_000_000, 100) == Color::Green {
                green += 1;
            }
        }
        // 5 s of sim time at 1000 B/s = 5000 B = 50 packets (+burst 1).
        assert!((50..=52).contains(&green), "green {green}");
    }

    #[test]
    fn burst_allows_initial_spike() {
        let mut tb = TokenBucket::new(1, 1000);
        assert_eq!(tb.offer(0, 1000), Color::Green);
        assert_eq!(tb.offer(0, 1), Color::Red);
    }

    #[test]
    fn timer_bucket_matches_continuous_long_run() {
        // Same configuration, coarse 10 ms timer.
        let rate = 125_000u64; // 1 Mb/s
        let mut cont = TokenBucket::new(rate, 3000);
        let mut timer = TimerTokenBucket::new(rate, 10_000_000, 3000);
        let (mut g_cont, mut g_timer) = (0u64, 0u64);
        let mut now = 0u64;
        for step in 0..10_000u64 {
            now += 1_000_000; // 1 ms between packets
            if step % 10 == 9 {
                timer.refill();
            }
            if cont.offer(now, 1500) == Color::Green {
                g_cont += 1;
            }
            if timer.offer(1500) == Color::Green {
                g_timer += 1;
            }
        }
        let diff = (g_cont as i64 - g_timer as i64).unsigned_abs();
        assert!(
            diff * 100 <= g_cont * 5,
            "timer bucket diverges: {g_timer} vs {g_cont}"
        );
    }

    #[test]
    fn timer_bucket_quantum() {
        let tb = TimerTokenBucket::new(1_000_000, 1_000_000, 10_000);
        assert_eq!(tb.quantum(), 1000); // 1 MB/s * 1 ms
    }

    #[test]
    fn timer_bucket_caps_at_burst() {
        let mut tb = TimerTokenBucket::new(1_000_000, 1_000_000, 1500);
        for _ in 0..100 {
            tb.refill();
        }
        assert_eq!(tb.tokens(), 1500);
        assert_eq!(tb.refills(), 100);
    }

    #[test]
    fn red_when_empty() {
        let mut tb = TimerTokenBucket::new(1000, 1_000_000, 100);
        assert_eq!(tb.offer(100), Color::Green);
        assert_eq!(tb.offer(1), Color::Red);
        tb.refill();
        assert!(tb.tokens() > 0);
    }
}
