//! Space-Saving heavy-hitter tracking (Metwally et al.).
//!
//! Network-monitoring apps report the top-k flows by bytes; Space-Saving
//! gives a deterministic small-state approximation whose error is bounded
//! by N/k, fitting the paper's "filters and watchlists" INT-reduction
//! narrative.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Slot {
    key: u64,
    count: u64,
    /// Overestimation bound: the count this slot had when its key was
    /// evicted and replaced.
    error: u64,
}

/// Space-Saving top-k tracker over `u64` keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpaceSaving {
    capacity: usize,
    slots: Vec<Slot>,
    index: HashMap<u64, usize>,
    total: u64,
}

impl SpaceSaving {
    /// Creates a tracker with `capacity` monitored keys.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity tracker");
        SpaceSaving {
            capacity,
            slots: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            total: 0,
        }
    }

    /// Adds `count` to `key`, possibly evicting the current minimum.
    pub fn update(&mut self, key: u64, count: u64) {
        self.total += count;
        if let Some(&i) = self.index.get(&key) {
            self.slots[i].count += count;
            return;
        }
        if self.slots.len() < self.capacity {
            self.index.insert(key, self.slots.len());
            self.slots.push(Slot {
                key,
                count,
                error: 0,
            });
            return;
        }
        // Replace the slot with the minimum count.
        let (mi, _) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.count)
            .expect("non-empty");
        let old = self.slots[mi].clone();
        self.index.remove(&old.key);
        self.index.insert(key, mi);
        self.slots[mi] = Slot {
            key,
            count: old.count + count,
            error: old.count,
        };
    }

    /// Estimated count for `key` (0 when unmonitored). Estimates satisfy
    /// `true ≤ estimate ≤ true + error`.
    pub fn estimate(&self, key: u64) -> u64 {
        self.index
            .get(&key)
            .map(|&i| self.slots[i].count)
            .unwrap_or(0)
    }

    /// Top-`n` `(key, estimate, error_bound)` triples, highest first;
    /// ties broken by key for determinism.
    pub fn top(&self, n: usize) -> Vec<(u64, u64, u64)> {
        let mut v: Vec<_> = self
            .slots
            .iter()
            .map(|s| (s.key, s.count, s.error))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.slots.clear();
        self.index.clear();
        self.total = 0;
    }

    /// Total count across all updates since reset.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Guaranteed heavy hitters: keys whose count minus error bound still
    /// exceeds `threshold`.
    pub fn guaranteed_above(&self, threshold: u64) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .slots
            .iter()
            .filter(|s| s.count.saturating_sub(s.error) > threshold)
            .map(|s| s.key)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut ss = SpaceSaving::new(8);
        for k in 0..5u64 {
            ss.update(k, (k + 1) * 10);
        }
        for k in 0..5u64 {
            assert_eq!(ss.estimate(k), (k + 1) * 10);
        }
        assert_eq!(ss.top(1), vec![(4, 50, 0)]);
    }

    #[test]
    fn heavy_keys_survive_churn() {
        let mut ss = SpaceSaving::new(10);
        // Two elephants among many mice.
        for i in 0..1000u64 {
            ss.update(1_000_000, 10);
            ss.update(2_000_000, 8);
            ss.update(i, 1); // a mouse per round
        }
        let top: Vec<u64> = ss.top(2).into_iter().map(|(k, _, _)| k).collect();
        assert!(top.contains(&1_000_000), "elephant 1 missing: {top:?}");
        assert!(top.contains(&2_000_000), "elephant 2 missing: {top:?}");
    }

    #[test]
    fn never_underestimates_monitored() {
        let mut ss = SpaceSaving::new(4);
        for i in 0..100u64 {
            ss.update(i % 8, 1);
        }
        // Monitored keys' estimates include the error bound upward only.
        for (key, est, err) in ss.top(4) {
            let truth = (0..100u64).filter(|i| i % 8 == key).count() as u64;
            assert!(est >= truth, "under: key {key} est {est} true {truth}");
            assert!(est - err <= truth, "bound broken for {key}");
        }
    }

    #[test]
    fn guaranteed_above_uses_error_bound() {
        let mut ss = SpaceSaving::new(2);
        ss.update(1, 100);
        ss.update(2, 1); // fills capacity
        ss.update(3, 1); // evicts key 2, inherits error 1
        let g = ss.guaranteed_above(50);
        assert_eq!(g, vec![1]);
    }

    #[test]
    fn reset_clears() {
        let mut ss = SpaceSaving::new(2);
        ss.update(5, 9);
        ss.reset();
        assert_eq!(ss.estimate(5), 0);
        assert_eq!(ss.total(), 0);
        assert!(ss.top(5).is_empty());
    }
}
