//! Time-window functions over a signal.
//!
//! Two estimators back the paper's "Time-Windowed Network Measurement"
//! student project (§5): a bucketed sliding-window rate built from a shift
//! register advanced by timer events, and a classic EWMA for comparison.

use serde::{Deserialize, Serialize};

/// A sliding-window byte-rate estimator: `n_buckets` counters, each
/// covering `bucket_ns`, shifted by a timer event.
///
/// This is exactly the "simple shift register" + timer-event construction
/// from the paper: packets add to the head bucket, each timer tick retires
/// the tail, and the rate is the window sum over the window span.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowRate {
    buckets: Vec<u64>,
    head: usize,
    bucket_ns: u64,
    filled: usize,
}

impl WindowRate {
    /// Creates an estimator with `n_buckets` buckets of `bucket_ns` each.
    pub fn new(n_buckets: usize, bucket_ns: u64) -> Self {
        assert!(n_buckets > 0 && bucket_ns > 0, "degenerate window");
        WindowRate {
            buckets: vec![0; n_buckets],
            head: 0,
            bucket_ns,
            filled: 1,
        }
    }

    /// Accounts `bytes` arriving in the current bucket.
    pub fn add(&mut self, bytes: u64) {
        self.buckets[self.head] += bytes;
    }

    /// Advances the window one bucket (call this from the timer event).
    pub fn tick(&mut self) {
        self.head = (self.head + 1) % self.buckets.len();
        self.buckets[self.head] = 0;
        self.filled = (self.filled + 1).min(self.buckets.len());
    }

    /// Total bytes across the window.
    pub fn window_bytes(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Estimated rate in bits per second over the *complete* buckets of
    /// the window. The in-progress head bucket is excluded (it has only
    /// accumulated a fraction of a bucket interval, so including it would
    /// bias the estimate low by up to one bucket's worth); before the
    /// first tick, the head bucket is all there is and is used as-is.
    pub fn rate_bps(&self) -> f64 {
        if self.filled <= 1 {
            let span_ns = self.bucket_ns as f64;
            return self.buckets[self.head] as f64 * 8.0 * 1e9 / span_ns;
        }
        let complete = (self.filled - 1) as u64;
        let bytes = self.window_bytes() - self.buckets[self.head];
        bytes as f64 * 8.0 * 1e9 / (complete * self.bucket_ns) as f64
    }

    /// Window span when fully filled, in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.buckets.len() as u64 * self.bucket_ns
    }

    /// Memory footprint in counter words.
    pub fn state_words(&self) -> usize {
        self.buckets.len()
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    primed: bool,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]` (weight
    /// of the newest sample).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} out of range");
        Ewma {
            alpha,
            value: 0.0,
            primed: false,
        }
    }

    /// Feeds a sample and returns the updated average. The first sample
    /// initializes the average directly (no bias toward zero).
    pub fn update(&mut self, x: f64) -> f64 {
        if self.primed {
            self.value += self.alpha * (x - self.value);
        } else {
            self.value = x;
            self.primed = true;
        }
        self.value
    }

    /// Current average (0 before the first sample).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// True once a sample has been fed.
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    /// Resets to the unprimed state.
    pub fn reset(&mut self) {
        self.value = 0.0;
        self.primed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_rate_measured_exactly() {
        // 1000 bytes per 1 ms bucket = 8 Mb/s.
        let mut w = WindowRate::new(10, 1_000_000);
        for _ in 0..20 {
            w.add(1000);
            w.tick();
        }
        let rate = w.rate_bps();
        assert!((rate - 8_000_000.0).abs() / 8e6 < 0.15, "rate {rate}");
    }

    #[test]
    fn window_forgets_old_traffic() {
        let mut w = WindowRate::new(4, 1_000_000);
        w.add(1_000_000); // burst in bucket 0
        for _ in 0..4 {
            w.tick();
        }
        assert_eq!(w.window_bytes(), 0, "burst should have aged out");
    }

    #[test]
    fn early_estimates_use_partial_span() {
        let mut w = WindowRate::new(100, 1_000_000);
        w.add(1000);
        // Only 1 bucket filled: span is 1 ms, not 100 ms.
        let rate = w.rate_bps();
        assert!((rate - 8_000_000.0).abs() < 1.0, "rate {rate}");
    }

    #[test]
    fn window_span() {
        let w = WindowRate::new(8, 250_000);
        assert_eq!(w.window_ns(), 2_000_000);
        assert_eq!(w.state_words(), 8);
    }

    #[test]
    fn ewma_first_sample_initializes() {
        let mut e = Ewma::new(0.1);
        assert!(!e.is_primed());
        assert_eq!(e.update(50.0), 50.0);
        assert!(e.is_primed());
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.2);
        for _ in 0..100 {
            e.update(10.0);
        }
        assert!((e.value() - 10.0).abs() < 1e-9);
        // Step change converges toward the new level.
        for _ in 0..50 {
            e.update(20.0);
        }
        assert!((e.value() - 20.0).abs() < 0.01);
    }

    #[test]
    fn ewma_reset() {
        let mut e = Ewma::new(0.5);
        e.update(4.0);
        e.reset();
        assert!(!e.is_primed());
        assert_eq!(e.value(), 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_alpha_panics() {
        Ewma::new(0.0);
    }
}
