//! Bloom filter over `u64` keys.
//!
//! Used by the baseline (Snappy-style) microburst detector to approximate
//! "have I already counted this flow in the current window" — one of the
//! several stateful structures the event-driven version makes unnecessary.

use serde::{Deserialize, Serialize};

/// A fixed-size Bloom filter with `k` hash functions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: usize,
    k: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter with `n_bits` bits (rounded up to a multiple of 64)
    /// and `k` hash functions.
    pub fn new(n_bits: usize, k: u32) -> Self {
        assert!(n_bits > 0 && k > 0, "degenerate bloom filter");
        let words = n_bits.div_ceil(64);
        BloomFilter {
            bits: vec![0; words],
            n_bits: words * 64,
            k,
            inserted: 0,
        }
    }

    fn bit_for(&self, key: u64, i: u32) -> usize {
        // Kirsch–Mitzenmacher double hashing: h1 + i*h2.
        let mut z = key ^ 0xA076_1D64_78BD_642F;
        z = (z ^ (z >> 32)).wrapping_mul(0xE995_3D0E_1E81_79A9);
        let h1 = z ^ (z >> 29);
        let mut y = key ^ 0xE703_7ED1_A0B4_28DB;
        y = (y ^ (y >> 32)).wrapping_mul(0x8EBC_6AF0_9C88_C6E3);
        let h2 = (y ^ (y >> 29)) | 1; // odd so it cycles the whole range
        (h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.n_bits as u64) as usize
    }

    /// Inserts `key`; returns `true` if it was (probably) already present.
    pub fn insert(&mut self, key: u64) -> bool {
        let mut all_set = true;
        for i in 0..self.k {
            let b = self.bit_for(key, i);
            let (word, mask) = (b / 64, 1u64 << (b % 64));
            if self.bits[word] & mask == 0 {
                all_set = false;
                self.bits[word] |= mask;
            }
        }
        if !all_set {
            self.inserted += 1;
        }
        all_set
    }

    /// Membership test: `false` is definite, `true` is probabilistic.
    pub fn contains(&self, key: u64) -> bool {
        (0..self.k).all(|i| {
            let b = self.bit_for(key, i);
            self.bits[b / 64] & (1 << (b % 64)) != 0
        })
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }

    /// Distinct-ish keys inserted since the last clear.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Memory footprint in 64-bit words.
    pub fn state_words(&self) -> usize {
        self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(4096, 4);
        for k in 0..200u64 {
            bf.insert(k);
        }
        for k in 0..200u64 {
            assert!(bf.contains(k), "false negative for {k}");
        }
    }

    #[test]
    fn low_false_positive_rate_when_sized_right() {
        let mut bf = BloomFilter::new(16 * 1024, 4);
        for k in 0..1000u64 {
            bf.insert(k);
        }
        let fps = (10_000..20_000u64).filter(|&k| bf.contains(k)).count();
        // With m/n = 16 and k = 4, theoretical FPR ≈ 0.24%; allow slack.
        assert!(fps < 120, "false positive rate too high: {fps}/10000");
    }

    #[test]
    fn insert_reports_duplicates() {
        let mut bf = BloomFilter::new(1024, 4);
        assert!(!bf.insert(7));
        assert!(bf.insert(7));
        assert_eq!(bf.inserted(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut bf = BloomFilter::new(256, 2);
        bf.insert(1);
        bf.clear();
        assert!(!bf.contains(1));
        assert_eq!(bf.inserted(), 0);
    }

    #[test]
    fn rounds_bits_up() {
        let bf = BloomFilter::new(65, 1);
        assert_eq!(bf.state_words(), 2);
    }
}
