//! # edp-primitives — data-plane algorithm building blocks
//!
//! The stateful structures the paper's applications are made of, each a
//! small register-backed algorithm a P4 program could express:
//!
//! * [`CountMinSketch`] — frequency estimation with periodic reset
//!   (the paper's control-plane-overhead running example);
//! * [`BloomFilter`] — approximate membership, used by the baseline
//!   Snappy-style microburst detector;
//! * [`SpaceSaving`] — top-k heavy hitters for monitoring watchlists;
//! * [`WindowRate`] / [`Ewma`] — time-window functions built from timer
//!   events (§5 "Time-Windowed Network Measurement");
//! * [`TokenBucket`] / [`TimerTokenBucket`] — fixed-function vs.
//!   build-it-yourself-from-timer-events policing (§3);
//! * [`Red`] / [`Pie`] — AQM controllers fed by enqueue/dequeue signals;
//! * [`Pifo`] — the programmable scheduler substrate (§3).
//!
//! Everything is deterministic; types that need randomness take the
//! uniform variate as an argument instead of owning an RNG.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod aqm;
mod bloom;
mod cms;
mod heavy;
mod meter;
mod pifo;
mod window;

pub use aqm::{AqmVerdict, Pie, Red};
pub use bloom::BloomFilter;
pub use cms::CountMinSketch;
pub use heavy::SpaceSaving;
pub use meter::{Color, TimerTokenBucket, TokenBucket};
pub use pifo::{Pifo, PifoPush};
pub use window::{Ewma, WindowRate};
