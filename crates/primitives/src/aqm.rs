//! Active queue management: RED and a PIE-flavoured controller.
//!
//! The paper names AQM as "one of the motivating applications for our
//! work": the congestion signals these controllers consume (queue size,
//! queueing delay, per-flow occupancy) are exactly what enqueue/dequeue
//! events expose in the ingress pipeline. The FRED-style *fair* variant
//! lives in `edp-apps::fred`, built on these pieces.

use crate::window::Ewma;
use serde::{Deserialize, Serialize};

/// Verdict for an arriving packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AqmVerdict {
    /// Enqueue normally.
    Accept,
    /// Mark (ECN CE) but enqueue.
    Mark,
    /// Drop.
    Drop,
}

/// Random Early Detection (Floyd & Jacobson, 1993).
///
/// Drop probability ramps linearly from 0 at `min_thresh` to `max_p` at
/// `max_thresh`; above `max_thresh` everything is dropped (the "gentle"
/// variant is out of scope). Thresholds are in bytes of queue occupancy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Red {
    min_thresh: u64,
    max_thresh: u64,
    max_p: f64,
    ecn_capable_marks: bool,
    avg: Ewma,
    /// Deterministic inter-drop counter, RED's `count` variable.
    since_last_drop: u64,
}

impl Red {
    /// Creates a RED instance. `weight` is the queue-average EWMA weight
    /// (Floyd recommends ~0.002 for per-packet updates).
    pub fn new(min_thresh: u64, max_thresh: u64, max_p: f64, weight: f64, mark: bool) -> Self {
        assert!(min_thresh < max_thresh, "RED thresholds inverted");
        assert!((0.0..=1.0).contains(&max_p));
        Red {
            min_thresh,
            max_thresh,
            max_p,
            ecn_capable_marks: mark,
            avg: Ewma::new(weight),
            since_last_drop: 0,
        }
    }

    /// Offers a packet with instantaneous queue occupancy `queue_bytes`;
    /// `u` must be a uniform random number in `[0,1)` supplied by the
    /// caller (keeps this type free of RNG state).
    pub fn offer(&mut self, queue_bytes: u64, u: f64) -> AqmVerdict {
        let avg = self.avg.update(queue_bytes as f64);
        if avg < self.min_thresh as f64 {
            self.since_last_drop += 1;
            return AqmVerdict::Accept;
        }
        if avg >= self.max_thresh as f64 {
            self.since_last_drop = 0;
            return self.penalty();
        }
        let frac = (avg - self.min_thresh as f64) / (self.max_thresh - self.min_thresh) as f64;
        let pb = self.max_p * frac;
        // Floyd's uniformization: pa = pb / (1 - count*pb).
        let pa = pb / (1.0 - (self.since_last_drop as f64 * pb).min(0.999));
        if u < pa {
            self.since_last_drop = 0;
            self.penalty()
        } else {
            self.since_last_drop += 1;
            AqmVerdict::Accept
        }
    }

    fn penalty(&self) -> AqmVerdict {
        if self.ecn_capable_marks {
            AqmVerdict::Mark
        } else {
            AqmVerdict::Drop
        }
    }

    /// Current averaged queue occupancy in bytes.
    pub fn avg_queue(&self) -> f64 {
        self.avg.value()
    }
}

/// A PIE-flavoured latency-target controller (Pan et al., HPSR 2013).
///
/// Instead of queue *depth*, PIE controls queue *delay*: the drop
/// probability integrates the deviation of measured queueing delay from a
/// target. The measurement comes from dequeue events (timestamp deltas) —
/// impossible to obtain in a baseline ingress-only model, trivial with
/// event-driven enqueue/dequeue handlers.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Pie {
    target_delay_ns: u64,
    alpha: f64,
    beta: f64,
    drop_prob: f64,
    last_delay_ns: u64,
}

impl Pie {
    /// Creates a PIE controller targeting `target_delay_ns` of queueing
    /// delay, with proportional gain `alpha` and derivative gain `beta`
    /// (per update call, typically invoked from a periodic timer event).
    pub fn new(target_delay_ns: u64, alpha: f64, beta: f64) -> Self {
        assert!(target_delay_ns > 0);
        Pie {
            target_delay_ns,
            alpha,
            beta,
            drop_prob: 0.0,
            last_delay_ns: 0,
        }
    }

    /// Timer-event handler: feeds the latest measured queueing delay.
    pub fn update(&mut self, measured_delay_ns: u64) {
        let t = self.target_delay_ns as f64;
        let err = (measured_delay_ns as f64 - t) / t;
        let trend = (measured_delay_ns as f64 - self.last_delay_ns as f64) / t;
        self.drop_prob = (self.drop_prob + self.alpha * err + self.beta * trend).clamp(0.0, 1.0);
        self.last_delay_ns = measured_delay_ns;
    }

    /// Packet-event handler: `u` is caller-supplied uniform randomness.
    pub fn offer(&self, u: f64) -> AqmVerdict {
        if u < self.drop_prob {
            AqmVerdict::Drop
        } else {
            AqmVerdict::Accept
        }
    }

    /// Current drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_accepts_below_min() {
        let mut red = Red::new(1000, 5000, 0.1, 1.0, false);
        for _ in 0..100 {
            assert_eq!(red.offer(500, 0.0), AqmVerdict::Accept);
        }
    }

    #[test]
    fn red_drops_all_above_max() {
        let mut red = Red::new(1000, 5000, 0.1, 1.0, false);
        assert_eq!(red.offer(10_000, 0.99), AqmVerdict::Drop);
    }

    #[test]
    fn red_marks_when_ecn() {
        let mut red = Red::new(1000, 5000, 0.1, 1.0, true);
        assert_eq!(red.offer(10_000, 0.99), AqmVerdict::Mark);
    }

    #[test]
    fn red_probabilistic_band_scales() {
        // With weight 1.0 the average tracks the instantaneous queue.
        let mut red = Red::new(1000, 5000, 0.5, 1.0, false);
        let mut drops_low = 0;
        let mut drops_high = 0;
        for i in 0..1000 {
            let u = (i as f64) / 1000.0;
            if red.offer(1500, u) == AqmVerdict::Drop {
                drops_low += 1;
            }
        }
        let mut red = Red::new(1000, 5000, 0.5, 1.0, false);
        for i in 0..1000 {
            let u = (i as f64) / 1000.0;
            if red.offer(4500, u) == AqmVerdict::Drop {
                drops_high += 1;
            }
        }
        assert!(
            drops_high > drops_low * 2,
            "deeper queue should drop more: {drops_low} vs {drops_high}"
        );
    }

    #[test]
    fn red_ewma_smooths() {
        let mut red = Red::new(1000, 5000, 0.1, 0.01, false);
        // A single spike barely moves a slow average.
        red.offer(100, 0.5);
        red.offer(100_000, 0.5);
        assert!(red.avg_queue() < 2000.0, "avg {}", red.avg_queue());
    }

    #[test]
    fn pie_ramps_up_under_standing_delay() {
        let mut pie = Pie::new(1_000_000, 0.125, 1.25);
        for _ in 0..50 {
            pie.update(5_000_000); // 5x target
        }
        assert!(pie.drop_prob() > 0.5, "p = {}", pie.drop_prob());
        assert_eq!(pie.offer(0.0), AqmVerdict::Drop);
    }

    #[test]
    fn pie_decays_when_idle() {
        let mut pie = Pie::new(1_000_000, 0.125, 1.25);
        for _ in 0..50 {
            pie.update(5_000_000);
        }
        for _ in 0..200 {
            pie.update(0);
        }
        assert!(pie.drop_prob() < 0.01, "p = {}", pie.drop_prob());
        assert_eq!(pie.offer(0.5), AqmVerdict::Accept);
    }
}
