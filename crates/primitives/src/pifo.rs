//! Push-In-First-Out queue (Sivaraman et al., SIGCOMM 2016).
//!
//! The paper's traffic-management section proposes combining event-driven
//! programming with PIFO to build a complete programmable scheduler. A
//! PIFO admits packets with a program-computed rank and always dequeues
//! the minimum rank; ties dequeue in arrival order (FIFO within rank).

use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PifoEntry<T> {
    rank: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for PifoEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank && self.seq == other.seq
    }
}
impl<T> Eq for PifoEntry<T> {}
impl<T> PartialOrd for PifoEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for PifoEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: invert for min-rank-first, then min-seq-first.
        other
            .rank
            .cmp(&self.rank)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// What happened on a bounded push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PifoPush {
    /// Admitted.
    Ok,
    /// Rejected: queue full and the new rank is no better than the worst.
    Rejected,
    /// Admitted by evicting the worst-ranked entry (returned separately).
    Evicted,
}

/// A bounded PIFO over items `T`.
#[derive(Debug, Clone)]
pub struct Pifo<T> {
    heap: BinaryHeap<PifoEntry<T>>,
    capacity: usize,
    next_seq: u64,
}

impl<T> Pifo<T> {
    /// Creates a PIFO holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity PIFO");
        Pifo {
            heap: BinaryHeap::with_capacity(capacity),
            capacity,
            next_seq: 0,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pushes with `rank`; on overflow the *worst-ranked* entry loses
    /// (hardware PIFOs tail-drop against the lowest-priority occupant).
    /// Returns the verdict and, on eviction, the displaced item.
    pub fn push(&mut self, rank: u64, item: T) -> (PifoPush, Option<T>) {
        if self.heap.len() < self.capacity {
            self.push_raw(rank, item);
            return (PifoPush::Ok, None);
        }
        // Find the worst entry: BinaryHeap has no O(1) max-of-min view, so
        // scan — capacity is a queue depth, not a flow table.
        let worst = self
            .heap
            .iter()
            .max_by(|a, b| a.rank.cmp(&b.rank).then(a.seq.cmp(&b.seq)))
            .map(|e| (e.rank, e.seq));
        match worst {
            Some((wr, ws)) if rank < wr => {
                let mut entries: Vec<PifoEntry<T>> = std::mem::take(&mut self.heap).into_vec();
                let pos = entries
                    .iter()
                    .position(|e| e.rank == wr && e.seq == ws)
                    .expect("worst entry present");
                let evicted = entries.swap_remove(pos);
                self.heap = entries.into();
                self.push_raw(rank, item);
                (PifoPush::Evicted, Some(evicted.item))
            }
            _ => (PifoPush::Rejected, Some(item)),
        }
    }

    fn push_raw(&mut self, rank: u64, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(PifoEntry { rank, seq, item });
    }

    /// Removes and returns the minimum-rank item (FIFO within equal rank).
    pub fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|e| e.item)
    }

    /// Rank of the head item, if any.
    pub fn peek_rank(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_rank() {
        let mut p = Pifo::new(10);
        p.push(30, "c");
        p.push(10, "a");
        p.push(20, "b");
        assert_eq!(p.pop(), Some("a"));
        assert_eq!(p.pop(), Some("b"));
        assert_eq!(p.pop(), Some("c"));
        assert_eq!(p.pop(), None);
    }

    #[test]
    fn fifo_within_rank() {
        let mut p = Pifo::new(10);
        for i in 0..5 {
            p.push(7, i);
        }
        for i in 0..5 {
            assert_eq!(p.pop(), Some(i));
        }
    }

    #[test]
    fn overflow_rejects_worse_rank() {
        let mut p = Pifo::new(2);
        p.push(1, "a");
        p.push(2, "b");
        let (verdict, returned) = p.push(5, "c");
        assert_eq!(verdict, PifoPush::Rejected);
        assert_eq!(returned, Some("c"));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn overflow_evicts_worst_for_better_rank() {
        let mut p = Pifo::new(2);
        p.push(10, "low-pri");
        p.push(1, "high-pri");
        let (verdict, evicted) = p.push(5, "mid-pri");
        assert_eq!(verdict, PifoPush::Evicted);
        assert_eq!(evicted, Some("low-pri"));
        assert_eq!(p.pop(), Some("high-pri"));
        assert_eq!(p.pop(), Some("mid-pri"));
    }

    #[test]
    fn equal_rank_overflow_rejects_newcomer() {
        // Ties favour the incumbent (no eviction for equal rank).
        let mut p = Pifo::new(1);
        p.push(5, "first");
        let (verdict, _) = p.push(5, "second");
        assert_eq!(verdict, PifoPush::Rejected);
        assert_eq!(p.pop(), Some("first"));
    }

    #[test]
    fn peek_rank() {
        let mut p = Pifo::new(4);
        assert_eq!(p.peek_rank(), None);
        p.push(9, ());
        p.push(3, ());
        assert_eq!(p.peek_rank(), Some(3));
    }

    #[test]
    fn strict_priority_emulation() {
        // Rank = priority class: a PIFO implements strict priority.
        let mut p = Pifo::new(100);
        for i in 0..10u64 {
            p.push(i % 3, i);
        }
        let mut out = Vec::new();
        while let Some(v) = p.pop() {
            out.push(v % 3);
        }
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(out, sorted, "classes must come out in priority order");
    }
}
