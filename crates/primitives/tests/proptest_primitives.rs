//! Property-based tests for the data-plane primitives' invariants.

use edp_primitives::{
    AqmVerdict, BloomFilter, Color, CountMinSketch, Pifo, Red, SpaceSaving, TimerTokenBucket,
    TokenBucket, WindowRate,
};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// CMS point queries never underestimate, for any update sequence.
    #[test]
    fn cms_never_underestimates(
        width in 8usize..256,
        depth in 1usize..6,
        ops in prop::collection::vec((0u64..64, 1u64..1000), 1..300),
    ) {
        let mut cms = CountMinSketch::new(width, depth);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(k, c) in &ops {
            cms.update(k, c);
            *truth.entry(k).or_insert(0) += c;
        }
        for (&k, &t) in &truth {
            prop_assert!(cms.query(k) >= t, "key {} under truth {}", k, t);
        }
        prop_assert_eq!(cms.items(), ops.iter().map(|&(_, c)| c).sum::<u64>());
    }

    /// CMS reset makes everything exactly zero.
    #[test]
    fn cms_reset_total(ops in prop::collection::vec((0u64..100, 1u64..50), 1..100)) {
        let mut cms = CountMinSketch::new(64, 3);
        for &(k, c) in &ops {
            cms.update(k, c);
        }
        cms.reset();
        for &(k, _) in &ops {
            prop_assert_eq!(cms.query(k), 0);
        }
    }

    /// Bloom filters never produce false negatives.
    #[test]
    fn bloom_no_false_negatives(
        bits in 64usize..8192,
        k in 1u32..8,
        keys in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let mut bf = BloomFilter::new(bits, k);
        for &key in &keys {
            bf.insert(key);
        }
        for &key in &keys {
            prop_assert!(bf.contains(key));
        }
    }

    /// PIFO pops in (rank, arrival) order for any push sequence.
    #[test]
    fn pifo_pop_order(ranks in prop::collection::vec(0u64..1000, 1..200)) {
        let mut p = Pifo::new(ranks.len());
        for (i, &r) in ranks.iter().enumerate() {
            let (v, _) = p.push(r, (r, i));
            prop_assert_eq!(v, edp_primitives::PifoPush::Ok);
        }
        let mut out = Vec::new();
        while let Some(x) = p.pop() {
            out.push(x);
        }
        let mut expect: Vec<(u64, usize)> = ranks.iter().copied().enumerate().map(|(i, r)| (r, i)).collect();
        expect.sort();
        prop_assert_eq!(out, expect);
    }

    /// A bounded PIFO holds exactly the best `capacity` items (by rank,
    /// ties favouring earlier arrivals).
    #[test]
    fn pifo_bounded_keeps_best(
        capacity in 1usize..32,
        ranks in prop::collection::vec(0u64..100, 1..100),
    ) {
        let mut p = Pifo::new(capacity);
        for (i, &r) in ranks.iter().enumerate() {
            p.push(r, (r, i));
        }
        let mut kept = Vec::new();
        while let Some(x) = p.pop() {
            kept.push(x);
        }
        let mut expect: Vec<(u64, usize)> = ranks.iter().copied().enumerate().map(|(i, r)| (r, i)).collect();
        expect.sort();
        expect.truncate(capacity);
        prop_assert_eq!(kept, expect);
    }

    /// Token bucket conformance never exceeds rate × time + burst.
    #[test]
    fn token_bucket_rate_bound(
        rate in 1_000u64..10_000_000,
        burst in 100u64..100_000,
        arrivals in prop::collection::vec((1u64..10_000, 1u64..5_000), 1..300),
    ) {
        let mut tb = TokenBucket::new(rate, burst);
        let mut now = 0u64;
        let mut green_bytes = 0u64;
        for &(gap_us, bytes) in &arrivals {
            now += gap_us * 1000;
            if tb.offer(now, bytes) == Color::Green {
                green_bytes += bytes;
            }
        }
        let elapsed_s = now as f64 / 1e9;
        let bound = rate as f64 * elapsed_s + burst as f64 + 1.0;
        prop_assert!(
            (green_bytes as f64) <= bound,
            "green {} exceeds bound {}",
            green_bytes,
            bound
        );
    }

    /// The timer-refilled bucket obeys the same bound with its quantized
    /// refill schedule.
    #[test]
    fn timer_bucket_rate_bound(
        rate in 10_000u64..10_000_000,
        period_us in 10u64..10_000,
        burst in 1_000u64..100_000,
        n_steps in 10u64..500,
    ) {
        let mut tb = TimerTokenBucket::new(rate, period_us * 1000, burst);
        let mut green = 0u64;
        for step in 0..n_steps {
            if step > 0 {
                tb.refill();
            }
            // Offer an MTU per refill period.
            if tb.offer(1500) == Color::Green {
                green += 1500;
            }
        }
        let elapsed_s = (n_steps * period_us) as f64 / 1e6;
        let bound = rate as f64 * elapsed_s + burst as f64 + tb.quantum() as f64;
        prop_assert!((green as f64) <= bound, "green {} bound {}", green, bound);
    }

    /// Space-Saving estimates bracket the truth: true ≤ est ≤ true + err.
    #[test]
    fn space_saving_brackets_truth(
        capacity in 1usize..32,
        ops in prop::collection::vec((0u64..64, 1u64..100), 1..300),
    ) {
        let mut ss = SpaceSaving::new(capacity);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(k, c) in &ops {
            ss.update(k, c);
            *truth.entry(k).or_insert(0) += c;
        }
        for (k, est, err) in ss.top(capacity) {
            let t = truth.get(&k).copied().unwrap_or(0);
            prop_assert!(est >= t, "key {} est {} < truth {}", k, est, t);
            prop_assert!(est - err <= t, "key {} lower bound broken", k);
        }
    }

    /// WindowRate's window total equals the sum of the last N bucket adds.
    #[test]
    fn window_total_is_recent_sum(
        buckets in 2usize..16,
        adds in prop::collection::vec(prop::collection::vec(0u64..10_000, 0..5), 1..60),
    ) {
        let mut w = WindowRate::new(buckets, 1_000_000);
        let mut per_tick: Vec<u64> = Vec::new();
        for tick_adds in &adds {
            let sum: u64 = tick_adds.iter().sum();
            for &a in tick_adds {
                w.add(a);
            }
            per_tick.push(sum);
            w.tick();
        }
        // After the final tick the window holds the last (buckets-1)
        // completed tick-sums (head bucket was just reset).
        let expect: u64 = per_tick.iter().rev().take(buckets - 1).sum();
        prop_assert_eq!(w.window_bytes(), expect);
    }

    /// RED with weight 1 never drops below min_thresh and always
    /// drops/marks above max_thresh.
    #[test]
    fn red_threshold_contract(
        min in 100u64..1000,
        span in 1u64..10_000,
        u in 0.0f64..1.0,
        below in 0u64..100,
        above in 0u64..10_000,
    ) {
        let max = min + span;
        let mut red = Red::new(min, max, 0.5, 1.0, false);
        prop_assert_eq!(red.offer(min.saturating_sub(below + 1), u), AqmVerdict::Accept);
        let mut red = Red::new(min, max, 0.5, 1.0, false);
        prop_assert_eq!(red.offer(max + above, u), AqmVerdict::Drop);
    }
}
