//! Property-based tests for the capture codec: arbitrary packet sets
//! survive write → read unchanged, and no amount of truncation or byte
//! corruption can make the reader panic — it returns a typed
//! [`PcapError`] or (for corrupted-but-wellformed bytes) different
//! packets, never UB or an abort.

use edp_packet::{PcapFile, PcapPacket, MAX_FRAME_LEN};
use proptest::prelude::*;

/// Largest timestamp classic pcap can represent: 32-bit seconds plus
/// nanosecond fraction. The canonical writer truncates beyond this (a
/// format limitation, ~year 2106), so round-tripping is only promised
/// inside the representable range.
const MAX_CLASSIC_TS_NS: u64 = u32::MAX as u64 * 1_000_000_000 + 999_999_999;

fn arb_packet() -> impl Strategy<Value = PcapPacket> {
    (
        0u64..=MAX_CLASSIC_TS_NS,
        proptest::collection::vec(any::<u8>(), 0..512),
        0u32..1024,
    )
        .prop_map(|(ts_ns, data, extra)| {
            let orig_len = data.len() as u32 + extra;
            PcapPacket {
                ts_ns,
                orig_len,
                data,
            }
        })
}

fn arb_file() -> impl Strategy<Value = PcapFile> {
    proptest::collection::vec(arb_packet(), 0..24).prop_map(|packets| PcapFile { packets })
}

proptest! {
    /// Arbitrary packets (any timestamps, snapped or full, any bytes)
    /// survive the canonical writer and come back identical.
    #[test]
    fn write_read_round_trip(file in arb_file()) {
        let bytes = file.to_pcap_bytes();
        let back = PcapFile::parse(&bytes).expect("own output parses");
        prop_assert_eq!(&back, &file);
        // The writer is a fixpoint: re-encoding changes nothing.
        prop_assert_eq!(back.to_pcap_bytes(), bytes);
    }

    /// Every prefix of a valid capture either parses (records are
    /// self-delimiting, so a cut between records yields the prefix's
    /// packets... except classic requires whole records) or fails with a
    /// typed error — never a panic.
    #[test]
    fn truncation_never_panics(file in arb_file(), cut in 0usize..4096) {
        let bytes = file.to_pcap_bytes();
        let cut = cut.min(bytes.len());
        match PcapFile::parse(&bytes[..cut]) {
            Ok(f) => prop_assert!(f.packets.len() <= file.packets.len()),
            Err(e) => { let _ = e.to_string(); }
        }
    }

    /// Flipping any single byte of a valid capture never panics the
    /// reader: it parses (possibly to different packets) or returns a
    /// typed error.
    #[test]
    fn corruption_never_panics(file in arb_file(), pos in any::<prop::sample::Index>(), xor in 1u8..=255) {
        let mut bytes = file.to_pcap_bytes();
        let i = pos.index(bytes.len());
        bytes[i] ^= xor;
        match PcapFile::parse(&bytes) {
            Ok(f) => prop_assert!(f.captured_bytes() <= bytes.len() as u64),
            Err(e) => { let _ = e.to_string(); }
        }
    }

    /// Arbitrary garbage bytes never panic the reader.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = PcapFile::parse(&bytes);
    }

    /// Oversized record claims are rejected with the typed error, not an
    /// allocation attempt.
    #[test]
    fn oversized_record_is_typed(len in (MAX_FRAME_LEN + 1)..u32::MAX / 2) {
        let mut bytes = PcapFile::default().to_pcap_bytes();
        // Append a record header claiming `len` captured bytes.
        bytes.extend_from_slice(&0u32.to_le_bytes()); // ts_sec
        bytes.extend_from_slice(&0u32.to_le_bytes()); // ts_frac
        bytes.extend_from_slice(&len.to_le_bytes()); // incl_len
        bytes.extend_from_slice(&len.to_le_bytes()); // orig_len
        prop_assert_eq!(
            PcapFile::parse(&bytes),
            Err(edp_packet::PcapError::OversizedRecord { len })
        );
    }
}
