//! Property-based tests: every codec round-trips, corruption is caught.

use edp_packet::{
    parse_packet, Ecn, EthHeader, EtherType, HulaProbe, IcmpEcho, IcmpEchoKind, IpProto,
    Ipv4Header, KvHeader, KvOp, LivenessHeader, LivenessKind, MacAddr, PacketBuilder,
    TelemetryHeader, UdpHeader, L4,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_ecn() -> impl Strategy<Value = Ecn> {
    prop_oneof![
        Just(Ecn::NotEct),
        Just(Ecn::Ect0),
        Just(Ecn::Ect1),
        Just(Ecn::Ce)
    ]
}

proptest! {
    /// Ethernet headers round-trip for every address/type combination.
    #[test]
    fn eth_round_trip(dst: [u8; 6], src: [u8; 6], ty in 0x0600u16..=0xffff) {
        let h = EthHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: EtherType::from_u16(ty),
        };
        let mut out = Vec::new();
        h.emit(&mut out);
        let (parsed, used) = EthHeader::parse(&out).expect("round trip");
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(used, out.len());
    }

    /// IPv4 headers round-trip and their checksum verifies.
    #[test]
    fn ipv4_round_trip(
        src in arb_ip(),
        dst in arb_ip(),
        dscp in 0u8..64,
        ecn in arb_ecn(),
        ttl: u8,
        ident: u16,
        payload_len in 0u16..1000,
    ) {
        let h = Ipv4Header {
            dscp,
            ecn,
            total_len: 20 + payload_len,
            ident,
            ttl,
            proto: IpProto::Udp,
            src,
            dst,
        };
        let mut out = Vec::new();
        h.emit(&mut out);
        out.resize(20 + payload_len as usize, 0xAB);
        let (parsed, _) = Ipv4Header::parse(&out).expect("round trip");
        prop_assert_eq!(parsed, h);
    }

    /// Flipping any single bit of an IPv4 header breaks parsing (checksum
    /// or structural rejection) — never silently misparses into a
    /// *different valid* header.
    #[test]
    fn ipv4_single_bit_corruption_never_silent(
        src in arb_ip(),
        dst in arb_ip(),
        byte in 0usize..20,
        bit in 0u8..8,
    ) {
        let h = Ipv4Header {
            dscp: 0,
            ecn: Ecn::NotEct,
            total_len: 20,
            ident: 7,
            ttl: 64,
            proto: IpProto::Udp,
            src,
            dst,
        };
        let mut out = Vec::new();
        h.emit(&mut out);
        out[byte] ^= 1 << bit;
        match Ipv4Header::parse(&out) {
            Err(_) => {} // rejected: good
            Ok((reparsed, _)) => {
                // Only acceptable if the flip cancelled out (impossible
                // for a single bit with a one's-complement sum) — so the
                // reparsed header must NOT differ from the original in a
                // silent way. A single-bit flip always breaks the sum.
                prop_assert_eq!(reparsed, h, "single-bit flip went unnoticed");
            }
        }
    }

    /// Full frames built by PacketBuilder always parse back, and the
    /// payload is recoverable at the reported offset.
    #[test]
    fn udp_frame_round_trip(
        src in arb_ip(),
        dst in arb_ip(),
        sp: u16,
        dp: u16,
        payload in prop::collection::vec(any::<u8>(), 0..600),
        pad in 0usize..1600,
    ) {
        // Avoid app-header ports: those demand a valid app payload.
        prop_assume!(!(17066..=17069).contains(&sp) && !(17066..=17069).contains(&dp));
        let frame = PacketBuilder::udp(src, dst, sp, dp, &payload).pad_to(pad).build();
        let parsed = parse_packet(&frame).expect("parse");
        let ip = parsed.ipv4.expect("ip");
        prop_assert_eq!(ip.src, src);
        prop_assert_eq!(ip.dst, dst);
        match parsed.l4 {
            Some(L4::Udp(u)) => {
                prop_assert_eq!(u.src_port, sp);
                prop_assert_eq!(u.dst_port, dp);
            }
            other => prop_assert!(false, "wrong l4 {:?}", other),
        }
        prop_assert_eq!(
            &frame[parsed.payload_offset..parsed.payload_offset + payload.len()],
            &payload[..]
        );
        prop_assert!(frame.len() >= pad.min(1600));
    }

    /// TCP frames round-trip with sequence numbers intact.
    #[test]
    fn tcp_frame_round_trip(
        src in arb_ip(),
        dst in arb_ip(),
        seq: u32,
        ack: u32,
        payload in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let frame = PacketBuilder::tcp(src, dst, 80, 443, seq, ack, &payload).build();
        let parsed = parse_packet(&frame).expect("parse");
        match parsed.l4 {
            Some(L4::Tcp(t)) => {
                prop_assert_eq!(t.seq, seq);
                prop_assert_eq!(t.ack, ack);
            }
            other => prop_assert!(false, "wrong l4 {:?}", other),
        }
    }

    /// ICMP echo frames round-trip.
    #[test]
    fn icmp_round_trip(ident: u16, seq: u16, req: bool, payload in prop::collection::vec(any::<u8>(), 0..100)) {
        let mut out = Vec::new();
        let h = IcmpEcho {
            kind: if req { IcmpEchoKind::Request } else { IcmpEchoKind::Reply },
            ident,
            seq,
        };
        h.emit(&mut out, &payload);
        let (parsed, used) = IcmpEcho::parse(&out).expect("parse");
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(used, 8);
    }

    /// UDP checksum catches any single corrupted payload byte.
    #[test]
    fn udp_checksum_catches_payload_corruption(
        payload in prop::collection::vec(any::<u8>(), 1..300),
        victim_byte in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let ip = Ipv4Header {
            dscp: 0,
            ecn: Ecn::NotEct,
            total_len: 0, // unused by UDP checksum helper
            ident: 0,
            ttl: 64,
            proto: IpProto::Udp,
            src,
            dst,
        };
        let h = UdpHeader { src_port: 1, dst_port: 2, len: (8 + payload.len()) as u16 };
        let mut out = Vec::new();
        h.emit(&mut out, Some(&ip), &payload);
        let idx = 8 + victim_byte.index(payload.len());
        out[idx] ^= flip;
        // One's-complement sums can alias only if the flip produces the
        // same 16-bit word sum — a xor with a nonzero value in one byte
        // never does.
        prop_assert!(UdpHeader::parse(&out, Some(&ip)).is_err());
    }

    /// All four application headers round-trip.
    #[test]
    fn app_headers_round_trip(
        tor: u16, util: u8, seq: u32,
        q: u32, d: u32, hops: u8,
        key: u64, value: u64,
        origin: u16, lseq: u32, ts: u64,
    ) {
        let mut out = Vec::new();
        let h = HulaProbe { tor_id: tor, max_util: util, seq };
        h.emit(&mut out);
        prop_assert_eq!(HulaProbe::parse(&out).expect("hula").0, h);

        let mut out = Vec::new();
        let t = TelemetryHeader { max_queue_bytes: q, path_delay_ns: d, hop_count: hops };
        t.emit(&mut out);
        prop_assert_eq!(TelemetryHeader::parse(&out).expect("tel").0, t);

        for op in [KvOp::Get, KvOp::Put, KvOp::Reply] {
            let mut out = Vec::new();
            let k = KvHeader { op, key, value };
            k.emit(&mut out);
            prop_assert_eq!(KvHeader::parse(&out).expect("kv").0, k);
        }

        for kind in [LivenessKind::Request, LivenessKind::Reply] {
            let mut out = Vec::new();
            let l = LivenessHeader { kind, origin, seq: lseq, ts_ns: ts };
            l.emit(&mut out);
            prop_assert_eq!(LivenessHeader::parse(&out).expect("live").0, l);
        }
    }

    /// Arbitrary garbage never panics the parser.
    #[test]
    fn parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = parse_packet(&bytes);
    }

    /// In-place ECN and TTL patches keep the header checksum-valid.
    #[test]
    fn patches_preserve_validity(src in arb_ip(), dst in arb_ip(), ecn in arb_ecn(), ttl in 1u8..255) {
        let frame = PacketBuilder::udp(src, dst, 9, 10, b"x").ttl(ttl).build();
        let mut buf = frame.clone();
        Ipv4Header::patch_ecn(&mut buf, 14, ecn);
        let new_ttl = Ipv4Header::patch_ttl_decrement(&mut buf, 14);
        prop_assert_eq!(new_ttl, ttl - 1);
        let parsed = parse_packet(&buf).expect("still valid");
        let ip = parsed.ipv4.expect("ip");
        prop_assert_eq!(ip.ecn, ecn);
        prop_assert_eq!(ip.ttl, ttl - 1);
    }
}
