//! Full-stack packet parsing: the software analogue of a PISA parser.
//!
//! [`parse_packet`] walks Ethernet → IPv4 → L4 → app header and returns a
//! [`ParsedPacket`] carrying each layer plus byte offsets, so pipelines can
//! rewrite headers in place afterwards. Unknown app payloads are not an
//! error — `app` is simply `None`, exactly like a P4 parser accepting a
//! packet whose deeper headers it has no states for.

use crate::apphdr::{
    HulaProbe, KvHeader, LivenessHeader, RpcHeader, TelemetryHeader, PORT_HULA, PORT_KV,
    PORT_LIVENESS, PORT_RPC, PORT_TELEMETRY,
};
use crate::error::ParseResult;
use crate::eth::{EthHeader, EtherType};
use crate::flow::FlowKey;
use crate::ipv4::{IpProto, Ipv4Header};
use crate::l4::{IcmpEcho, TcpHeader, UdpHeader};

/// Parsed transport layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum L4 {
    /// UDP header.
    Udp(UdpHeader),
    /// TCP header.
    Tcp(TcpHeader),
    /// ICMP echo request/reply.
    IcmpEcho(IcmpEcho),
}

/// Parsed application header (rides over UDP on a well-known port).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AppHeader {
    /// HULA utilization probe.
    Hula(HulaProbe),
    /// In-band telemetry record.
    Telemetry(TelemetryHeader),
    /// NetCache-style key-value message.
    Kv(KvHeader),
    /// Liveness echo probe.
    Liveness(LivenessHeader),
    /// Endpoint-model RPC message.
    Rpc(RpcHeader),
}

/// A fully parsed packet with layer offsets into the original buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParsedPacket {
    /// Ethernet header (always present).
    pub eth: EthHeader,
    /// IPv4 header, when the ethertype is IPv4.
    pub ipv4: Option<Ipv4Header>,
    /// Transport header, when IPv4 carried a supported protocol.
    pub l4: Option<L4>,
    /// Application header, when a known UDP port matched.
    pub app: Option<AppHeader>,
    /// Byte offset of the IPv4 header.
    pub ip_offset: usize,
    /// Byte offset of the transport header.
    pub l4_offset: usize,
    /// Byte offset of the first payload byte past all parsed headers.
    pub payload_offset: usize,
}

impl ParsedPacket {
    /// The flow 5-tuple, when the packet is IPv4 (ports 0 for non-TCP/UDP).
    pub fn flow_key(&self) -> Option<FlowKey> {
        let ip = self.ipv4?;
        let (sp, dp) = match self.l4 {
            Some(L4::Udp(u)) => (u.src_port, u.dst_port),
            Some(L4::Tcp(t)) => (t.src_port, t.dst_port),
            _ => (0, 0),
        };
        Some(FlowKey {
            src: ip.src,
            dst: ip.dst,
            proto: ip.proto.to_u8(),
            src_port: sp,
            dst_port: dp,
        })
    }

    /// True when this frame is an event-carrier injected by the event
    /// merger rather than a real network packet.
    pub fn is_event_carrier(&self) -> bool {
        self.eth.ethertype == EtherType::EventCarrier
    }
}

/// Parses a frame as far as the known layers allow.
///
/// Fails only on malformed *parsed* layers (bad checksum, truncation);
/// unknown ethertypes/protocols/ports leave the deeper fields `None`.
pub fn parse_packet(buf: &[u8]) -> ParseResult<ParsedPacket> {
    let (eth, eth_len) = EthHeader::parse(buf)?;
    let mut pp = ParsedPacket {
        eth,
        ipv4: None,
        l4: None,
        app: None,
        ip_offset: eth_len,
        l4_offset: eth_len,
        payload_offset: eth_len,
    };
    if eth.ethertype != EtherType::Ipv4 {
        return Ok(pp);
    }
    let (ip, ip_len) = Ipv4Header::parse(&buf[eth_len..])?;
    pp.ipv4 = Some(ip);
    pp.l4_offset = eth_len + ip_len;
    pp.payload_offset = pp.l4_offset;
    let l4_buf = &buf[pp.l4_offset..];
    match ip.proto {
        IpProto::Udp => {
            let (udp, udp_len) = UdpHeader::parse(l4_buf, Some(&ip))?;
            pp.l4 = Some(L4::Udp(udp));
            pp.payload_offset = pp.l4_offset + udp_len;
            let app_buf = &buf[pp.payload_offset..];
            // Match on destination port first (requests), then source port
            // (replies flowing back).
            let port = if is_app_port(udp.dst_port) {
                Some(udp.dst_port)
            } else if is_app_port(udp.src_port) {
                Some(udp.src_port)
            } else {
                None
            };
            if let Some(port) = port {
                let (app, used) = parse_app(port, app_buf)?;
                pp.app = Some(app);
                pp.payload_offset += used;
            }
        }
        IpProto::Tcp => {
            let (tcp, tcp_len) = TcpHeader::parse(l4_buf)?;
            pp.l4 = Some(L4::Tcp(tcp));
            pp.payload_offset = pp.l4_offset + tcp_len;
        }
        IpProto::Icmp => {
            let (icmp, icmp_len) = IcmpEcho::parse(l4_buf)?;
            pp.l4 = Some(L4::IcmpEcho(icmp));
            pp.payload_offset = pp.l4_offset + icmp_len;
        }
        IpProto::Other(_) => {}
    }
    Ok(pp)
}

/// One-line human-readable packet summary for traces, tcpdump-style.
///
/// Never fails: malformed frames summarize as `malformed(<error>)`.
pub fn summarize(buf: &[u8]) -> String {
    let pp = match parse_packet(buf) {
        Ok(pp) => pp,
        Err(e) => return format!("malformed({e}) {}B", buf.len()),
    };
    if pp.is_event_carrier() {
        return format!("event-carrier {}B", buf.len());
    }
    let Some(ip) = pp.ipv4 else {
        return format!(
            "eth {} > {} type {:#06x} {}B",
            pp.eth.src,
            pp.eth.dst,
            pp.eth.ethertype.to_u16(),
            buf.len()
        );
    };
    let app = match pp.app {
        Some(AppHeader::Hula(h)) => {
            format!(" hula[tor={} util={} seq={}]", h.tor_id, h.max_util, h.seq)
        }
        Some(AppHeader::Telemetry(t)) => {
            format!(
                " int[maxq={} delay={} hops={}]",
                t.max_queue_bytes, t.path_delay_ns, t.hop_count
            )
        }
        Some(AppHeader::Kv(k)) => format!(" kv[{:?} key={}]", k.op, k.key),
        Some(AppHeader::Liveness(l)) => format!(" live[{:?} seq={}]", l.kind, l.seq),
        Some(AppHeader::Rpc(r)) => format!(
            " rpc[{:?} ep={} seq={} key={}]",
            r.kind, r.endpoint, r.seq, r.key
        ),
        None => String::new(),
    };
    match pp.l4 {
        Some(L4::Udp(u)) => format!(
            "IPv4 {}:{} > {}:{} UDP {}B{}",
            ip.src,
            u.src_port,
            ip.dst,
            u.dst_port,
            buf.len(),
            app
        ),
        Some(L4::Tcp(t)) => format!(
            "IPv4 {}:{} > {}:{} TCP seq={} {}B",
            ip.src,
            t.src_port,
            ip.dst,
            t.dst_port,
            t.seq,
            buf.len()
        ),
        Some(L4::IcmpEcho(i)) => format!(
            "IPv4 {} > {} ICMP {:?} seq={} {}B",
            ip.src,
            ip.dst,
            i.kind,
            i.seq,
            buf.len()
        ),
        None => format!(
            "IPv4 {} > {} proto={} {}B",
            ip.src,
            ip.dst,
            ip.proto.to_u8(),
            buf.len()
        ),
    }
}

fn is_app_port(p: u16) -> bool {
    matches!(
        p,
        PORT_HULA | PORT_TELEMETRY | PORT_KV | PORT_LIVENESS | PORT_RPC
    )
}

fn parse_app(port: u16, buf: &[u8]) -> ParseResult<(AppHeader, usize)> {
    match port {
        PORT_HULA => HulaProbe::parse(buf).map(|(h, n)| (AppHeader::Hula(h), n)),
        PORT_TELEMETRY => TelemetryHeader::parse(buf).map(|(h, n)| (AppHeader::Telemetry(h), n)),
        PORT_KV => KvHeader::parse(buf).map(|(h, n)| (AppHeader::Kv(h), n)),
        PORT_LIVENESS => LivenessHeader::parse(buf).map(|(h, n)| (AppHeader::Liveness(h), n)),
        PORT_RPC => RpcHeader::parse(buf).map(|(h, n)| (AppHeader::Rpc(h), n)),
        _ => unreachable!("caller checked is_app_port"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::ipv4::Ecn;
    use std::net::Ipv4Addr;

    fn a(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    #[test]
    fn udp_packet_full_parse() {
        let frame = PacketBuilder::udp(a(1), a(2), 5555, 8080, b"payload").build();
        let pp = parse_packet(&frame).expect("parse");
        assert!(pp.ipv4.is_some());
        match pp.l4 {
            Some(L4::Udp(u)) => {
                assert_eq!(u.src_port, 5555);
                assert_eq!(u.dst_port, 8080);
            }
            other => panic!("wrong l4: {other:?}"),
        }
        assert!(pp.app.is_none());
        assert_eq!(&frame[pp.payload_offset..], b"payload");
        let fk = pp.flow_key().expect("flow");
        assert_eq!(fk.src_port, 5555);
    }

    #[test]
    fn hula_probe_parses_as_app() {
        let probe = HulaProbe {
            tor_id: 2,
            max_util: 9,
            seq: 77,
        };
        let frame = PacketBuilder::hula_probe(a(1), a(2), &probe).build();
        let pp = parse_packet(&frame).expect("parse");
        assert_eq!(pp.app, Some(AppHeader::Hula(probe)));
    }

    #[test]
    fn reply_matches_on_src_port() {
        // A liveness reply has the well-known port as *source*.
        let l = LivenessHeader {
            kind: crate::apphdr::LivenessKind::Reply,
            origin: 1,
            seq: 2,
            ts_ns: 3,
        };
        let mut payload = Vec::new();
        l.emit(&mut payload);
        let frame = PacketBuilder::udp(a(2), a(1), PORT_LIVENESS, 9999, &payload).build();
        let pp = parse_packet(&frame).expect("parse");
        assert!(matches!(pp.app, Some(AppHeader::Liveness(_))));
    }

    #[test]
    fn non_ip_stops_after_eth() {
        let frame = PacketBuilder::event_carrier(64);
        let pp = parse_packet(&frame).expect("parse");
        assert!(pp.is_event_carrier());
        assert!(pp.ipv4.is_none());
        assert!(pp.l4.is_none());
    }

    #[test]
    fn tcp_and_icmp_parse() {
        let frame = PacketBuilder::tcp(a(1), a(2), 80, 443, 1, 2, &[]).build();
        let pp = parse_packet(&frame).expect("parse");
        assert!(matches!(pp.l4, Some(L4::Tcp(_))));

        let frame = PacketBuilder::icmp_echo(a(1), a(2), true, 7, 9).build();
        let pp = parse_packet(&frame).expect("parse");
        assert!(matches!(pp.l4, Some(L4::IcmpEcho(_))));
    }

    #[test]
    fn corrupted_ip_propagates_error() {
        let mut frame = PacketBuilder::udp(a(1), a(2), 1, 2, &[]).build();
        frame[14 + 8] ^= 0xff; // TTL inside IP header
        assert!(parse_packet(&frame).is_err());
    }

    #[test]
    fn ecn_survives_parse() {
        let frame = PacketBuilder::udp(a(1), a(2), 1, 2, &[])
            .ecn(Ecn::Ce)
            .build();
        let pp = parse_packet(&frame).expect("parse");
        assert_eq!(pp.ipv4.expect("ip").ecn, Ecn::Ce);
    }
}
