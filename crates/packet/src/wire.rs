//! Big-endian wire codec helpers and the Internet checksum.

/// Reads a big-endian `u16` at `off`. Caller must bounds-check.
pub fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

/// Reads a big-endian `u32` at `off`. Caller must bounds-check.
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Reads a big-endian `u64` at `off`. Caller must bounds-check.
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_be_bytes(b)
}

/// Writes a big-endian `u16` at `off`.
pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_be_bytes());
}

/// Writes a big-endian `u32` at `off`.
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_be_bytes());
}

/// Writes a big-endian `u64` at `off`.
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_be_bytes());
}

/// RFC 1071 Internet checksum over `data` (one's-complement sum folded to
/// 16 bits, then complemented). An odd trailing byte is padded with zero.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data, 0))
}

/// One's-complement 32-bit accumulation of 16-bit big-endian words,
/// starting from `init`; used to chain pseudo-header and payload sums.
///
/// Internally sums 32-bit chunks into two independent 64-bit lanes:
/// because 2^16 ≡ 1 (mod 0xffff), any word grouping is congruent to the
/// 16-bit-word sum after [`fold`], and the wide lanes turn a
/// carry-chained byte-pair loop into ~4 adds per 8 bytes — this runs on
/// every checksum verify of every parsed frame.
pub fn sum_words(data: &[u8], init: u32) -> u32 {
    let mut chunks = data.chunks_exact(8);
    let (mut s0, mut s1) = (0u64, 0u64);
    for c in &mut chunks {
        s0 += u32::from_be_bytes([c[0], c[1], c[2], c[3]]) as u64;
        s1 += u32::from_be_bytes([c[4], c[5], c[6], c[7]]) as u64;
    }
    let mut sum = init as u64 + s0 + s1;
    let mut pairs = chunks.remainder().chunks_exact(2);
    for c in &mut pairs {
        sum += u16::from_be_bytes([c[0], c[1]]) as u64;
    }
    if let [last] = pairs.remainder() {
        sum += u16::from_be_bytes([*last, 0]) as u64;
    }
    // Fold 64 → 32; the u32 result is congruent (mod 0xffff) to the
    // plain 16-bit-word sum, which is all `fold` relies on.
    while sum >> 32 != 0 {
        sum = (sum & 0xffff_ffff) + (sum >> 32);
    }
    sum as u32
}

/// Folds a 32-bit one's-complement accumulator to 16 bits.
pub fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut b = vec![0u8; 16];
        put_u16(&mut b, 0, 0xBEEF);
        put_u32(&mut b, 2, 0xDEAD_BEEF);
        put_u64(&mut b, 6, 0x0123_4567_89AB_CDEF);
        assert_eq!(get_u16(&b, 0), 0xBEEF);
        assert_eq!(get_u32(&b, 2), 0xDEAD_BEEF);
        assert_eq!(get_u64(&b, 6), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn checksum_rfc1071_example() {
        // Canonical example from RFC 1071 §3: words 0x0001, 0xf203,
        // 0xf4f5, 0xf6f7 sum to 0xddf2 before complement.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn checksum_of_zeroes_is_ffff() {
        assert_eq!(internet_checksum(&[0u8; 20]), 0xffff);
    }

    #[test]
    fn checksum_validates_to_zero() {
        // Inserting the checksum into the data makes the folded sum 0xffff.
        let mut data = vec![
            0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        let ck = internet_checksum(&data);
        put_u16(&mut data, 10, ck);
        assert_eq!(fold(sum_words(&data, 0)), 0xffff);
    }

    #[test]
    fn odd_length_padded() {
        assert_eq!(internet_checksum(&[0xab]), !0xab00);
    }
}
