//! Transport-layer codecs: UDP, TCP, and ICMP echo.
//!
//! TCP options are not modelled (the dataplane apps only need ports,
//! sequence numbers, and flags); the data-offset field is honoured on parse
//! so real-world-shaped captures with options still parse.

use crate::error::{check_len, ParseError, ParseResult};
use crate::ipv4::Ipv4Header;
use crate::wire::{fold, get_u16, get_u32, internet_checksum, put_u16, sum_words};
use serde::{Deserialize, Serialize};

/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;
/// TCP header length without options.
pub const TCP_HEADER_LEN: usize = 20;
/// ICMP echo header length.
pub const ICMP_ECHO_LEN: usize = 8;

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Header + payload length.
    pub len: u16,
}

impl UdpHeader {
    /// Parses the header; verifies the checksum against the pseudo-header
    /// if `ip` is given and the checksum field is non-zero (zero means
    /// "no checksum" per RFC 768).
    pub fn parse(buf: &[u8], ip: Option<&Ipv4Header>) -> ParseResult<(Self, usize)> {
        check_len("udp", buf.len(), UDP_HEADER_LEN)?;
        let len = get_u16(buf, 4);
        if (len as usize) < UDP_HEADER_LEN || len as usize > buf.len() {
            return Err(ParseError::BadLength { layer: "udp" });
        }
        let cksum = get_u16(buf, 6);
        if let (Some(ip), true) = (ip, cksum != 0) {
            let sum = sum_words(&buf[..len as usize], ip.pseudo_header_sum(len));
            if fold(sum) != 0xffff {
                return Err(ParseError::BadChecksum { layer: "udp" });
            }
        }
        Ok((
            UdpHeader {
                src_port: get_u16(buf, 0),
                dst_port: get_u16(buf, 2),
                len,
            },
            UDP_HEADER_LEN,
        ))
    }

    /// Disables the UDP checksum of an encoded datagram in place (sets it
    /// to 0, which RFC 768 defines as "no checksum"). Dataplane programs
    /// that rewrite UDP payload bytes (e.g. in-band telemetry stamping)
    /// use this instead of recomputing over the full payload, exactly as
    /// hardware INT implementations commonly do.
    pub fn patch_zero_checksum(buf: &mut [u8], l4_off: usize) {
        put_u16(buf, l4_off + 6, 0);
    }

    /// Appends the header and `payload`, computing the checksum over the
    /// pseudo-header when `ip` is given (otherwise emits checksum 0).
    pub fn emit(&self, out: &mut Vec<u8>, ip: Option<&Ipv4Header>, payload: &[u8]) {
        let start = out.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.len.to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(payload);
        if let Some(ip) = ip {
            let sum = sum_words(&out[start..], ip.pseudo_header_sum(self.len));
            let mut ck = !fold(sum);
            if ck == 0 {
                ck = 0xffff; // RFC 768: transmitted as all-ones
            }
            put_u16(&mut out[start..], 6, ck);
        }
    }
}

/// Minimal bitflags implementation so we avoid an extra dependency.
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty {
            $($(#[$fmeta:meta])* const $flag:ident = $val:expr;)*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
        pub struct $name(pub $ty);

        impl $name {
            $($(#[$fmeta])* pub const $flag: $name = $name($val);)*

            /// The empty flag set.
            pub const fn empty() -> Self { $name(0) }
            /// True if all bits of `other` are set in `self`.
            pub const fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }
            /// Union of two flag sets.
            pub const fn union(self, other: $name) -> $name { $name(self.0 | other.0) }
        }

        impl core::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name { self.union(rhs) }
        }
    };
}

bitflags_lite! {
    /// TCP flag bits (subset used by the apps and generators).
    pub struct TcpFlags: u8 {
        /// FIN — sender is finished.
        const FIN = 0x01;
        /// SYN — synchronize sequence numbers.
        const SYN = 0x02;
        /// RST — reset the connection.
        const RST = 0x04;
        /// PSH — push buffered data.
        const PSH = 0x08;
        /// ACK — acknowledgement field is valid.
        const ACK = 0x10;
        /// ECE — ECN echo (receiver saw CE).
        const ECE = 0x40;
        /// CWR — congestion window reduced.
        const CWR = 0x80;
    }
}

/// A TCP header (options ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Parses the header, honouring the data-offset field; returns the
    /// header and total bytes consumed (header + options).
    pub fn parse(buf: &[u8]) -> ParseResult<(Self, usize)> {
        check_len("tcp", buf.len(), TCP_HEADER_LEN)?;
        let data_off = ((buf[12] >> 4) as usize) * 4;
        if data_off < TCP_HEADER_LEN {
            return Err(ParseError::BadLength { layer: "tcp" });
        }
        check_len("tcp", buf.len(), data_off)?;
        Ok((
            TcpHeader {
                src_port: get_u16(buf, 0),
                dst_port: get_u16(buf, 2),
                seq: get_u32(buf, 4),
                ack: get_u32(buf, 8),
                flags: TcpFlags(buf[13]),
                window: get_u16(buf, 14),
            },
            data_off,
        ))
    }

    /// Appends the 20-byte header and `payload`, computing the checksum
    /// over the pseudo-header when `ip` is given.
    pub fn emit(&self, out: &mut Vec<u8>, ip: Option<&Ipv4Header>, payload: &[u8]) {
        let start = out.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push((TCP_HEADER_LEN as u8 / 4) << 4);
        out.push(self.flags.0);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent
        out.extend_from_slice(payload);
        if let Some(ip) = ip {
            let l4_len = (TCP_HEADER_LEN + payload.len()) as u16;
            let sum = sum_words(&out[start..], ip.pseudo_header_sum(l4_len));
            put_u16(&mut out[start..], 16, !fold(sum));
        }
    }
}

/// ICMP echo message kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IcmpEchoKind {
    /// Echo request (type 8).
    Request,
    /// Echo reply (type 0).
    Reply,
}

/// An ICMP echo request/reply header, used by the liveness-monitoring app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IcmpEcho {
    /// Request or reply.
    pub kind: IcmpEchoKind,
    /// Identifier (distinguishes probe streams).
    pub ident: u16,
    /// Sequence number.
    pub seq: u16,
}

impl IcmpEcho {
    /// Parses and checksum-verifies the message (header + payload).
    pub fn parse(buf: &[u8]) -> ParseResult<(Self, usize)> {
        check_len("icmp", buf.len(), ICMP_ECHO_LEN)?;
        let kind = match buf[0] {
            8 => IcmpEchoKind::Request,
            0 => IcmpEchoKind::Reply,
            other => {
                return Err(ParseError::Unsupported {
                    layer: "icmp",
                    field: "type",
                    value: other as u64,
                })
            }
        };
        if fold(sum_words(buf, 0)) != 0xffff {
            return Err(ParseError::BadChecksum { layer: "icmp" });
        }
        Ok((
            IcmpEcho {
                kind,
                ident: get_u16(buf, 4),
                seq: get_u16(buf, 6),
            },
            ICMP_ECHO_LEN,
        ))
    }

    /// Appends the message with checksum computed over header + payload.
    pub fn emit(&self, out: &mut Vec<u8>, payload: &[u8]) {
        let start = out.len();
        out.push(match self.kind {
            IcmpEchoKind::Request => 8,
            IcmpEchoKind::Reply => 0,
        });
        out.push(0); // code
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.ident.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(payload);
        let ck = internet_checksum(&out[start..]);
        put_u16(&mut out[start..], 2, ck);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::{Ecn, IpProto};
    use std::net::Ipv4Addr;

    fn ip(proto: IpProto, l4_len: u16) -> Ipv4Header {
        Ipv4Header {
            dscp: 0,
            ecn: Ecn::NotEct,
            total_len: 20 + l4_len,
            ident: 1,
            ttl: 64,
            proto,
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
        }
    }

    #[test]
    fn udp_round_trip_with_checksum() {
        let payload = b"hello world";
        let h = UdpHeader {
            src_port: 1111,
            dst_port: 2222,
            len: (UDP_HEADER_LEN + payload.len()) as u16,
        };
        let iph = ip(IpProto::Udp, h.len);
        let mut out = Vec::new();
        h.emit(&mut out, Some(&iph), payload);
        let (parsed, used) = UdpHeader::parse(&out, Some(&iph)).expect("parse");
        assert_eq!(parsed, h);
        assert_eq!(used, UDP_HEADER_LEN);
        assert_eq!(&out[UDP_HEADER_LEN..], payload);
    }

    #[test]
    fn udp_corruption_detected() {
        let payload = b"data!";
        let h = UdpHeader {
            src_port: 5,
            dst_port: 6,
            len: (UDP_HEADER_LEN + payload.len()) as u16,
        };
        let iph = ip(IpProto::Udp, h.len);
        let mut out = Vec::new();
        h.emit(&mut out, Some(&iph), payload);
        out[9] ^= 0x40;
        assert!(matches!(
            UdpHeader::parse(&out, Some(&iph)),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn udp_zero_checksum_skips_verify() {
        let h = UdpHeader {
            src_port: 1,
            dst_port: 2,
            len: 8,
        };
        let mut out = Vec::new();
        h.emit(&mut out, None, &[]);
        let iph = ip(IpProto::Udp, 8);
        assert!(UdpHeader::parse(&out, Some(&iph)).is_ok());
    }

    #[test]
    fn udp_bad_len_rejected() {
        let h = UdpHeader {
            src_port: 1,
            dst_port: 2,
            len: 200,
        };
        let mut out = Vec::new();
        h.emit(&mut out, None, &[]);
        assert!(matches!(
            UdpHeader::parse(&out, None),
            Err(ParseError::BadLength { .. })
        ));
    }

    #[test]
    fn tcp_round_trip() {
        let h = TcpHeader {
            src_port: 80,
            dst_port: 53211,
            seq: 0xAABBCCDD,
            ack: 0x11223344,
            flags: TcpFlags::SYN | TcpFlags::ACK,
            window: 4096,
        };
        let iph = ip(IpProto::Tcp, 20);
        let mut out = Vec::new();
        h.emit(&mut out, Some(&iph), &[]);
        let (parsed, used) = TcpHeader::parse(&out).expect("parse");
        assert_eq!(parsed, h);
        assert_eq!(used, TCP_HEADER_LEN);
        assert!(parsed.flags.contains(TcpFlags::SYN));
        assert!(!parsed.flags.contains(TcpFlags::FIN));
    }

    #[test]
    fn tcp_options_skipped() {
        let h = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 100,
        };
        let mut out = Vec::new();
        h.emit(&mut out, None, &[]);
        // Fake 4 bytes of options: bump data offset to 6 words.
        out[12] = 6 << 4;
        out.extend_from_slice(&[1, 1, 1, 1]);
        let (_, used) = TcpHeader::parse(&out).expect("parse with options");
        assert_eq!(used, 24);
    }

    #[test]
    fn tcp_bad_offset_rejected() {
        let mut out = vec![0u8; 20];
        out[12] = 2 << 4; // 8 bytes: less than minimum
        assert!(matches!(
            TcpHeader::parse(&out),
            Err(ParseError::BadLength { .. })
        ));
    }

    #[test]
    fn icmp_round_trip_and_corruption() {
        let h = IcmpEcho {
            kind: IcmpEchoKind::Request,
            ident: 7,
            seq: 42,
        };
        let mut out = Vec::new();
        h.emit(&mut out, b"probe-payload");
        let (parsed, _) = IcmpEcho::parse(&out).expect("parse");
        assert_eq!(parsed, h);
        out[10] ^= 1;
        assert!(matches!(
            IcmpEcho::parse(&out),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn icmp_unknown_type_rejected() {
        let mut out = Vec::new();
        IcmpEcho {
            kind: IcmpEchoKind::Reply,
            ident: 0,
            seq: 0,
        }
        .emit(&mut out, &[]);
        out[0] = 13; // timestamp request: unsupported
        assert!(matches!(
            IcmpEcho::parse(&out),
            Err(ParseError::Unsupported { .. })
        ));
    }

    #[test]
    fn flags_ops() {
        let f = TcpFlags::SYN | TcpFlags::ECE;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ECE));
        assert!(!f.contains(TcpFlags::ACK));
        assert_eq!(TcpFlags::empty().0, 0);
    }
}
