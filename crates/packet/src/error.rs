//! Packet parsing and construction errors.

use core::fmt;

/// Why a packet failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer ended before the header (or declared length) did.
    Truncated {
        /// Which layer was being parsed.
        layer: &'static str,
        /// Bytes that were needed.
        needed: usize,
        /// Bytes that were available.
        have: usize,
    },
    /// A version / magic / type field had an unsupported value.
    Unsupported {
        /// Which layer was being parsed.
        layer: &'static str,
        /// The offending field.
        field: &'static str,
        /// The value seen.
        value: u64,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Which layer failed.
        layer: &'static str,
    },
    /// A length field is inconsistent with the enclosing buffer.
    BadLength {
        /// Which layer failed.
        layer: &'static str,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated {
                layer,
                needed,
                have,
            } => {
                write!(f, "{layer}: truncated, needed {needed} bytes, have {have}")
            }
            ParseError::Unsupported {
                layer,
                field,
                value,
            } => {
                write!(f, "{layer}: unsupported {field} = {value:#x}")
            }
            ParseError::BadChecksum { layer } => write!(f, "{layer}: bad checksum"),
            ParseError::BadLength { layer } => write!(f, "{layer}: inconsistent length"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Result alias for parsers.
pub type ParseResult<T> = Result<T, ParseError>;

/// Bounds-checks a read of `needed` bytes from a `have`-byte buffer.
pub(crate) fn check_len(layer: &'static str, have: usize, needed: usize) -> ParseResult<()> {
    if have < needed {
        Err(ParseError::Truncated {
            layer,
            needed,
            have,
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        let e = ParseError::Truncated {
            layer: "ipv4",
            needed: 20,
            have: 3,
        };
        assert_eq!(e.to_string(), "ipv4: truncated, needed 20 bytes, have 3");
        let e = ParseError::Unsupported {
            layer: "eth",
            field: "ethertype",
            value: 0x1234,
        };
        assert!(e.to_string().contains("0x1234"));
        assert!(ParseError::BadChecksum { layer: "udp" }
            .to_string()
            .contains("udp"));
    }

    #[test]
    fn check_len_boundary() {
        assert!(check_len("x", 4, 4).is_ok());
        assert!(check_len("x", 3, 4).is_err());
    }
}
