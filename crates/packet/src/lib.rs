//! # edp-packet — byte-accurate packet substrate
//!
//! Frames in this workspace are real bytes, not symbolic records: headers
//! are encoded/decoded with checksums, pipelines rewrite them in place, and
//! a corrupted byte is *detected* the way real hardware would detect it.
//! This keeps the dataplane models honest — a PISA parser model that works
//! here works because the wire format is right.
//!
//! Layers provided:
//!
//! * [`EthHeader`] — Ethernet II, including the event-carrier ethertype the
//!   event merger uses for injected metadata frames;
//! * [`Ipv4Header`] — IPv4 without options, with in-place ECN/TTL patching;
//! * [`UdpHeader`], [`TcpHeader`], [`IcmpEcho`] — transports;
//! * [`HulaProbe`], [`TelemetryHeader`], [`KvHeader`], [`LivenessHeader`] —
//!   application headers used by the paper's example applications;
//! * [`parse_packet`] — the full parser chain, PISA-parser-shaped;
//! * [`PacketBuilder`] — wire-valid frame assembly;
//! * [`FlowKey`] / [`Fnv1a`] — deterministic flow hashing.
//!
//! ```
//! use edp_packet::{PacketBuilder, parse_packet, L4};
//! use std::net::Ipv4Addr;
//!
//! let frame = PacketBuilder::udp(
//!     Ipv4Addr::new(10, 0, 0, 1),
//!     Ipv4Addr::new(10, 0, 0, 2),
//!     4242, 8080, b"hello",
//! ).pad_to(64).build();
//!
//! let parsed = parse_packet(&frame).unwrap();
//! assert!(matches!(parsed.l4, Some(L4::Udp(u)) if u.dst_port == 8080));
//! assert_eq!(&frame[parsed.payload_offset..parsed.payload_offset + 5], b"hello");
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod addr;
mod apphdr;
mod builder;
mod burst;
mod error;
mod eth;
mod flow;
mod ipv4;
mod l4;
mod packet;
mod parse;
mod pcap;
mod pool;
pub mod wire;

pub use addr::MacAddr;
pub use apphdr::{
    HulaProbe, KvHeader, KvOp, LivenessHeader, LivenessKind, RpcHeader, RpcKind, TelemetryHeader,
    PORT_HULA, PORT_KV, PORT_LIVENESS, PORT_RPC, PORT_TELEMETRY,
};
pub use builder::PacketBuilder;
pub use burst::{Burst, ParsedBurst};
pub use error::{ParseError, ParseResult};
pub use eth::{EthHeader, EtherType, ETH_HEADER_LEN};
pub use flow::{fnv1a64, FlowKey, Fnv1a};
pub use ipv4::{Ecn, IpProto, Ipv4Header, IPV4_HEADER_LEN, TRIMMED_DSCP};
pub use l4::{
    IcmpEcho, IcmpEchoKind, TcpFlags, TcpHeader, UdpHeader, ICMP_ECHO_LEN, TCP_HEADER_LEN,
    UDP_HEADER_LEN,
};
pub use packet::{Packet, PacketUid};
pub use parse::{parse_packet, summarize, AppHeader, ParsedPacket, L4};
pub use pcap::{PcapError, PcapFile, PcapPacket, PcapResult, LINKTYPE_ETHERNET, MAX_FRAME_LEN};
pub use pool::{BufferPool, PoolStats};
