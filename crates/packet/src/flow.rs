//! Flow identification and hashing.
//!
//! The microburst program in the paper computes a flow id by hashing the IP
//! source and destination addresses; other apps use the full 5-tuple. Both
//! hash through deterministic FNV-1a so register indices are reproducible
//! across runs and platforms.

use crate::ipv4::IpProto;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A transport 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst: Ipv4Addr,
    /// IP protocol.
    pub proto: u8,
    /// Source port (0 for port-less protocols).
    pub src_port: u16,
    /// Destination port (0 for port-less protocols).
    pub dst_port: u16,
}

impl FlowKey {
    /// Builds a key from components.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProto, src_port: u16, dst_port: u16) -> Self {
        FlowKey {
            src,
            dst,
            proto: proto.to_u8(),
            src_port,
            dst_port,
        }
    }

    /// 64-bit FNV-1a over the full 5-tuple.
    pub fn hash64(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(&self.src.octets());
        h.write(&self.dst.octets());
        h.write(&[self.proto]);
        h.write(&self.src_port.to_be_bytes());
        h.write(&self.dst_port.to_be_bytes());
        h.finish()
    }

    /// The paper's microburst flow id: hash of (src ++ dst) only, reduced
    /// to a register index in `[0, buckets)`.
    pub fn ip_pair_index(&self, buckets: usize) -> usize {
        assert!(buckets > 0);
        let mut h = Fnv1a::new();
        h.write(&self.src.octets());
        h.write(&self.dst.octets());
        (h.finish() % buckets as u64) as usize
    }

    /// Full 5-tuple hash reduced to a register index in `[0, buckets)`.
    pub fn index(&self, buckets: usize) -> usize {
        assert!(buckets > 0);
        (self.hash64() % buckets as u64) as usize
    }

    /// ECMP-style path selection: an independent hash stream (different
    /// offset basis) so path choice does not correlate with register indices.
    pub fn ecmp_choice(&self, n_paths: usize) -> usize {
        assert!(n_paths > 0);
        let mut h = Fnv1a::with_basis(0x6c62_272e_07bb_0142);
        h.write(&self.hash64().to_be_bytes());
        (h.finish() % n_paths as u64) as usize
    }
}

/// Streaming 64-bit FNV-1a.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;

    /// Starts from the standard offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::BASIS)
    }

    /// Starts from a custom offset basis (for independent hash streams,
    /// e.g. the rows of a count-min sketch).
    pub fn with_basis(basis: u64) -> Self {
        Fnv1a(basis)
    }

    /// Feeds bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Final hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Convenience one-shot hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sp: u16, dp: u16) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProto::Tcp,
            sp,
            dp,
        )
    }

    #[test]
    fn fnv_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hash_is_stable_and_port_sensitive() {
        assert_eq!(key(1, 2).hash64(), key(1, 2).hash64());
        assert_ne!(key(1, 2).hash64(), key(1, 3).hash64());
    }

    #[test]
    fn ip_pair_index_ignores_ports() {
        assert_eq!(key(1, 2).ip_pair_index(64), key(9, 9).ip_pair_index(64));
    }

    #[test]
    fn indices_in_range() {
        for buckets in [1usize, 7, 64, 1024] {
            let i = key(5, 6).index(buckets);
            assert!(i < buckets);
            let i = key(5, 6).ip_pair_index(buckets);
            assert!(i < buckets);
            let i = key(5, 6).ecmp_choice(buckets);
            assert!(i < buckets);
        }
    }

    #[test]
    fn ecmp_differs_from_index_stream() {
        // Not a proof of independence, just a guard against accidentally
        // reusing the same stream for both.
        let spread: std::collections::HashSet<(usize, usize)> = (0..64u16)
            .map(|p| (key(p, 80).index(4), key(p, 80).ecmp_choice(4)))
            .collect();
        assert!(spread.len() > 8, "streams look identical: {spread:?}");
    }

    #[test]
    fn custom_basis_changes_hash() {
        let mut a = Fnv1a::new();
        let mut b = Fnv1a::with_basis(12345);
        a.write(b"x");
        b.write(b"x");
        assert_ne!(a.finish(), b.finish());
    }
}
