//! Array-of-packets burst processing (the DPDK `rx_burst` idiom).
//!
//! A [`Burst`] is an ordered group of frames that arrived at the same
//! simulated instant and are pushed through the pipeline as one unit. The
//! point is amortization, never reordering: every consumer of a burst is
//! required to produce the byte-identical observable outcome of processing
//! the frames one at a time, so the burst size (`EDP_BURST`) is a pure
//! execution-strategy knob.
//!
//! [`Burst::parse`] performs the array-of-packets parse: one pass over the
//! frames producing each packet's [`ParsedPacket`] and flow hash up front,
//! so downstream stages (flow-cache probes, table lookups) can operate on
//! runs of equal keys instead of re-deriving per packet.

use crate::packet::Packet;
use crate::parse::{parse_packet, ParsedPacket};

/// An ordered group of same-instant frames processed as one unit.
#[derive(Debug, Default)]
pub struct Burst {
    frames: Vec<Packet>,
}

impl Burst {
    /// An empty burst.
    pub fn new() -> Self {
        Burst { frames: Vec::new() }
    }

    /// An empty burst with room for `cap` frames.
    pub fn with_capacity(cap: usize) -> Self {
        Burst {
            frames: Vec::with_capacity(cap),
        }
    }

    /// Wraps an already-collected group of frames.
    pub fn from_frames(frames: Vec<Packet>) -> Self {
        Burst { frames }
    }

    /// Appends a frame, preserving arrival order.
    pub fn push(&mut self, pkt: Packet) {
        self.frames.push(pkt);
    }

    /// Number of frames in the burst.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when the burst holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Gives the frames back in arrival order.
    pub fn into_frames(self) -> Vec<Packet> {
        self.frames
    }

    /// The array-of-packets parse: one pass computing every frame's
    /// parse result and flow hash, consuming the burst.
    ///
    /// Unparseable frames keep their slot (`parsed[i] == None`) so the
    /// consumer can account the drop at exactly the position a sequential
    /// pass would have — impairment faults must land on the right packet
    /// inside a burst.
    ///
    /// Consecutive frames whose payloads alias the *same buffer* (zero-copy
    /// replays of one template via [`Packet::from_shared`] /
    /// [`Packet::clone`]) are parsed once and the result copied: two live
    /// slices at one address with one length hold identical bytes, and
    /// parsing is pure, so the reuse is unobservable.
    pub fn parse(self) -> ParsedBurst {
        let n = self.frames.len();
        let mut parsed: Vec<Option<ParsedPacket>> = Vec::with_capacity(n);
        let mut flow_hashes: Vec<Option<u64>> = Vec::with_capacity(n);
        let mut prev: Option<(*const u8, usize)> = None;
        for pkt in &self.frames {
            let key = (pkt.bytes().as_ptr(), pkt.len());
            if prev != Some(key) {
                let p = parse_packet(pkt.bytes()).ok();
                flow_hashes.push(p.as_ref().and_then(|p| p.flow_key()).map(|k| k.hash64()));
                parsed.push(p);
                prev = Some(key);
            } else {
                flow_hashes.push(*flow_hashes.last().expect("prev set after first slot"));
                parsed.push(*parsed.last().expect("prev set after first slot"));
            }
        }
        ParsedBurst {
            pkts: self.frames,
            parsed,
            flow_hashes,
        }
    }
}

impl From<Vec<Packet>> for Burst {
    fn from(frames: Vec<Packet>) -> Self {
        Burst::from_frames(frames)
    }
}

impl IntoIterator for Burst {
    type Item = Packet;
    type IntoIter = std::vec::IntoIter<Packet>;
    fn into_iter(self) -> Self::IntoIter {
        self.frames.into_iter()
    }
}

/// The result of [`Burst::parse`]: frames plus their per-slot parse
/// results and flow hashes, all index-aligned with arrival order.
#[derive(Debug)]
pub struct ParsedBurst {
    /// The frames, in arrival order.
    pub pkts: Vec<Packet>,
    /// `parsed[i]` is frame `i`'s parse result (`None`: parse error).
    pub parsed: Vec<Option<ParsedPacket>>,
    /// `flow_hashes[i]` is frame `i`'s 5-tuple hash (`None`: no flow key
    /// or parse error). Equal adjacent hashes form the runs that burst
    /// consumers classify with a single flow-cache probe.
    pub flow_hashes: Vec<Option<u64>>,
}

impl ParsedBurst {
    /// Number of frames in the burst.
    pub fn len(&self) -> usize {
        self.pkts.len()
    }

    /// True when the burst holds no frames.
    pub fn is_empty(&self) -> bool {
        self.pkts.is_empty()
    }

    /// Length of the run of frames starting at `i` that share frame `i`'s
    /// flow hash (1 when the hash is `None`: unkeyed frames never batch).
    pub fn run_len(&self, i: usize) -> usize {
        match self.flow_hashes[i] {
            None => 1,
            Some(h) => {
                let mut j = i + 1;
                while j < self.flow_hashes.len() && self.flow_hashes[j] == Some(h) {
                    j += 1;
                }
                j - i
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use std::net::Ipv4Addr;

    fn udp_frame(src_port: u16) -> Packet {
        Packet::anonymous(
            PacketBuilder::udp(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                src_port,
                80,
                b"x",
            )
            .pad_to(64)
            .build(),
        )
    }

    #[test]
    fn parse_keeps_slots_aligned_including_errors() {
        let mut b = Burst::with_capacity(4);
        b.push(udp_frame(1000));
        b.push(Packet::anonymous(vec![0xde, 0xad])); // runt: parse error
        b.push(udp_frame(1000));
        b.push(udp_frame(2000));
        assert_eq!(b.len(), 4);
        let pb = b.parse();
        assert_eq!(pb.len(), 4);
        assert!(pb.parsed[0].is_some());
        assert!(pb.parsed[1].is_none(), "error keeps its slot");
        assert!(pb.flow_hashes[1].is_none());
        assert_eq!(pb.flow_hashes[0], pb.flow_hashes[2]);
        assert_ne!(pb.flow_hashes[0], pb.flow_hashes[3]);
    }

    #[test]
    fn run_len_groups_equal_flow_keys() {
        let frames = vec![
            udp_frame(7),
            udp_frame(7),
            udp_frame(7),
            udp_frame(9),
            Packet::anonymous(vec![0u8; 4]),
        ];
        let pb = Burst::from_frames(frames).parse();
        assert_eq!(pb.run_len(0), 3);
        assert_eq!(pb.run_len(1), 2, "runs are suffixes, not rescans");
        assert_eq!(pb.run_len(3), 1);
        assert_eq!(pb.run_len(4), 1, "unkeyed frames never batch");
    }
}
