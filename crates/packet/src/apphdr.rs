//! Application headers carried over UDP by the paper's example apps.
//!
//! Each header starts with a one-byte magic so a handler can reject stray
//! traffic on its port, and rides on a well-known UDP destination port
//! (see the `PORT_*` constants). Wire layouts are fixed-size big-endian.

use crate::error::{check_len, ParseError, ParseResult};
use crate::wire::{get_u16, get_u32, get_u64};
use serde::{Deserialize, Serialize};

/// UDP port for HULA utilization probes.
pub const PORT_HULA: u16 = 17066;
/// UDP port for in-band telemetry reports (multi-bit ECN experiments).
pub const PORT_TELEMETRY: u16 = 17067;
/// UDP port for the NetCache-style key-value protocol.
pub const PORT_KV: u16 = 17068;
/// UDP port for data-plane liveness echo probes.
pub const PORT_LIVENESS: u16 = 17069;
/// UDP port for the endpoint model's HTTP/gRPC-shaped RPC protocol.
pub const PORT_RPC: u16 = 17070;

const MAGIC_HULA: u8 = 0xA1;
const MAGIC_TELEMETRY: u8 = 0xA2;
const MAGIC_KV: u8 = 0xA3;
const MAGIC_LIVENESS: u8 = 0xA4;
const MAGIC_RPC: u8 = 0xA5;

/// A HULA-style path utilization probe (cf. Katta et al., SOSR '16).
///
/// Switches forward probes toward every ToR and fold in the maximum link
/// utilization seen along the path; ToRs use the result to pick the best
/// next hop per destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HulaProbe {
    /// Destination top-of-rack identifier the probe measures a path to.
    pub tor_id: u16,
    /// Maximum link utilization along the path so far, in 1/255 units
    /// (255 = fully utilized).
    pub max_util: u8,
    /// Probe sequence number (stale probes are ignored).
    pub seq: u32,
}

impl HulaProbe {
    /// Encoded length.
    pub const WIRE_LEN: usize = 8;

    /// Parses from the front of `buf`.
    pub fn parse(buf: &[u8]) -> ParseResult<(Self, usize)> {
        check_len("hula", buf.len(), Self::WIRE_LEN)?;
        if buf[0] != MAGIC_HULA {
            return Err(ParseError::Unsupported {
                layer: "hula",
                field: "magic",
                value: buf[0] as u64,
            });
        }
        Ok((
            HulaProbe {
                tor_id: get_u16(buf, 1),
                max_util: buf[3],
                seq: get_u32(buf, 4),
            },
            Self::WIRE_LEN,
        ))
    }

    /// Appends the encoded probe to `out`.
    pub fn emit(&self, out: &mut Vec<u8>) {
        out.push(MAGIC_HULA);
        out.extend_from_slice(&self.tor_id.to_be_bytes());
        out.push(self.max_util);
        out.extend_from_slice(&self.seq.to_be_bytes());
    }
}

/// An in-band telemetry record: the "multiple bits rather than just one"
/// congestion signal from the paper's congestion-aware forwarding class.
///
/// Each hop folds its local queue occupancy into `max_queue_bytes` (the
/// bottleneck occupancy variant) and increments `hop_count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryHeader {
    /// Maximum queue occupancy observed along the path, in bytes.
    pub max_queue_bytes: u32,
    /// Sum of per-hop queueing delays along the path, in nanoseconds.
    pub path_delay_ns: u32,
    /// Number of hops that have stamped this packet.
    pub hop_count: u8,
}

impl TelemetryHeader {
    /// Encoded length.
    pub const WIRE_LEN: usize = 10;

    /// Parses from the front of `buf`.
    pub fn parse(buf: &[u8]) -> ParseResult<(Self, usize)> {
        check_len("telemetry", buf.len(), Self::WIRE_LEN)?;
        if buf[0] != MAGIC_TELEMETRY {
            return Err(ParseError::Unsupported {
                layer: "telemetry",
                field: "magic",
                value: buf[0] as u64,
            });
        }
        Ok((
            TelemetryHeader {
                max_queue_bytes: get_u32(buf, 1),
                path_delay_ns: get_u32(buf, 5),
                hop_count: buf[9],
            },
            Self::WIRE_LEN,
        ))
    }

    /// Appends the encoded record to `out`.
    pub fn emit(&self, out: &mut Vec<u8>) {
        out.push(MAGIC_TELEMETRY);
        out.extend_from_slice(&self.max_queue_bytes.to_be_bytes());
        out.extend_from_slice(&self.path_delay_ns.to_be_bytes());
        out.push(self.hop_count);
    }

    /// Stamps one hop's contribution into an already-encoded record at
    /// `off` within `buf` (the in-pipeline rewrite the telemetry app does).
    pub fn stamp(buf: &mut [u8], off: usize, queue_bytes: u32, delay_ns: u32) {
        let cur = get_u32(buf, off + 1);
        if queue_bytes > cur {
            buf[off + 1..off + 5].copy_from_slice(&queue_bytes.to_be_bytes());
        }
        let d = get_u32(buf, off + 5).saturating_add(delay_ns);
        buf[off + 5..off + 9].copy_from_slice(&d.to_be_bytes());
        buf[off + 9] = buf[off + 9].saturating_add(1);
    }
}

/// NetCache-style key-value operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KvOp {
    /// Read a key.
    Get,
    /// Write a key (invalidates/updates cache).
    Put,
    /// Reply carrying a value.
    Reply,
}

/// A NetCache-style key-value message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvHeader {
    /// Operation.
    pub op: KvOp,
    /// 64-bit key.
    pub key: u64,
    /// 64-bit value (meaningful for `Put` and `Reply`).
    pub value: u64,
}

impl KvHeader {
    /// Encoded length.
    pub const WIRE_LEN: usize = 18;

    /// Parses from the front of `buf`.
    pub fn parse(buf: &[u8]) -> ParseResult<(Self, usize)> {
        check_len("kv", buf.len(), Self::WIRE_LEN)?;
        if buf[0] != MAGIC_KV {
            return Err(ParseError::Unsupported {
                layer: "kv",
                field: "magic",
                value: buf[0] as u64,
            });
        }
        let op = match buf[1] {
            0 => KvOp::Get,
            1 => KvOp::Put,
            2 => KvOp::Reply,
            other => {
                return Err(ParseError::Unsupported {
                    layer: "kv",
                    field: "op",
                    value: other as u64,
                })
            }
        };
        Ok((
            KvHeader {
                op,
                key: get_u64(buf, 2),
                value: get_u64(buf, 10),
            },
            Self::WIRE_LEN,
        ))
    }

    /// Appends the encoded message to `out`.
    pub fn emit(&self, out: &mut Vec<u8>) {
        out.push(MAGIC_KV);
        out.push(match self.op {
            KvOp::Get => 0,
            KvOp::Put => 1,
            KvOp::Reply => 2,
        });
        out.extend_from_slice(&self.key.to_be_bytes());
        out.extend_from_slice(&self.value.to_be_bytes());
    }
}

/// Liveness echo direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LivenessKind {
    /// Request generated by the monitoring switch's timer event.
    Request,
    /// Reply reflected by the neighbor's data plane.
    Reply,
}

/// A data-plane liveness probe (the §5 "Liveness Monitoring" project).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LivenessHeader {
    /// Request or reply.
    pub kind: LivenessKind,
    /// Node id of the probe originator.
    pub origin: u16,
    /// Probe sequence number.
    pub seq: u32,
    /// Originator's send timestamp in simulation nanoseconds (echoed back
    /// verbatim, giving the originator an RTT sample).
    pub ts_ns: u64,
}

impl LivenessHeader {
    /// Encoded length.
    pub const WIRE_LEN: usize = 16;

    /// Parses from the front of `buf`.
    pub fn parse(buf: &[u8]) -> ParseResult<(Self, usize)> {
        check_len("liveness", buf.len(), Self::WIRE_LEN)?;
        if buf[0] != MAGIC_LIVENESS {
            return Err(ParseError::Unsupported {
                layer: "liveness",
                field: "magic",
                value: buf[0] as u64,
            });
        }
        let kind = match buf[1] {
            0 => LivenessKind::Request,
            1 => LivenessKind::Reply,
            other => {
                return Err(ParseError::Unsupported {
                    layer: "liveness",
                    field: "kind",
                    value: other as u64,
                })
            }
        };
        Ok((
            LivenessHeader {
                kind,
                origin: get_u16(buf, 2),
                seq: get_u32(buf, 4),
                ts_ns: get_u64(buf, 8),
            },
            Self::WIRE_LEN,
        ))
    }

    /// Appends the encoded probe to `out`.
    pub fn emit(&self, out: &mut Vec<u8>) {
        out.push(MAGIC_LIVENESS);
        out.push(match self.kind {
            LivenessKind::Request => 0,
            LivenessKind::Reply => 1,
        });
        out.extend_from_slice(&self.origin.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ts_ns.to_be_bytes());
    }
}

/// RPC message direction/kind for the endpoint fleet model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RpcKind {
    /// Client connection setup (the "SYN" of the HTTP/gRPC-shaped flow).
    Connect,
    /// Server acknowledgment of a `Connect`.
    ConnectAck,
    /// Client request for a key.
    Request,
    /// Server response carrying the value bytes.
    Response,
}

/// The endpoint model's request/response header (see `edp-netsim`'s
/// `endpoint` module): one host models a fleet of clients, each issuing
/// Zipf-keyed requests and retransmitting on timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RpcHeader {
    /// Message kind.
    pub kind: RpcKind,
    /// Logical endpoint (client) id within the fleet.
    pub endpoint: u32,
    /// Per-endpoint sequence number; a retransmit reuses the original's.
    pub seq: u32,
    /// Requested key (Zipf-distributed by the client).
    pub key: u64,
    /// Response body size in bytes the server should produce (drawn by
    /// the client so traffic is a pure function of the client seed;
    /// echoed back in the `Response`).
    pub resp_bytes: u32,
}

impl RpcHeader {
    /// Encoded length.
    pub const WIRE_LEN: usize = 22;

    /// Parses from the front of `buf`.
    pub fn parse(buf: &[u8]) -> ParseResult<(Self, usize)> {
        check_len("rpc", buf.len(), Self::WIRE_LEN)?;
        if buf[0] != MAGIC_RPC {
            return Err(ParseError::Unsupported {
                layer: "rpc",
                field: "magic",
                value: buf[0] as u64,
            });
        }
        let kind = match buf[1] {
            0 => RpcKind::Connect,
            1 => RpcKind::ConnectAck,
            2 => RpcKind::Request,
            3 => RpcKind::Response,
            other => {
                return Err(ParseError::Unsupported {
                    layer: "rpc",
                    field: "kind",
                    value: other as u64,
                })
            }
        };
        Ok((
            RpcHeader {
                kind,
                endpoint: get_u32(buf, 2),
                seq: get_u32(buf, 6),
                key: get_u64(buf, 10),
                resp_bytes: get_u32(buf, 18),
            },
            Self::WIRE_LEN,
        ))
    }

    /// Appends the encoded header to `out`.
    pub fn emit(&self, out: &mut Vec<u8>) {
        out.push(MAGIC_RPC);
        out.push(match self.kind {
            RpcKind::Connect => 0,
            RpcKind::ConnectAck => 1,
            RpcKind::Request => 2,
            RpcKind::Response => 3,
        });
        out.extend_from_slice(&self.endpoint.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.key.to_be_bytes());
        out.extend_from_slice(&self.resp_bytes.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hula_round_trip() {
        let p = HulaProbe {
            tor_id: 3,
            max_util: 200,
            seq: 99,
        };
        let mut out = Vec::new();
        p.emit(&mut out);
        assert_eq!(out.len(), HulaProbe::WIRE_LEN);
        assert_eq!(HulaProbe::parse(&out).expect("parse").0, p);
    }

    #[test]
    fn hula_wrong_magic() {
        let mut out = Vec::new();
        HulaProbe {
            tor_id: 1,
            max_util: 0,
            seq: 0,
        }
        .emit(&mut out);
        out[0] = 0x00;
        assert!(HulaProbe::parse(&out).is_err());
    }

    #[test]
    fn telemetry_round_trip_and_stamp() {
        let t = TelemetryHeader {
            max_queue_bytes: 100,
            path_delay_ns: 50,
            hop_count: 1,
        };
        let mut out = Vec::new();
        t.emit(&mut out);
        assert_eq!(out.len(), TelemetryHeader::WIRE_LEN);
        TelemetryHeader::stamp(&mut out, 0, 500, 25);
        let (t2, _) = TelemetryHeader::parse(&out).expect("parse");
        assert_eq!(t2.max_queue_bytes, 500);
        assert_eq!(t2.path_delay_ns, 75);
        assert_eq!(t2.hop_count, 2);
        // Smaller queue leaves the max untouched.
        TelemetryHeader::stamp(&mut out, 0, 10, 5);
        let (t3, _) = TelemetryHeader::parse(&out).expect("parse");
        assert_eq!(t3.max_queue_bytes, 500);
        assert_eq!(t3.path_delay_ns, 80);
    }

    #[test]
    fn kv_round_trip_all_ops() {
        for op in [KvOp::Get, KvOp::Put, KvOp::Reply] {
            let k = KvHeader {
                op,
                key: 0xDEAD,
                value: 0xBEEF,
            };
            let mut out = Vec::new();
            k.emit(&mut out);
            assert_eq!(KvHeader::parse(&out).expect("parse").0, k);
        }
    }

    #[test]
    fn kv_bad_op_rejected() {
        let mut out = Vec::new();
        KvHeader {
            op: KvOp::Get,
            key: 0,
            value: 0,
        }
        .emit(&mut out);
        out[1] = 77;
        assert!(KvHeader::parse(&out).is_err());
    }

    #[test]
    fn liveness_round_trip() {
        let l = LivenessHeader {
            kind: LivenessKind::Reply,
            origin: 4,
            seq: 123,
            ts_ns: 0x1122_3344_5566_7788,
        };
        let mut out = Vec::new();
        l.emit(&mut out);
        assert_eq!(out.len(), LivenessHeader::WIRE_LEN);
        assert_eq!(LivenessHeader::parse(&out).expect("parse").0, l);
    }

    #[test]
    fn rpc_round_trip_all_kinds() {
        for kind in [
            RpcKind::Connect,
            RpcKind::ConnectAck,
            RpcKind::Request,
            RpcKind::Response,
        ] {
            let r = RpcHeader {
                kind,
                endpoint: 512,
                seq: 9,
                key: 0xCAFE_F00D,
                resp_bytes: 1200,
            };
            let mut out = Vec::new();
            r.emit(&mut out);
            assert_eq!(out.len(), RpcHeader::WIRE_LEN);
            assert_eq!(RpcHeader::parse(&out).expect("parse").0, r);
        }
    }

    #[test]
    fn rpc_bad_kind_and_magic_rejected() {
        let mut out = Vec::new();
        RpcHeader {
            kind: RpcKind::Request,
            endpoint: 0,
            seq: 0,
            key: 0,
            resp_bytes: 0,
        }
        .emit(&mut out);
        let mut bad = out.clone();
        bad[1] = 200;
        assert!(RpcHeader::parse(&bad).is_err());
        out[0] = 0x00;
        assert!(RpcHeader::parse(&out).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        assert!(HulaProbe::parse(&[MAGIC_HULA]).is_err());
        assert!(TelemetryHeader::parse(&[MAGIC_TELEMETRY]).is_err());
        assert!(KvHeader::parse(&[MAGIC_KV]).is_err());
        assert!(LivenessHeader::parse(&[MAGIC_LIVENESS]).is_err());
        assert!(RpcHeader::parse(&[MAGIC_RPC]).is_err());
    }
}
