//! Ethernet II framing.

use crate::addr::MacAddr;
use crate::error::{check_len, ParseError, ParseResult};
use crate::wire::{get_u16, put_u16};
use serde::{Deserialize, Serialize};

/// Ethernet II header length (no VLAN tag).
pub const ETH_HEADER_LEN: usize = 14;

/// EtherType values used in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806) — parsed but not interpreted by the dataplane models.
    Arp,
    /// Carrier frames injected by the event merger when no ingress packet
    /// is available to piggyback event metadata on (experimental type
    /// 0x88B5, IEEE Std 802 local experimental).
    EventCarrier,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// Wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::EventCarrier => 0x88B5,
            EtherType::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x88B5 => EtherType::EventCarrier,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
}

impl EthHeader {
    /// Parses the header from the front of `buf`, returning it and the
    /// number of bytes consumed.
    pub fn parse(buf: &[u8]) -> ParseResult<(Self, usize)> {
        check_len("eth", buf.len(), ETH_HEADER_LEN)?;
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = get_u16(buf, 12);
        if ethertype < 0x0600 {
            // 802.3 length field — out of scope, as in smoltcp.
            return Err(ParseError::Unsupported {
                layer: "eth",
                field: "ethertype",
                value: ethertype as u64,
            });
        }
        Ok((
            EthHeader {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype: EtherType::from_u16(ethertype),
            },
            ETH_HEADER_LEN,
        ))
    }

    /// Appends the encoded header to `out`.
    pub fn emit(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        let mut ty = [0u8; 2];
        put_u16(&mut ty, 0, self.ethertype.to_u16());
        out.extend_from_slice(&ty);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = EthHeader {
            dst: MacAddr::from_id(1),
            src: MacAddr::from_id(2),
            ethertype: EtherType::Ipv4,
        };
        let mut out = Vec::new();
        h.emit(&mut out);
        assert_eq!(out.len(), ETH_HEADER_LEN);
        let (parsed, used) = EthHeader::parse(&out).expect("parse");
        assert_eq!(parsed, h);
        assert_eq!(used, ETH_HEADER_LEN);
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            EthHeader::parse(&[0u8; 13]),
            Err(ParseError::Truncated { layer: "eth", .. })
        ));
    }

    #[test]
    fn length_field_rejected() {
        let mut buf = vec![0u8; 14];
        put_u16(&mut buf, 12, 0x0100); // 802.3 length, not a type
        assert!(matches!(
            EthHeader::parse(&buf),
            Err(ParseError::Unsupported { .. })
        ));
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x88B5), EtherType::EventCarrier);
        assert_eq!(EtherType::Other(0x86DD).to_u16(), 0x86DD);
        assert_eq!(EtherType::from_u16(0x0806), EtherType::Arp);
    }
}
