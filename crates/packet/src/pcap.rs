//! Dependency-free pcap / pcapng capture codec.
//!
//! The ingestion plane's file format layer: [`PcapFile::parse`] decodes
//! both the classic libpcap format (all four magic variants: big/little
//! endian × microsecond/nanosecond timestamps) and the pcapng block
//! format (section header, interface description, enhanced and simple
//! packet blocks; other block types are skipped, per the spec), and
//! [`PcapFile::to_pcap_bytes`] writes the canonical form this workspace
//! emits — little-endian classic pcap with nanosecond timestamps. The
//! canonical form round-trips byte-identically (`parse(write(f))` and
//! `write(parse(b))` are identities), which is what the CI golden-fixture
//! gate checks.
//!
//! Every malformed input is a typed [`PcapError`] — truncated files,
//! bad magics, inconsistent block lengths, oversized records — never a
//! panic; the proptest suite feeds this parser arbitrary corruption.

use core::fmt;

/// LINKTYPE_ETHERNET: the only link layer this workspace captures —
/// frames decode through [`crate::parse_packet`].
pub const LINKTYPE_ETHERNET: u32 = 1;

/// Upper bound on a single captured frame (64 KiB covers any frame the
/// simulator can emit; a larger `incl_len` means a corrupt file, and
/// refusing it keeps a hostile length field from allocating gigabytes).
pub const MAX_FRAME_LEN: u32 = 65_536;

/// Classic pcap magic, microsecond timestamps, writer-native order.
const MAGIC_US: u32 = 0xA1B2_C3D4;
/// Classic pcap magic, nanosecond timestamps (the form we write).
const MAGIC_NS: u32 = 0xA1B2_3C4D;
/// pcapng Section Header Block type (palindromic, endian-agnostic).
const PCAPNG_SHB: u32 = 0x0A0D_0D0A;
/// pcapng byte-order magic inside the SHB body.
const PCAPNG_BOM: u32 = 0x1A2B_3C4D;

const PCAP_GLOBAL_LEN: usize = 24;
const PCAP_RECORD_LEN: usize = 16;

/// Why a capture file failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcapError {
    /// The buffer ended before a header, record, or block did.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes that were needed.
        needed: usize,
        /// Bytes that were available.
        have: usize,
    },
    /// The leading magic is neither classic pcap nor a pcapng SHB.
    BadMagic {
        /// The 32-bit value seen (as read, unswapped).
        value: u32,
    },
    /// A classic header declared an unsupported major version.
    UnsupportedVersion {
        /// Major version seen (supported: 2).
        major: u16,
        /// Minor version seen.
        minor: u16,
    },
    /// The capture's link layer is not Ethernet.
    UnsupportedLinkType {
        /// The linktype value seen.
        value: u32,
    },
    /// A pcapng block's total length is inconsistent (too small, not
    /// 4-aligned, past the buffer, or trailer ≠ header).
    BadBlockLength {
        /// Block type the length belonged to.
        block: u32,
        /// The offending length.
        len: u32,
    },
    /// A packet record declared a captured length over [`MAX_FRAME_LEN`].
    OversizedRecord {
        /// The declared captured length.
        len: u32,
    },
    /// An enhanced packet block referenced an interface no interface
    /// description block declared.
    UnknownInterface {
        /// The interface id referenced.
        id: u32,
    },
    /// An `if_tsresol` option value this reader cannot convert to
    /// nanoseconds (supported: powers of ten up to 1e-9 and powers of
    /// two up to 2^-30).
    UnsupportedTsResol {
        /// The raw option byte.
        raw: u8,
    },
}

impl fmt::Display for PcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcapError::Truncated { what, needed, have } => {
                write!(
                    f,
                    "pcap: {what} truncated, needed {needed} bytes, have {have}"
                )
            }
            PcapError::BadMagic { value } => {
                write!(f, "pcap: unrecognized magic {value:#010x}")
            }
            PcapError::UnsupportedVersion { major, minor } => {
                write!(f, "pcap: unsupported version {major}.{minor}")
            }
            PcapError::UnsupportedLinkType { value } => {
                write!(f, "pcap: unsupported link type {value} (need Ethernet = 1)")
            }
            PcapError::BadBlockLength { block, len } => {
                write!(f, "pcapng: block {block:#x} has inconsistent length {len}")
            }
            PcapError::OversizedRecord { len } => {
                write!(
                    f,
                    "pcap: record claims {len} captured bytes (max {MAX_FRAME_LEN})"
                )
            }
            PcapError::UnknownInterface { id } => {
                write!(f, "pcapng: packet references undeclared interface {id}")
            }
            PcapError::UnsupportedTsResol { raw } => {
                write!(f, "pcapng: unsupported if_tsresol {raw:#04x}")
            }
        }
    }
}

impl std::error::Error for PcapError {}

/// Result alias for the capture codec.
pub type PcapResult<T> = Result<T, PcapError>;

/// One captured frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapPacket {
    /// Capture timestamp in nanoseconds since the capture epoch.
    pub ts_ns: u64,
    /// Original frame length on the wire (≥ `data.len()` when the
    /// capture was truncated by a snap length).
    pub orig_len: u32,
    /// The captured bytes (an Ethernet frame, possibly snapped short).
    pub data: Vec<u8>,
}

impl PcapPacket {
    /// A full (unsnapped) capture of `data` at `ts_ns`.
    pub fn full(ts_ns: u64, data: Vec<u8>) -> Self {
        let orig_len = data.len() as u32;
        PcapPacket {
            ts_ns,
            orig_len,
            data,
        }
    }
}

/// A decoded capture: an ordered sequence of Ethernet frames with
/// nanosecond timestamps, normalized from whichever container format the
/// bytes used.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PcapFile {
    /// The captured frames, in file order.
    pub packets: Vec<PcapPacket>,
}

/// Cursor over an endian-tagged byte buffer.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    big_endian: bool,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            big_endian: false,
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn need(&self, what: &'static str, n: usize) -> PcapResult<()> {
        if self.remaining() < n {
            return Err(PcapError::Truncated {
                what,
                needed: n,
                have: self.remaining(),
            });
        }
        Ok(())
    }

    fn take(&mut self, what: &'static str, n: usize) -> PcapResult<&'a [u8]> {
        self.need(what, n)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self, what: &'static str) -> PcapResult<u16> {
        let b = self.take(what, 2)?;
        let v = [b[0], b[1]];
        Ok(if self.big_endian {
            u16::from_be_bytes(v)
        } else {
            u16::from_le_bytes(v)
        })
    }

    fn u32(&mut self, what: &'static str) -> PcapResult<u32> {
        let b = self.take(what, 4)?;
        let v = [b[0], b[1], b[2], b[3]];
        Ok(if self.big_endian {
            u32::from_be_bytes(v)
        } else {
            u32::from_le_bytes(v)
        })
    }
}

impl PcapFile {
    /// Decodes a capture from bytes, auto-detecting classic pcap vs
    /// pcapng and either endianness.
    pub fn parse(bytes: &[u8]) -> PcapResult<PcapFile> {
        if bytes.len() < 4 {
            return Err(PcapError::Truncated {
                what: "file magic",
                needed: 4,
                have: bytes.len(),
            });
        }
        let raw = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        match raw {
            PCAPNG_SHB => parse_pcapng(bytes),
            m if m == MAGIC_US
                || m == MAGIC_NS
                || m.swap_bytes() == MAGIC_US
                || m.swap_bytes() == MAGIC_NS =>
            {
                parse_classic(bytes)
            }
            other => Err(PcapError::BadMagic { value: other }),
        }
    }

    /// Encodes as canonical classic pcap: little-endian, nanosecond
    /// timestamps, Ethernet link type. `parse` of the result yields this
    /// file back exactly, and re-encoding a parsed canonical file
    /// reproduces the input bytes — the round-trip identity the CI
    /// fixture gate relies on.
    ///
    /// Classic pcap stores 32-bit seconds, so timestamps past
    /// `u32::MAX` seconds (~year 2106) wrap on encode; the round-trip
    /// identity holds for the format's representable range.
    pub fn to_pcap_bytes(&self) -> Vec<u8> {
        let body: usize = self
            .packets
            .iter()
            .map(|p| PCAP_RECORD_LEN + p.data.len())
            .sum();
        let mut out = Vec::with_capacity(PCAP_GLOBAL_LEN + body);
        out.extend_from_slice(&MAGIC_NS.to_le_bytes());
        out.extend_from_slice(&2u16.to_le_bytes()); // version major
        out.extend_from_slice(&4u16.to_le_bytes()); // version minor
        out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        out.extend_from_slice(&MAX_FRAME_LEN.to_le_bytes()); // snaplen
        out.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        for p in &self.packets {
            out.extend_from_slice(&((p.ts_ns / 1_000_000_000) as u32).to_le_bytes());
            out.extend_from_slice(&((p.ts_ns % 1_000_000_000) as u32).to_le_bytes());
            out.extend_from_slice(&(p.data.len() as u32).to_le_bytes());
            out.extend_from_slice(&p.orig_len.to_le_bytes());
            out.extend_from_slice(&p.data);
        }
        out
    }

    /// Total captured bytes across all frames.
    pub fn captured_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.data.len() as u64).sum()
    }

    /// Capture duration: last timestamp minus first (0 for ≤1 packet).
    pub fn duration_ns(&self) -> u64 {
        match (self.packets.first(), self.packets.last()) {
            (Some(a), Some(b)) => b.ts_ns.saturating_sub(a.ts_ns),
            _ => 0,
        }
    }
}

fn parse_classic(bytes: &[u8]) -> PcapResult<PcapFile> {
    let mut r = Reader::new(bytes);
    r.need("global header", PCAP_GLOBAL_LEN)?;
    let raw = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let (big_endian, nanos) = match raw {
        MAGIC_US => (false, false),
        MAGIC_NS => (false, true),
        m if m.swap_bytes() == MAGIC_US => (true, false),
        m if m.swap_bytes() == MAGIC_NS => (true, true),
        other => return Err(PcapError::BadMagic { value: other }),
    };
    r.big_endian = big_endian;
    r.pos = 4;
    let major = r.u16("version")?;
    let minor = r.u16("version")?;
    if major != 2 {
        return Err(PcapError::UnsupportedVersion { major, minor });
    }
    let _thiszone = r.u32("thiszone")?;
    let _sigfigs = r.u32("sigfigs")?;
    let _snaplen = r.u32("snaplen")?;
    let linktype = r.u32("linktype")?;
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::UnsupportedLinkType { value: linktype });
    }
    let subsec_scale: u64 = if nanos { 1 } else { 1_000 };
    let mut packets = Vec::new();
    while r.remaining() > 0 {
        r.need("record header", PCAP_RECORD_LEN)?;
        let ts_sec = r.u32("ts_sec")? as u64;
        let ts_sub = r.u32("ts_subsec")? as u64;
        let incl_len = r.u32("incl_len")?;
        let orig_len = r.u32("orig_len")?;
        if incl_len > MAX_FRAME_LEN {
            return Err(PcapError::OversizedRecord { len: incl_len });
        }
        let data = r.take("record data", incl_len as usize)?.to_vec();
        packets.push(PcapPacket {
            ts_ns: ts_sec * 1_000_000_000 + ts_sub * subsec_scale,
            orig_len,
            data,
        });
    }
    Ok(PcapFile { packets })
}

/// Per-interface timestamp resolution: nanoseconds per tick for
/// power-of-ten resolutions, or the power-of-two divisor form.
#[derive(Clone, Copy)]
enum TsResol {
    /// One tick is `ns` nanoseconds (resolutions coarser than 1 ns).
    NsPerTick(u64),
    /// Ticks are `1 / 2^shift` seconds.
    Pow2(u32),
}

impl TsResol {
    fn to_ns(self, ticks: u64) -> u64 {
        match self {
            TsResol::NsPerTick(ns) => ticks.saturating_mul(ns),
            TsResol::Pow2(shift) => {
                ((ticks as u128 * 1_000_000_000u128) >> shift).min(u64::MAX as u128) as u64
            }
        }
    }
}

fn tsresol_from_raw(raw: u8) -> PcapResult<TsResol> {
    if raw & 0x80 != 0 {
        let shift = (raw & 0x7F) as u32;
        if shift > 30 {
            return Err(PcapError::UnsupportedTsResol { raw });
        }
        return Ok(TsResol::Pow2(shift));
    }
    if raw > 9 {
        return Err(PcapError::UnsupportedTsResol { raw });
    }
    Ok(TsResol::NsPerTick(10u64.pow(9 - raw as u32)))
}

fn parse_pcapng(bytes: &[u8]) -> PcapResult<PcapFile> {
    let mut r = Reader::new(bytes);
    let mut packets = Vec::new();
    // Interfaces of the current section: (linktype, tsresol, snaplen).
    let mut interfaces: Vec<(u32, TsResol, u32)> = Vec::new();
    while r.remaining() > 0 {
        let block_start = r.pos;
        let block_type = r.u32("block type")?;
        if block_type == PCAPNG_SHB {
            // The byte-order magic governs this whole section, including
            // the SHB's own length fields. It sits after the total length:
            // type (4) | total_len (4) | BOM (4) | version | ...
            r.need("section header", 8)?;
            let bom = read_u32_at(r.buf, block_start + 8, false);
            r.big_endian = match bom {
                PCAPNG_BOM => false,
                m if m.swap_bytes() == PCAPNG_BOM => true,
                other => return Err(PcapError::BadMagic { value: other }),
            };
            interfaces.clear();
            // Now the total length reads correctly in section endianness.
            let total_len = r.u32("block length")?;
            check_block(&r, block_type, block_start, total_len)?;
            let trailer = read_u32_at(r.buf, block_start + total_len as usize - 4, r.big_endian);
            if trailer != total_len {
                return Err(PcapError::BadBlockLength {
                    block: block_type,
                    len: trailer,
                });
            }
            r.pos = block_start + total_len as usize;
            continue;
        }
        let total_len = r.u32("block length")?;
        let body = check_block(&r, block_type, block_start, total_len)?;
        let body_end = block_start + 8 + body;
        match block_type {
            // Interface Description Block.
            0x0000_0001 => {
                let linktype = r.u16("idb linktype")? as u32;
                let _reserved = r.u16("idb reserved")?;
                let snaplen = r.u32("idb snaplen")?;
                if linktype != LINKTYPE_ETHERNET {
                    return Err(PcapError::UnsupportedLinkType { value: linktype });
                }
                let mut resol = TsResol::NsPerTick(1_000); // default 1e-6
                let mut pos = r.pos;
                // Walk options: (code u16, len u16, value padded to 4).
                while pos + 4 <= body_end {
                    let code = read_u16_at(r.buf, pos, r.big_endian);
                    let olen = read_u16_at(r.buf, pos + 2, r.big_endian) as usize;
                    if code == 0 {
                        break;
                    }
                    if pos + 4 + olen > body_end {
                        return Err(PcapError::BadBlockLength {
                            block: block_type,
                            len: total_len,
                        });
                    }
                    if code == 9 && olen == 1 {
                        resol = tsresol_from_raw(r.buf[pos + 4])?;
                    }
                    pos += 4 + olen.div_ceil(4) * 4;
                }
                interfaces.push((linktype, resol, snaplen));
            }
            // Enhanced Packet Block.
            0x0000_0006 => {
                let iface = r.u32("epb interface")?;
                let ts_high = r.u32("epb ts high")? as u64;
                let ts_low = r.u32("epb ts low")? as u64;
                let cap_len = r.u32("epb captured len")?;
                let orig_len = r.u32("epb original len")?;
                let Some(&(_, resol, _)) = interfaces.get(iface as usize) else {
                    return Err(PcapError::UnknownInterface { id: iface });
                };
                if cap_len > MAX_FRAME_LEN {
                    return Err(PcapError::OversizedRecord { len: cap_len });
                }
                if r.pos + cap_len as usize > body_end {
                    return Err(PcapError::BadBlockLength {
                        block: block_type,
                        len: total_len,
                    });
                }
                let data = r.take("epb data", cap_len as usize)?.to_vec();
                packets.push(PcapPacket {
                    ts_ns: resol.to_ns((ts_high << 32) | ts_low),
                    orig_len,
                    data,
                });
            }
            // Simple Packet Block: original length + frame snapped to the
            // first interface's snap length; no timestamp (0 ns).
            0x0000_0003 => {
                let orig_len = r.u32("spb original len")?;
                let Some(&(_, _, snaplen)) = interfaces.first() else {
                    return Err(PcapError::UnknownInterface { id: 0 });
                };
                let cap = if snaplen == 0 {
                    orig_len
                } else {
                    orig_len.min(snaplen)
                };
                if cap > MAX_FRAME_LEN {
                    return Err(PcapError::OversizedRecord { len: cap });
                }
                if r.pos + cap as usize > body_end {
                    return Err(PcapError::BadBlockLength {
                        block: block_type,
                        len: total_len,
                    });
                }
                let data = r.take("spb data", cap as usize)?.to_vec();
                packets.push(PcapPacket {
                    ts_ns: 0,
                    orig_len,
                    data,
                });
            }
            // Any other block type (name resolution, statistics, custom):
            // skipped, as the pcapng spec requires of unknown blocks.
            _ => {}
        }
        // Verify the trailing duplicate length, then jump past it.
        let trailer = read_u32_at(r.buf, block_start + total_len as usize - 4, r.big_endian);
        if trailer != total_len {
            return Err(PcapError::BadBlockLength {
                block: block_type,
                len: trailer,
            });
        }
        r.pos = block_start + total_len as usize;
    }
    Ok(PcapFile { packets })
}

/// Validates a pcapng block's total length against the buffer; returns
/// the body length (total minus the 12 bytes of type + two length words).
fn check_block(r: &Reader<'_>, block_type: u32, start: usize, total_len: u32) -> PcapResult<usize> {
    let bad = || PcapError::BadBlockLength {
        block: block_type,
        len: total_len,
    };
    if total_len < 12 || !total_len.is_multiple_of(4) {
        return Err(bad());
    }
    let total = total_len as usize;
    if start + total > r.buf.len() {
        return Err(PcapError::Truncated {
            what: "pcapng block",
            needed: total,
            have: r.buf.len() - start,
        });
    }
    Ok(total - 12)
}

fn read_u16_at(buf: &[u8], at: usize, big: bool) -> u16 {
    let v = [buf[at], buf[at + 1]];
    if big {
        u16::from_be_bytes(v)
    } else {
        u16::from_le_bytes(v)
    }
}

fn read_u32_at(buf: &[u8], at: usize, big: bool) -> u32 {
    let v = [buf[at], buf[at + 1], buf[at + 2], buf[at + 3]];
    if big {
        u32::from_be_bytes(v)
    } else {
        u32::from_le_bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PcapFile {
        PcapFile {
            packets: vec![
                PcapPacket::full(0, vec![0xAA; 60]),
                PcapPacket::full(1_500, vec![0x55; 64]),
                PcapPacket {
                    ts_ns: 2_000_000_123,
                    orig_len: 1500,
                    data: vec![1, 2, 3, 4],
                },
            ],
        }
    }

    #[test]
    fn canonical_round_trip_is_identity_both_ways() {
        let f = sample();
        let bytes = f.to_pcap_bytes();
        let parsed = PcapFile::parse(&bytes).expect("parse");
        assert_eq!(parsed, f);
        assert_eq!(parsed.to_pcap_bytes(), bytes);
    }

    #[test]
    fn classic_big_endian_microseconds_parse() {
        // Hand-built big-endian µs-resolution file with one 6-byte frame.
        let mut b = Vec::new();
        b.extend_from_slice(&MAGIC_US.to_be_bytes());
        b.extend_from_slice(&2u16.to_be_bytes());
        b.extend_from_slice(&4u16.to_be_bytes());
        b.extend_from_slice(&0u32.to_be_bytes());
        b.extend_from_slice(&0u32.to_be_bytes());
        b.extend_from_slice(&65535u32.to_be_bytes());
        b.extend_from_slice(&1u32.to_be_bytes());
        b.extend_from_slice(&3u32.to_be_bytes()); // ts_sec
        b.extend_from_slice(&7u32.to_be_bytes()); // ts_usec
        b.extend_from_slice(&6u32.to_be_bytes()); // incl
        b.extend_from_slice(&6u32.to_be_bytes()); // orig
        b.extend_from_slice(&[9u8; 6]);
        let f = PcapFile::parse(&b).expect("parse");
        assert_eq!(f.packets.len(), 1);
        assert_eq!(f.packets[0].ts_ns, 3_000_007_000);
        assert_eq!(f.packets[0].data, vec![9u8; 6]);
    }

    #[test]
    fn truncated_and_corrupt_are_typed_errors() {
        let bytes = sample().to_pcap_bytes();
        assert!(matches!(
            PcapFile::parse(&bytes[..3]),
            Err(PcapError::Truncated { .. })
        ));
        assert!(matches!(
            PcapFile::parse(&bytes[..PCAP_GLOBAL_LEN + 7]),
            Err(PcapError::Truncated { .. })
        ));
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            PcapFile::parse(&bad),
            Err(PcapError::BadMagic { .. })
        ));
        let mut bad = bytes.clone();
        bad[20] = 42; // linktype -> not Ethernet
        assert!(matches!(
            PcapFile::parse(&bad),
            Err(PcapError::UnsupportedLinkType { value: 42 })
        ));
        let mut bad = bytes;
        bad[4] = 9; // version major
        assert!(matches!(
            PcapFile::parse(&bad),
            Err(PcapError::UnsupportedVersion { major: 9, .. })
        ));
    }

    #[test]
    fn oversized_record_is_rejected_not_allocated() {
        let mut b = sample().to_pcap_bytes();
        // First record's incl_len field sits at global header + 8.
        b[PCAP_GLOBAL_LEN + 8..PCAP_GLOBAL_LEN + 12]
            .copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(
            PcapFile::parse(&b),
            Err(PcapError::OversizedRecord { .. })
        ));
    }

    fn png_block(big: bool, ty: u32, body: &[u8]) -> Vec<u8> {
        let total = (12 + body.len().div_ceil(4) * 4) as u32;
        let w32 = |v: u32| {
            if big {
                v.to_be_bytes()
            } else {
                v.to_le_bytes()
            }
        };
        let mut b = Vec::new();
        b.extend_from_slice(&w32(ty));
        b.extend_from_slice(&w32(total));
        b.extend_from_slice(body);
        b.resize(8 + body.len().div_ceil(4) * 4, 0);
        b.extend_from_slice(&w32(total));
        b
    }

    fn pcapng_sample(big: bool) -> Vec<u8> {
        let w16 = |v: u16| {
            if big {
                v.to_be_bytes()
            } else {
                v.to_le_bytes()
            }
        };
        let w32 = |v: u32| {
            if big {
                v.to_be_bytes()
            } else {
                v.to_le_bytes()
            }
        };
        let mut out = Vec::new();
        // SHB body: BOM, version 1.0, section length -1.
        let mut shb = Vec::new();
        shb.extend_from_slice(&w32(PCAPNG_BOM));
        shb.extend_from_slice(&w16(1));
        shb.extend_from_slice(&w16(0));
        shb.extend_from_slice(&w32(0xFFFF_FFFF));
        shb.extend_from_slice(&w32(0xFFFF_FFFF));
        out.extend_from_slice(&png_block(big, PCAPNG_SHB, &shb));
        // IDB: Ethernet, snaplen 0, if_tsresol = 9 (nanoseconds).
        let mut idb = Vec::new();
        idb.extend_from_slice(&w16(1));
        idb.extend_from_slice(&w16(0));
        idb.extend_from_slice(&w32(0));
        idb.extend_from_slice(&w16(9)); // option code if_tsresol
        idb.extend_from_slice(&w16(1)); // option len
        idb.push(9); // 1e-9
        idb.extend_from_slice(&[0u8; 3]); // pad
        idb.extend_from_slice(&w16(0)); // opt_endofopt
        idb.extend_from_slice(&w16(0));
        out.extend_from_slice(&png_block(big, 1, &idb));
        // EPB: iface 0, ts = 5_000_000_001 ns, 5-byte frame.
        let ts: u64 = 5_000_000_001;
        let mut epb = Vec::new();
        epb.extend_from_slice(&w32(0));
        epb.extend_from_slice(&w32((ts >> 32) as u32));
        epb.extend_from_slice(&w32(ts as u32));
        epb.extend_from_slice(&w32(5));
        epb.extend_from_slice(&w32(5));
        epb.extend_from_slice(&[7, 8, 9, 10, 11]);
        out.extend_from_slice(&png_block(big, 6, &epb));
        // An unknown block type that must be skipped.
        out.extend_from_slice(&png_block(big, 0x0BAD_F00D, &[1, 2, 3, 4]));
        // SPB: 3 bytes.
        let mut spb = Vec::new();
        spb.extend_from_slice(&w32(3));
        spb.extend_from_slice(&[21, 22, 23]);
        out.extend_from_slice(&png_block(big, 3, &spb));
        out
    }

    #[test]
    fn pcapng_both_endiannesses_parse() {
        for big in [false, true] {
            let f = PcapFile::parse(&pcapng_sample(big)).expect("parse");
            assert_eq!(f.packets.len(), 2, "big_endian={big}");
            assert_eq!(f.packets[0].ts_ns, 5_000_000_001);
            assert_eq!(f.packets[0].data, vec![7, 8, 9, 10, 11]);
            assert_eq!(f.packets[1].orig_len, 3);
            assert_eq!(f.packets[1].ts_ns, 0);
        }
    }

    #[test]
    fn pcapng_normalizes_to_canonical_classic() {
        let f = PcapFile::parse(&pcapng_sample(false)).expect("parse");
        let again = PcapFile::parse(&f.to_pcap_bytes()).expect("reparse");
        assert_eq!(f, again);
    }

    #[test]
    fn pcapng_bad_trailer_rejected() {
        let mut b = pcapng_sample(false);
        let n = b.len();
        b[n - 4..].copy_from_slice(&999u32.to_le_bytes());
        assert!(matches!(
            PcapFile::parse(&b),
            Err(PcapError::BadBlockLength { .. })
        ));
    }

    #[test]
    fn pcapng_packet_without_interface_rejected() {
        let mut out = Vec::new();
        let mut shb = Vec::new();
        shb.extend_from_slice(&PCAPNG_BOM.to_le_bytes());
        shb.extend_from_slice(&1u16.to_le_bytes());
        shb.extend_from_slice(&0u16.to_le_bytes());
        shb.extend_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        shb.extend_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        out.extend_from_slice(&png_block(false, PCAPNG_SHB, &shb));
        let mut epb = Vec::new();
        for _ in 0..5 {
            epb.extend_from_slice(&0u32.to_le_bytes());
        }
        out.extend_from_slice(&png_block(false, 6, &epb));
        assert!(matches!(
            PcapFile::parse(&out),
            Err(PcapError::UnknownInterface { id: 0 })
        ));
    }

    #[test]
    fn helpers_report_span_and_bytes() {
        let f = sample();
        assert_eq!(f.duration_ns(), 2_000_000_123);
        assert_eq!(f.captured_bytes(), 60 + 64 + 4);
        assert_eq!(PcapFile::default().duration_ns(), 0);
    }

    #[test]
    fn tsresol_variants() {
        assert!(matches!(tsresol_from_raw(6), Ok(TsResol::NsPerTick(1_000))));
        assert!(matches!(tsresol_from_raw(9), Ok(TsResol::NsPerTick(1))));
        // 2^-10 ticks: 1024 ticks = 1 s.
        match tsresol_from_raw(0x8A).expect("pow2") {
            TsResol::Pow2(10) => {}
            other => panic!("wrong resol {:?}", matches!(other, TsResol::Pow2(_))),
        }
        assert!(tsresol_from_raw(0x8A).expect("ok").to_ns(1024) == 1_000_000_000);
        assert!(matches!(
            tsresol_from_raw(10),
            Err(PcapError::UnsupportedTsResol { raw: 10 })
        ));
        assert!(matches!(
            tsresol_from_raw(0xFF),
            Err(PcapError::UnsupportedTsResol { .. })
        ));
    }
}
