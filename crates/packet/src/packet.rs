//! The owned packet buffer that flows through every model.

use core::fmt;
use std::sync::Arc;

/// A unique per-simulation packet identifier.
///
/// Assigned by whoever injects the packet (traffic generators, the packet
/// generator block, the event merger); uniqueness is the injector's
/// responsibility. Uid 0 is reserved for "synthetic/anonymous".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PacketUid(pub u64);

impl fmt::Display for PacketUid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// An owned, mutable packet: the frame bytes plus a simulation identity.
///
/// The frame is reference-counted with copy-on-write semantics: cloning a
/// packet shares the payload (an `Arc` bump, no byte copy), which makes
/// fan-out — flooding, mirroring, replaying a generator template — free.
/// The first mutation of a *shared* frame copies it; a uniquely-held
/// frame is rewritten in place, so the common pipeline pattern
/// (one owner, in-place `patch_*` header rewrites) never copies at all.
/// Observable semantics are value semantics throughout: no clone ever
/// sees another clone's writes.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Simulation-unique identity for tracing and latency bookkeeping.
    pub uid: PacketUid,
    data: Arc<Vec<u8>>,
    /// Count of mutable-buffer accesses (see [`Packet::mutation_count`]).
    muts: u32,
}

impl PartialEq for Packet {
    fn eq(&self, other: &Self) -> bool {
        // Value semantics: identity + bytes. The mutation counter is an
        // optimization aid, not part of the packet's value.
        self.uid == other.uid && self.data == other.data
    }
}

impl Eq for Packet {}

impl Packet {
    /// Wraps raw frame bytes.
    pub fn new(uid: PacketUid, bytes: Vec<u8>) -> Self {
        Packet {
            uid,
            data: Arc::new(bytes),
            muts: 0,
        }
    }

    /// An anonymous packet (uid 0) — convenient in unit tests.
    pub fn anonymous(bytes: Vec<u8>) -> Self {
        Packet::new(PacketUid(0), bytes)
    }

    /// Wraps an already-shared payload without copying (zero-copy
    /// injection of a template frame under a fresh identity).
    pub fn from_shared(uid: PacketUid, bytes: Arc<Vec<u8>>) -> Self {
        Packet {
            uid,
            data: bytes,
            muts: 0,
        }
    }

    /// Number of mutable-buffer accesses this packet has seen (writes
    /// through [`Packet::bytes_mut`], [`Packet::extend`],
    /// [`Packet::truncate`] or [`Packet::trim_to_network_header`]).
    ///
    /// An unchanged count across a region of code proves the frame bytes
    /// were not touched in it, which lets pipelines reuse an earlier parse
    /// of this packet instead of re-parsing (parsing is pure, so equal
    /// bytes parse equally). Monotonic; never reset.
    pub fn mutation_count(&self) -> u32 {
        self.muts
    }

    /// A handle to the shared payload (cheap; bumps the refcount).
    pub fn share_payload(&self) -> Arc<Vec<u8>> {
        Arc::clone(&self.data)
    }

    /// True while this packet is the payload's only owner, i.e. mutation
    /// will happen in place rather than copy. Diagnostic/test hook.
    pub fn payload_is_unique(&self) -> bool {
        Arc::strong_count(&self.data) == 1
    }

    /// Unwraps into the frame bytes, copying only if the payload is still
    /// shared with another packet.
    pub fn into_frame(self) -> Vec<u8> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Unwraps into the frame bytes only if uniquely owned (buffer
    /// recycling); returns `None` — dropping nothing but the refcount —
    /// when the payload is still shared.
    pub fn try_into_unique_frame(self) -> Option<Vec<u8>> {
        Arc::try_unwrap(self.data).ok()
    }

    /// Frame length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-length buffer (never valid on a wire, but carrier
    /// frames in tests may start empty before headers are pushed).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the frame.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the frame, for in-place header rewrites.
    /// Copy-on-write: copies the frame first if it is currently shared.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        self.muts += 1;
        let vec: &mut Vec<u8> = Arc::make_mut(&mut self.data);
        vec
    }

    /// Extends the frame with `more` bytes (e.g. appending a telemetry
    /// record at the end of the payload).
    pub fn extend(&mut self, more: &[u8]) {
        self.muts += 1;
        Arc::make_mut(&mut self.data).extend_from_slice(more);
    }

    /// Truncates the frame to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.muts += 1;
        Arc::make_mut(&mut self.data).truncate(len);
    }

    /// Trims the frame to its network header in place (NDP-style "cut
    /// payload" on buffer overflow). Returns `false`, leaving the frame
    /// untouched, when it is not a parseable IPv4 packet. See
    /// [`crate::Ipv4Header::trim_to_network_header`].
    pub fn trim_to_network_header(&mut self) -> bool {
        self.muts += 1;
        crate::Ipv4Header::trim_to_network_header(Arc::make_mut(&mut self.data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let mut p = Packet::new(PacketUid(7), vec![1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.bytes(), &[1, 2, 3]);
        p.bytes_mut()[0] = 9;
        assert_eq!(p.bytes(), &[9, 2, 3]);
        assert_eq!(p.uid.to_string(), "pkt#7");
    }

    #[test]
    fn extend_truncate() {
        let mut p = Packet::anonymous(vec![1]);
        p.extend(&[2, 3]);
        assert_eq!(p.bytes(), &[1, 2, 3]);
        p.truncate(2);
        assert_eq!(p.bytes(), &[1, 2]);
    }

    #[test]
    fn clone_is_deep() {
        // Value semantics: a clone never observes the original's writes
        // (physically copy-on-write, observably a deep copy).
        let mut a = Packet::anonymous(vec![1, 2]);
        let b = a.clone();
        a.bytes_mut()[0] = 5;
        assert_eq!(b.bytes(), &[1, 2]);
        assert_eq!(a.bytes(), &[5, 2]);
    }

    #[test]
    fn clone_shares_payload_until_written() {
        let a = Packet::anonymous(vec![1, 2, 3]);
        let b = a.clone();
        assert!(!a.payload_is_unique());
        assert!(std::ptr::eq(a.bytes().as_ptr(), b.bytes().as_ptr()));
        drop(b);
        assert!(a.payload_is_unique());
    }

    #[test]
    fn from_shared_is_zero_copy() {
        let template = Arc::new(vec![9u8; 64]);
        let p = Packet::from_shared(PacketUid(1), Arc::clone(&template));
        let q = Packet::from_shared(PacketUid(2), Arc::clone(&template));
        assert!(std::ptr::eq(p.bytes().as_ptr(), q.bytes().as_ptr()));
        assert_eq!(p.len(), 64);
    }

    #[test]
    fn into_frame_avoids_copy_when_unique() {
        let p = Packet::anonymous(vec![1, 2, 3]);
        let ptr = p.bytes().as_ptr();
        let frame = p.into_frame();
        assert!(std::ptr::eq(ptr, frame.as_ptr()));

        let p = Packet::anonymous(vec![4, 5]);
        let q = p.clone();
        assert!(p.try_into_unique_frame().is_none());
        assert_eq!(q.try_into_unique_frame(), Some(vec![4, 5]));
    }
}
