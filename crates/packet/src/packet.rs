//! The owned packet buffer that flows through every model.

use bytes::{Bytes, BytesMut};
use core::fmt;

/// A unique per-simulation packet identifier.
///
/// Assigned by whoever injects the packet (traffic generators, the packet
/// generator block, the event merger); uniqueness is the injector's
/// responsibility. Uid 0 is reserved for "synthetic/anonymous".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PacketUid(pub u64);

impl fmt::Display for PacketUid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// An owned, mutable packet: the frame bytes plus a simulation identity.
///
/// Pipelines rewrite headers in place (`patch_*` codecs), so the buffer is
/// a [`BytesMut`]. Cloning copies the bytes — models that fan a packet out
/// (multicast, mirroring) clone explicitly and the cost is visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Simulation-unique identity for tracing and latency bookkeeping.
    pub uid: PacketUid,
    data: BytesMut,
}

impl Packet {
    /// Wraps raw frame bytes.
    pub fn new(uid: PacketUid, bytes: Vec<u8>) -> Self {
        Packet {
            uid,
            data: BytesMut::from(&bytes[..]),
        }
    }

    /// An anonymous packet (uid 0) — convenient in unit tests.
    pub fn anonymous(bytes: Vec<u8>) -> Self {
        Packet::new(PacketUid(0), bytes)
    }

    /// Frame length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-length buffer (never valid on a wire, but carrier
    /// frames in tests may start empty before headers are pushed).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the frame.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the frame, for in-place header rewrites.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Freezes into an immutable [`Bytes`] handle (zero-copy).
    pub fn freeze(self) -> Bytes {
        self.data.freeze()
    }

    /// Extends the frame with `more` bytes (e.g. appending a telemetry
    /// record at the end of the payload).
    pub fn extend(&mut self, more: &[u8]) {
        self.data.extend_from_slice(more);
    }

    /// Truncates the frame to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let mut p = Packet::new(PacketUid(7), vec![1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.bytes(), &[1, 2, 3]);
        p.bytes_mut()[0] = 9;
        assert_eq!(p.bytes(), &[9, 2, 3]);
        assert_eq!(p.uid.to_string(), "pkt#7");
    }

    #[test]
    fn extend_truncate() {
        let mut p = Packet::anonymous(vec![1]);
        p.extend(&[2, 3]);
        assert_eq!(p.bytes(), &[1, 2, 3]);
        p.truncate(2);
        assert_eq!(p.bytes(), &[1, 2]);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = Packet::anonymous(vec![1, 2]);
        let b = a.clone();
        a.bytes_mut()[0] = 5;
        assert_eq!(b.bytes(), &[1, 2]);
    }

    #[test]
    fn freeze_preserves_bytes() {
        let p = Packet::anonymous(vec![4, 5, 6]);
        assert_eq!(&p.freeze()[..], &[4, 5, 6]);
    }
}
