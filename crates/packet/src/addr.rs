//! Link-layer addressing.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used as "unset".
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// A locally administered unicast address derived from a small id;
    /// convenient for synthetic topologies (`02:00:00:00:00:<id>` style).
    pub const fn from_id(id: u32) -> MacAddr {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// True when the group bit (I/G, lowest bit of the first octet) is set.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Raw octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        assert_eq!(
            MacAddr([0, 1, 2, 0xaa, 0xbb, 0xff]).to_string(),
            "00:01:02:aa:bb:ff"
        );
    }

    #[test]
    fn broadcast_and_multicast_bits() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::from_id(7).is_multicast());
        assert!(MacAddr([0x01, 0, 0, 0, 0, 0]).is_multicast());
    }

    #[test]
    fn from_id_unique_and_local() {
        assert_ne!(MacAddr::from_id(1), MacAddr::from_id(2));
        assert_eq!(MacAddr::from_id(0x01020304).octets(), [2, 0, 1, 2, 3, 4]);
    }
}
