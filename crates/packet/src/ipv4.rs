//! IPv4 header codec with checksum support.

use crate::error::{check_len, ParseError, ParseResult};
use crate::wire::{fold, get_u16, internet_checksum, put_u16, sum_words};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Minimum (and, in this workspace, only) IPv4 header length: options are
/// not emitted and are rejected on parse, as in baseline PISA parsers.
pub const IPV4_HEADER_LEN: usize = 20;

/// DSCP codepoint stamped on NDP-style trimmed packets (see
/// [`Ipv4Header::trim_to_network_header`]).
pub const TRIMMED_DSCP: u8 = 63;

/// IP protocol numbers used in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpProto {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl IpProto {
    /// Wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

/// Explicit Congestion Notification codepoint (2 bits of the TOS byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ecn {
    /// Not ECN-capable transport.
    NotEct,
    /// ECN-capable transport, codepoint 1.
    Ect1,
    /// ECN-capable transport, codepoint 0.
    Ect0,
    /// Congestion experienced.
    Ce,
}

impl Ecn {
    /// Wire value (2 bits).
    pub fn to_bits(self) -> u8 {
        match self {
            Ecn::NotEct => 0b00,
            Ecn::Ect1 => 0b01,
            Ecn::Ect0 => 0b10,
            Ecn::Ce => 0b11,
        }
    }

    /// From the low 2 bits of the TOS byte.
    pub fn from_bits(v: u8) -> Self {
        match v & 0b11 {
            0b00 => Ecn::NotEct,
            0b01 => Ecn::Ect1,
            0b10 => Ecn::Ect0,
            _ => Ecn::Ce,
        }
    }
}

/// An IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Differentiated services codepoint (6 bits).
    pub dscp: u8,
    /// ECN codepoint.
    pub ecn: Ecn,
    /// Total length of header + payload, in bytes.
    pub total_len: u16,
    /// Identification field (used by apps as a sequence hint).
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub proto: IpProto,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Parses and checksum-verifies the header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> ParseResult<(Self, usize)> {
        check_len("ipv4", buf.len(), IPV4_HEADER_LEN)?;
        let ver_ihl = buf[0];
        if ver_ihl >> 4 != 4 {
            return Err(ParseError::Unsupported {
                layer: "ipv4",
                field: "version",
                value: (ver_ihl >> 4) as u64,
            });
        }
        let ihl = (ver_ihl & 0x0f) as usize * 4;
        if ihl != IPV4_HEADER_LEN {
            return Err(ParseError::Unsupported {
                layer: "ipv4",
                field: "ihl",
                value: ihl as u64,
            });
        }
        if fold(sum_words(&buf[..IPV4_HEADER_LEN], 0)) != 0xffff {
            return Err(ParseError::BadChecksum { layer: "ipv4" });
        }
        let total_len = get_u16(buf, 2);
        if (total_len as usize) < IPV4_HEADER_LEN || total_len as usize > buf.len() {
            return Err(ParseError::BadLength { layer: "ipv4" });
        }
        Ok((
            Ipv4Header {
                dscp: buf[1] >> 2,
                ecn: Ecn::from_bits(buf[1]),
                total_len,
                ident: get_u16(buf, 4),
                ttl: buf[8],
                proto: IpProto::from_u8(buf[9]),
                src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
                dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            },
            IPV4_HEADER_LEN,
        ))
    }

    /// Appends the encoded header (with correct checksum) to `out`.
    pub fn emit(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.push(0x45);
        out.push((self.dscp << 2) | self.ecn.to_bits());
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&self.ident.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // flags + fragment offset: unfragmented
        out.push(self.ttl);
        out.push(self.proto.to_u8());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        let ck = internet_checksum(&out[start..start + IPV4_HEADER_LEN]);
        put_u16(&mut out[start..], 10, ck);
    }

    /// Rewrites the ECN bits of an already-encoded header in place (offset
    /// `ip_off` within `buf`), patching the checksum incrementally. This is
    /// the operation the multi-bit-ECN app performs per packet.
    pub fn patch_ecn(buf: &mut [u8], ip_off: usize, ecn: Ecn) {
        let tos = ip_off + 1;
        buf[tos] = (buf[tos] & !0b11) | ecn.to_bits();
        // Recompute full checksum: headers are small, simplicity wins.
        put_u16(buf, ip_off + 10, 0);
        let ck = internet_checksum(&buf[ip_off..ip_off + IPV4_HEADER_LEN]);
        put_u16(buf, ip_off + 10, ck);
    }

    /// Decrements the TTL of an encoded header in place, patching the
    /// checksum. Returns the new TTL (0 means the packet must be dropped).
    pub fn patch_ttl_decrement(buf: &mut [u8], ip_off: usize) -> u8 {
        let ttl = buf[ip_off + 8].saturating_sub(1);
        buf[ip_off + 8] = ttl;
        put_u16(buf, ip_off + 10, 0);
        let ck = internet_checksum(&buf[ip_off..ip_off + IPV4_HEADER_LEN]);
        put_u16(buf, ip_off + 10, ck);
        ttl
    }

    /// Trims an IPv4 frame to its headers (Ethernet + IPv4 + transport
    /// header, no payload), patching lengths and checksums so the result
    /// still parses, and stamping DSCP [`TRIMMED_DSCP`] as the trim
    /// marker. This is the NDP-style "cut payload" operation a switch
    /// applies to buffer-overflow victims so receivers learn *which*
    /// packet was lost — flow 5-tuple and sequence numbers included —
    /// instead of seeing silence.
    ///
    /// For UDP the length field is rewritten to the bare header and the
    /// checksum disabled; for TCP the 20-byte header is kept verbatim
    /// (its checksum is not verified by parsers); other protocols keep
    /// only the IPv4 header with the protocol rewritten to 253
    /// (experimental) so the frame stays parseable.
    ///
    /// Returns `false` (leaving `frame` untouched) when the frame is not
    /// a parseable IPv4 packet.
    pub fn trim_to_network_header(frame: &mut Vec<u8>) -> bool {
        use crate::eth::{EthHeader, EtherType, ETH_HEADER_LEN};
        use crate::l4::{TCP_HEADER_LEN, UDP_HEADER_LEN};
        let Ok((eth, _)) = EthHeader::parse(frame) else {
            return false;
        };
        if eth.ethertype != EtherType::Ipv4 || frame.len() < ETH_HEADER_LEN + IPV4_HEADER_LEN {
            return false;
        }
        let Ok((ip, _)) = Ipv4Header::parse(&frame[ETH_HEADER_LEN..]) else {
            return false;
        };
        let ip_off = ETH_HEADER_LEN;
        let l4_off = ip_off + IPV4_HEADER_LEN;
        let l4_avail = frame.len() - l4_off;
        let keep_l4 = match ip.proto {
            IpProto::Udp if l4_avail >= UDP_HEADER_LEN => UDP_HEADER_LEN,
            IpProto::Tcp if l4_avail >= TCP_HEADER_LEN => TCP_HEADER_LEN,
            _ => 0,
        };
        frame.truncate(l4_off + keep_l4);
        match (ip.proto, keep_l4) {
            (IpProto::Udp, UDP_HEADER_LEN) => {
                // Bare UDP header: len = 8, checksum disabled.
                put_u16(frame, l4_off + 4, UDP_HEADER_LEN as u16);
                put_u16(frame, l4_off + 6, 0);
            }
            (IpProto::Tcp, TCP_HEADER_LEN) => {
                // Force data offset to the bare 20-byte header (options
                // were cut with the payload).
                frame[l4_off + 12] = (TCP_HEADER_LEN as u8 / 4) << 4;
            }
            _ => {
                // No transport header retained: mark protocol experimental
                // so the parser does not look for one.
                frame[ip_off + 9] = 253;
            }
        }
        put_u16(frame, ip_off + 2, (IPV4_HEADER_LEN + keep_l4) as u16);
        // Mark as trimmed via DSCP, preserving the ECN bits.
        frame[ip_off + 1] = (TRIMMED_DSCP << 2) | (frame[ip_off + 1] & 0b11);
        put_u16(frame, ip_off + 10, 0);
        let ck = internet_checksum(&frame[ip_off..ip_off + IPV4_HEADER_LEN]);
        put_u16(frame, ip_off + 10, ck);
        true
    }

    /// Sum of the pseudo-header fields used by TCP/UDP checksums.
    pub fn pseudo_header_sum(&self, l4_len: u16) -> u32 {
        let mut sum = sum_words(&self.src.octets(), 0);
        sum = sum_words(&self.dst.octets(), sum);
        sum += self.proto.to_u8() as u32;
        sum += l4_len as u32;
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header {
            dscp: 0,
            ecn: Ecn::Ect0,
            total_len: 40,
            ident: 0x1234,
            ttl: 64,
            proto: IpProto::Udp,
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
        }
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let mut out = Vec::new();
        h.emit(&mut out);
        out.extend_from_slice(&[0u8; 20]); // payload so total_len fits
        let (parsed, used) = Ipv4Header::parse(&out).expect("parse");
        assert_eq!(parsed, h);
        assert_eq!(used, IPV4_HEADER_LEN);
    }

    #[test]
    fn corrupt_byte_fails_checksum() {
        let mut out = Vec::new();
        sample().emit(&mut out);
        out.extend_from_slice(&[0u8; 20]);
        out[8] ^= 0xff; // flip TTL
        assert!(matches!(
            Ipv4Header::parse(&out),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut out = Vec::new();
        sample().emit(&mut out);
        out[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::parse(&out),
            Err(ParseError::Unsupported {
                field: "version",
                ..
            })
        ));
    }

    #[test]
    fn total_len_beyond_buffer_rejected() {
        let mut out = Vec::new();
        let mut h = sample();
        h.total_len = 1000;
        h.emit(&mut out);
        assert!(matches!(
            Ipv4Header::parse(&out),
            Err(ParseError::BadLength { .. })
        ));
    }

    #[test]
    fn patch_ecn_keeps_checksum_valid() {
        let mut out = Vec::new();
        sample().emit(&mut out);
        out.extend_from_slice(&[0u8; 20]);
        Ipv4Header::patch_ecn(&mut out, 0, Ecn::Ce);
        let (parsed, _) = Ipv4Header::parse(&out).expect("still valid");
        assert_eq!(parsed.ecn, Ecn::Ce);
    }

    #[test]
    fn patch_ttl_keeps_checksum_valid() {
        let mut out = Vec::new();
        sample().emit(&mut out);
        out.extend_from_slice(&[0u8; 20]);
        let ttl = Ipv4Header::patch_ttl_decrement(&mut out, 0);
        assert_eq!(ttl, 63);
        let (parsed, _) = Ipv4Header::parse(&out).expect("still valid");
        assert_eq!(parsed.ttl, 63);
    }

    #[test]
    fn trim_to_network_header_parses_and_marks() {
        let mut frame = crate::builder::PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            5,
            6,
            &[0u8; 500],
        )
        .ecn(Ecn::Ect0)
        .build();
        assert!(Ipv4Header::trim_to_network_header(&mut frame));
        assert_eq!(frame.len(), 14 + 20 + 8, "eth + ip + bare udp");
        let (h, _) = Ipv4Header::parse(&frame[14..]).expect("trimmed parses");
        assert_eq!(h.total_len, 28);
        assert_eq!(h.dscp, TRIMMED_DSCP);
        assert_eq!(h.ecn, Ecn::Ect0, "ECN preserved");
        assert_eq!(h.src, Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn trim_rejects_non_ip() {
        let mut junk = vec![0u8; 10];
        assert!(!Ipv4Header::trim_to_network_header(&mut junk));
        assert_eq!(junk.len(), 10, "untouched");
        let mut carrier = crate::builder::PacketBuilder::event_carrier(64);
        assert!(!Ipv4Header::trim_to_network_header(&mut carrier));
    }

    #[test]
    fn ecn_bits_round_trip() {
        for e in [Ecn::NotEct, Ecn::Ect0, Ecn::Ect1, Ecn::Ce] {
            assert_eq!(Ecn::from_bits(e.to_bits()), e);
        }
    }
}
