//! Frame assembly.
//!
//! [`PacketBuilder`] composes Ethernet/IPv4/L4/app layers into a wire-valid
//! frame (lengths and checksums computed for you). Constructors cover the
//! shapes the workloads need; setters tweak the defaults.

use crate::addr::MacAddr;
use crate::apphdr::{
    HulaProbe, KvHeader, LivenessHeader, RpcHeader, TelemetryHeader, PORT_HULA, PORT_KV,
    PORT_LIVENESS, PORT_RPC, PORT_TELEMETRY,
};
use crate::eth::{EthHeader, EtherType, ETH_HEADER_LEN};
use crate::ipv4::{Ecn, IpProto, Ipv4Header, IPV4_HEADER_LEN};
use crate::l4::{IcmpEcho, IcmpEchoKind, TcpFlags, TcpHeader, UdpHeader, UDP_HEADER_LEN};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
enum L4Spec {
    Udp {
        src_port: u16,
        dst_port: u16,
    },
    Tcp {
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
        window: u16,
    },
    Icmp {
        kind: IcmpEchoKind,
        ident: u16,
        seq: u16,
    },
    None,
}

/// A fluent builder for wire-valid frames.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    eth_src: MacAddr,
    eth_dst: MacAddr,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    ttl: u8,
    dscp: u8,
    ecn: Ecn,
    ident: u16,
    l4: L4Spec,
    payload: Vec<u8>,
    pad_to: usize,
}

impl PacketBuilder {
    fn base(src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        PacketBuilder {
            // Default MACs derive from the IP host byte so traces read well.
            eth_src: MacAddr::from_id(u32::from(src)),
            eth_dst: MacAddr::from_id(u32::from(dst)),
            src,
            dst,
            ttl: 64,
            dscp: 0,
            ecn: Ecn::NotEct,
            ident: 0,
            l4: L4Spec::None,
            payload: Vec::new(),
            pad_to: 0,
        }
    }

    /// A UDP datagram.
    pub fn udp(src: Ipv4Addr, dst: Ipv4Addr, src_port: u16, dst_port: u16, payload: &[u8]) -> Self {
        let mut b = Self::base(src, dst);
        b.l4 = L4Spec::Udp { src_port, dst_port };
        b.payload = payload.to_vec();
        b
    }

    /// A TCP segment with the ACK flag (data-path traffic shape).
    pub fn tcp(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        payload: &[u8],
    ) -> Self {
        let mut b = Self::base(src, dst);
        b.l4 = L4Spec::Tcp {
            src_port,
            dst_port,
            seq,
            ack,
            flags: TcpFlags::ACK,
            window: 0xffff,
        };
        b.payload = payload.to_vec();
        b
    }

    /// An ICMP echo request (`request = true`) or reply.
    pub fn icmp_echo(src: Ipv4Addr, dst: Ipv4Addr, request: bool, ident: u16, seq: u16) -> Self {
        let mut b = Self::base(src, dst);
        b.l4 = L4Spec::Icmp {
            kind: if request {
                IcmpEchoKind::Request
            } else {
                IcmpEchoKind::Reply
            },
            ident,
            seq,
        };
        b
    }

    /// A HULA probe on [`PORT_HULA`].
    pub fn hula_probe(src: Ipv4Addr, dst: Ipv4Addr, probe: &HulaProbe) -> Self {
        let mut payload = Vec::new();
        probe.emit(&mut payload);
        Self::udp(src, dst, PORT_HULA, PORT_HULA, &payload)
    }

    /// A telemetry-bearing datagram on [`PORT_TELEMETRY`]: the record is
    /// placed first in the payload so hops can stamp it at a fixed offset,
    /// followed by `extra` application bytes.
    pub fn telemetry(src: Ipv4Addr, dst: Ipv4Addr, rec: &TelemetryHeader, extra: &[u8]) -> Self {
        let mut payload = Vec::new();
        rec.emit(&mut payload);
        payload.extend_from_slice(extra);
        Self::udp(src, dst, PORT_TELEMETRY, PORT_TELEMETRY, &payload)
    }

    /// A key-value message on [`PORT_KV`].
    pub fn kv(src: Ipv4Addr, dst: Ipv4Addr, msg: &KvHeader) -> Self {
        let mut payload = Vec::new();
        msg.emit(&mut payload);
        Self::udp(src, dst, PORT_KV, PORT_KV, &payload)
    }

    /// A liveness probe on [`PORT_LIVENESS`].
    pub fn liveness(src: Ipv4Addr, dst: Ipv4Addr, probe: &LivenessHeader) -> Self {
        let mut payload = Vec::new();
        probe.emit(&mut payload);
        Self::udp(src, dst, PORT_LIVENESS, PORT_LIVENESS, &payload)
    }

    /// An endpoint-model RPC message on [`PORT_RPC`].
    pub fn rpc(src: Ipv4Addr, dst: Ipv4Addr, msg: &RpcHeader) -> Self {
        let mut payload = Vec::new();
        msg.emit(&mut payload);
        Self::udp(src, dst, PORT_RPC, PORT_RPC, &payload)
    }

    /// A bare event-carrier frame of `len` total bytes (≥ 14): what the
    /// event merger injects when event metadata has no packet to ride on.
    pub fn event_carrier(len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len.max(ETH_HEADER_LEN));
        EthHeader {
            dst: MacAddr::ZERO,
            src: MacAddr::ZERO,
            ethertype: EtherType::EventCarrier,
        }
        .emit(&mut out);
        out.resize(len.max(ETH_HEADER_LEN), 0);
        out
    }

    /// Overrides the Ethernet addresses.
    pub fn eth(mut self, src: MacAddr, dst: MacAddr) -> Self {
        self.eth_src = src;
        self.eth_dst = dst;
        self
    }

    /// Sets the ECN codepoint.
    pub fn ecn(mut self, ecn: Ecn) -> Self {
        self.ecn = ecn;
        self
    }

    /// Sets the DSCP codepoint (6 bits).
    pub fn dscp(mut self, dscp: u8) -> Self {
        assert!(dscp < 64, "dscp is 6 bits");
        self.dscp = dscp;
        self
    }

    /// Sets the TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the IP identification field.
    pub fn ident(mut self, ident: u16) -> Self {
        self.ident = ident;
        self
    }

    /// Pads the payload with zeros so the final frame is at least `len`
    /// bytes (workloads use this to control packet size exactly).
    pub fn pad_to(mut self, len: usize) -> Self {
        self.pad_to = len;
        self
    }

    /// Assembles the frame.
    pub fn build(mut self) -> Vec<u8> {
        // Grow the payload so the finished frame reaches `pad_to`.
        let l4_hdr_len = match self.l4 {
            L4Spec::Udp { .. } => UDP_HEADER_LEN,
            L4Spec::Tcp { .. } => crate::l4::TCP_HEADER_LEN,
            L4Spec::Icmp { .. } => crate::l4::ICMP_ECHO_LEN,
            L4Spec::None => 0,
        };
        let base_len = ETH_HEADER_LEN + IPV4_HEADER_LEN + l4_hdr_len + self.payload.len();
        if self.pad_to > base_len {
            self.payload
                .resize(self.payload.len() + self.pad_to - base_len, 0);
        }

        let l4_len = l4_hdr_len + self.payload.len();
        let proto = match self.l4 {
            L4Spec::Udp { .. } => IpProto::Udp,
            L4Spec::Tcp { .. } => IpProto::Tcp,
            L4Spec::Icmp { .. } => IpProto::Icmp,
            L4Spec::None => IpProto::Other(253),
        };
        let ip = Ipv4Header {
            dscp: self.dscp,
            ecn: self.ecn,
            total_len: (IPV4_HEADER_LEN + l4_len) as u16,
            ident: self.ident,
            ttl: self.ttl,
            proto,
            src: self.src,
            dst: self.dst,
        };

        let mut out = Vec::with_capacity(ETH_HEADER_LEN + ip.total_len as usize);
        EthHeader {
            dst: self.eth_dst,
            src: self.eth_src,
            ethertype: EtherType::Ipv4,
        }
        .emit(&mut out);
        ip.emit(&mut out);
        match self.l4 {
            L4Spec::Udp { src_port, dst_port } => {
                UdpHeader {
                    src_port,
                    dst_port,
                    len: l4_len as u16,
                }
                .emit(&mut out, Some(&ip), &self.payload);
            }
            L4Spec::Tcp {
                src_port,
                dst_port,
                seq,
                ack,
                flags,
                window,
            } => {
                TcpHeader {
                    src_port,
                    dst_port,
                    seq,
                    ack,
                    flags,
                    window,
                }
                .emit(&mut out, Some(&ip), &self.payload);
            }
            L4Spec::Icmp { kind, ident, seq } => {
                IcmpEcho { kind, ident, seq }.emit(&mut out, &self.payload);
            }
            L4Spec::None => out.extend_from_slice(&self.payload),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_packet;

    fn a(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 168, 0, n)
    }

    #[test]
    fn built_frames_parse_back() {
        for frame in [
            PacketBuilder::udp(a(1), a(2), 10, 20, b"xyz").build(),
            PacketBuilder::tcp(a(1), a(2), 10, 20, 5, 6, b"abc").build(),
            PacketBuilder::icmp_echo(a(1), a(2), true, 1, 2).build(),
            PacketBuilder::hula_probe(
                a(1),
                a(2),
                &HulaProbe {
                    tor_id: 1,
                    max_util: 2,
                    seq: 3,
                },
            )
            .build(),
            PacketBuilder::kv(
                a(1),
                a(2),
                &KvHeader {
                    op: crate::apphdr::KvOp::Get,
                    key: 1,
                    value: 0,
                },
            )
            .build(),
        ] {
            parse_packet(&frame).expect("round trip");
        }
    }

    #[test]
    fn pad_to_controls_frame_size() {
        let frame = PacketBuilder::udp(a(1), a(2), 1, 2, &[])
            .pad_to(500)
            .build();
        assert_eq!(frame.len(), 500);
        parse_packet(&frame).expect("padded frame parses");
        // Smaller than natural size: no-op.
        let frame = PacketBuilder::udp(a(1), a(2), 1, 2, b"1234")
            .pad_to(10)
            .build();
        assert_eq!(frame.len(), 14 + 20 + 8 + 4);
    }

    #[test]
    fn setters_apply() {
        let frame = PacketBuilder::udp(a(1), a(2), 1, 2, &[])
            .ttl(9)
            .dscp(46)
            .ident(0x4242)
            .eth(MacAddr::from_id(100), MacAddr::BROADCAST)
            .build();
        let pp = parse_packet(&frame).expect("parse");
        let ip = pp.ipv4.expect("ip");
        assert_eq!(ip.ttl, 9);
        assert_eq!(ip.dscp, 46);
        assert_eq!(ip.ident, 0x4242);
        assert_eq!(pp.eth.dst, MacAddr::BROADCAST);
    }

    #[test]
    fn event_carrier_min_len() {
        assert_eq!(PacketBuilder::event_carrier(0).len(), ETH_HEADER_LEN);
        assert_eq!(PacketBuilder::event_carrier(64).len(), 64);
    }

    #[test]
    fn telemetry_record_is_at_fixed_offset() {
        let rec = TelemetryHeader {
            max_queue_bytes: 1,
            path_delay_ns: 2,
            hop_count: 0,
        };
        let frame = PacketBuilder::telemetry(a(1), a(2), &rec, b"app").build();
        let pp = parse_packet(&frame).expect("parse");
        // The record sits right after the UDP header.
        let rec_off = pp.payload_offset - TelemetryHeader::WIRE_LEN;
        assert_eq!(rec_off, ETH_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN);
        assert_eq!(&frame[pp.payload_offset..], b"app");
    }
}
