//! Frame-buffer pooling.
//!
//! Traffic generators and injection paths produce millions of short-lived
//! frames; allocating a fresh `Vec<u8>` per frame puts the allocator on
//! the per-packet fast path. [`BufferPool`] keeps retired frame buffers
//! and hands them back out: `take` a cleared buffer, build the frame into
//! it, wrap it in a [`Packet`](crate::Packet), and once the packet dies
//! `recycle` it — the buffer returns to the pool if (and only if) nothing
//! else still shares the payload.
//!
//! The pool is a plain value (no globals, no locks): owners thread it
//! through their injection loop, keeping recycling deterministic.

use crate::Packet;

/// Counters for pool effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out from the free list (allocation avoided).
    pub reused: u64,
    /// Buffers handed out by fresh allocation (pool was empty).
    pub allocated: u64,
    /// Buffers returned to the pool.
    pub recycled: u64,
    /// Recycle attempts refused because the payload was still shared or
    /// the pool was full.
    pub refused: u64,
}

/// A bounded free-list of frame buffers.
#[derive(Debug, Clone)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    max_buffers: usize,
    stats: PoolStats,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl BufferPool {
    /// Creates a pool retaining at most `max_buffers` free buffers.
    pub fn new(max_buffers: usize) -> Self {
        BufferPool {
            free: Vec::new(),
            max_buffers,
            stats: PoolStats::default(),
        }
    }

    /// Hands out an empty buffer (capacity retained from its past life
    /// when it came off the free list).
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => {
                self.stats.reused += 1;
                buf
            }
            None => {
                self.stats.allocated += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool (cleared; dropped if the pool is full).
    pub fn give(&mut self, mut buf: Vec<u8>) {
        if self.free.len() < self.max_buffers {
            buf.clear();
            self.stats.recycled += 1;
            self.free.push(buf);
        } else {
            self.stats.refused += 1;
        }
    }

    /// Reclaims a dead packet's buffer if this packet was the payload's
    /// only owner; otherwise just drops the reference. Returns whether the
    /// buffer was pooled.
    pub fn recycle(&mut self, pkt: Packet) -> bool {
        match pkt.try_into_unique_frame() {
            Some(buf) if self.free.len() < self.max_buffers => {
                self.give(buf);
                true
            }
            _ => {
                self.stats.refused += 1;
                false
            }
        }
    }

    /// Free buffers currently pooled.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_reuses_storage() {
        let mut pool = BufferPool::new(4);
        let mut buf = pool.take();
        assert_eq!(pool.stats().allocated, 1);
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        pool.give(buf);
        let buf2 = pool.take();
        assert_eq!(pool.stats().reused, 1);
        assert!(buf2.is_empty(), "pooled buffers come back cleared");
        assert_eq!(buf2.capacity(), cap);
        assert!(std::ptr::eq(ptr, buf2.as_ptr()), "same storage reused");
    }

    #[test]
    fn recycle_requires_unique_ownership() {
        let mut pool = BufferPool::new(4);
        let p = Packet::anonymous(vec![1, 2, 3]);
        let q = p.clone();
        assert!(!pool.recycle(p), "shared payload must not be pooled");
        assert!(pool.recycle(q), "last owner recycles");
        assert_eq!(pool.free_buffers(), 1);
        assert_eq!(pool.stats().refused, 1);
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn pool_is_bounded() {
        let mut pool = BufferPool::new(1);
        pool.give(vec![1]);
        pool.give(vec![2]);
        assert_eq!(pool.free_buffers(), 1);
        assert_eq!(pool.stats().refused, 1);
    }
}
