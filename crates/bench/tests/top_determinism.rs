//! `edp_top` determinism: a sweep point's telemetry is a pure function
//! of its seed. Running the same seeds on 1 worker thread and on 8 must
//! produce byte-identical traces and exports — the acceptance bar for
//! `EDP_SWEEP_THREADS` independence. The sharded engine raises the bar:
//! the same point on 1, 2, or 4 shards must also be byte-identical,
//! for every registered app.

use edp_bench::top::{app_names, run, to_json_report, TopOptions, TopWorkload};
use edp_evsim::{HorizonMode, SimDuration};

fn opts(threads: usize) -> TopOptions {
    TopOptions {
        seeds: vec![1, 2, 3, 4],
        duration: SimDuration::from_millis(2),
        threads,
        trace_capacity: 8192,
        shards: 0,
        burst: 1,
        horizon: HorizonMode::Classic,
        workload: TopWorkload::Cbr,
        profile: false,
    }
}

#[test]
fn trace_and_exports_identical_for_1_vs_8_threads() {
    for app in ["microburst", "ndp-trim"] {
        let a = run(app, &opts(1)).expect("1-thread run");
        let b = run(app, &opts(8)).expect("8-thread run");
        assert_eq!(a.trace, b.trace, "{app}: trace must not depend on threads");
        assert_eq!(
            to_json_report(&a),
            to_json_report(&b),
            "{app}: JSON report must not depend on threads"
        );
        assert_eq!(
            edp_telemetry::to_prometheus_text(&a.registry),
            edp_telemetry::to_prometheus_text(&b.registry),
            "{app}: Prometheus export must not depend on threads"
        );
        // The load actually exercised the switch in every point.
        assert!(a.registry.counter("rx", "sw0") > 0);
        assert!(a.trace.matches("== ").count() == 4, "one section per seed");
    }
}

/// Options for the shard-invariance sweep: short duration (16 apps x 3
/// shard counts), a ring big enough that no shard evicts (eviction order
/// is the one thing that legitimately depends on the shard count — the
/// summed `dropped` footer turns any eviction into a loud diff).
fn shard_opts(shards: usize) -> TopOptions {
    TopOptions {
        seeds: vec![1, 2],
        duration: SimDuration::from_millis(1),
        threads: 1,
        trace_capacity: 65_536,
        shards,
        burst: 1,
        horizon: HorizonMode::Classic,
        workload: TopWorkload::Cbr,
        profile: false,
    }
}

#[test]
fn every_app_is_byte_identical_across_shard_counts() {
    for app in app_names() {
        let one = run(app, &shard_opts(1)).expect("1-shard run");
        assert!(one.trace_records > 0, "{app}: sharded run recorded nothing");
        assert_eq!(one.trace_dropped, 0, "{app}: ring evicted; raise capacity");
        let one_json = to_json_report(&one);
        let one_prom = edp_telemetry::to_prometheus_text(&one.registry);
        for shards in [2usize, 4] {
            let many = run(app, &shard_opts(shards)).expect("sharded run");
            assert_eq!(
                one.trace, many.trace,
                "{app}: trace differs at {shards} shards"
            );
            assert_eq!(
                one_json,
                to_json_report(&many),
                "{app}: JSON report differs at {shards} shards"
            );
            assert_eq!(
                one_prom,
                edp_telemetry::to_prometheus_text(&many.registry),
                "{app}: Prometheus export differs at {shards} shards"
            );
        }
    }
}

/// `EDP_BURST` is a pure execution-strategy knob: for every registered
/// app the sharded point must render the byte-identical canonical trace
/// and exports at burst 1, 8, and 32 — only the negotiated-window count
/// is allowed to move (down).
#[test]
fn every_app_is_byte_identical_across_burst_factors() {
    for app in app_names() {
        let mut o = shard_opts(2);
        let one = run(app, &o).expect("burst-1 run");
        assert_eq!(one.trace_dropped, 0, "{app}: ring evicted; raise capacity");
        let one_json = to_json_report(&one);
        let one_prom = edp_telemetry::to_prometheus_text(&one.registry);
        for burst in [8usize, 32] {
            o.burst = burst;
            let b = run(app, &o).expect("burst run");
            assert_eq!(one.trace, b.trace, "{app}: trace differs at burst {burst}");
            assert_eq!(
                one_json,
                to_json_report(&b),
                "{app}: JSON report differs at burst {burst}"
            );
            assert_eq!(
                one_prom,
                edp_telemetry::to_prometheus_text(&b.registry),
                "{app}: Prometheus export differs at burst {burst}"
            );
            assert!(
                b.shard_windows <= one.shard_windows,
                "{app}: burst {burst} negotiated more windows ({} > {})",
                b.shard_windows,
                one.shard_windows
            );
        }
    }
}

/// `EDP_HORIZON` is a pure execution-strategy knob too: for every
/// registered app the sharded point under the certificate-aware effects
/// horizon must render the byte-identical canonical trace and exports
/// at shard counts 1/2/4 crossed with burst 1/32. The build installs
/// each app's effect summary, so certified-local timer cranks really do
/// run past window bounds here — and must not change a byte.
#[test]
fn every_app_is_byte_identical_under_the_effects_horizon() {
    for app in app_names() {
        let base = run(app, &shard_opts(1)).expect("classic 1-shard run");
        assert_eq!(base.trace_dropped, 0, "{app}: ring evicted; raise capacity");
        let base_json = to_json_report(&base);
        let base_prom = edp_telemetry::to_prometheus_text(&base.registry);
        for shards in [1usize, 2, 4] {
            for burst in [1usize, 32] {
                let mut o = shard_opts(shards);
                o.burst = burst;
                o.horizon = HorizonMode::Effects;
                let b = run(app, &o).expect("effects run");
                assert_eq!(
                    base.trace, b.trace,
                    "{app}: trace differs under effects at {shards} shards x burst {burst}"
                );
                assert_eq!(
                    base_json,
                    to_json_report(&b),
                    "{app}: JSON differs under effects at {shards} shards x burst {burst}"
                );
                assert_eq!(
                    base_prom,
                    edp_telemetry::to_prometheus_text(&b.registry),
                    "{app}: Prometheus differs under effects at {shards} shards x burst {burst}"
                );
            }
        }
    }
}

/// The ingestion-plane acceptance pin: the pcap-replay and
/// endpoint-fleet workloads are a pure function of `(file, seed)` —
/// trace and exports byte-identical across shard counts 1/2/4 crossed
/// with burst factors 1/32.
fn workload_pin(workload: TopWorkload, tag: &str) {
    let point = |shards: usize, burst: usize| {
        let o = TopOptions {
            seeds: vec![1],
            duration: SimDuration::from_millis(2),
            threads: 1,
            trace_capacity: 262_144,
            shards,
            burst,
            horizon: HorizonMode::Classic,
            workload: workload.clone(),
            profile: false,
        };
        run("microburst", &o).expect("workload run")
    };
    let base = point(1, 1);
    assert!(base.trace_records > 0, "{tag}: run recorded nothing");
    assert_eq!(base.trace_dropped, 0, "{tag}: ring evicted; raise capacity");
    let base_json = to_json_report(&base);
    let base_prom = edp_telemetry::to_prometheus_text(&base.registry);
    for shards in [1usize, 2, 4] {
        for burst in [1usize, 32] {
            if (shards, burst) == (1, 1) {
                continue;
            }
            let b = point(shards, burst);
            assert_eq!(
                base.trace, b.trace,
                "{tag}: trace differs at {shards} shards x burst {burst}"
            );
            assert_eq!(
                base_json,
                to_json_report(&b),
                "{tag}: JSON differs at {shards} shards x burst {burst}"
            );
            assert_eq!(
                base_prom,
                edp_telemetry::to_prometheus_text(&b.registry),
                "{tag}: Prometheus differs at {shards} shards x burst {burst}"
            );
        }
    }
}

#[test]
fn pcap_replay_is_byte_identical_across_shards_and_burst() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/mixed_protocols.pcap"
    );
    let bytes = std::fs::read(path).expect("fixture present");
    let file = edp_packet::PcapFile::parse(&bytes).expect("fixture parses");
    assert!(!file.packets.is_empty());
    workload_pin(
        TopWorkload::Pcap {
            packets: std::sync::Arc::new(file.packets),
            speedup: 1.0,
        },
        "pcap",
    );
}

#[test]
fn endpoint_fleet_is_byte_identical_across_shards_and_burst() {
    workload_pin(TopWorkload::Endpoints { count: 1000 }, "endpoints");
}

/// The PR-9 pin: the wall-clock profiler is opt-in and *outside* the
/// determinism boundary. Enabling it on the classic and the sharded
/// path must leave every canonical output — trace, JSON report,
/// Prometheus export — byte-identical to the unprofiled run, while the
/// profiles themselves land only in the separate `profiles` field.
#[test]
fn profiling_leaves_canonical_outputs_byte_identical() {
    for shards in [0usize, 2] {
        let off = shard_opts(shards); // 0 = the classic single-world path
        let base = run("microburst", &off).expect("unprofiled run");
        let mut on = off.clone();
        on.profile = true;
        let profiled = run("microburst", &on).expect("profiled run");
        assert_eq!(
            base.trace, profiled.trace,
            "shards={shards}: profiling changed the canonical trace"
        );
        assert_eq!(
            to_json_report(&base),
            to_json_report(&profiled),
            "shards={shards}: profiling changed the JSON report"
        );
        assert_eq!(
            edp_telemetry::to_prometheus_text(&base.registry),
            edp_telemetry::to_prometheus_text(&profiled.registry),
            "shards={shards}: profiling changed the Prometheus export"
        );
        assert!(base.profiles.is_empty(), "unprofiled run must carry none");
        assert_eq!(
            profiled.profiles.len(),
            off.seeds.len(),
            "shards={shards}: one profile set per seed"
        );
        let tracks = shards.max(1);
        for (_, point) in &profiled.profiles {
            assert_eq!(point.len(), tracks, "one profile per shard track");
            for p in point {
                assert_eq!(
                    p.attributed_ns(),
                    p.total_ns,
                    "shards={shards}: lap attribution must cover the session"
                );
            }
        }
    }
}

#[test]
fn sharded_sweep_is_thread_independent_too() {
    let mut a_opts = shard_opts(2);
    let mut b_opts = shard_opts(2);
    a_opts.threads = 1;
    b_opts.threads = 8;
    let a = run("microburst", &a_opts).expect("run");
    let b = run("microburst", &b_opts).expect("run");
    assert_eq!(a.trace, b.trace);
    assert_eq!(to_json_report(&a), to_json_report(&b));
    assert_eq!(a.shard_windows, b.shard_windows);
    assert_eq!(a.shard_messages, b.shard_messages);
}
