//! `edp_top` determinism: a sweep point's telemetry is a pure function
//! of its seed. Running the same seeds on 1 worker thread and on 8 must
//! produce byte-identical traces and exports — the acceptance bar for
//! `EDP_SWEEP_THREADS` independence.

use edp_bench::top::{run, to_json_report, TopOptions};
use edp_evsim::SimDuration;

fn opts(threads: usize) -> TopOptions {
    TopOptions {
        seeds: vec![1, 2, 3, 4],
        duration: SimDuration::from_millis(2),
        threads,
        trace_capacity: 8192,
    }
}

#[test]
fn trace_and_exports_identical_for_1_vs_8_threads() {
    for app in ["microburst", "ndp-trim"] {
        let a = run(app, &opts(1)).expect("1-thread run");
        let b = run(app, &opts(8)).expect("8-thread run");
        assert_eq!(a.trace, b.trace, "{app}: trace must not depend on threads");
        assert_eq!(
            to_json_report(&a),
            to_json_report(&b),
            "{app}: JSON report must not depend on threads"
        );
        assert_eq!(
            edp_telemetry::to_prometheus_text(&a.registry),
            edp_telemetry::to_prometheus_text(&b.registry),
            "{app}: Prometheus export must not depend on threads"
        );
        // The load actually exercised the switch in every point.
        assert!(a.registry.counter("rx", "sw0") > 0);
        assert!(a.trace.matches("== ").count() == 4, "one section per seed");
    }
}
