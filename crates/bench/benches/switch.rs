//! System benches: whole-switch packet rates, baseline vs event-driven.
//!
//! The interesting number is the *overhead of event delivery*: the event
//! switch runs the same parser/TM path as the baseline plus the enqueue/
//! dequeue/transmit handler dispatches per packet.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use edp_apps::microburst::MicroburstEvent;
use edp_core::{BaselineAdapter, EventSwitch, EventSwitchConfig};
use edp_evsim::SimTime;
use edp_packet::{Packet, PacketBuilder};
use edp_pisa::{BaselineSwitch, ForwardTo, QueueConfig};
use std::net::Ipv4Addr;

fn frame() -> Vec<u8> {
    PacketBuilder::udp(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        4000,
        8080,
        &[],
    )
    .pad_to(256)
    .build()
}

fn bench_switches(c: &mut Criterion) {
    let mut g = c.benchmark_group("switch_pps");
    g.throughput(Throughput::Elements(1));
    let f = frame();

    g.bench_function("baseline_forward", |b| {
        let mut sw = BaselineSwitch::new(ForwardTo(1), 4, QueueConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 100;
            sw.receive(SimTime::from_nanos(t), 0, Packet::anonymous(f.clone()));
            black_box(sw.transmit(SimTime::from_nanos(t + 50), 1))
        })
    });

    g.bench_function("event_forward_noop_handlers", |b| {
        // Same program via the adapter: measures pure event-delivery cost.
        let cfg = EventSwitchConfig {
            n_ports: 4,
            ..Default::default()
        };
        let mut sw = EventSwitch::new(BaselineAdapter(ForwardTo(1)), cfg);
        let mut t = 0u64;
        b.iter(|| {
            t += 100;
            sw.receive(SimTime::from_nanos(t), 0, Packet::anonymous(f.clone()));
            black_box(sw.transmit(SimTime::from_nanos(t + 50), 1))
        })
    });

    g.bench_function("event_forward_microburst_program", |b| {
        // A real stateful program on every packet + enqueue + dequeue.
        let cfg = EventSwitchConfig {
            n_ports: 4,
            ..Default::default()
        };
        let mut sw = EventSwitch::new(MicroburstEvent::new(1024, 20_000, 1), cfg);
        let mut t = 0u64;
        b.iter(|| {
            t += 100;
            sw.receive(SimTime::from_nanos(t), 0, Packet::anonymous(f.clone()));
            black_box(sw.transmit(SimTime::from_nanos(t + 50), 1))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_switches);
criterion_main!(benches);
