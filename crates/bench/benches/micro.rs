//! Microbenchmarks of the data-plane building blocks: the per-packet /
//! per-event operations whose cost bounds the software model's fidelity
//! and throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use edp_core::event::UserEvent;
use edp_core::{AggregConfig, AggregatedState, Event, EventMerger, MergerConfig};
use edp_packet::{parse_packet, FlowKey, IpProto, PacketBuilder};
use edp_pisa::{insert_ipv4_route, ipv4_lpm_schema, MatchKind, MatchTable, RegisterArray};
use edp_primitives::{CountMinSketch, Pifo, TimerTokenBucket, WindowRate};
use std::net::Ipv4Addr;

fn bench_packet(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet");
    let frame = PacketBuilder::udp(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 1, 2, 3),
        4000,
        8080,
        b"payload",
    )
    .pad_to(1500)
    .build();
    g.throughput(Throughput::Bytes(frame.len() as u64));
    g.bench_function("parse_1500B", |b| {
        b.iter(|| parse_packet(black_box(&frame)).expect("parse"))
    });
    g.bench_function("build_udp_1500B", |b| {
        b.iter(|| {
            PacketBuilder::udp(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 1, 2, 3),
                4000,
                8080,
                b"payload",
            )
            .pad_to(1500)
            .build()
        })
    });
    let key = FlowKey::new(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 1, 2, 3),
        IpProto::Udp,
        4000,
        8080,
    );
    g.bench_function("flow_hash64", |b| b.iter(|| black_box(key).hash64()));
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("match_tables");
    let mut exact: MatchTable<u32> = MatchTable::new("exact", vec![MatchKind::Exact]);
    for i in 0..10_000u64 {
        exact.insert_exact(&[i], i as u32);
    }
    g.bench_function("exact_lookup_10k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            exact.lookup(black_box(&[i])).copied()
        })
    });
    let mut lpm: MatchTable<u32> = MatchTable::new("lpm", ipv4_lpm_schema());
    for i in 0..256u32 {
        insert_ipv4_route(&mut lpm, Ipv4Addr::new(10, (i / 8) as u8, 0, 0), 16, i);
    }
    insert_ipv4_route(&mut lpm, Ipv4Addr::new(0, 0, 0, 0), 0, 999);
    g.bench_function("lpm_lookup_257", |b| {
        let key = [u32::from(Ipv4Addr::new(10, 3, 9, 9)) as u64];
        b.iter(|| lpm.lookup(black_box(&key)).copied())
    });
    g.finish();
}

fn bench_registers_and_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("state");
    let mut reg = RegisterArray::new("r", 4096);
    g.bench_function("register_rmw", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 97) % 4096;
            reg.rmw(black_box(i), |v| v.wrapping_add(100))
        })
    });
    let mut cms = CountMinSketch::new(1024, 4);
    g.bench_function("cms_update", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(0x9E3779B97F4A7C15);
            cms.update(black_box(k), 1500)
        })
    });
    g.bench_function("cms_query", |b| b.iter(|| cms.query(black_box(12345))));
    let mut w = WindowRate::new(8, 1_000_000);
    g.bench_function("window_add_and_rate", |b| {
        b.iter(|| {
            w.add(1500);
            black_box(w.rate_bps())
        })
    });
    let mut tb = TimerTokenBucket::new(12_500_000, 100_000, 15_000);
    g.bench_function("token_bucket_offer", |b| {
        b.iter(|| {
            tb.refill();
            tb.offer(black_box(1500))
        })
    });
    g.finish();
}

fn bench_pifo(c: &mut Criterion) {
    let mut g = c.benchmark_group("pifo");
    g.bench_function("push_pop_1k", |b| {
        b.iter(|| {
            let mut p: Pifo<u64> = Pifo::new(1024);
            for i in 0..1024u64 {
                p.push((i * 2654435761) % 1000, i);
            }
            let mut acc = 0u64;
            while let Some(v) = p.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    g.finish();
}

fn bench_event_machinery(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_machinery");
    g.bench_function("merger_push_and_slot", |b| {
        let mut m = EventMerger::new(MergerConfig::default());
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            m.push_event(cycle, Event::User(UserEvent { code: 1, args: [cycle, 0, 0, 0] }));
            m.packet_slot(cycle)
        })
    });
    g.bench_function("aggreg_op_and_fold", |b| {
        let mut st = AggregatedState::new(AggregConfig { entries: 256, folds_per_idle_cycle: 1 });
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 13) % 256;
            st.enqueue(i, 1500);
            st.dequeue((i + 1) % 256, 1500);
            st.idle_cycle();
            black_box(st.packet_read(i))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_packet,
    bench_tables,
    bench_registers_and_primitives,
    bench_pifo,
    bench_event_machinery
);
criterion_main!(benches);
