//! Microbenchmarks of the data-plane building blocks: the per-packet /
//! per-event operations whose cost bounds the software model's fidelity
//! and throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use edp_core::event::UserEvent;
use edp_core::{AggregConfig, AggregatedState, Event, EventMerger, MergerConfig};
use edp_evsim::{Periodic, Sim, SimDuration, SimTime};
use edp_packet::{parse_packet, FlowKey, IpProto, PacketBuilder};
use edp_pisa::{insert_ipv4_route, ipv4_lpm_schema, MatchKind, MatchTable, RegisterArray};
use edp_primitives::{CountMinSketch, Pifo, TimerTokenBucket, WindowRate};
use std::net::Ipv4Addr;

fn bench_packet(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet");
    let frame = PacketBuilder::udp(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 1, 2, 3),
        4000,
        8080,
        b"payload",
    )
    .pad_to(1500)
    .build();
    g.throughput(Throughput::Bytes(frame.len() as u64));
    g.bench_function("parse_1500B", |b| {
        b.iter(|| parse_packet(black_box(&frame)).expect("parse"))
    });
    g.bench_function("build_udp_1500B", |b| {
        b.iter(|| {
            PacketBuilder::udp(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 1, 2, 3),
                4000,
                8080,
                b"payload",
            )
            .pad_to(1500)
            .build()
        })
    });
    let key = FlowKey::new(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 1, 2, 3),
        IpProto::Udp,
        4000,
        8080,
    );
    g.bench_function("flow_hash64", |b| b.iter(|| black_box(key).hash64()));
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("match_tables");
    let mut exact: MatchTable<u32> = MatchTable::new("exact", vec![MatchKind::Exact]);
    for i in 0..10_000u64 {
        exact.insert_exact(&[i], i as u32);
    }
    g.bench_function("exact_lookup_10k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            exact.lookup(black_box(&[i])).copied()
        })
    });
    let mut lpm: MatchTable<u32> = MatchTable::new("lpm", ipv4_lpm_schema());
    for i in 0..256u32 {
        insert_ipv4_route(&mut lpm, Ipv4Addr::new(10, (i / 8) as u8, 0, 0), 16, i);
    }
    insert_ipv4_route(&mut lpm, Ipv4Addr::new(0, 0, 0, 0), 0, 999);
    g.bench_function("lpm_lookup_257", |b| {
        let key = [u32::from(Ipv4Addr::new(10, 3, 9, 9)) as u64];
        b.iter(|| lpm.lookup(black_box(&key)).copied())
    });
    let mut lpm1k: MatchTable<u32> = MatchTable::new("lpm1k", ipv4_lpm_schema());
    for i in 0..1024u32 {
        insert_ipv4_route(
            &mut lpm1k,
            Ipv4Addr::new(10, (i >> 8) as u8, (i & 0xff) as u8, 0),
            24,
            i,
        );
    }
    insert_ipv4_route(&mut lpm1k, Ipv4Addr::new(0, 0, 0, 0), 0, 9999);
    g.bench_function("lpm_lookup_1k", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) & 1023;
            let key = [u32::from(Ipv4Addr::new(10, (i >> 8) as u8, (i & 0xff) as u8, 7)) as u64];
            lpm1k.lookup(black_box(&key)).copied()
        })
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    // Schedule + fire at a steady-state depth of 8k in-flight events: each
    // iteration arms one event in the future and fires the oldest, so the
    // queue neither grows nor drains — the switch-under-load shape.
    g.bench_function("schedule_fire_steady_8k", |b| {
        const DEPTH: u64 = 8192;
        let mut sim: Sim<u64> = Sim::new();
        for i in 0..DEPTH {
            sim.schedule_at(SimTime::from_nanos(i), |w: &mut u64, _: &mut _| {
                *w = w.wrapping_add(1);
            });
        }
        let mut world = 0u64;
        let mut t = DEPTH;
        b.iter(|| {
            sim.schedule_at(SimTime::from_nanos(t), |w: &mut u64, _: &mut _| {
                *w = w.wrapping_add(1);
            });
            t += 1;
            sim.step(&mut world);
            black_box(world)
        })
    });
    // Same steady backlog, but half the armed events are cancelled before
    // they fire: two schedules, one cancel, one fire per iteration keeps
    // the depth constant while exercising the tombstone-reclaim path.
    g.bench_function("schedule_cancel_fire_steady_8k", |b| {
        const DEPTH: u64 = 8192;
        let mut sim: Sim<u64> = Sim::new();
        for i in 0..DEPTH {
            sim.schedule_at(SimTime::from_nanos(i), |w: &mut u64, _: &mut _| {
                *w = w.wrapping_add(1);
            });
        }
        let mut world = 0u64;
        let mut t = DEPTH;
        b.iter(|| {
            let id = sim.schedule_at(SimTime::from_nanos(t), |w: &mut u64, _: &mut _| {
                *w = w.wrapping_add(1);
            });
            sim.schedule_at(SimTime::from_nanos(t + 1), |w: &mut u64, _: &mut _| {
                *w = w.wrapping_add(1);
            });
            t += 2;
            sim.cancel(id);
            sim.step(&mut world);
            black_box(world)
        })
    });
    // Bulk ramp-and-drain: schedule 2M events at pseudo-random instants
    // (timers armed at scattered horizons — the realistic insertion order,
    // and the one where heap sift depth and element size dominate), then
    // fire them all. Reported time is the whole 2M schedule+fire cycle.
    g.bench_function("schedule_fire_bulk_2m", |b| {
        const N: u64 = 2_097_152;
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new();
            let mut r = 0x9E3779B97F4A7C15u64;
            for _ in 0..N {
                // xorshift64*: deterministic scattered arming times, with
                // collisions (range N/4) so FIFO tie-breaks still happen.
                r ^= r << 13;
                r ^= r >> 7;
                r ^= r << 17;
                let t = r % (N / 4);
                sim.schedule_at(SimTime::from_nanos(t), |w: &mut u64, _: &mut _| {
                    *w = w.wrapping_add(1);
                });
            }
            let mut world = 0u64;
            sim.run(&mut world);
            world
        })
    });
    // One tick of a repeating timer: the re-arm fast path.
    g.bench_function("periodic_tick", |b| {
        let mut sim: Sim<u64> = Sim::new();
        sim.schedule_periodic(
            SimTime::from_nanos(1),
            SimDuration::from_nanos(1),
            |w: &mut u64, _: &mut Sim<u64>| {
                *w = w.wrapping_add(1);
                Periodic::Continue
            },
        );
        let mut world = 0u64;
        b.iter(|| {
            sim.step(&mut world);
            black_box(world)
        })
    });
    g.finish();
}

fn bench_registers_and_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("state");
    let mut reg = RegisterArray::new("r", 4096);
    g.bench_function("register_rmw", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 97) % 4096;
            reg.rmw(black_box(i), |v| v.wrapping_add(100))
        })
    });
    let mut cms = CountMinSketch::new(1024, 4);
    g.bench_function("cms_update", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(0x9E3779B97F4A7C15);
            cms.update(black_box(k), 1500)
        })
    });
    g.bench_function("cms_query", |b| b.iter(|| cms.query(black_box(12345))));
    let mut w = WindowRate::new(8, 1_000_000);
    g.bench_function("window_add_and_rate", |b| {
        b.iter(|| {
            w.add(1500);
            black_box(w.rate_bps())
        })
    });
    let mut tb = TimerTokenBucket::new(12_500_000, 100_000, 15_000);
    g.bench_function("token_bucket_offer", |b| {
        b.iter(|| {
            tb.refill();
            tb.offer(black_box(1500))
        })
    });
    g.finish();
}

fn bench_pifo(c: &mut Criterion) {
    let mut g = c.benchmark_group("pifo");
    g.bench_function("push_pop_1k", |b| {
        b.iter(|| {
            let mut p: Pifo<u64> = Pifo::new(1024);
            for i in 0..1024u64 {
                p.push((i * 2654435761) % 1000, i);
            }
            let mut acc = 0u64;
            while let Some(v) = p.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    g.finish();
}

fn bench_event_machinery(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_machinery");
    g.bench_function("merger_push_and_slot", |b| {
        let mut m = EventMerger::new(MergerConfig::default());
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            m.push_event(
                cycle,
                Event::User(UserEvent {
                    code: 1,
                    args: [cycle, 0, 0, 0],
                }),
            );
            m.packet_slot(cycle)
        })
    });
    g.bench_function("aggreg_op_and_fold", |b| {
        let mut st = AggregatedState::new(AggregConfig {
            entries: 256,
            folds_per_idle_cycle: 1,
        });
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 13) % 256;
            st.enqueue(i, 1500);
            st.dequeue((i + 1) % 256, 1500);
            st.idle_cycle();
            black_box(st.packet_read(i))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_packet,
    bench_tables,
    bench_event_queue,
    bench_registers_and_primitives,
    bench_pifo,
    bench_event_machinery
);
criterion_main!(benches);
