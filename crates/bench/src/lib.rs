//! # edp-bench — table/figure regeneration binaries and benches
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index) plus Criterion micro/system benches. This library holds the
//! small shared pieces: fixed-width table printing and experiment-scale
//! defaults.
//!
//! Run everything with:
//!
//! ```sh
//! for b in table1 table2 table3 fig2_microburst fig3_staleness \
//!          fig4_pipeline exp_microburst exp_hula exp_cms_reset \
//!          exp_liveness exp_timewindow exp_aqm exp_frr exp_policer \
//!          exp_netcache exp_scheduler exp_ndp exp_int_reduce exp_emulation \
//!          ablation_cms; do
//!   cargo run --release -p edp-bench --bin $b
//! done
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod top;

/// Prints a table header: a rule, the column names, another rule.
pub fn table_header(title: &str, cols: &[(&str, usize)]) {
    let width: usize = cols.iter().map(|(_, w)| w + 1).sum();
    println!("\n=== {title} ===");
    println!("{}", "-".repeat(width));
    let mut line = String::new();
    for (name, w) in cols {
        line.push_str(&format!("{name:>w$} ", w = w));
    }
    println!("{line}");
    println!("{}", "-".repeat(width));
}

/// Formats a float cell with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a rate in Mb/s with one decimal.
pub fn mbps(x: f64) -> String {
    format!("{:.1}", x / 1e6)
}

/// A standard footer stating the reproduction target.
pub fn footnote(text: &str) {
    println!("\n  note: {text}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(mbps(12_340_000.0), "12.3");
    }
}
