//! §3/§5 experiment — fast re-route: packets lost vs control latency.
//!
//! The event-driven switch re-routes in the link-status handler; the
//! baseline waits for the controller. Reproduction target: baseline loss
//! scales linearly with the control loop; event-driven loss is ~0 and
//! independent of it.

use edp_apps::common::{addr, run_until};
use edp_apps::frr::{FrrBaseline, FrrEvent, CP_OP_SET_ROUTE};
use edp_bench::{footnote, table_header};
use edp_core::{EventSwitch, EventSwitchConfig};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::start_cbr;
use edp_netsim::{Host, HostApp, LinkSpec, Network, NodeRef, SwitchHarness};
use edp_packet::PacketBuilder;
use edp_pisa::{BaselineSwitch, ForwardTo, QueueConfig};

const FAIL_AT: SimTime = SimTime::from_millis(5);
const PKTS: u64 = 2500;
const INTERVAL: SimDuration = SimDuration::from_micros(10);

fn diamond(sw_a: Box<dyn SwitchHarness>) -> (Network, usize, usize, usize) {
    let mut net = Network::new(41);
    let a = net.add_switch(sw_a);
    let r = net.add_switch(Box::new(BaselineSwitch::new(
        ForwardTo(2),
        3,
        QueueConfig::default(),
    )));
    let h0 = net.add_host(Host::new(addr(1), HostApp::Sink));
    let sink = net.add_host(Host::new(addr(9), HostApp::Sink));
    let spec = LinkSpec::ten_gig(SimDuration::from_micros(1));
    net.connect((NodeRef::Host(h0), 0), (NodeRef::Switch(a), 0), spec);
    let primary = net.connect((NodeRef::Switch(a), 1), (NodeRef::Switch(r), 0), spec);
    net.connect((NodeRef::Switch(a), 2), (NodeRef::Switch(r), 1), spec);
    net.connect((NodeRef::Switch(r), 2), (NodeRef::Host(sink), 0), spec);
    (net, h0, sink, primary)
}

fn send(sim: &mut Sim<Network>, sender: usize) {
    let src = addr(1);
    start_cbr(sim, sender, SimTime::ZERO, INTERVAL, PKTS, move |i| {
        PacketBuilder::udp(src, addr(9), 1, 2, &[])
            .ident(i as u16)
            .pad_to(500)
            .build()
    });
}

fn run(event: bool, cp_latency: SimDuration) -> (u64, Option<SimTime>) {
    let (mut net, sender, sink, primary) = if event {
        let cfg = EventSwitchConfig {
            n_ports: 3,
            ..Default::default()
        };
        diamond(Box::new(EventSwitch::new(FrrEvent::new(1, 2), cfg)))
    } else {
        diamond(Box::new(BaselineSwitch::new(
            FrrBaseline::new(1),
            3,
            QueueConfig::default(),
        )))
    };
    let mut sim: Sim<Network> = Sim::new();
    net.schedule_link_failure(&mut sim, primary, FAIL_AT, None);
    if !event {
        sim.schedule_at(FAIL_AT, move |w: &mut Network, s: &mut Sim<Network>| {
            w.control_plane_send(s, cp_latency, 0, CP_OP_SET_ROUTE, [2, 0, 0, 0]);
        });
    }
    send(&mut sim, sender);
    run_until(&mut net, &mut sim, SimTime::from_millis(60));
    let failover = if event {
        net.switch_as::<EventSwitch<FrrEvent>>(0)
            .program
            .stats
            .failover_at
    } else {
        net.switch_as::<BaselineSwitch<FrrBaseline>>(0)
            .program
            .stats
            .failover_at
    };
    (PKTS - net.hosts[sink].stats.rx_pkts, failover)
}

fn main() {
    println!("primary link fails at {FAIL_AT}; one 500 B packet per {INTERVAL} ({PKTS} total)");
    table_header(
        "fast re-route: packets lost during failover",
        &[
            ("variant", 26),
            ("CP latency", 11),
            ("lost", 6),
            ("failover at", 12),
        ],
    );
    let (lost, at) = run(true, SimDuration::ZERO);
    println!(
        "{:>26} {:>11} {:>6} {:>12}",
        "event-driven",
        "-",
        lost,
        at.map(|t| t.to_string()).unwrap_or_else(|| "-".into())
    );
    for &ms in &[1u64, 2, 5, 10, 20] {
        let (lost, at) = run(false, SimDuration::from_millis(ms));
        println!(
            "{:>26} {:>11} {:>6} {:>12}",
            "baseline + controller",
            format!("{ms} ms"),
            lost,
            at.map(|t| t.to_string()).unwrap_or_else(|| "-".into())
        );
    }
    footnote(
        "loss = control latency x packet rate for the baseline (a straight \
         line through the origin); the link-status event handler loses \
         only in-flight packets — effectively zero.",
    );
}
