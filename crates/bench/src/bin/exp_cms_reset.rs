//! §1/§3 experiment — periodic CMS reset: timer event vs control plane.
//!
//! Sweeps the reset period and reports reset lateness (how long counters
//! keep accumulating past the window boundary) and control-plane message
//! load. Reproduction target: the data-plane timer resets are punctual
//! and free; the control-plane path pays its channel latency per window
//! and one message per reset — "significant overhead for the control
//! plane, especially if the data structure must be frequently reset".

use edp_apps::cms_reset::{CmsMonitor, CP_OP_RESET};
use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_bench::{f2, footnote, table_header};
use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
use edp_evsim::{Periodic, Sim, SimDuration, SimTime};
use edp_netsim::traffic::start_cbr;
use edp_netsim::Network;
use edp_packet::PacketBuilder;

const HORIZON: SimTime = SimTime::from_millis(100);
const CP_LATENCY: SimDuration = SimDuration::from_micros(250);

struct Outcome {
    resets: usize,
    lateness_us: f64,
    cp_msgs: u64,
}

fn run(period: SimDuration, via_timer: bool) -> Outcome {
    let timers = if via_timer {
        vec![TimerSpec {
            id: 0,
            period,
            start: period,
        }]
    } else {
        vec![]
    };
    let cfg = EventSwitchConfig {
        n_ports: 2,
        timers,
        ..Default::default()
    };
    let sw = EventSwitch::new(CmsMonitor::new(512, 4, 1), cfg);
    let (mut net, senders, _, _) = dumbbell(Box::new(sw), 1, 10_000_000_000, 13);
    let mut sim: Sim<Network> = Sim::new();
    if !via_timer {
        sim.schedule_periodic(
            SimTime::ZERO + period,
            period,
            move |w: &mut Network, s: &mut Sim<Network>| {
                w.control_plane_send(s, CP_LATENCY, 0, CP_OP_RESET, [0; 4]);
                Periodic::Continue
            },
        );
    }
    let src = addr(1);
    start_cbr(
        &mut sim,
        senders[0],
        SimTime::ZERO,
        SimDuration::from_micros(10),
        u64::MAX,
        move |i| {
            PacketBuilder::udp(src, sink_addr(), 1, 2, &[])
                .ident(i as u16)
                .pad_to(600)
                .build()
        },
    );
    run_until(&mut net, &mut sim, HORIZON);
    let prog = &net.switch_as::<EventSwitch<CmsMonitor>>(0).program;
    Outcome {
        resets: prog.resets.len(),
        lateness_us: prog.mean_reset_lateness_ns(period.as_nanos()) / 1000.0,
        cp_msgs: net.cp_messages,
    }
}

fn main() {
    println!("workload: 100 Mb/s single flow for {HORIZON}; CP channel latency {CP_LATENCY}");
    table_header(
        "CMS periodic reset: data-plane timer vs control plane",
        &[
            ("period (ms)", 12),
            ("variant", 8),
            ("resets", 7),
            ("lateness (us)", 14),
            ("CP msgs", 8),
            ("CP msg/s", 9),
        ],
    );
    for &ms in &[10u64, 5, 2, 1] {
        let period = SimDuration::from_millis(ms);
        for &timer in &[true, false] {
            let o = run(period, timer);
            println!(
                "{:>12} {:>8} {:>7} {:>14} {:>8} {:>9}",
                ms,
                if timer { "timer" } else { "CP" },
                o.resets,
                f2(o.lateness_us),
                o.cp_msgs,
                f2(o.cp_msgs as f64 / HORIZON.as_secs_f64()),
            );
        }
    }
    footnote(
        "timer resets land exactly on the window boundary with zero \
         control-plane messages; control-plane resets are late by the \
         channel latency and cost messages proportional to the reset \
         frequency — the paper's control-plane-overhead argument, measured.",
    );
}
