//! §3 experiment — NDP-style trimming from buffer-overflow events.
//!
//! Sweeps burst size through a small buffer and reports how many packets
//! the receiver learns about: with trimming every overflow victim
//! arrives as a high-priority header; with drop-tail the victims vanish.

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::ndp::NdpTrim;
use edp_bench::{footnote, table_header};
use edp_core::event::OverflowEvent;
use edp_core::{EventActions, EventProgram, EventSwitch, EventSwitchConfig};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::start_burst;
use edp_netsim::Network;
use edp_packet::{Packet, PacketBuilder, ParsedPacket};
use edp_pisa::{QueueConfig, QueueDisc, StdMeta};

const CAPACITY: u64 = 20_000;

#[derive(Debug)]
struct NoTrim(NdpTrim);
impl EventProgram for NoTrim {
    fn on_ingress(
        &mut self,
        p: &mut Packet,
        h: &ParsedPacket,
        m: &mut StdMeta,
        t: SimTime,
        a: &mut EventActions,
    ) {
        self.0.on_ingress(p, h, m, t, a)
    }
    fn on_overflow(&mut self, _e: &OverflowEvent, _t: SimTime, _a: &mut EventActions) {
        self.0.overflows += 1;
    }
}

fn run(trim: bool, burst: u64) -> (u64, u64, u64) {
    let cfg = EventSwitchConfig {
        n_ports: 2,
        queue: QueueConfig {
            capacity_bytes: CAPACITY,
            disc: QueueDisc::StrictPriority { classes: 2 },
            rank0_headroom: 8_000,
        },
        ..Default::default()
    };
    let (mut net, senders, sink, _) = if trim {
        dumbbell(
            Box::new(EventSwitch::new(NdpTrim::new(1), cfg)),
            1,
            100_000_000,
            95,
        )
    } else {
        dumbbell(
            Box::new(EventSwitch::new(NoTrim(NdpTrim::new(1)), cfg)),
            1,
            100_000_000,
            95,
        )
    };
    let mut sim: Sim<Network> = Sim::new();
    let src = addr(1);
    start_burst(
        &mut sim,
        senders[0],
        SimTime::ZERO,
        burst,
        SimDuration::ZERO,
        move |i| {
            PacketBuilder::udp(src, sink_addr(), 40, 50, &[])
                .ident(i as u16)
                .pad_to(1500)
                .build()
        },
    );
    run_until(&mut net, &mut sim, SimTime::from_millis(100));
    let delivered = net.hosts[sink].stats.rx_pkts;
    let (trimmed, lost) = if trim {
        let c = net.switch_as::<EventSwitch<NdpTrim>>(0).counters();
        (c.trimmed, c.dropped_overflow)
    } else {
        let c = net.switch_as::<EventSwitch<NoTrim>>(0).counters();
        (c.trimmed, c.dropped_overflow)
    };
    (delivered, trimmed, lost)
}

fn main() {
    println!("20 KB data buffer + 8 KB header reserve; 1500 B bursts into 100 Mb/s");
    table_header(
        "NDP trimming vs drop-tail: what the receiver learns about",
        &[
            ("burst", 6),
            ("droptail rx", 12),
            ("silent losses", 14),
            ("trim rx", 8),
            ("trimmed", 8),
            ("trim losses", 12),
        ],
    );
    for &burst in &[10u64, 20, 50, 100, 200] {
        let (d_rx, _, d_lost) = run(false, burst);
        let (t_rx, t_trim, t_lost) = run(true, burst);
        println!(
            "{:>6} {:>12} {:>14} {:>8} {:>8} {:>12}",
            burst, d_rx, d_lost, t_rx, t_trim, t_lost
        );
    }
    footnote(
        "the overflow event plus trim_and_requeue turns every would-be \
         silent loss into a high-priority header the receiver can act on \
         (NDP's pull-based retransmit); drop-tail hides the same losses \
         behind timeouts. Header reserve bounds the rescue capacity: \
         oversized bursts overflow even the header queue eventually.",
    );
}
