//! Table 1 — the data-plane event taxonomy, with live coverage.
//!
//! Exercises one SUME Event Switch so that all thirteen event kinds fire,
//! then prints Table 1 augmented with the observed count and whether a
//! baseline PISA programming model exposes the event.

use edp_bench::{footnote, table_header};
use edp_core::{
    EventActions, EventKind, EventProgram, EventSwitch, EventSwitchConfig, PacketGenConfig,
    TimerSpec,
};
use edp_evsim::{SimDuration, SimTime};
use edp_packet::{Packet, PacketBuilder, ParsedPacket};
use edp_pisa::{Destination, QueueConfig, StdMeta};
use std::net::Ipv4Addr;

struct Exerciser {
    recirculated: bool,
}

impl EventProgram for Exerciser {
    fn on_ingress(
        &mut self,
        _p: &mut Packet,
        _h: &ParsedPacket,
        meta: &mut StdMeta,
        _n: SimTime,
        _a: &mut EventActions,
    ) {
        meta.dest = if !self.recirculated && meta.recirc_count == 0 {
            Destination::Recirculate
        } else {
            Destination::Port(1)
        };
    }
    fn on_recirculated(
        &mut self,
        _p: &mut Packet,
        _h: &ParsedPacket,
        meta: &mut StdMeta,
        _n: SimTime,
        _a: &mut EventActions,
    ) {
        self.recirculated = true;
        meta.dest = Destination::Port(1);
    }
    fn on_enqueue(
        &mut self,
        ev: &edp_core::event::EnqueueEvent,
        _n: SimTime,
        a: &mut EventActions,
    ) {
        if ev.q_pkts == 1 {
            a.raise_user_event(1, [ev.q_bytes, 0, 0, 0]);
        }
    }
}

fn main() {
    let cfg = EventSwitchConfig {
        n_ports: 2,
        queue: QueueConfig {
            capacity_bytes: 600,
            ..QueueConfig::default()
        },
        timers: vec![TimerSpec {
            id: 0,
            period: SimDuration::from_micros(10),
            start: SimDuration::from_micros(10),
        }],
        generator: Some(PacketGenConfig {
            period: SimDuration::from_micros(15),
            template: PacketBuilder::udp(
                Ipv4Addr::new(9, 9, 9, 9),
                Ipv4Addr::new(8, 8, 8, 8),
                7,
                8,
                &[],
            )
            .build(),
        }),
        switch_id: 0,
    };
    let mut sw = EventSwitch::new(
        Exerciser {
            recirculated: false,
        },
        cfg,
    );
    let frame = || {
        Packet::anonymous(
            PacketBuilder::udp(
                Ipv4Addr::new(1, 1, 1, 1),
                Ipv4Addr::new(2, 2, 2, 2),
                5,
                6,
                &[],
            )
            .pad_to(400)
            .build(),
        )
    };
    sw.receive(SimTime::from_nanos(100), 0, frame());
    sw.receive(SimTime::from_nanos(200), 0, frame()); // overflow (600 B cap)
    sw.transmit(SimTime::from_nanos(300), 1);
    sw.transmit(SimTime::from_nanos(400), 0); // underflow
    sw.fire_due_timers(SimTime::from_micros(20));
    sw.control_plane(SimTime::from_micros(21), 1, [0; 4]);
    sw.set_link_status(SimTime::from_micros(22), 0, false);

    table_header(
        "Table 1: data-plane events (with observed coverage)",
        &[("event", 24), ("baseline PISA", 14), ("observed", 9)],
    );
    let counters = sw.event_counters();
    for kind in EventKind::ALL {
        println!(
            "{:>24} {:>14} {:>9}",
            kind.name(),
            if kind.baseline_supported() {
                "yes"
            } else {
                "no"
            },
            counters.get(kind)
        );
    }
    footnote(
        "all 13 kinds fired in one run of the SUME Event Switch model; \
         the baseline model exposes only the three packet events.",
    );
}
