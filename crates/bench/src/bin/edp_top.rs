//! `edp_top` — run a registered app under telemetry and inspect it.
//!
//! ```sh
//! edp_top --list
//! edp_top microburst
//! edp_top ndp-trim --seeds 4 --duration-ms 10 --json
//! edp_top microburst --trace-out /tmp/microburst.trace --prom
//! ```

use edp_bench::top::{self, TopOptions, TopWorkload};
use edp_evsim::SimDuration;
use edp_packet::PcapFile;
use std::sync::Arc;

const USAGE: &str = "usage: edp_top <app> [options] | edp_top --list
options:
  --seeds N          run seeds 1..=N (default 2)
  --duration-ms M    simulated milliseconds per seed (default 5)
  --threads T        sweep workers (default: EDP_SWEEP_THREADS or cores)
  --trace-capacity C trace-ring records per seed (default 65536)
  --shards S         run each seed on S parallel shards; outputs are
                     byte-identical for any S (default: EDP_SHARDS or
                     0 = classic single-world engine)
  --burst B          sub-windows per negotiated shard window; outputs
                     are byte-identical for any B >= 1 (default:
                     EDP_BURST or 1)
  --pcap FILE        replay the capture (pcap or pcapng) from the sender
                     host instead of the CBR load, preserving the file's
                     inter-arrival gaps
  --speedup F        compress replay gaps by F (default 1.0)
  --endpoints N      drive N fleet endpoints (closed-loop Zipf
                     request/response with retransmit) instead of CBR
  --pcap-roundtrip FILE
                     parse FILE, re-encode it canonically, and verify the
                     round-trip byte-for-byte (exit 1 on mismatch); no
                     simulation is run
  --json             emit the report as JSON instead of the table
  --prom             emit the registry in Prometheus text format
  --trace-out FILE   write the structured trace to FILE
  --profile          collect a wall-clock profile (per-shard phase
                     attribution, straggler deciles, message matrix) and
                     print it after the report; nondeterministic, never
                     part of the canonical --json/--prom output
  --profile-out FILE write the profile as Chrome trace-event JSON for
                     Perfetto (ui.perfetto.dev); implies --profile
  --overhead REPS    measure enabled-vs-disabled telemetry wall-clock
                     over REPS runs instead of reporting, plus the
                     profiler's own overhead on the 2-shard engine";

fn fail(msg: &str) -> ! {
    eprintln!("edp_top: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parsed<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    match v.map(|v| v.parse::<T>()) {
        Some(Ok(x)) => x,
        _ => fail(&format!("{flag} needs a numeric argument")),
    }
}

/// Parse `path`, re-encode it canonically, and verify the codec is a
/// fixpoint: the canonical bytes must re-parse to the same packets and
/// re-encode to the same bytes. Inputs already in canonical form
/// (little-endian nanosecond classic pcap) must additionally survive
/// byte-for-byte. Returns the process exit code.
fn pcap_roundtrip(path: &str) -> i32 {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("edp_top: {path}: {e}");
            return 1;
        }
    };
    let file = match PcapFile::parse(&bytes) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("edp_top: {path}: {e}");
            return 1;
        }
    };
    let canon = file.to_pcap_bytes();
    let reparsed = match PcapFile::parse(&canon) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("edp_top: {path}: canonical re-encoding failed to parse: {e}");
            return 1;
        }
    };
    if reparsed != file {
        eprintln!("edp_top: {path}: packets changed across write -> read");
        return 1;
    }
    if reparsed.to_pcap_bytes() != canon {
        eprintln!("edp_top: {path}: re-encoding is not a fixpoint");
        return 1;
    }
    let canonical_input = bytes.len() >= 4 && bytes[..4] == canon[..4];
    if canonical_input && bytes != canon {
        eprintln!(
            "edp_top: {path}: canonical input did not round-trip byte-for-byte \
             ({} bytes in, {} bytes out)",
            bytes.len(),
            canon.len()
        );
        return 1;
    }
    println!(
        "{path}: {} packets, {} bytes {} round-trip ok",
        file.packets.len(),
        canon.len(),
        if canonical_input {
            "byte-identical"
        } else {
            "normalized"
        }
    );
    0
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut app: Option<String> = None;
    let mut opts = TopOptions::default();
    let mut json = false;
    let mut prom = false;
    let mut trace_out: Option<String> = None;
    let mut profile_out: Option<String> = None;
    let mut overhead: Option<u64> = None;
    let mut pcap: Option<String> = None;
    let mut speedup = 1.0f64;
    let mut endpoints: Option<u32> = None;
    let mut roundtrip: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list" => {
                for name in top::app_names() {
                    println!("{name}");
                }
                return;
            }
            "--seeds" => {
                let n: u64 = parsed("--seeds", args.next());
                opts.seeds = (1..=n.max(1)).collect();
            }
            "--duration-ms" => {
                opts.duration = SimDuration::from_millis(parsed("--duration-ms", args.next()));
            }
            "--threads" => opts.threads = parsed("--threads", args.next()),
            "--trace-capacity" => opts.trace_capacity = parsed("--trace-capacity", args.next()),
            "--shards" => opts.shards = parsed("--shards", args.next()),
            "--burst" => opts.burst = parsed::<usize>("--burst", args.next()).max(1),
            "--overhead" => overhead = Some(parsed("--overhead", args.next())),
            "--pcap" => {
                pcap = Some(args.next().unwrap_or_else(|| fail("--pcap needs a path")));
            }
            "--speedup" => {
                speedup = parsed("--speedup", args.next());
                if !(speedup.is_finite() && speedup > 0.0) {
                    fail("--speedup must be finite and positive");
                }
            }
            "--endpoints" => endpoints = Some(parsed("--endpoints", args.next())),
            "--pcap-roundtrip" => {
                roundtrip = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--pcap-roundtrip needs a path")),
                );
            }
            "--json" => json = true,
            "--prom" => prom = true,
            "--profile" => opts.profile = true,
            "--profile-out" => {
                opts.profile = true;
                profile_out = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--profile-out needs a path")),
                )
            }
            "--trace-out" => {
                trace_out = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--trace-out needs a path")),
                )
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            _ if app.is_none() && !a.starts_with('-') => app = Some(a),
            _ => fail(&format!("unrecognized argument `{a}`")),
        }
    }
    if let Some(path) = roundtrip {
        std::process::exit(pcap_roundtrip(&path));
    }
    match (&pcap, endpoints) {
        (Some(_), Some(_)) => fail("--pcap and --endpoints are mutually exclusive"),
        (Some(path), None) => {
            let bytes = std::fs::read(path).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            let file = PcapFile::parse(&bytes).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            opts.workload = TopWorkload::Pcap {
                packets: Arc::new(file.packets),
                speedup,
            };
        }
        (None, Some(count)) => opts.workload = TopWorkload::Endpoints { count },
        (None, None) => {}
    }
    let Some(app) = app else { fail("no app named") };
    if let Some(reps) = overhead {
        let (on, off) = top::measure_overhead(&app, opts.duration, reps.max(1));
        println!(
            "telemetry overhead ({app}, {} reps x {} ms sim): enabled {:.3}s, \
             disabled {:.3}s, ratio {:.2}x",
            reps.max(1),
            opts.duration.as_nanos() / 1_000_000,
            on,
            off,
            on / off
        );
        let (pon, poff) = top::measure_prof_overhead(&app, opts.duration, reps.max(1));
        println!(
            "profiler overhead ({app}, {} reps x {} ms sim, 2 shards): profiled {:.3}s, \
             unprofiled {:.3}s, ratio {:.2}x",
            reps.max(1),
            opts.duration.as_nanos() / 1_000_000,
            pon,
            poff,
            pon / poff
        );
        return;
    }
    let report = match top::run(&app, &opts) {
        Ok(r) => r,
        Err(e) => fail(&e),
    };
    if let Some(path) = trace_out {
        if let Err(e) = std::fs::write(&path, &report.trace) {
            fail(&format!("writing {path}: {e}"));
        }
    }
    if let Some(path) = profile_out {
        if let Err(e) = std::fs::write(&path, top::profile_trace_json(&report)) {
            fail(&format!("writing {path}: {e}"));
        }
        eprintln!("profile trace written to {path} (load at ui.perfetto.dev)");
    }
    if json {
        println!("{}", top::to_json_report(&report));
    } else if prom {
        print!("{}", edp_telemetry::to_prometheus_text(&report.registry));
    } else {
        print!("{}", top::render(&report));
    }
    if opts.profile {
        // The table is wall-clock (nondeterministic): keep it off stdout
        // when a canonical export was requested, so piped --json/--prom
        // output stays pinned.
        let table = top::render_profile(&report);
        if json || prom {
            eprint!("{table}");
        } else {
            print!("\n{table}");
        }
    }
}
