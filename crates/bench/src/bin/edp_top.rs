//! `edp_top` — run a registered app under telemetry and inspect it.
//!
//! ```sh
//! edp_top --list
//! edp_top microburst
//! edp_top ndp-trim --seeds 4 --duration-ms 10 --json
//! edp_top microburst --trace-out /tmp/microburst.trace --prom
//! ```

use edp_bench::top::{self, TopOptions};
use edp_evsim::SimDuration;

const USAGE: &str = "usage: edp_top <app> [options] | edp_top --list
options:
  --seeds N          run seeds 1..=N (default 2)
  --duration-ms M    simulated milliseconds per seed (default 5)
  --threads T        sweep workers (default: EDP_SWEEP_THREADS or cores)
  --trace-capacity C trace-ring records per seed (default 65536)
  --shards S         run each seed on S parallel shards; outputs are
                     byte-identical for any S (default: EDP_SHARDS or
                     0 = classic single-world engine)
  --burst B          sub-windows per negotiated shard window; outputs
                     are byte-identical for any B >= 1 (default:
                     EDP_BURST or 1)
  --json             emit the report as JSON instead of the table
  --prom             emit the registry in Prometheus text format
  --trace-out FILE   write the structured trace to FILE
  --overhead REPS    measure enabled-vs-disabled telemetry wall-clock
                     over REPS runs instead of reporting";

fn fail(msg: &str) -> ! {
    eprintln!("edp_top: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parsed<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    match v.map(|v| v.parse::<T>()) {
        Some(Ok(x)) => x,
        _ => fail(&format!("{flag} needs a numeric argument")),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut app: Option<String> = None;
    let mut opts = TopOptions::default();
    let mut json = false;
    let mut prom = false;
    let mut trace_out: Option<String> = None;
    let mut overhead: Option<u64> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list" => {
                for name in top::app_names() {
                    println!("{name}");
                }
                return;
            }
            "--seeds" => {
                let n: u64 = parsed("--seeds", args.next());
                opts.seeds = (1..=n.max(1)).collect();
            }
            "--duration-ms" => {
                opts.duration = SimDuration::from_millis(parsed("--duration-ms", args.next()));
            }
            "--threads" => opts.threads = parsed("--threads", args.next()),
            "--trace-capacity" => opts.trace_capacity = parsed("--trace-capacity", args.next()),
            "--shards" => opts.shards = parsed("--shards", args.next()),
            "--burst" => opts.burst = parsed::<usize>("--burst", args.next()).max(1),
            "--overhead" => overhead = Some(parsed("--overhead", args.next())),
            "--json" => json = true,
            "--prom" => prom = true,
            "--trace-out" => {
                trace_out = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--trace-out needs a path")),
                )
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            _ if app.is_none() && !a.starts_with('-') => app = Some(a),
            _ => fail(&format!("unrecognized argument `{a}`")),
        }
    }
    let Some(app) = app else { fail("no app named") };
    if let Some(reps) = overhead {
        let (on, off) = top::measure_overhead(&app, opts.duration, reps.max(1));
        println!(
            "telemetry overhead ({app}, {} reps x {} ms sim): enabled {:.3}s, \
             disabled {:.3}s, ratio {:.2}x",
            reps.max(1),
            opts.duration.as_nanos() / 1_000_000,
            on,
            off,
            on / off
        );
        return;
    }
    let report = match top::run(&app, &opts) {
        Ok(r) => r,
        Err(e) => fail(&e),
    };
    if let Some(path) = trace_out {
        if let Err(e) = std::fs::write(&path, &report.trace) {
            fail(&format!("writing {path}: {e}"));
        }
    }
    if json {
        println!("{}", top::to_json_report(&report));
    } else if prom {
        print!("{}", edp_telemetry::to_prometheus_text(&report.registry));
    } else {
        print!("{}", top::render(&report));
    }
}
