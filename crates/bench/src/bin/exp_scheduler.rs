//! §3 experiment — a complete programmable scheduler (STFQ over PIFO).
//!
//! The dequeue event advances STFQ's virtual time; the PIFO dequeues by
//! the computed rank. Compares steady-flow latency against FIFO when a
//! burst flow dumps its demand at once, and fairness across equal flows.

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::scheduler::StfqScheduler;
use edp_bench::{f2, footnote, table_header};
use edp_core::{EventSwitch, EventSwitchConfig};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::{start_burst, start_cbr};
use edp_netsim::Network;
use edp_packet::PacketBuilder;
use edp_pisa::{QueueConfig, QueueDisc};

const BOTTLENECK: u64 = 100_000_000;
const HORIZON: SimTime = SimTime::from_millis(60);

/// Returns per-flow mean latency (µs): [steady0, steady1, burst].
fn run(pifo: bool, burst_pkts: u64) -> Vec<f64> {
    let disc = if pifo {
        QueueDisc::Pifo
    } else {
        QueueDisc::DropTailFifo
    };
    let cfg = EventSwitchConfig {
        n_ports: 4,
        queue: QueueConfig {
            capacity_bytes: 1_000_000,
            disc,
            ..QueueConfig::default()
        },
        ..Default::default()
    };
    let sw = EventSwitch::new(StfqScheduler::new(64, 3), cfg);
    let (mut net, senders, sink, _) = dumbbell(Box::new(sw), 3, BOTTLENECK, 83);
    let mut sim: Sim<Network> = Sim::new();
    for (i, &h) in senders.iter().take(2).enumerate() {
        let src = addr(i as u8 + 1);
        start_cbr(
            &mut sim,
            h,
            SimTime::ZERO,
            SimDuration::from_micros(400),
            120,
            move |s| {
                PacketBuilder::udp(src, sink_addr(), 100 + i as u16, 9000, &[])
                    .ident(s as u16)
                    .pad_to(1500)
                    .build()
            },
        );
    }
    let src = addr(3);
    start_burst(
        &mut sim,
        senders[2],
        SimTime::ZERO,
        burst_pkts,
        SimDuration::ZERO,
        move |s| {
            PacketBuilder::udp(src, sink_addr(), 300, 9000, &[])
                .ident(s as u16)
                .pad_to(1500)
                .build()
        },
    );
    run_until(&mut net, &mut sim, HORIZON);
    (0..3)
        .map(|i| {
            let key = edp_packet::FlowKey::new(
                addr(i as u8 + 1),
                sink_addr(),
                edp_packet::IpProto::Udp,
                if i == 2 { 300 } else { 100 + i as u16 },
                9000,
            );
            net.hosts[sink]
                .stats
                .flows
                .get(&key)
                .map(|f| f.latency_ns.mean() / 1000.0)
                .unwrap_or(f64::NAN)
        })
        .collect()
}

fn main() {
    println!(
        "2 steady flows (30 Mb/s each) + 1 burst flow into 100 Mb/s; PIFO rank = STFQ start tag"
    );
    table_header(
        "steady-flow mean latency (us) vs burst size: FIFO vs STFQ/PIFO",
        &[
            ("burst pkts", 11),
            ("FIFO steady", 12),
            ("STFQ steady", 12),
            ("FIFO burst", 11),
            ("STFQ burst", 11),
            ("protection", 11),
        ],
    );
    for &burst in &[40u64, 80, 120, 240] {
        let fifo = run(false, burst);
        let stfq = run(true, burst);
        let f_steady = (fifo[0] + fifo[1]) / 2.0;
        let s_steady = (stfq[0] + stfq[1]) / 2.0;
        println!(
            "{:>11} {:>12} {:>12} {:>11} {:>11} {:>11}",
            burst,
            f2(f_steady),
            f2(s_steady),
            f2(fifo[2]),
            f2(stfq[2]),
            format!("{:.1}x", f_steady / s_steady),
        );
    }
    footnote(
        "the burst parks its whole demand in the queue; under FIFO the \
         steady flows wait behind all of it, under STFQ their rank lets \
         them interleave — latency protection grows with the burst while \
         the burst itself finishes at essentially the same time \
         (work conservation). Virtual time comes from dequeue events.",
    );
}
