//! §3 experiment — policing with a timer-built token bucket.
//!
//! Sweeps the refill period of the register-built policer against the
//! fixed-function meter under a 2× overload. Reproduction target: with a
//! fine timer the DIY policer matches the meter; coarse timers expose the
//! refill-quantization trade-off the programmer now owns (including the
//! burst-smaller-than-quantum cliff).

use edp_apps::policer::compare_policers;
use edp_bench::{f2, footnote, table_header};

fn main() {
    println!("policed rate 100 Mb/s, burst 15 KB, offered 200 Mb/s CBR for 100 ms");
    table_header(
        "green-rate error vs refill period (timer policer vs fixed meter)",
        &[
            ("refill period", 14),
            ("timer err %", 12),
            ("meter err %", 12),
            ("quantum (B)", 12),
            ("quantum>burst", 14),
        ],
    );
    for &period_us in &[10u64, 50, 100, 500, 1000, 5000, 10_000] {
        let period_ns = period_us * 1000;
        let (timer_err, meter_err) = compare_policers(period_ns, 19);
        let quantum = 12_500_000u64 * period_ns / 1_000_000_000;
        println!(
            "{:>14} {:>12} {:>12} {:>12} {:>14}",
            format!("{period_us} us"),
            f2(timer_err * 100.0),
            f2(meter_err * 100.0),
            quantum,
            if quantum > 15_000 {
                "YES (cliff)"
            } else {
                "no"
            },
        );
    }
    footnote(
        "the timer policer tracks the fixed-function meter within a few \
         percent until the refill quantum exceeds the bucket depth \
         (rate x period > burst), where refills are clipped and the \
         policer under-delivers — the customization-vs-fidelity knob the \
         paper's build-your-own-meter argument hands to the programmer.",
    );
}
