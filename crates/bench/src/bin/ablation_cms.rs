//! Footnote 1 ablation — exact per-flow register vs count-min sketch for
//! buffer-occupancy tracking.
//!
//! The design choice DESIGN.md calls out: the microburst detector can
//! trade the exact `shared_register` for a CMS, cutting state further at
//! the cost of collision-induced false positives. This sweep measures
//! detections on a clean (burst-free) background vs a bursty one, for
//! shrinking sketch widths.

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::microburst::{MicroburstCms, MicroburstEvent};
use edp_bench::{footnote, table_header};
use edp_core::{EventSwitch, EventSwitchConfig};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::{start_burst, start_cbr};
use edp_netsim::Network;
use edp_packet::PacketBuilder;
use edp_pisa::QueueConfig;

const THRESH: u64 = 20_000;

fn qc() -> QueueConfig {
    QueueConfig {
        capacity_bytes: 400_000,
        ..QueueConfig::default()
    }
}

/// Runs many polite flows (+ optional burst); returns detection count.
fn run_cms(width: usize, depth: usize, with_burst: bool) -> (usize, usize) {
    let cfg = EventSwitchConfig {
        n_ports: 5,
        queue: qc(),
        ..Default::default()
    };
    let sw = EventSwitch::new(MicroburstCms::new(width, depth, THRESH, 4), cfg);
    let (mut net, senders, _, _) = dumbbell(Box::new(sw), 4, 1_000_000_000, 9);
    let mut sim: Sim<Network> = Sim::new();
    // Many interleaved polite flows to provoke collisions.
    for (i, &h) in senders.iter().take(3).enumerate() {
        let src = addr(i as u8 + 1);
        for port in 0..8u16 {
            start_cbr(
                &mut sim,
                h,
                SimTime::from_micros(port as u64 * 11),
                SimDuration::from_micros(400),
                100,
                move |s| {
                    PacketBuilder::udp(src, sink_addr(), 1000 + port, 20, &[])
                        .ident(s as u16)
                        .pad_to(1500)
                        .build()
                },
            );
        }
    }
    if with_burst {
        let src = addr(4);
        start_burst(
            &mut sim,
            senders[3],
            SimTime::from_millis(5),
            120,
            SimDuration::ZERO,
            move |s| {
                PacketBuilder::udp(src, sink_addr(), 30, 40, &[])
                    .ident(s as u16)
                    .pad_to(1500)
                    .build()
            },
        );
    }
    run_until(&mut net, &mut sim, SimTime::from_millis(40));
    let prog = &net.switch_as::<EventSwitch<MicroburstCms>>(0).program;
    (prog.detections.len(), prog.state_words())
}

fn run_exact(with_burst: bool) -> (usize, usize) {
    let cfg = EventSwitchConfig {
        n_ports: 5,
        queue: qc(),
        ..Default::default()
    };
    let sw = EventSwitch::new(MicroburstEvent::new(256, THRESH, 4), cfg);
    let (mut net, senders, _, _) = dumbbell(Box::new(sw), 4, 1_000_000_000, 9);
    let mut sim: Sim<Network> = Sim::new();
    for (i, &h) in senders.iter().take(3).enumerate() {
        let src = addr(i as u8 + 1);
        for port in 0..8u16 {
            start_cbr(
                &mut sim,
                h,
                SimTime::from_micros(port as u64 * 11),
                SimDuration::from_micros(400),
                100,
                move |s| {
                    PacketBuilder::udp(src, sink_addr(), 1000 + port, 20, &[])
                        .ident(s as u16)
                        .pad_to(1500)
                        .build()
                },
            );
        }
    }
    if with_burst {
        let src = addr(4);
        start_burst(
            &mut sim,
            senders[3],
            SimTime::from_millis(5),
            120,
            SimDuration::ZERO,
            move |s| {
                PacketBuilder::udp(src, sink_addr(), 30, 40, &[])
                    .ident(s as u16)
                    .pad_to(1500)
                    .build()
            },
        );
    }
    run_until(&mut net, &mut sim, SimTime::from_millis(40));
    let prog = &net.switch_as::<EventSwitch<MicroburstEvent>>(0).program;
    (prog.detections.len(), prog.state_words())
}

fn main() {
    println!("24 polite flows (+ one 120-pkt microburst in the 'burst' runs), thresh {THRESH} B");
    table_header(
        "footnote 1: exact register vs CMS for per-flow occupancy",
        &[
            ("tracker", 16),
            ("state words", 12),
            ("detects (burst)", 16),
            ("detects (clean)", 16),
        ],
    );
    let (d_burst, words) = run_exact(true);
    let (d_clean, _) = run_exact(false);
    println!(
        "{:>16} {:>12} {:>16} {:>16}",
        "exact 256-entry", words, d_burst, d_clean
    );
    for &(w, d) in &[(256usize, 4usize), (64, 4), (32, 2), (8, 2), (4, 1)] {
        let (det_b, words) = run_cms(w, d, true);
        let (det_c, _) = run_cms(w, d, false);
        println!(
            "{:>16} {:>12} {:>16} {:>16}",
            format!("CMS {w}x{d}"),
            words,
            det_b,
            det_c
        );
    }
    footnote(
        "both trackers stay silent on clean traffic; the CMS keeps \
         catching the real burst down to 32 words (8x less state than the \
         exact register), and at the degenerate 8-word size collisions \
         start charging polite flows for the burst's bytes (detections \
         inflate) — the memory/accuracy trade §4 compares to sketches. \
         The exact variant flags more often during the burst because \
         ip-pair aggregation also crosses the threshold for backlogged \
         polite pairs.",
    );
}
