//! §3 experiment — INT report reduction via timer aggregation.
//!
//! Sweeps the aggregation window and reports the monitoring-channel
//! volume of per-packet INT vs the event-driven reducer, and whether the
//! anomaly (a mid-run burst) still surfaced.

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::int_reduce::{IntPerPacket, IntReduced, NOTIFY_ANOMALY, TIMER_WINDOW};
use edp_bench::{f2, footnote, table_header};
use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::{start_burst, start_cbr};
use edp_netsim::Network;
use edp_packet::PacketBuilder;
use edp_pisa::QueueConfig;

const HORIZON: SimTime = SimTime::from_millis(100);
const THRESH: u64 = 30_000;

fn qc() -> QueueConfig {
    QueueConfig {
        capacity_bytes: 150_000,
        ..QueueConfig::default()
    }
}

fn drive(net: &mut Network, sim: &mut Sim<Network>, senders: &[usize]) {
    for (i, &h) in senders.iter().take(2).enumerate() {
        let src = addr(i as u8 + 1);
        start_cbr(
            sim,
            h,
            SimTime::ZERO,
            SimDuration::from_micros(50),
            1800,
            move |s| {
                PacketBuilder::udp(src, sink_addr(), 10 + i as u16, 20, &[])
                    .ident(s as u16)
                    .pad_to(1000)
                    .build()
            },
        );
    }
    let src = addr(3);
    start_burst(
        sim,
        senders[2],
        SimTime::from_millis(50),
        80,
        SimDuration::ZERO,
        move |s| {
            PacketBuilder::udp(src, sink_addr(), 30, 40, &[])
                .ident(s as u16)
                .pad_to(1500)
                .build()
        },
    );
    run_until(net, sim, HORIZON);
}

fn main() {
    // Baseline firehose.
    let cfg = EventSwitchConfig {
        n_ports: 4,
        queue: qc(),
        ..Default::default()
    };
    let sw = EventSwitch::new(IntPerPacket::new(3), cfg);
    let (mut net, senders, _, _) = dumbbell(Box::new(sw), 3, 400_000_000, 121);
    let mut sim: Sim<Network> = Sim::new();
    drive(&mut net, &mut sim, &senders);
    let raw = net
        .switch_as::<EventSwitch<IntPerPacket>>(0)
        .program
        .reports;
    println!("per-packet INT reports over {HORIZON}: {raw}");

    table_header(
        "event-driven reduction vs aggregation window",
        &[
            ("window (ms)", 12),
            ("reports", 8),
            ("anomalies", 10),
            ("reduction", 10),
            ("burst seen", 11),
        ],
    );
    for &ms in &[1u64, 2, 5, 10, 25] {
        let window = SimDuration::from_millis(ms);
        let cfg = EventSwitchConfig {
            n_ports: 4,
            queue: qc(),
            timers: vec![TimerSpec {
                id: TIMER_WINDOW,
                period: window,
                start: window,
            }],
            ..Default::default()
        };
        let sw = EventSwitch::new(IntReduced::new(3, 4, 64, THRESH), cfg);
        let (mut net, senders, _, _) = dumbbell(Box::new(sw), 3, 400_000_000, 121);
        let mut sim: Sim<Network> = Sim::new();
        drive(&mut net, &mut sim, &senders);
        let prog = &net.switch_as::<EventSwitch<IntReduced>>(0).program;
        let burst_seen = net.cp_log.iter().any(|(_, n)| n.code == NOTIFY_ANOMALY);
        println!(
            "{:>12} {:>8} {:>10} {:>10} {:>11}",
            ms,
            prog.reports,
            prog.anomaly_reports,
            format!("{}x", f2(raw as f64 / prog.reports as f64)),
            if burst_seen { "yes" } else { "NO" },
        );
    }
    footnote(
        "aggregating congestion signals in enqueue/dequeue/overflow \
         handlers and reporting once per timer window cuts the monitor \
         load by orders of magnitude, while the anomaly watchlist still \
         surfaces the microburst immediately in every configuration.",
    );
}
