//! Table 2 — application classes, demonstrated live.
//!
//! Runs one representative application per class on a real topology and
//! prints the class, the example, and the event kinds it *actually used*
//! at run time (read from the switch's event counters).

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::fred::FredAqm;
use edp_apps::hula::{testbed, HulaLeaf};
use edp_apps::liveness::{LivenessMonitor, LivenessReflector, Neighbor};
use edp_apps::microburst::MicroburstEvent;
use edp_apps::netcache::{NetCacheSwitch, TIMER_STATS};
use edp_bench::{footnote, table_header};
use edp_core::{EventCounters, EventKind, EventSwitch, EventSwitchConfig, TimerSpec};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::{start_burst, start_cbr};
use edp_netsim::{Host, HostApp, LinkSpec, Network, NodeRef};
use edp_packet::{KvHeader, KvOp, PacketBuilder};
use edp_pisa::QueueConfig;
use std::net::Ipv4Addr;

/// Event kinds used beyond plain packet forwarding, in Table 1 order.
fn interesting_events(c: &EventCounters) -> String {
    let mut used: Vec<&str> = Vec::new();
    for kind in EventKind::ALL {
        if c.get(kind) > 0 && !kind.baseline_supported() {
            used.push(match kind {
                EventKind::BufferEnqueue => "Enqueue",
                EventKind::BufferDequeue => "Dequeue",
                EventKind::BufferOverflow => "Overflow",
                EventKind::BufferUnderflow => "Underflow",
                EventKind::TimerExpiration => "Timer",
                EventKind::LinkStatusChange => "Link Status",
                EventKind::GeneratedPacket => "Generated Pkt",
                EventKind::PacketTransmitted => "Transmit",
                EventKind::ControlPlaneTriggered => "CP Trigger",
                EventKind::UserEvent => "User",
                _ => continue,
            });
        }
    }
    used.join(", ")
}

fn run_hula() -> String {
    let (mut net, h0, h1) = testbed::fabric(&testbed::event_leaf);
    testbed::drive(&mut net, h0, h1, 4);
    interesting_events(net.switch_as::<EventSwitch<HulaLeaf>>(0).event_counters())
}

fn run_frr() -> String {
    use edp_apps::frr::FrrEvent;
    let mut net = Network::new(3);
    let cfg = EventSwitchConfig {
        n_ports: 3,
        ..Default::default()
    };
    let a_sw = net.add_switch(Box::new(EventSwitch::new(FrrEvent::new(1, 2), cfg)));
    let h = net.add_host(Host::new(addr(1), HostApp::Sink));
    let h2 = net.add_host(Host::new(addr(9), HostApp::Sink));
    let spec = LinkSpec::ten_gig(SimDuration::from_micros(1));
    net.connect((NodeRef::Host(h), 0), (NodeRef::Switch(a_sw), 0), spec);
    let l = net.connect((NodeRef::Switch(a_sw), 1), (NodeRef::Host(h2), 0), spec);
    let mut sim: Sim<Network> = Sim::new();
    net.schedule_link_failure(&mut sim, l, SimTime::from_millis(1), None);
    let src = addr(1);
    start_cbr(
        &mut sim,
        h,
        SimTime::ZERO,
        SimDuration::from_micros(50),
        100,
        move |i| {
            PacketBuilder::udp(src, addr(9), 1, 2, &[])
                .ident(i as u16)
                .build()
        },
    );
    run_until(&mut net, &mut sim, SimTime::from_millis(10));
    interesting_events(
        net.switch_as::<EventSwitch<edp_apps::frr::FrrEvent>>(0)
            .event_counters(),
    )
}

fn run_liveness() -> String {
    let mut net = Network::new(5);
    let p = SimDuration::from_millis(1);
    let cfg = EventSwitchConfig {
        n_ports: 2,
        timers: vec![
            TimerSpec {
                id: 0,
                period: p,
                start: p,
            },
            TimerSpec {
                id: 1,
                period: p,
                start: p,
            },
        ],
        ..Default::default()
    };
    let m = net.add_switch(Box::new(EventSwitch::new(
        LivenessMonitor::new(
            addr(1),
            vec![Neighbor {
                port: 1,
                addr: addr(2),
            }],
            3_000_000,
        ),
        cfg,
    )));
    let r = net.add_switch(Box::new(EventSwitch::new(
        LivenessReflector::new(),
        EventSwitchConfig {
            n_ports: 2,
            switch_id: 2,
            ..Default::default()
        },
    )));
    net.connect(
        (NodeRef::Switch(m), 1),
        (NodeRef::Switch(r), 0),
        LinkSpec::ten_gig(SimDuration::from_micros(5)),
    );
    let h = net.add_host(Host::new(addr(100), HostApp::Sink));
    net.connect(
        (NodeRef::Host(h), 0),
        (NodeRef::Switch(m), 0),
        LinkSpec::ten_gig(SimDuration::from_micros(1)),
    );
    let mut sim: Sim<Network> = Sim::new();
    run_until(&mut net, &mut sim, SimTime::from_millis(20));
    interesting_events(
        net.switch_as::<EventSwitch<LivenessMonitor>>(0)
            .event_counters(),
    )
}

fn run_microburst() -> String {
    let cfg = EventSwitchConfig {
        n_ports: 3,
        queue: QueueConfig {
            capacity_bytes: 200_000,
            ..QueueConfig::default()
        },
        ..Default::default()
    };
    let sw = EventSwitch::new(MicroburstEvent::new(64, 20_000, 2), cfg);
    let (mut net, senders, _, _) = dumbbell(Box::new(sw), 2, 1_000_000_000, 6);
    let mut sim: Sim<Network> = Sim::new();
    let src = addr(2);
    start_burst(
        &mut sim,
        senders[1],
        SimTime::from_millis(1),
        60,
        SimDuration::ZERO,
        move |i| {
            PacketBuilder::udp(src, sink_addr(), 3, 4, &[])
                .ident(i as u16)
                .pad_to(1500)
                .build()
        },
    );
    run_until(&mut net, &mut sim, SimTime::from_millis(10));
    interesting_events(
        net.switch_as::<EventSwitch<MicroburstEvent>>(0)
            .event_counters(),
    )
}

fn run_fred() -> String {
    let cfg = EventSwitchConfig {
        n_ports: 3,
        queue: QueueConfig {
            capacity_bytes: 20_000,
            ..QueueConfig::default()
        },
        timers: vec![TimerSpec {
            id: edp_apps::fred::TIMER_REPORT,
            period: SimDuration::from_millis(1),
            start: SimDuration::from_millis(1),
        }],
        ..Default::default()
    };
    let sw = EventSwitch::new(FredAqm::new(32, 20_000, 1500, 2), cfg);
    let (mut net, senders, _, _) = dumbbell(Box::new(sw), 2, 50_000_000, 7);
    let mut sim: Sim<Network> = Sim::new();
    for (i, &h) in senders.iter().enumerate() {
        let src = addr(i as u8 + 1);
        start_cbr(
            &mut sim,
            h,
            SimTime::ZERO,
            SimDuration::from_micros(50),
            500,
            move |s| {
                PacketBuilder::udp(src, sink_addr(), 10 + i as u16, 2, &[])
                    .ident(s as u16)
                    .pad_to(1500)
                    .build()
            },
        );
    }
    run_until(&mut net, &mut sim, SimTime::from_millis(30));
    interesting_events(net.switch_as::<EventSwitch<FredAqm>>(0).event_counters())
}

fn run_netcache() -> String {
    let mut net = Network::new(8);
    let cfg = EventSwitchConfig {
        n_ports: 2,
        timers: vec![TimerSpec {
            id: TIMER_STATS,
            period: SimDuration::from_millis(2),
            start: SimDuration::from_millis(2),
        }],
        ..Default::default()
    };
    let sw = net.add_switch(Box::new(EventSwitch::new(
        NetCacheSwitch::new(0, 1, 8, 2, true),
        cfg,
    )));
    let ca = Ipv4Addr::new(10, 0, 0, 1);
    let sa = Ipv4Addr::new(10, 0, 0, 2);
    let client = net.add_host(Host::new(ca, HostApp::Sink));
    let server = net.add_host(Host::new(
        sa,
        HostApp::KvServer {
            store: (0..10u64).map(|k| (k, k)).collect(),
            served: 0,
        },
    ));
    let spec = LinkSpec::ten_gig(SimDuration::from_micros(2));
    net.connect((NodeRef::Host(client), 0), (NodeRef::Switch(sw), 0), spec);
    net.connect((NodeRef::Switch(sw), 1), (NodeRef::Host(server), 0), spec);
    let mut sim: Sim<Network> = Sim::new();
    start_cbr(
        &mut sim,
        client,
        SimTime::ZERO,
        SimDuration::from_micros(50),
        400,
        move |_| {
            PacketBuilder::kv(
                ca,
                sa,
                &KvHeader {
                    op: KvOp::Get,
                    key: 1,
                    value: 0,
                },
            )
            .build()
        },
    );
    run_until(&mut net, &mut sim, SimTime::from_millis(30));
    interesting_events(
        net.switch_as::<EventSwitch<NetCacheSwitch>>(0)
            .event_counters(),
    )
}

fn main() {
    table_header(
        "Table 2: application classes (events observed at run time)",
        &[("class", 28), ("example", 22), ("events used", 42)],
    );
    let rows: Vec<(&str, &str, String)> = vec![
        (
            "Congestion Aware Forwarding",
            "HULA load balancing",
            run_hula(),
        ),
        ("Network Management", "Fast re-route", run_frr()),
        ("Network Management", "Liveness monitoring", run_liveness()),
        (
            "Network Monitoring",
            "Microburst detection",
            run_microburst(),
        ),
        ("Traffic Management", "FRED-like fair AQM", run_fred()),
        (
            "In-Network Computing",
            "NetCache-style cache",
            run_netcache(),
        ),
    ];
    for (class, example, events) in rows {
        println!("{class:>28} {example:>22} {events:>42}");
    }
    footnote(
        "each row ran its application on a simulated topology; the events \
         column lists the non-baseline event kinds the switch program \
         actually consumed — matching Table 2's \"Events Used\".",
    );
}
