//! `pcap_gen` — deterministically (re)generate the committed pcap
//! fixtures under `tests/fixtures/`.
//!
//! ```sh
//! pcap_gen tests/fixtures            # write both fixtures
//! pcap_gen --check tests/fixtures    # exit 1 if on-disk bytes differ
//! ```
//!
//! Every byte is a pure function of the hard-coded seeds, so CI can run
//! `--check` to prove the committed fixtures match the generator — the
//! same property the replay pipeline leans on.

use edp_evsim::SimRng;
use edp_packet::{
    EthHeader, EtherType, KvHeader, KvOp, LivenessHeader, LivenessKind, MacAddr, PacketBuilder,
    PcapFile, PcapPacket, RpcHeader, RpcKind,
};
use std::net::Ipv4Addr;

fn a(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, n)
}

/// A minimal ARP-ethertype frame (opaque body, padded to 60 bytes): the
/// parser classifies it by ethertype alone, which is all the protocol
/// telemetry needs.
fn arp_frame(src_id: u32, dst_id: u32) -> Vec<u8> {
    let mut out = Vec::new();
    EthHeader {
        dst: MacAddr::from_id(dst_id),
        src: MacAddr::from_id(src_id),
        ethertype: EtherType::Arp,
    }
    .emit(&mut out);
    out.resize(60, 0);
    out
}

/// ~120 frames mixing every protocol class the host telemetry buckets:
/// kv / liveness / rpc / plain UDP, TCP, ICMP, and ARP, with exponential
/// inter-arrival gaps (mean 5 µs).
fn mixed_protocols() -> PcapFile {
    let mut rng = SimRng::stream(0x7C49_0001, &[0xF1C5]);
    let mut ts = 0u64;
    let mut file = PcapFile::default();
    for i in 0..120u64 {
        ts += rng.exp(5_000.0) as u64;
        let src = a(1 + (i % 4) as u8);
        let dst = a(200);
        let frame = match i % 7 {
            0 => PacketBuilder::kv(
                src,
                dst,
                &KvHeader {
                    op: KvOp::Get,
                    key: rng.uniform_u64(0, 256),
                    value: 0,
                },
            )
            .build(),
            1 => PacketBuilder::liveness(
                src,
                dst,
                &LivenessHeader {
                    kind: LivenessKind::Request,
                    origin: 1,
                    seq: i as u32,
                    ts_ns: ts,
                },
            )
            .build(),
            2 => PacketBuilder::rpc(
                src,
                dst,
                &RpcHeader {
                    kind: RpcKind::Request,
                    endpoint: (i % 4) as u32,
                    seq: i as u32,
                    key: rng.uniform_u64(0, 1024),
                    resp_bytes: 256,
                },
            )
            .build(),
            3 => PacketBuilder::udp(src, dst, 40_000 + i as u16, 9_999, b"payload")
                .pad_to(200 + rng.index(400))
                .build(),
            4 => PacketBuilder::tcp(src, dst, 33_000, 80, i as u32 * 512, 0, b"tcp-seg")
                .pad_to(512)
                .build(),
            5 => PacketBuilder::icmp_echo(src, dst, true, 7, i as u16).build(),
            _ => arp_frame(i as u32, 0xFFFF),
        };
        file.packets.push(PcapPacket::full(ts, frame));
    }
    file
}

/// A tight 5 µs burst of 64 KV GETs from one sender (40 ns apart) with a
/// quiet tail probe 1 ms later — the shape the microburst apps study.
fn kv_burst() -> PcapFile {
    let mut rng = SimRng::stream(0x7C49_0002, &[0xF1C5]);
    let mut file = PcapFile::default();
    for i in 0..64u64 {
        let frame = PacketBuilder::kv(
            a(1),
            a(200),
            &KvHeader {
                op: KvOp::Get,
                key: rng.uniform_u64(0, 64),
                value: 0,
            },
        )
        .pad_to(128)
        .build();
        file.packets.push(PcapPacket::full(1_000 + i * 40, frame));
    }
    let tail = PacketBuilder::liveness(
        a(1),
        a(200),
        &LivenessHeader {
            kind: LivenessKind::Request,
            origin: 1,
            seq: 64,
            ts_ns: 1_000_000,
        },
    )
    .build();
    file.packets.push(PcapPacket::full(1_000_000, tail));
    file
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.first().map(String::as_str) == Some("--check");
    if check {
        args.remove(0);
    }
    let dir = args.pop().unwrap_or_else(|| {
        eprintln!("usage: pcap_gen [--check] <fixtures-dir>");
        std::process::exit(2);
    });
    let fixtures = [
        ("mixed_protocols.pcap", mixed_protocols()),
        ("kv_burst.pcap", kv_burst()),
    ];
    let mut bad = 0;
    for (name, file) in fixtures {
        let bytes = file.to_pcap_bytes();
        let path = format!("{dir}/{name}");
        if check {
            match std::fs::read(&path) {
                Ok(on_disk) if on_disk == bytes => {
                    println!(
                        "{path}: ok ({} packets, {} bytes)",
                        file.packets.len(),
                        bytes.len()
                    );
                }
                Ok(_) => {
                    eprintln!("{path}: differs from generator output");
                    bad += 1;
                }
                Err(e) => {
                    eprintln!("{path}: {e}");
                    bad += 1;
                }
            }
        } else {
            std::fs::create_dir_all(&dir).expect("create fixtures dir");
            std::fs::write(&path, &bytes).expect("write fixture");
            println!(
                "{path}: wrote {} packets, {} bytes",
                file.packets.len(),
                bytes.len()
            );
        }
    }
    if bad > 0 {
        std::process::exit(1);
    }
}
