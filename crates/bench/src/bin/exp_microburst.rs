//! §2 experiment — microburst detection: event-driven vs Snappy-style
//! baseline across burst intensities.
//!
//! Reproduction targets: ≥4× state reduction (constant, by construction)
//! and earlier detection (ingress, before enqueue) across the sweep.

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::microburst::{Detection, MicroburstBaseline, MicroburstEvent};
use edp_bench::{footnote, table_header};
use edp_core::{EventSwitch, EventSwitchConfig};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::{start_burst, start_cbr};
use edp_netsim::Network;
use edp_packet::PacketBuilder;
use edp_pisa::{BaselineSwitch, QueueConfig};

const THRESH: u64 = 20_000;
const N_FLOWS: usize = 256;
const BURST_AT: SimTime = SimTime::from_millis(2);

fn qc() -> QueueConfig {
    QueueConfig {
        capacity_bytes: 400_000,
        ..QueueConfig::default()
    }
}

fn workload(sim: &mut Sim<Network>, senders: &[usize], burst_pkts: u64) {
    for (i, &h) in senders.iter().take(2).enumerate() {
        let src = addr(i as u8 + 1);
        start_cbr(
            sim,
            h,
            SimTime::ZERO,
            SimDuration::from_micros(150),
            250,
            move |s| {
                PacketBuilder::udp(src, sink_addr(), 10 + i as u16, 20, &[])
                    .ident(s as u16)
                    .pad_to(1500)
                    .build()
            },
        );
    }
    let src = addr(3);
    start_burst(
        sim,
        senders[2],
        BURST_AT,
        burst_pkts,
        SimDuration::ZERO,
        move |s| {
            PacketBuilder::udp(src, sink_addr(), 30, 40, &[])
                .ident(s as u16)
                .pad_to(1500)
                .build()
        },
    );
}

struct Outcome {
    state_words: usize,
    detections: usize,
    first: Option<Detection>,
}

fn run(event: bool, burst_pkts: u64) -> Outcome {
    if event {
        let cfg = EventSwitchConfig {
            n_ports: 4,
            queue: qc(),
            ..Default::default()
        };
        let sw = EventSwitch::new(MicroburstEvent::new(N_FLOWS, THRESH, 3), cfg);
        let (mut net, senders, _, _) = dumbbell(Box::new(sw), 3, 1_000_000_000, 2);
        let mut sim: Sim<Network> = Sim::new();
        workload(&mut sim, &senders, burst_pkts);
        run_until(&mut net, &mut sim, SimTime::from_millis(40));
        let p = &net.switch_as::<EventSwitch<MicroburstEvent>>(0).program;
        Outcome {
            state_words: p.state_words(),
            detections: p.detections.len(),
            first: p.detections.first().copied(),
        }
    } else {
        let prog = MicroburstBaseline::new(N_FLOWS, THRESH, 240_000, 3);
        let sw = BaselineSwitch::new(prog, 4, qc());
        let (mut net, senders, _, _) = dumbbell(Box::new(sw), 3, 1_000_000_000, 2);
        let mut sim: Sim<Network> = Sim::new();
        workload(&mut sim, &senders, burst_pkts);
        run_until(&mut net, &mut sim, SimTime::from_millis(40));
        let p = &net
            .switch_as::<BaselineSwitch<MicroburstBaseline>>(0)
            .program;
        Outcome {
            state_words: p.state_words(),
            detections: p.detections.len(),
            first: p.detections.first().copied(),
        }
    }
}

fn main() {
    let ev0 = run(true, 0);
    let base0 = run(false, 0);
    println!(
        "state: event-driven {} words, baseline {} words ({}x reduction)",
        ev0.state_words,
        base0.state_words,
        base0.state_words / ev0.state_words
    );
    println!("threshold {THRESH} B, burst at {BURST_AT}, detection measured from burst start");

    table_header(
        "microburst detection vs burst size (packets of 1500 B)",
        &[
            ("burst", 6),
            ("ev detects", 11),
            ("ev first (us)", 14),
            ("base detects", 13),
            ("base first (us)", 16),
            ("lead (us)", 10),
        ],
    );
    for &burst in &[0u64, 10, 20, 40, 80, 160, 240] {
        let ev = run(true, burst);
        let base = run(false, burst);
        let fmt = |d: &Option<Detection>| match d {
            Some(d) => format!(
                "{:.1}",
                d.at.saturating_since(BURST_AT).as_nanos() as f64 / 1000.0
            ),
            None => "-".into(),
        };
        let lead = match (&ev.first, &base.first) {
            (Some(e), Some(b)) => {
                format!(
                    "{:.1}",
                    b.at.saturating_since(e.at).as_nanos() as f64 / 1000.0
                )
            }
            _ => "-".into(),
        };
        println!(
            "{:>6} {:>11} {:>14} {:>13} {:>16} {:>10}",
            burst,
            ev.detections,
            fmt(&ev.first),
            base.detections,
            fmt(&base.first),
            lead
        );
    }
    footnote(
        "small bursts (≤ threshold/1500 ≈ 13 pkts) are invisible to both; \
         above threshold the event-driven program flags the culprit at \
         ingress tens of microseconds before the egress-side baseline, \
         with exactly 1/4 of the stateful memory.",
    );
}
