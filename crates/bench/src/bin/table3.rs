//! Table 3 — FPGA cost of event support on a Virtex-7.
//!
//! Prints the resource-model reproduction next to the paper's reported
//! numbers. The target is the *shape*: every class ≤ ~2%, BRAM dominant.

use edp_bench::{f2, footnote, table_header};
use edp_resources::{baseline_sume_switch, sume_event_switch, table3, VIRTEX7_690T};

fn main() {
    let dev = VIRTEX7_690T;
    println!("device: {}", dev.name);
    println!(
        "  totals: {} LUTs, {} FFs, {} BRAM blocks",
        dev.totals.luts, dev.totals.ffs, dev.totals.brams
    );

    let base = baseline_sume_switch();
    let event = sume_event_switch();
    println!("\nconfigurations:");
    for d in [&base, &event] {
        let t = d.total();
        let (l, f, b) = d.utilization(dev);
        println!(
            "  {:<24} {:>8} LUT ({:>5.1}%)  {:>8} FF ({:>5.1}%)  {:>5} BRAM ({:>5.1}%)",
            d.name, t.luts, l, t.ffs, f, t.brams, b
        );
    }

    table_header(
        "Table 3: cost of adding event support (% of total device)",
        &[("FPGA resource", 16), ("this model", 11), ("paper", 7)],
    );
    for row in table3(dev) {
        println!(
            "{:>16} {:>11} {:>7}",
            row.resource,
            f2(row.increase_pct),
            f2(row.paper_pct)
        );
    }
    footnote(
        "block prices are calibrated to public P4->NetFPGA reference \
         utilization; the reproduced quantity is the delta between the \
         two configurations, which stays ≤ ~2% with BRAM dominant, as \
         in the paper.",
    );
}
