//! Figure 4 — the Event Merger under load.
//!
//! The merger either piggybacks event metadata on ingress packets or
//! injects carrier frames into idle slots. This bench sweeps offered
//! packet load and event rate and reports the delivery split, the
//! carrier-frame bandwidth overhead, and event delivery latency — the
//! operating envelope of the Figure 4 design.

use edp_bench::{f2, footnote, table_header};
use edp_core::event::{TimerEvent, UserEvent};
use edp_core::{Event, EventMerger, MergerConfig};
use edp_evsim::SimRng;

/// Simulates `cycles` pipeline slots; a packet occupies a slot with
/// probability `load`, and `events_per_100` events arrive per 100 cycles.
fn run(load: f64, events_per_100: u32, cycles: u64, seed: u64) -> (f64, f64, u64, u64) {
    let mut m = EventMerger::new(MergerConfig::default());
    let mut rng = SimRng::seed_from_u64(seed);
    let mut ev_budget = 0u32;
    for c in 0..cycles {
        // The slot for cycle c carries events raised in earlier cycles;
        // events generated during c ride from c+1 on (hardware order).
        if rng.chance(load) {
            m.packet_slot(c);
        } else {
            m.idle_slot(c);
        }
        ev_budget += events_per_100;
        while ev_budget >= 100 {
            ev_budget -= 100;
            m.push_event(
                c,
                if c % 2 == 0 {
                    Event::Timer(TimerEvent {
                        timer_id: 0,
                        firing: c,
                    })
                } else {
                    Event::User(UserEvent {
                        code: 1,
                        args: [c, 0, 0, 0],
                    })
                },
            );
        }
    }
    let s = m.stats();
    let delivered = s.piggybacked + s.carried_injected;
    let piggy_frac = if delivered > 0 {
        s.piggybacked as f64 / delivered as f64
    } else {
        0.0
    };
    let overhead_bytes_per_kcycle = s.carrier_bytes as f64 * 1000.0 / cycles as f64;
    (
        piggy_frac,
        overhead_bytes_per_kcycle,
        s.wait_cycles.p99(),
        m.pending() as u64,
    )
}

fn main() {
    const CYCLES: u64 = 1_000_000;

    table_header(
        "Figure 4: event merger vs offered packet load (4 events/100 cycles)",
        &[
            ("pkt load", 9),
            ("piggyback frac", 15),
            ("carrier B/kcycle", 17),
            ("event p99 wait", 15),
            ("backlog", 8),
        ],
    );
    for &load in &[0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let (pf, ov, p99, backlog) = run(load, 4, CYCLES, 1);
        println!(
            "{:>9} {:>15} {:>17} {:>15} {:>8}",
            f2(load),
            f2(pf),
            f2(ov),
            p99,
            backlog
        );
    }

    table_header(
        "event-rate sweep at 90% packet load",
        &[
            ("events/100cyc", 14),
            ("piggyback frac", 15),
            ("event p99 wait", 15),
            ("backlog", 8),
        ],
    );
    for &rate in &[1u32, 4, 16, 64, 256, 390, 410, 500] {
        let (pf, _ov, p99, backlog) = run(0.9, rate, CYCLES, 2);
        println!("{:>14} {:>15} {:>15} {:>8}", rate, f2(pf), p99, backlog);
    }

    footnote(
        "at high packet load events ride for free (piggyback fraction → 1, \
         zero carrier overhead); at low load carriers fill idle slots with \
         small, bounded bandwidth cost. Delivery latency only grows when \
         the event rate approaches the slot capacity (max 4 events/slot).",
    );
}
