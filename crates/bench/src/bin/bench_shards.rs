//! Sharded-engine scaling snapshot: wall-clock throughput of an
//! 8-switch line topology at 1, 2, and 4 shards — each at burst
//! factors 1 and 32, plus a burst-32 leg under the certificate-aware
//! effects horizon — written to `BENCH_2.json`. The `windows` column
//! is the burst engine's headline: sub-window execution collapses the
//! negotiated window count by an order of magnitude at burst 32, and
//! the effects horizon collapses it further still by extending
//! `safe_horizon` past runs of certified-local events. `barriers`
//! counts actual rendezvous on the `WindowSync`, the honest
//! synchronization cost either way. Each leg also runs a second,
//! profiled pass (`edp_telemetry::prof`) to attribute its wall-clock:
//! the `barrier_wait_frac` and `exchange_frac` columns pin how much of
//! the run waited at barriers vs moved mailbox traffic — the numbers
//! the "make the sharded engine win" roadmap item spends next. The
//! reported rate always comes from the unprofiled pass.
//!
//! ```sh
//! cargo run --release -p edp-bench --bin bench_shards
//! cargo run --release -p edp-bench --bin bench_shards -- --pkts 50000 --out /tmp/b2.json
//! ```
//!
//! The line `h0 — sw0 — sw1 — … — sw7 — h1` keeps every inter-switch
//! link at 2 µs latency, so the partitioner cuts it into 8 single-switch
//! groups with a 2 µs lookahead — at 4 shards each worker owns 2
//! switches and every hop crosses a mailbox boundary. The run also
//! asserts the delivered-packet count is identical at every shard
//! count before reporting any rate.
//!
//! Speedup is bounded by physical parallelism: the snapshot records
//! `host_cores` (`std::thread::available_parallelism`) next to the
//! rates so a number measured on a 1-core CI container is not mistaken
//! for an engine regression.

use edp_evsim::{HorizonMode, Sim, SimDuration, SimTime};
use edp_netsim::traffic::start_cbr;
use edp_netsim::{run_sharded_opts, Host, HostApp, LinkSpec, Network, NodeRef};
use edp_packet::PacketBuilder;
use edp_pisa::{BaselineSwitch, ForwardTo, QueueConfig};
use edp_telemetry::prof;
use std::net::Ipv4Addr;
use std::time::Instant;

const SWITCHES: usize = 8;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// Execution-strategy legs swept per shard count: burst 1 = the legacy
/// one-negotiation-per-window protocol, burst 32 = the sub-window fast
/// path, and burst 32 under `EDP_HORIZON=effects` = the certificate-
/// aware horizon. Outputs are byte-identical; only windows, barriers
/// (and wall clock) move.
const LEGS: [(usize, HorizonMode); 3] = [
    (1, HorizonMode::Classic),
    (32, HorizonMode::Classic),
    (32, HorizonMode::Effects),
];

/// Builds the 8-switch line with `n` CBR packets armed. Pure function
/// of its arguments — every shard builds the identical world.
fn build(n: u64) -> (Network, Sim<Network>) {
    let mut net = Network::new(42);
    let switches: Vec<usize> = (0..SWITCHES)
        .map(|_| {
            net.add_switch(Box::new(BaselineSwitch::new(
                ForwardTo(1),
                2,
                QueueConfig::default(),
            )))
        })
        .collect();
    let h0 = net.add_host(Host::new(Ipv4Addr::new(10, 0, 0, 1), HostApp::Sink));
    let h1 = net.add_host(Host::new(Ipv4Addr::new(10, 0, 0, 2), HostApp::Sink));
    let edge = LinkSpec::ten_gig(SimDuration::from_micros(1));
    let trunk = LinkSpec::ten_gig(SimDuration::from_micros(2));
    net.connect(
        (NodeRef::Host(h0), 0),
        (NodeRef::Switch(switches[0]), 0),
        edge,
    );
    for w in switches.windows(2) {
        net.connect(
            (NodeRef::Switch(w[0]), 1),
            (NodeRef::Switch(w[1]), 0),
            trunk,
        );
    }
    net.connect(
        (NodeRef::Switch(switches[SWITCHES - 1]), 1),
        (NodeRef::Host(h1), 0),
        edge,
    );
    let mut sim: Sim<Network> = Sim::new();
    start_cbr(
        &mut sim,
        h0,
        SimTime::ZERO,
        SimDuration::from_nanos(500),
        n,
        move |i| {
            PacketBuilder::udp(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                4000,
                8080,
                &[],
            )
            .ident(i as u16)
            .pad_to(256)
            .build()
        },
    );
    (net, sim)
}

/// Runs the line at `shards` x `burst` under `mode` and returns
/// `(delivered, windows, barriers, cross-shard messages, wall seconds)`.
fn measure(shards: usize, burst: usize, mode: HorizonMode, n: u64) -> (u64, u64, u64, u64, f64) {
    // 500 ns spacing + the ~17 µs path + margin.
    let deadline = SimTime::from_nanos(500 * n + 1_000_000);
    let t0 = Instant::now();
    let (delivered, stats) = run_sharded_opts(
        shards,
        burst,
        mode,
        deadline,
        |_shard| build(n),
        |_shard, net, _sim| net.hosts[1].stats.rx_pkts,
    );
    let secs = t0.elapsed().as_secs_f64();
    (
        delivered.iter().sum(),
        stats.windows,
        stats.barriers,
        stats.cross_messages,
        secs,
    )
}

/// Re-runs the leg with the wall-clock profiler enabled and returns
/// `(barrier_wait_frac, exchange_frac)` — the fraction of the group's
/// attributed wall-clock spent waiting at negotiation/exchange barriers
/// and doing mailbox work, summed over shards. A separate pass so the
/// profiler's own overhead never contaminates the reported rate.
fn measure_fracs(shards: usize, burst: usize, mode: HorizonMode, n: u64) -> (f64, f64) {
    let deadline = SimTime::from_nanos(500 * n + 1_000_000);
    let epoch = Instant::now();
    let (profiles, _) = run_sharded_opts(
        shards,
        burst,
        mode,
        deadline,
        |shard| {
            prof::enable(epoch, shard, shards);
            build(n)
        },
        |_shard, _net, _sim| prof::disable().expect("profiling enabled in build"),
    );
    let mut phase_ns = [0u64; prof::NPHASES];
    for p in &profiles {
        for (dst, src) in phase_ns.iter_mut().zip(p.phase_ns.iter()) {
            *dst += src;
        }
    }
    let attr: u64 = phase_ns.iter().sum();
    if attr == 0 {
        return (0.0, 0.0);
    }
    let wait = phase_ns[prof::Phase::Negotiate.index()] + phase_ns[prof::Phase::Barrier.index()];
    let exchange = phase_ns[prof::Phase::Mailbox.index()] + phase_ns[prof::Phase::Extend.index()];
    (wait as f64 / attr as f64, exchange as f64 / attr as f64)
}

fn mode_name(mode: HorizonMode) -> &'static str {
    match mode {
        HorizonMode::Classic => "classic",
        HorizonMode::Effects => "effects",
    }
}

fn main() {
    let mut pkts: u64 = 200_000;
    let mut out = String::from("BENCH_2.json");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pkts" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => pkts = v,
                None => {
                    eprintln!("error: --pkts requires a count");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out = p,
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: bench_shards [--pkts N] [--out <path>]");
                std::process::exit(2);
            }
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("bench_shards — {SWITCHES}-switch line, {pkts} pkts, {cores} host core(s)");

    let mut rows = Vec::new();
    let mut base_rate = 0.0f64;
    let mut base_secs = 0.0f64;
    let mut base_rx = None;
    for shards in SHARD_COUNTS {
        for (burst, mode) in LEGS {
            let (rx, windows, barriers, crossed, secs) = measure(shards, burst, mode, pkts);
            match base_rx {
                None => base_rx = Some(rx),
                Some(b) => assert_eq!(
                    rx,
                    b,
                    "{shards}-shard burst-{burst} {} run delivered a different count",
                    mode_name(mode)
                ),
            }
            let rate = pkts as f64 / secs;
            if shards == 1 && burst == 1 {
                base_rate = rate;
                base_secs = secs;
            }
            let speedup = rate / base_rate;
            // Wall-clock ratio vs the 1-shard burst-1 baseline: < 1.0
            // means this leg finished the same work faster.
            let wall_ratio = secs / base_secs;
            // A second, profiled pass attributes the leg's wall-clock;
            // the rate above stays unprofiled.
            let (wait_frac, exch_frac) = measure_fracs(shards, burst, mode, pkts);
            println!(
                "  {shards} shard(s) x burst {burst:>2} [{}]: {rate:>12.0} pkts/s  \
                 ({windows} windows, {barriers} barriers, {crossed} cross msgs, \
                 speedup {speedup:.2}x, wall {wall_ratio:.3}x, \
                 barrier-wait {:.0}%, exchange {:.0}%)",
                mode_name(mode),
                wait_frac * 100.0,
                exch_frac * 100.0,
            );
            rows.push((
                shards,
                burst,
                mode_name(mode),
                rate,
                windows,
                barriers,
                crossed,
                speedup,
                wall_ratio,
                wait_frac,
                exch_frac,
            ));
        }
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"pkts\": {pkts},\n"));
    json.push_str(&format!("  \"switches\": {SWITCHES},\n"));
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str(
        "  \"note\": \"speedup is bounded by host_cores; a 1-core container \
         cannot show parallel gains regardless of engine quality\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (
        i,
        (
            shards,
            burst,
            horizon,
            rate,
            windows,
            barriers,
            crossed,
            speedup,
            wall_ratio,
            wait_frac,
            exch_frac,
        ),
    ) in rows.iter().enumerate()
    {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"shards\": {shards}, \"burst\": {burst}, \
             \"horizon\": \"{horizon}\", \
             \"pkts_per_sec\": {rate:.1}, \
             \"windows\": {windows}, \"barriers\": {barriers}, \
             \"cross_messages\": {crossed}, \
             \"speedup_vs_baseline\": {speedup:.3}, \
             \"wall_clock_ratio\": {wall_ratio:.3}, \
             \"barrier_wait_frac\": {wait_frac:.3}, \
             \"exchange_frac\": {exch_frac:.3}}}{comma}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write snapshot");
    println!("wrote {out}");
}
