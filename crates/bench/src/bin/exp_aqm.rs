//! §5 experiment — FRED-style fair AQM from enqueue/dequeue events.
//!
//! Sweeps the hog's intensity against three polite flows on a 100 Mb/s
//! bottleneck and reports per-class goodput and Jain fairness for
//! drop-tail vs the event-driven FRED. Reproduction target: FRED holds
//! fairness near 1.0 regardless of hog intensity; drop-tail collapses.

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::fred::{FredAqm, TIMER_REPORT};
use edp_bench::{f2, footnote, mbps, table_header};
use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
use edp_evsim::{jain_fairness, Sim, SimDuration, SimTime};
use edp_netsim::traffic::start_cbr;
use edp_netsim::Network;
use edp_packet::PacketBuilder;
use edp_pisa::{BaselineSwitch, ForwardTo, QueueConfig};

const CAPACITY: u64 = 30_000;
const BOTTLENECK: u64 = 100_000_000;
const N: usize = 4;
const HORIZON: SimTime = SimTime::from_millis(100);

fn qc() -> QueueConfig {
    QueueConfig {
        capacity_bytes: CAPACITY,
        ..QueueConfig::default()
    }
}

/// Returns (per-flow goodputs, mean occupancy from data-plane reports).
fn run(fair: bool, hog_interval_us: u64) -> (Vec<f64>, f64) {
    let (mut net, senders, sink, _) = if fair {
        let cfg = EventSwitchConfig {
            n_ports: 5,
            queue: qc(),
            timers: vec![TimerSpec {
                id: TIMER_REPORT,
                period: SimDuration::from_millis(1),
                start: SimDuration::from_millis(1),
            }],
            ..Default::default()
        };
        let sw = EventSwitch::new(FredAqm::new(64, CAPACITY, 2000, 4), cfg);
        dumbbell(Box::new(sw), N, BOTTLENECK, 31)
    } else {
        dumbbell(
            Box::new(BaselineSwitch::new(ForwardTo(4), 5, qc())),
            N,
            BOTTLENECK,
            31,
        )
    };
    let mut sim: Sim<Network> = Sim::new();
    for (i, &h) in senders.iter().enumerate() {
        let src = addr(i as u8 + 1);
        let port = 1000 + i as u16;
        let interval = if i == N - 1 {
            SimDuration::from_micros(hog_interval_us)
        } else {
            SimDuration::from_micros(300)
        };
        start_cbr(&mut sim, h, SimTime::ZERO, interval, u64::MAX, move |s| {
            PacketBuilder::udp(src, sink_addr(), port, 9000, &[])
                .ident(s as u16)
                .pad_to(1500)
                .build()
        });
    }
    run_until(&mut net, &mut sim, HORIZON);
    let goodputs: Vec<f64> = (0..N)
        .map(|i| {
            let key = edp_packet::FlowKey::new(
                addr(i as u8 + 1),
                sink_addr(),
                edp_packet::IpProto::Udp,
                1000 + i as u16,
                9000,
            );
            net.hosts[sink]
                .stats
                .flows
                .get(&key)
                .map(|f| f.bytes as f64 * 8.0 / HORIZON.as_secs_f64())
                .unwrap_or(0.0)
        })
        .collect();
    let occ = if fair {
        net.switch_as::<EventSwitch<FredAqm>>(0)
            .program
            .occupancy_series
            .time_weighted_mean()
    } else {
        0.0
    };
    (goodputs, occ)
}

fn main() {
    println!("3 polite flows @40 Mb/s + 1 hog into a 100 Mb/s bottleneck, {HORIZON}");
    table_header(
        "fair AQM (FRED, event-driven) vs drop-tail across hog intensity",
        &[
            ("hog Mb/s", 9),
            ("variant", 9),
            ("polite min", 11),
            ("hog Mb/s", 9),
            ("Jain", 6),
        ],
    );
    for &hog_us in &[120u64, 60, 30, 15] {
        let hog_rate = 1500.0 * 8.0 / hog_us as f64 * 1e6;
        for &fair in &[false, true] {
            let (g, _) = run(fair, hog_us);
            let polite_min = g[..N - 1].iter().cloned().fold(f64::INFINITY, f64::min);
            println!(
                "{:>9} {:>9} {:>11} {:>9} {:>6}",
                mbps(hog_rate),
                if fair { "FRED" } else { "droptail" },
                mbps(polite_min),
                mbps(g[N - 1]),
                f2(jain_fairness(&g)),
            );
        }
    }
    let (_, occ) = run(true, 30);
    println!("\nmean buffer occupancy under FRED (data-plane reports): {occ:.0} bytes");
    footnote(
        "per-active-flow occupancy and flow counts come entirely from \
         enqueue/dequeue events — signals a baseline ingress pipeline \
         cannot obtain. FRED caps every flow at its fair share, so Jain \
         stays ~1.0 while drop-tail lets the hog take the buffer.",
    );
}
