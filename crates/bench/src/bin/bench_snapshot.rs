//! Performance snapshot harness: one binary that times the three fast
//! paths (event queue, table lookups, switch datapath) with plain wall
//! clocks and writes a `BENCH_<n>.json` so every PR leaves a perf
//! trajectory to regress against.
//!
//! ```sh
//! cargo run --release -p edp-bench --bin bench_snapshot            # full run
//! cargo run --release -p edp-bench --bin bench_snapshot -- --smoke # CI-sized
//! cargo run --release -p edp-bench --bin bench_snapshot -- --out BENCH_1.json
//! # CI regression gate: fail (exit 1) if any gated metric is more than
//! # --max-regress below the baseline snapshot:
//! cargo run --release -p edp-bench --bin bench_snapshot -- \
//!     --smoke --out /tmp/smoke.json --baseline BENCH_1.json --max-regress 0.25
//! ```
//!
//! Interpretation: every metric is an operations-per-second rate, larger
//! is better. The JSON is flat (`{"metrics": {"name": rate, ...}}`) so a
//! later PR can diff two snapshots with nothing fancier than `jq`.

use edp_core::{BaselineAdapter, EventSwitch, EventSwitchConfig};
use edp_evsim::{burst_from_env, Periodic, Sim, SimDuration, SimTime};
use edp_packet::{Burst, Packet, PacketBuilder, PacketUid};
use edp_pisa::{
    insert_ipv4_route, ipv4_lpm_schema, FieldMatch, ForwardTo, MatchKind, MatchTable, TableEntry,
};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Instant;

struct Scale {
    events: u64,
    cancels: u64,
    periodic_ticks: u64,
    lookups: u64,
    pkts: u64,
}

const FULL: Scale = Scale {
    events: 2_000_000,
    cancels: 1_000_000,
    periodic_ticks: 2_000_000,
    lookups: 2_000_000,
    pkts: 400_000,
};

const SMOKE: Scale = Scale {
    events: 50_000,
    cancels: 25_000,
    periodic_ticks: 50_000,
    lookups: 50_000,
    pkts: 10_000,
};

fn rate(n: u64, elapsed: std::time::Duration) -> f64 {
    n as f64 / elapsed.as_secs_f64()
}

/// events/s: schedule `n` one-shot events (staggered, with same-time
/// ties) and drain them.
fn bench_events_schedule_fire(n: u64) -> f64 {
    let mut sim: Sim<u64> = Sim::new();
    let t0 = Instant::now();
    for i in 0..n {
        // Four events per nominal instant: exercises FIFO tie-breaking.
        sim.schedule_at(SimTime::from_nanos(i / 4), |w: &mut u64, _: &mut _| {
            *w = w.wrapping_add(1);
        });
    }
    let mut world = 0u64;
    sim.run(&mut world);
    assert_eq!(world, n);
    rate(n, t0.elapsed())
}

/// events/s when half the scheduled events are cancelled before firing:
/// measures the cancellation path (tombstones in the seed design).
fn bench_events_cancel_heavy(n: u64) -> f64 {
    let mut sim: Sim<u64> = Sim::new();
    let t0 = Instant::now();
    let mut ids = Vec::with_capacity(n as usize / 2);
    for i in 0..n {
        let id = sim.schedule_at(SimTime::from_nanos(i), |w: &mut u64, _: &mut _| {
            *w = w.wrapping_add(1);
        });
        if i % 2 == 0 {
            ids.push(id);
        }
    }
    for id in ids {
        sim.cancel(id);
    }
    let mut world = 0u64;
    sim.run(&mut world);
    assert_eq!(world, n - n / 2 - n % 2);
    rate(n, t0.elapsed())
}

/// events/s for a self-re-arming periodic timer (the hot shape for
/// traffic generators and polling loops).
fn bench_events_periodic(ticks: u64) -> f64 {
    let mut sim: Sim<u64> = Sim::new();
    let mut left = ticks;
    sim.schedule_periodic(
        SimTime::from_nanos(1),
        SimDuration::from_nanos(1),
        move |w: &mut u64, _: &mut Sim<u64>| {
            *w = w.wrapping_add(1);
            left -= 1;
            if left == 0 {
                Periodic::Stop
            } else {
                Periodic::Continue
            }
        },
    );
    let t0 = Instant::now();
    let mut world = 0u64;
    sim.run(&mut world);
    assert_eq!(world, ticks);
    rate(ticks, t0.elapsed())
}

/// lookups/s on an all-exact table with 10k entries.
fn bench_exact_lookup(n: u64) -> f64 {
    let mut t: MatchTable<u32> = MatchTable::new("exact", vec![MatchKind::Exact]);
    for i in 0..10_000u64 {
        t.insert_exact(&[i], i as u32);
    }
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..n {
        let key = [(i * 7919) % 10_000];
        if let Some(v) = t.lookup(&key) {
            acc = acc.wrapping_add(*v as u64);
        }
    }
    std::hint::black_box(acc);
    rate(n, t0.elapsed())
}

/// lookups/s on a 1k-entry IPv4 LPM table (the acceptance-criteria
/// workload: mixed /8 /16 /24 prefixes plus a default route).
fn bench_lpm_lookup_1k(n: u64) -> f64 {
    let mut t: MatchTable<u32> = MatchTable::new("lpm1k", ipv4_lpm_schema());
    let mut id = 0u32;
    for a in 0..4u32 {
        insert_ipv4_route(&mut t, Ipv4Addr::new(10 + a as u8, 0, 0, 0), 8, id);
        id += 1;
    }
    for b in 0..55u32 {
        insert_ipv4_route(&mut t, Ipv4Addr::new(10, b as u8, 0, 0), 16, id);
        id += 1;
    }
    for c in 0..940u32 {
        insert_ipv4_route(
            &mut t,
            Ipv4Addr::new(10, (c / 256) as u8, (c % 256) as u8, 0),
            24,
            id,
        );
        id += 1;
    }
    insert_ipv4_route(&mut t, Ipv4Addr::new(0, 0, 0, 0), 0, id);
    let entries = t.len() as u64;
    assert!(
        entries >= 1000,
        "expected >=1000 LPM entries, got {entries}"
    );
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..n {
        // Mix of hits at /24, /16, /8 and default-route depth.
        let addr = Ipv4Addr::new(10, (i % 7) as u8, (i % 251) as u8, (i % 253) as u8);
        let key = [u32::from(addr) as u64];
        if let Some(v) = t.lookup(&key) {
            acc = acc.wrapping_add(*v as u64);
        }
    }
    std::hint::black_box(acc);
    rate(n, t0.elapsed())
}

/// lookups/s on a 128-entry ternary ACL with distinct priorities.
fn bench_ternary_lookup(n: u64) -> f64 {
    let mut t: MatchTable<u32> = MatchTable::new("acl", vec![MatchKind::Ternary]);
    for i in 0..128u64 {
        t.insert(TableEntry {
            fields: vec![FieldMatch::Ternary {
                value: i,
                mask: 0x7F,
            }],
            priority: i as i64,
            action: i as u32,
        });
    }
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..n {
        if let Some(v) = t.lookup(&[i % 131]) {
            acc = acc.wrapping_add(*v as u64);
        }
    }
    std::hint::black_box(acc);
    rate(n, t0.elapsed())
}

/// Drives `n` shared-payload frames through `sw` in same-instant groups
/// of `burst` (1 = the classic per-packet receive/transmit loop) and
/// returns the pkts/s rate. The frame is `Arc`-shared so the loop pays
/// an Arc bump per packet, not an alloc+memcpy — the same economy a real
/// driver gets from a descriptor ring.
fn drive_switch<P: edp_core::EventProgram>(
    sw: &mut EventSwitch<P>,
    frame: &Arc<Vec<u8>>,
    n: u64,
    burst: usize,
    out_port: u8,
) -> f64 {
    let b = burst.max(1) as u64;
    let t0 = Instant::now();
    let mut t = 0u64;
    let mut done = 0u64;
    while done < n {
        let take = b.min(n - done);
        t += 100;
        if take == 1 {
            sw.receive(
                SimTime::from_nanos(t),
                0,
                Packet::from_shared(PacketUid(0), Arc::clone(frame)),
            );
            std::hint::black_box(sw.transmit(SimTime::from_nanos(t + 50), out_port));
        } else {
            let mut group = Burst::with_capacity(take as usize);
            for _ in 0..take {
                group.push(Packet::from_shared(PacketUid(0), Arc::clone(frame)));
            }
            sw.receive_burst(SimTime::from_nanos(t), 0, group);
            std::hint::black_box(sw.transmit_burst(
                SimTime::from_nanos(t + 50),
                out_port,
                take as usize,
            ));
        }
        done += take;
    }
    assert_eq!(sw.counters().tx, n);
    rate(n, t0.elapsed())
}

/// pkts/s through the EventSwitch: receive + transmit with full event
/// delivery (enqueue/dequeue/transmit handler dispatches), in groups of
/// `burst` same-instant frames.
fn bench_switch_pkts_at(n: u64, burst: usize) -> f64 {
    let frame = Arc::new(
        PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            4000,
            8080,
            &[],
        )
        .pad_to(256)
        .build(),
    );
    let cfg = EventSwitchConfig {
        n_ports: 4,
        ..Default::default()
    };
    let mut sw = EventSwitch::new(BaselineAdapter(ForwardTo(1)), cfg);
    drive_switch(&mut sw, &frame, n, burst, 1)
}

/// The snapshot's forward number at the ambient `EDP_BURST` (default 1,
/// i.e. the classic loop).
fn bench_switch_pkts(n: u64) -> f64 {
    bench_switch_pkts_at(n, burst_from_env())
}

/// pkts/s through the EventSwitch running a routed program: a
/// [`TableRouter`] with 1k LPM routes installed. The first packet of the
/// flow runs the LPM lookup; every later packet replays the memoized
/// decision from the per-flow cache — the shape the cache exists for.
fn bench_switch_routed_at(n: u64, burst: usize) -> f64 {
    let frame = Arc::new(
        PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 1, 2, 3),
            4000,
            8080,
            &[],
        )
        .pad_to(256)
        .build(),
    );
    let cfg = EventSwitchConfig {
        n_ports: 4,
        ..Default::default()
    };
    let mut sw = EventSwitch::new(BaselineAdapter(edp_pisa::TableRouter::new()), cfg);
    for i in 0..1024u32 {
        let dst = Ipv4Addr::new(10, ((i >> 8) & 0xff) as u8, (i & 0xff) as u8, 0);
        sw.control_plane(
            SimTime::ZERO,
            edp_pisa::TableRouter::OP_INSERT_ROUTE,
            [u64::from(u32::from(dst)), 24, 2, 0],
        );
    }
    drive_switch(&mut sw, &frame, n, burst, 2)
}

/// The snapshot's routed number at the ambient `EDP_BURST`.
fn bench_switch_routed(n: u64) -> f64 {
    bench_switch_routed_at(n, burst_from_env())
}

/// pkts/s for a 3-way flood fan-out (the multicast copy path).
fn bench_switch_flood(n: u64) -> f64 {
    use edp_core::EventActions;
    use edp_packet::ParsedPacket;
    use edp_pisa::{Destination, StdMeta};

    struct Flooder;
    impl edp_core::EventProgram for Flooder {
        fn on_ingress(
            &mut self,
            _p: &mut Packet,
            _h: &ParsedPacket,
            m: &mut StdMeta,
            _n: SimTime,
            _a: &mut EventActions,
        ) {
            m.dest = Destination::Flood;
        }
    }
    let frame = PacketBuilder::udp(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        4000,
        8080,
        &[],
    )
    .pad_to(1024)
    .build();
    let cfg = EventSwitchConfig {
        n_ports: 4,
        ..Default::default()
    };
    let mut sw = EventSwitch::new(Flooder, cfg);
    let t0 = Instant::now();
    let mut t = 0u64;
    for _ in 0..n {
        t += 100;
        sw.receive(SimTime::from_nanos(t), 0, Packet::anonymous(frame.clone()));
        for port in [1u8, 2, 3] {
            std::hint::black_box(sw.transmit(SimTime::from_nanos(t + 50), port));
        }
    }
    rate(n, t0.elapsed())
}

/// pkts/s end-to-end through the sharded engine on the canonical
/// dumbbell (h0 — switch — h1): the whole-stack number for the parallel
/// execution path. Shard count comes from `EDP_SHARDS` (min 1), so the
/// committed baseline — measured at 1 shard — gates the engine's fixed
/// overhead (windows, barriers, mailboxes) over the classic loop.
fn bench_sharded_dumbbell(n: u64) -> f64 {
    let shards = edp_bench::top::shards_from_env().max(1);
    run_dumbbell(n, shards, burst_from_env()).0
}

/// Runs the canonical dumbbell through the sharded engine and returns
/// `(pkts/s, negotiated windows)`. The window count is a pure function
/// of `(n, shards, subwindows)` — no wall-clock input — so it doubles
/// as a deterministic gate metric.
fn run_dumbbell(n: u64, shards: usize, subwindows: usize) -> (f64, u64) {
    use edp_netsim::traffic::start_cbr;
    use edp_netsim::{run_sharded_opts, Host, HostApp, LinkSpec, Network, NodeRef};
    use edp_pisa::QueueConfig;

    let interval = SimDuration::from_nanos(500);
    let deadline = SimTime::from_nanos(500 * n + 1_000_000);
    let t0 = Instant::now();
    let (delivered, stats) = run_sharded_opts(
        shards,
        subwindows,
        edp_evsim::HorizonMode::Classic,
        deadline,
        |_shard| {
            let mut net = Network::new(1);
            let sw = net.add_switch(Box::new(edp_pisa::BaselineSwitch::new(
                ForwardTo(1),
                2,
                QueueConfig::default(),
            )));
            let h0 = net.add_host(Host::new(Ipv4Addr::new(10, 0, 0, 1), HostApp::Sink));
            let h1 = net.add_host(Host::new(Ipv4Addr::new(10, 0, 0, 2), HostApp::Sink));
            let spec = LinkSpec::ten_gig(SimDuration::from_micros(1));
            net.connect((NodeRef::Host(h0), 0), (NodeRef::Switch(sw), 0), spec);
            net.connect((NodeRef::Switch(sw), 1), (NodeRef::Host(h1), 0), spec);
            let mut sim: Sim<Network> = Sim::new();
            start_cbr(&mut sim, h0, SimTime::ZERO, interval, n, move |i| {
                PacketBuilder::udp(
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 0, 2),
                    4000,
                    8080,
                    &[],
                )
                .ident(i as u16)
                .pad_to(256)
                .build()
            });
            (net, sim)
        },
        |_shard, net, _sim| net.hosts[1].stats.rx_pkts,
    );
    let total: u64 = delivered.iter().sum();
    assert_eq!(total, n, "dumbbell must deliver every frame");
    (rate(n, t0.elapsed()), stats.windows)
}

/// Negotiated safe-horizon windows for a *fixed* line workload
/// (10k packets, 4 switches, 2 shards, 32 sub-windows): a deterministic
/// count — identical in smoke and full runs, on any machine — gated
/// lower-is-better so the burst engine's window collapse can never
/// silently regress.
///
/// The dumbbell is useless for this metric: with one switch the
/// partitioner finds no cross-shard link, the lookahead is unbounded and
/// the whole run is a single window. The 4-switch line's 2 µs trunks
/// give the shards a real lookahead to negotiate over.
fn bench_shard_windows() -> f64 {
    run_line(10_000, 2, 32, 4).1.windows as f64
}

/// Rendezvous fired for a *fixed* 8-switch 2-shard 32-sub-window line
/// workload — the leg the PR-10 exchange-elision work attacks. Like
/// `shard_windows` it is a pure function of the workload (elision
/// decisions fold through the negotiated bound, never a wall clock), so
/// it gates lower-is-better: a change that reintroduces per-sub-step
/// rendezvous on traffic-free spans fails CI instead of silently giving
/// the barrier latency back.
fn bench_shard_barriers() -> f64 {
    run_line(10_000, 2, 32, 8).1.barriers as f64
}

/// Runs an `switches`-switch line (`h0 — sw0 — … — h1`, 2 µs trunks)
/// through the sharded engine and returns `(pkts/s, ShardStats)`. The
/// window and barrier counts are pure functions of
/// `(n, shards, subwindows, switches)` — no wall-clock input.
fn run_line(
    n: u64,
    shards: usize,
    subwindows: usize,
    switches: usize,
) -> (f64, edp_netsim::ShardStats) {
    use edp_netsim::traffic::start_cbr;
    use edp_netsim::{run_sharded_opts, Host, HostApp, LinkSpec, Network, NodeRef};
    use edp_pisa::QueueConfig;

    let interval = SimDuration::from_nanos(500);
    let deadline = SimTime::from_nanos(500 * n + 1_000_000);
    let t0 = Instant::now();
    let (delivered, stats) = run_sharded_opts(
        shards,
        subwindows,
        edp_evsim::HorizonMode::Classic,
        deadline,
        |_shard| {
            let mut net = Network::new(7);
            let switches: Vec<usize> = (0..switches)
                .map(|_| {
                    net.add_switch(Box::new(edp_pisa::BaselineSwitch::new(
                        ForwardTo(1),
                        2,
                        QueueConfig::default(),
                    )))
                })
                .collect();
            let h0 = net.add_host(Host::new(Ipv4Addr::new(10, 0, 0, 1), HostApp::Sink));
            let h1 = net.add_host(Host::new(Ipv4Addr::new(10, 0, 0, 2), HostApp::Sink));
            let edge = LinkSpec::ten_gig(SimDuration::from_micros(1));
            let trunk = LinkSpec::ten_gig(SimDuration::from_micros(2));
            net.connect(
                (NodeRef::Host(h0), 0),
                (NodeRef::Switch(switches[0]), 0),
                edge,
            );
            for w in switches.windows(2) {
                net.connect(
                    (NodeRef::Switch(w[0]), 1),
                    (NodeRef::Switch(w[1]), 0),
                    trunk,
                );
            }
            net.connect(
                (
                    NodeRef::Switch(*switches.last().expect("at least one switch")),
                    1,
                ),
                (NodeRef::Host(h1), 0),
                edge,
            );
            let mut sim: Sim<Network> = Sim::new();
            start_cbr(&mut sim, h0, SimTime::ZERO, interval, n, move |i| {
                PacketBuilder::udp(
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 0, 2),
                    4000,
                    8080,
                    &[],
                )
                .ident(i as u16)
                .pad_to(256)
                .build()
            });
            (net, sim)
        },
        |_shard, net, _sim| net.hosts[1].stats.rx_pkts,
    );
    let total: u64 = delivered.iter().sum();
    assert_eq!(total, n, "line must deliver every frame");
    (rate(n, t0.elapsed()), stats)
}

/// pkts/s for the capture-ingestion path: decode a generated classic
/// pcap (500 ns gaps) and replay it through the canonical dumbbell on
/// sim time until every frame reaches the sink. The capture is built in
/// memory before the clock starts, so the number covers codec decode +
/// replay injection + the network path, not frame assembly.
fn bench_pcap_replay(n: u64) -> f64 {
    use edp_netsim::{start_replay, Host, HostApp, LinkSpec, Network, NodeRef};
    use edp_packet::{PcapFile, PcapPacket};
    use edp_pisa::QueueConfig;

    let mut file = PcapFile::default();
    for i in 0..n {
        let frame = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            4000,
            8080,
            &[],
        )
        .ident(i as u16)
        .pad_to(256)
        .build();
        file.packets.push(PcapPacket::full(i * 500, frame));
    }
    let bytes = file.to_pcap_bytes();
    let deadline = SimTime::from_nanos(500 * n + 1_000_000);

    let t0 = Instant::now();
    let parsed = PcapFile::parse(&bytes).expect("generated capture parses");
    let mut net = Network::new(1);
    let sw = net.add_switch(Box::new(edp_pisa::BaselineSwitch::new(
        ForwardTo(1),
        2,
        QueueConfig::default(),
    )));
    let h0 = net.add_host(Host::new(Ipv4Addr::new(10, 0, 0, 1), HostApp::Sink));
    let h1 = net.add_host(Host::new(Ipv4Addr::new(10, 0, 0, 2), HostApp::Sink));
    let spec = LinkSpec::ten_gig(SimDuration::from_micros(1));
    net.connect((NodeRef::Host(h0), 0), (NodeRef::Switch(sw), 0), spec);
    net.connect((NodeRef::Switch(sw), 1), (NodeRef::Host(h1), 0), spec);
    let mut sim: Sim<edp_netsim::Network> = Sim::new();
    start_replay(
        &mut sim,
        h0,
        Arc::new(parsed.packets),
        SimTime::ZERO,
        1.0,
        deadline,
    );
    sim.run_until(&mut net, deadline);
    assert_eq!(
        net.hosts[h1].stats.rx_pkts, n,
        "replay must deliver every frame"
    );
    rate(n, t0.elapsed())
}

/// Metrics gated by the CI regression check: the event-queue and LPM
/// rates the PR-1 fast-path work optimized, the sharded-engine dumbbell
/// throughput, the burst-mode forward rate (explicit burst of 32, so it
/// measures the fast path regardless of the ambient `EDP_BURST`), and
/// the deterministic window count. The raw per-packet path metrics are
/// too machine-noise-prone at smoke scale to gate on.
const GATED_METRICS: [&str; 9] = [
    "events_schedule_fire_per_sec",
    "events_cancel_heavy_per_sec",
    "events_periodic_per_sec",
    "lookups_lpm_1k_per_sec",
    "sharded_dumbbell_pkts_per_sec",
    "switch_forward_burst_pkts_per_sec",
    "pcap_replay_pkts_per_sec",
    "shard_windows",
    "shard_barriers",
];

/// Gated metrics where *lower* is better — deterministic counts, not
/// throughput rates. For these the regression fraction is how far the
/// measurement rose above the baseline.
const LOWER_IS_BETTER: [&str; 2] = ["shard_windows", "shard_barriers"];

/// Scale for re-measuring a tripped gated metric: windows of tens to
/// hundreds of milliseconds, wide enough that CPU-frequency and
/// scheduler noise averages out instead of deciding the verdict.
const RETRY: Scale = Scale {
    events: 2_000_000,
    cancels: 1_000_000,
    periodic_ticks: 2_000_000,
    lookups: 20_000_000,
    pkts: 400_000,
};

/// Re-runs one gated metric's bench at scale `s`. `None` for metrics
/// that are not gated (nothing to re-measure).
fn bench_gated(name: &str, s: &Scale) -> Option<f64> {
    Some(match name {
        "events_schedule_fire_per_sec" => bench_events_schedule_fire(s.events),
        "events_cancel_heavy_per_sec" => bench_events_cancel_heavy(s.cancels),
        "events_periodic_per_sec" => bench_events_periodic(s.periodic_ticks),
        "lookups_lpm_1k_per_sec" => bench_lpm_lookup_1k(s.lookups / 10),
        "sharded_dumbbell_pkts_per_sec" => bench_sharded_dumbbell(s.pkts),
        "switch_forward_burst_pkts_per_sec" => bench_switch_pkts_at(s.pkts, 32),
        "pcap_replay_pkts_per_sec" => bench_pcap_replay(s.pkts),
        "shard_windows" => bench_shard_windows(),
        "shard_barriers" => bench_shard_barriers(),
        _ => return None,
    })
}

/// Pulls `"name": <number>` out of a flat snapshot JSON. Hand-rolled on
/// purpose: the workspace has no JSON parser dependency, and the
/// snapshot format is fixed (one `"key": value` pair per line).
fn extract_metric(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares measured gated metrics against a baseline snapshot; returns
/// the regressions as `(name, measured, baseline, fraction)`.
fn check_regressions(
    metrics: &[(&str, f64)],
    baseline_json: &str,
    max_regress: f64,
) -> Vec<(String, f64, f64, f64)> {
    let mut bad = Vec::new();
    for name in GATED_METRICS {
        let Some(base) = extract_metric(baseline_json, name) else {
            eprintln!("warning: baseline has no metric `{name}`, skipping");
            continue;
        };
        let Some(&(_, got)) = metrics.iter().find(|(n, _)| *n == name) else {
            continue;
        };
        let frac = if LOWER_IS_BETTER.contains(&name) {
            got / base - 1.0
        } else {
            1.0 - got / base
        };
        if frac > max_regress {
            bad.push((name.to_string(), got, base, frac));
        }
    }
    bad
}

fn next_snapshot_path() -> String {
    for n in 1..10_000u32 {
        let p = format!("BENCH_{n}.json");
        if !std::path::Path::new(&p).exists() {
            return p;
        }
    }
    "BENCH_overflow.json".to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut max_regress = 0.25;
    let mut it = args.iter();
    let usage = "usage: bench_snapshot [--smoke] [--out <path>] \
                 [--baseline <path>] [--max-regress <frac>]";
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(p.clone()),
                None => {
                    eprintln!("error: --baseline requires a path");
                    std::process::exit(2);
                }
            },
            "--max-regress" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v < 1.0 => max_regress = v,
                _ => {
                    eprintln!("error: --max-regress requires a fraction in (0, 1)");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }
    let s = if smoke { SMOKE } else { FULL };

    let mut metrics: Vec<(&str, f64)> = Vec::new();
    println!(
        "bench_snapshot ({} run)",
        if smoke { "smoke" } else { "full" }
    );

    let mut record = |name: &'static str, v: f64| {
        println!("  {name:<32} {v:>16.0} ops/s");
        metrics.push((name, v));
    };

    record(
        "events_schedule_fire_per_sec",
        bench_events_schedule_fire(s.events),
    );
    record(
        "events_cancel_heavy_per_sec",
        bench_events_cancel_heavy(s.cancels),
    );
    record(
        "events_periodic_per_sec",
        bench_events_periodic(s.periodic_ticks),
    );
    record("lookups_exact_10k_per_sec", bench_exact_lookup(s.lookups));
    record(
        "lookups_lpm_1k_per_sec",
        bench_lpm_lookup_1k(s.lookups / 10),
    );
    record(
        "lookups_ternary_128_per_sec",
        bench_ternary_lookup(s.lookups),
    );
    record("switch_forward_pkts_per_sec", bench_switch_pkts(s.pkts));
    record("switch_routed_1k_pkts_per_sec", bench_switch_routed(s.pkts));
    record("switch_flood_pkts_per_sec", bench_switch_flood(s.pkts / 4));
    record(
        "sharded_dumbbell_pkts_per_sec",
        bench_sharded_dumbbell(s.pkts),
    );
    record(
        "switch_forward_burst_pkts_per_sec",
        bench_switch_pkts_at(s.pkts, 32),
    );
    record(
        "switch_routed_burst_pkts_per_sec",
        bench_switch_routed_at(s.pkts, 32),
    );
    record("pcap_replay_pkts_per_sec", bench_pcap_replay(s.pkts));
    record("shard_windows", bench_shard_windows());
    record("shard_barriers", bench_shard_barriers());

    let path = out.unwrap_or_else(next_snapshot_path);
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"metrics\": {\n");
    for (i, (name, v)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        json.push_str(&format!("    \"{name}\": {v:.1}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&path, json).expect("write snapshot");
    println!("wrote {path}");

    if let Some(base_path) = baseline {
        // Exit 3 (distinct from 1 = regression, 2 = usage) so CI logs show
        // at a glance whether the gate *failed* or never got to run.
        let base_json = match std::fs::read_to_string(&base_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read baseline snapshot `{base_path}`: {e}");
                eprintln!("hint: point --baseline at a committed BENCH_<n>.json");
                std::process::exit(3);
            }
        };
        if GATED_METRICS
            .iter()
            .all(|m| extract_metric(&base_json, m).is_none())
        {
            eprintln!(
                "error: baseline `{base_path}` is malformed: no gated metric \
                 ({}) found in it",
                GATED_METRICS.join(", ")
            );
            std::process::exit(3);
        }
        let mut bad = check_regressions(&metrics, &base_json, max_regress);
        if !bad.is_empty() {
            // A smoke sample is only milliseconds wide, so a loaded
            // machine can fake a >25% drop. Re-measure every tripped
            // metric with much wider windows ([`RETRY`] scale), best of
            // three, before believing the number — a real regression
            // reproduces, scheduler noise does not.
            for (name, got, _, _) in &bad {
                let lower = LOWER_IS_BETTER.contains(&name.as_str());
                let mut best: f64 = *got;
                for _ in 0..3 {
                    if let Some(v) = bench_gated(name, &RETRY) {
                        best = if lower { best.min(v) } else { best.max(v) };
                    }
                }
                println!("  re-measured {name}: best {best:.0} ops/s");
                if let Some(m) = metrics.iter_mut().find(|(n, _)| *n == name.as_str()) {
                    m.1 = best;
                }
            }
            bad = check_regressions(&metrics, &base_json, max_regress);
        }
        if bad.is_empty() {
            println!(
                "regression gate: all {} gated metrics within {:.0}% of {base_path}",
                GATED_METRICS.len(),
                max_regress * 100.0
            );
        } else {
            for (name, got, base, frac) in &bad {
                eprintln!(
                    "REGRESSION {name}: {got:.0} ops/s vs baseline {base:.0} \
                     ({:.1}% slower, limit {:.0}%)",
                    frac * 100.0,
                    max_regress * 100.0
                );
            }
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = r#"{
  "smoke": true,
  "metrics": {
    "events_schedule_fire_per_sec": 6000000.0,
    "events_cancel_heavy_per_sec": 6000000.0,
    "events_periodic_per_sec": 50000000.0,
    "lookups_lpm_1k_per_sec": 36000000.0,
    "sharded_dumbbell_pkts_per_sec": 500000.0,
    "switch_forward_burst_pkts_per_sec": 8000000.0,
    "pcap_replay_pkts_per_sec": 400000.0,
    "shard_windows": 1000.0,
    "shard_barriers": 5000.0
  }
}"#;

    #[test]
    fn extracts_numbers_from_flat_json() {
        assert_eq!(
            extract_metric(SNAPSHOT, "events_periodic_per_sec"),
            Some(50_000_000.0)
        );
        assert_eq!(extract_metric(SNAPSHOT, "nope"), None);
    }

    #[test]
    fn flags_only_metrics_past_the_threshold() {
        // 30% down on one gated metric, others at parity.
        let measured: Vec<(&str, f64)> = vec![
            ("events_schedule_fire_per_sec", 6_000_000.0),
            ("events_cancel_heavy_per_sec", 6_000_000.0),
            ("events_periodic_per_sec", 35_000_000.0),
            ("lookups_lpm_1k_per_sec", 36_000_000.0),
        ];
        let bad = check_regressions(&measured, SNAPSHOT, 0.25);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "events_periodic_per_sec");
        assert!((bad[0].3 - 0.30).abs() < 1e-9);
        // A 25%-exactly drop is within the (strict >) limit.
        let measured: Vec<(&str, f64)> = vec![("lookups_lpm_1k_per_sec", 27_000_000.0)];
        assert!(check_regressions(&measured, SNAPSHOT, 0.25).is_empty());
        // Improvements never trip the gate.
        let measured: Vec<(&str, f64)> = vec![("lookups_lpm_1k_per_sec", 90_000_000.0)];
        assert!(check_regressions(&measured, SNAPSHOT, 0.25).is_empty());
    }

    #[test]
    fn window_count_gates_in_the_lower_is_better_direction() {
        // shard_windows going *up* 50% is a regression...
        let measured: Vec<(&str, f64)> = vec![("shard_windows", 1_500.0)];
        let bad = check_regressions(&measured, SNAPSHOT, 0.25);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "shard_windows");
        assert!((bad[0].3 - 0.50).abs() < 1e-9);
        // ...while dropping (better batching) never trips the gate.
        let measured: Vec<(&str, f64)> = vec![("shard_windows", 100.0)];
        assert!(check_regressions(&measured, SNAPSHOT, 0.25).is_empty());
    }

    #[test]
    fn every_gated_metric_can_be_remeasured() {
        let tiny = Scale {
            events: 64,
            cancels: 64,
            periodic_ticks: 64,
            lookups: 640,
            pkts: 16,
        };
        for name in GATED_METRICS {
            let v = bench_gated(name, &tiny);
            assert!(v.is_some_and(|v| v > 0.0), "{name} not re-measurable");
        }
        assert_eq!(bench_gated("switch_flood_pkts_per_sec", &tiny), None);
    }
}
