//! Figure 3 / §4 — aggregation registers: staleness vs. pipeline headroom.
//!
//! Sweeps the pipeline speedup factor (pipeline slots per line-rate
//! packet) and the idle-cycle fold budget, reporting the staleness of the
//! main register. Reproduction targets:
//!
//! * staleness grows without bound at exactly line rate (speedup 1.0);
//! * it is bounded for any speedup > 1 ("staleness is bounded if the
//!   pipeline runs slightly faster than the line rate");
//! * more idle-cycle memory bandwidth tightens the bound (the paper's
//!   "packet processing bandwidth versus accuracy" trade-off).

use edp_bench::{f2, footnote, table_header};
use edp_core::{run_staleness_experiment, AggregConfig, StalenessReport};
use edp_evsim::{default_threads, sweep};

fn main() {
    const ENTRIES: usize = 64;
    const PACKETS: u64 = 200_000;

    table_header(
        "Figure 3: staleness vs pipeline speedup (folds/idle-cycle = 1)",
        &[
            ("speedup", 8),
            ("max stale (B)", 14),
            ("mean stale (B)", 15),
            ("stale reads", 12),
            ("end backlog", 12),
        ],
    );
    // The sweep points are independent simulations: fan them out over a
    // thread pool (results come back in input order, bit-identical to a
    // sequential run).
    let speedups = vec![1.0, 1.02, 1.05, 1.1, 1.25, 1.5, 2.0];
    let reports: Vec<StalenessReport> = sweep(speedups.clone(), default_threads(), |speedup| {
        let cfg = AggregConfig {
            entries: ENTRIES,
            folds_per_idle_cycle: 1,
        };
        run_staleness_experiment(cfg, speedup, PACKETS, |p| (p % ENTRIES as u64) as usize)
    });
    for (speedup, r) in speedups.iter().zip(&reports) {
        println!(
            "{:>8} {:>14} {:>15} {:>12} {:>12}",
            f2(*speedup),
            r.max_staleness,
            f2(r.mean_staleness),
            f2(r.stale_read_frac),
            r.final_pending,
        );
    }

    table_header(
        "ablation: idle-cycle fold budget at speedup 1.1",
        &[
            ("folds/idle", 11),
            ("max stale (B)", 14),
            ("mean stale (B)", 15),
        ],
    );
    for &folds in &[1usize, 2, 4, 8, 16] {
        let cfg = AggregConfig {
            entries: ENTRIES,
            folds_per_idle_cycle: folds,
        };
        let r = run_staleness_experiment(cfg, 1.1, PACKETS, |p| (p % ENTRIES as u64) as usize);
        println!(
            "{:>11} {:>14} {:>15}",
            folds,
            r.max_staleness,
            f2(r.mean_staleness)
        );
    }

    table_header(
        "skewed workload (all ops hit one entry) at folds = 1",
        &[
            ("speedup", 8),
            ("max stale (B)", 14),
            ("mean stale (B)", 15),
        ],
    );
    for &speedup in &[1.0, 1.1, 1.5] {
        let cfg = AggregConfig {
            entries: ENTRIES,
            folds_per_idle_cycle: 1,
        };
        let r = run_staleness_experiment(cfg, speedup, PACKETS, |_| 0);
        println!(
            "{:>8} {:>14} {:>15}",
            f2(speedup),
            r.max_staleness,
            f2(r.mean_staleness)
        );
    }

    footnote(
        "staleness = unapplied aggregated bytes (enq_agg + deq_agg), the \
         quantity that bounds both read error and required aggregation \
         register width. Unbounded at speedup 1.0, bounded for any \
         speedup > 1 — the paper's §4 claim.",
    );
}
