//! §6 experiment — emulating events on today's PISA devices.
//!
//! "Tofino contains a configurable packet generator which the control
//! plane can configure to generate periodic packets and hence emulate
//! timer events. Tofino also supports packet recirculation, which can
//! emulate dequeue events that trigger the ingress pipeline."
//!
//! Emulation is possible — but every emulated event consumes a full
//! pipeline slot (a recirculated or generated packet competes with
//! ingress traffic), while the event-driven architecture carries events
//! in metadata alongside packets (piggyback; a carrier frame only when
//! the pipeline is idle). This bench makes that cost concrete: effective
//! forwarding capacity vs. event rate, slot-accounted, for both designs.

use edp_bench::{f2, footnote, table_header};
use edp_core::event::UserEvent;
use edp_core::{Event, EventMerger, MergerConfig};
use edp_evsim::SimRng;

/// Slot-level pipeline model: `cycles` slots; data packets arrive at
/// `load` (fraction of slots); events arrive at `events_per_100` per 100
/// slots. Returns (packets forwarded, events delivered, packets deferred
/// because an emulated event stole the slot).
fn run_emulation(load: f64, events_per_100: u32, cycles: u64, seed: u64) -> (u64, u64, u64) {
    let mut rng = SimRng::seed_from_u64(seed);
    // Recirculation queue: pending emulated-event packets. They take
    // strict priority over fresh ingress (that is how recirculation
    // ports behave), so each one defers a data packet when both contend.
    let mut pending_events: u64 = 0;
    let mut ev_budget = 0u32;
    let (mut fwd, mut delivered, mut deferred) = (0u64, 0u64, 0u64);
    // A small ingress backlog so deferred packets are not lost outright.
    let mut backlog: u64 = 0;
    for _ in 0..cycles {
        ev_budget += events_per_100;
        while ev_budget >= 100 {
            ev_budget -= 100;
            pending_events += 1;
        }
        if rng.chance(load) {
            backlog += 1;
        }
        if pending_events > 0 {
            // The slot goes to the recirculated event packet.
            pending_events -= 1;
            delivered += 1;
            if backlog > 0 {
                deferred += 1;
            }
        } else if backlog > 0 {
            backlog -= 1;
            fwd += 1;
        }
    }
    (fwd, delivered, deferred)
}

/// The event-driven equivalent: events ride the merger (metadata), never
/// stealing slots from packets; carrier frames only use idle slots.
fn run_native(load: f64, events_per_100: u32, cycles: u64, seed: u64) -> (u64, u64, u64) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut m = EventMerger::new(MergerConfig::default());
    let mut ev_budget = 0u32;
    let (mut fwd, mut delivered) = (0u64, 0u64);
    for c in 0..cycles {
        if rng.chance(load) {
            fwd += 1;
            delivered += m.packet_slot(c).len() as u64;
        } else {
            delivered += m.idle_slot(c).map(|b| b.len() as u64).unwrap_or(0);
        }
        ev_budget += events_per_100;
        while ev_budget >= 100 {
            ev_budget -= 100;
            m.push_event(
                c,
                Event::User(UserEvent {
                    code: 0,
                    args: [0; 4],
                }),
            );
        }
    }
    (fwd, delivered, 0)
}

fn main() {
    const CYCLES: u64 = 1_000_000;
    const LOAD: f64 = 0.95;
    println!("pipeline slot model: 95% offered packet load, 1M slots");
    table_header(
        "emulated events (recirculation) vs native (metadata piggyback)",
        &[
            ("events/100cyc", 14),
            ("emul pkts", 10),
            ("emul deferred", 14),
            ("native pkts", 12),
            ("pkt capacity cost", 18),
        ],
    );
    for &rate in &[0u32, 1, 5, 10, 25, 50, 100] {
        let (e_fwd, _e_del, e_def) = run_emulation(LOAD, rate, CYCLES, 3);
        let (n_fwd, _n_del, _) = run_native(LOAD, rate, CYCLES, 3);
        println!(
            "{:>14} {:>10} {:>14} {:>12} {:>18}",
            rate,
            e_fwd,
            e_def,
            n_fwd,
            format!(
                "{}%",
                f2(100.0 * (n_fwd as f64 - e_fwd as f64) / n_fwd as f64)
            ),
        );
    }
    footnote(
        "every recirculated pseudo-event packet steals a full pipeline \
         slot from ingress traffic, so emulation taxes forwarding \
         capacity linearly with the event rate (≈1% per event per 100 \
         cycles); the event-driven design pays nothing at high load — \
         the paper's argument for why native support needs (cheap, \
         Table 3) hardware changes rather than emulation.",
    );
}
