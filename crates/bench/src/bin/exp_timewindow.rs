//! §5 experiment — time-windowed flow-rate measurement.
//!
//! Timer events advance per-flow shift registers; this sweep compares the
//! measured rate against ground truth for CBR flows across three decades
//! of rate, plus a bursty flow. Reproduction target: steady-state error
//! within the window quantization (one bucket) for CBR, and the correct
//! average for bursty traffic.

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::rate_monitor::{RateMonitor, TIMER_SAMPLE, TIMER_SHIFT};
use edp_bench::{f2, footnote, table_header};
use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::{start_cbr, start_on_off};
use edp_netsim::Network;
use edp_packet::{FlowKey, IpProto, PacketBuilder};

const N_FLOWS: usize = 16;
const BUCKET: SimDuration = SimDuration::from_millis(1);

fn build() -> (Network, Vec<usize>) {
    let cfg = EventSwitchConfig {
        n_ports: 3,
        timers: vec![
            TimerSpec {
                id: TIMER_SHIFT,
                period: BUCKET,
                start: BUCKET,
            },
            TimerSpec {
                id: TIMER_SAMPLE,
                period: SimDuration::from_millis(5),
                start: SimDuration::from_millis(10),
            },
        ],
        ..Default::default()
    };
    let sw = EventSwitch::new(RateMonitor::new(N_FLOWS, 8, BUCKET.as_nanos(), 2), cfg);
    let (net, senders, _, _) = dumbbell(Box::new(sw), 2, 10_000_000_000, 23);
    (net, senders)
}

fn main() {
    table_header(
        "CBR flow-rate measurement via timer events + shift register",
        &[
            ("true Mb/s", 10),
            ("pkt every", 10),
            ("measured Mb/s", 14),
            ("error %", 8),
        ],
    );
    for &(interval_us, pkt_len) in &[(800u64, 1000usize), (200, 1000), (50, 1000), (10, 1250)] {
        let (mut net, senders) = build();
        let mut sim: Sim<Network> = Sim::new();
        let src = addr(1);
        start_cbr(
            &mut sim,
            senders[0],
            SimTime::ZERO,
            SimDuration::from_micros(interval_us),
            u64::MAX,
            move |i| {
                PacketBuilder::udp(src, sink_addr(), 10, 20, &[])
                    .ident(i as u16)
                    .pad_to(pkt_len)
                    .build()
            },
        );
        run_until(&mut net, &mut sim, SimTime::from_millis(100));
        let truth = pkt_len as f64 * 8.0 * 1e6 / interval_us as f64;
        let slot = FlowKey::new(addr(1), sink_addr(), IpProto::Udp, 10, 20).index(N_FLOWS);
        let prog = &net.switch_as::<EventSwitch<RateMonitor>>(0).program;
        let steady: Vec<f64> = prog.samples[slot]
            .points()
            .iter()
            .skip(2)
            .map(|&(_, v)| v)
            .collect();
        let measured = steady.iter().sum::<f64>() / steady.len() as f64;
        println!(
            "{:>10} {:>10} {:>14} {:>8}",
            f2(truth / 1e6),
            format!("{interval_us} us"),
            f2(measured / 1e6),
            f2(100.0 * (measured - truth).abs() / truth),
        );
    }

    table_header(
        "bursty flow (20 pkts per burst, 1000 B): average rate",
        &[
            ("burst period", 13),
            ("true Mb/s", 10),
            ("measured Mb/s", 14),
            ("error %", 8),
        ],
    );
    for &period_ms in &[3u64, 7, 13] {
        let (mut net, senders) = build();
        let mut sim: Sim<Network> = Sim::new();
        let src = addr(2);
        start_on_off(
            &mut sim,
            senders[1],
            SimTime::ZERO,
            SimDuration::from_millis(period_ms),
            20,
            SimDuration::ZERO,
            SimTime::from_millis(100),
            move |i| {
                PacketBuilder::udp(src, sink_addr(), 30, 40, &[])
                    .ident(i as u16)
                    .pad_to(1000)
                    .build()
            },
        );
        run_until(&mut net, &mut sim, SimTime::from_millis(100));
        let truth = 20.0 * 1000.0 * 8.0 * 1000.0 / period_ms as f64;
        let slot = FlowKey::new(addr(2), sink_addr(), IpProto::Udp, 30, 40).index(N_FLOWS);
        let prog = &net.switch_as::<EventSwitch<RateMonitor>>(0).program;
        let measured = prog.samples[slot].time_weighted_mean();
        println!(
            "{:>13} {:>10} {:>14} {:>8}",
            format!("{period_ms} ms"),
            f2(truth / 1e6),
            f2(measured / 1e6),
            f2(100.0 * (measured - truth).abs() / truth),
        );
    }
    footnote(
        "an 8 x 1 ms shift register advanced by timer events tracks CBR \
         rates across three decades within a few percent; bursty averages \
         land within the window-quantization error. State: 8 words/flow.",
    );
}
