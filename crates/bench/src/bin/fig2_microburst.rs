//! Figure 2 — the logical event-driven architecture, exercised.
//!
//! Figure 2 shows ingress/enqueue/dequeue events each triggering a
//! separate *logical pipeline* sharing state. This bench runs the
//! microburst program and reports, per logical pipeline, how many times
//! it ran and how it touched the shared `flowBufSize` register — i.e.
//! the port usage a direct multiported (low-line-rate) realization needs,
//! which §4 then replaces with aggregation registers for fast devices.

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::microburst::MicroburstEvent;
use edp_bench::{footnote, table_header};
use edp_core::{Accessor, EventKind, EventSwitch, EventSwitchConfig};
use edp_evsim::{Sim, SimDuration, SimTime};
use edp_netsim::traffic::{start_burst, start_cbr};
use edp_netsim::Network;
use edp_packet::PacketBuilder;
use edp_pisa::QueueConfig;

fn main() {
    let cfg = EventSwitchConfig {
        n_ports: 4,
        queue: QueueConfig {
            capacity_bytes: 300_000,
            ..QueueConfig::default()
        },
        ..Default::default()
    };
    let sw = EventSwitch::new(MicroburstEvent::new(256, 20_000, 3), cfg);
    let (mut net, senders, _, _) = dumbbell(Box::new(sw), 3, 1_000_000_000, 1);
    let mut sim: Sim<Network> = Sim::new();
    for (i, &h) in senders.iter().take(2).enumerate() {
        let src = addr(i as u8 + 1);
        start_cbr(
            &mut sim,
            h,
            SimTime::ZERO,
            SimDuration::from_micros(120),
            400,
            move |s| {
                PacketBuilder::udp(src, sink_addr(), 10 + i as u16, 20, &[])
                    .ident(s as u16)
                    .pad_to(1500)
                    .build()
            },
        );
    }
    let src = addr(3);
    start_burst(
        &mut sim,
        senders[2],
        SimTime::from_millis(3),
        100,
        SimDuration::ZERO,
        move |s| {
            PacketBuilder::udp(src, sink_addr(), 30, 40, &[])
                .ident(s as u16)
                .pad_to(1500)
                .build()
        },
    );
    run_until(&mut net, &mut sim, SimTime::from_millis(60));

    let sw = net.switch_as::<EventSwitch<MicroburstEvent>>(0);
    let counters = sw.event_counters();
    let prog = &sw.program;

    table_header(
        "Figure 2: logical pipelines of microburst.p4 (one run)",
        &[
            ("logical pipeline", 18),
            ("invocations", 12),
            ("shared-reg ops", 15),
        ],
    );
    let rows = [
        (
            "ingress packet",
            counters.get(EventKind::IngressPacket),
            prog.buf_size.accesses_by(Accessor::Packet),
        ),
        (
            "enqueue",
            counters.get(EventKind::BufferEnqueue),
            prog.buf_size.accesses_by(Accessor::Enqueue),
        ),
        (
            "dequeue",
            counters.get(EventKind::BufferDequeue),
            prog.buf_size.accesses_by(Accessor::Dequeue),
        ),
    ];
    for (name, inv, ops) in rows {
        println!("{name:>18} {inv:>12} {ops:>15}");
    }
    println!();
    println!(
        "shared_register ports required (multiported realization): {}",
        prog.buf_size.ports_required()
    );
    println!("register entries: {} x 1 word", prog.buf_size.size());
    println!("detections: {}", prog.detections.len());
    println!(
        "residual occupancy entries after drain: {}",
        prog.buf_size.nonzero_entries()
    );
    footnote(
        "every event class ran in its own logical pipeline against one \
         shared register, exactly the Figure 2 model; the port count is \
         what multi-ported memory must provide on low-rate devices, and \
         what Figure 3's aggregation registers eliminate on fast ones.",
    );
}
