//! §3 experiment — NetCache-style caching with timer-cleared statistics.
//!
//! Part 1: server load shed vs workload skew (Zipf exponent).
//! Part 2: the paper's specific claim — timer events clearing statistics
//! let the cache "more rapidly react to workload changes". The hot set
//! shifts mid-run; we compare phase-2 hit rates with and without resets.

use edp_apps::common::run_until;
use edp_apps::netcache::{NetCacheSwitch, TIMER_STATS};
use edp_bench::{f2, footnote, table_header};
use edp_core::{EventSwitch, EventSwitchConfig, TimerSpec};
use edp_evsim::{Sim, SimDuration, SimRng, SimTime, Zipf};
use edp_netsim::{Host, HostApp, LinkSpec, Network, NodeRef};
use edp_packet::{KvHeader, KvOp, PacketBuilder};
use std::net::Ipv4Addr;

fn client_addr() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, 1)
}
fn server_addr() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, 2)
}

fn build(reset_stats: bool, capacity: usize) -> (Network, usize, usize) {
    let mut net = Network::new(71);
    let cfg = EventSwitchConfig {
        n_ports: 2,
        timers: vec![TimerSpec {
            id: TIMER_STATS,
            period: SimDuration::from_millis(2),
            start: SimDuration::from_millis(2),
        }],
        ..Default::default()
    };
    let sw = net.add_switch(Box::new(EventSwitch::new(
        NetCacheSwitch::new(0, 1, capacity, 3, reset_stats),
        cfg,
    )));
    let client = net.add_host(Host::new(client_addr(), HostApp::Sink));
    let server = net.add_host(Host::new(
        server_addr(),
        HostApp::KvServer {
            store: (0..2000u64).map(|k| (k, k * 3)).collect(),
            served: 0,
        },
    ));
    let spec = LinkSpec::ten_gig(SimDuration::from_micros(2));
    net.connect((NodeRef::Host(client), 0), (NodeRef::Switch(sw), 0), spec);
    net.connect((NodeRef::Switch(sw), 1), (NodeRef::Host(server), 0), spec);
    (net, client, server)
}

fn gets(
    sim: &mut Sim<Network>,
    client: usize,
    start: SimTime,
    n: u64,
    s: f64,
    offset: u64,
    seed: u64,
) {
    let zipf = Zipf::new(200, s);
    let mut rng = SimRng::seed_from_u64(seed);
    edp_netsim::traffic::start_cbr(
        sim,
        client,
        start,
        SimDuration::from_micros(20),
        n,
        move |_| {
            let key = zipf.sample(&mut rng) as u64 + offset;
            PacketBuilder::kv(
                client_addr(),
                server_addr(),
                &KvHeader {
                    op: KvOp::Get,
                    key,
                    value: 0,
                },
            )
            .build()
        },
    );
}

fn server_load(net: &Network, server: usize) -> u64 {
    match &net.hosts[server].app {
        HostApp::KvServer { served, .. } => *served,
        _ => unreachable!(),
    }
}

fn main() {
    table_header(
        "server load shed vs workload skew (5000 GETs, 8-entry cache)",
        &[
            ("zipf s", 7),
            ("hit rate", 9),
            ("server GETs", 12),
            ("load shed %", 12),
        ],
    );
    for &s in &[0.0, 0.5, 0.9, 1.2] {
        let (mut net, client, server) = build(true, 8);
        let mut sim: Sim<Network> = Sim::new();
        gets(&mut sim, client, SimTime::ZERO, 5000, s, 0, 5);
        run_until(&mut net, &mut sim, SimTime::from_millis(150));
        let prog = &net.switch_as::<EventSwitch<NetCacheSwitch>>(0).program;
        println!(
            "{:>7} {:>9} {:>12} {:>12}",
            f2(s),
            f2(prog.hit_rate()),
            server_load(&net, server),
            f2(100.0 * prog.cache_hits as f64 / 5000.0),
        );
    }

    table_header(
        "adaptation to a hot-set shift (phase 2 hits; paper's timer-reset claim)",
        &[
            ("stats reset", 12),
            ("phase1 hits", 12),
            ("phase2 hits", 12),
            ("phase2 rate", 12),
        ],
    );
    for &reset in &[true, false] {
        let (mut net, client, _server) = build(reset, 8);
        let mut sim: Sim<Network> = Sim::new();
        gets(&mut sim, client, SimTime::ZERO, 3000, 0.9, 0, 7);
        gets(
            &mut sim,
            client,
            SimTime::from_millis(70),
            3000,
            0.9,
            1000,
            8,
        );
        run_until(&mut net, &mut sim, SimTime::from_millis(70));
        let p1 = net
            .switch_as::<EventSwitch<NetCacheSwitch>>(0)
            .program
            .cache_hits;
        run_until(&mut net, &mut sim, SimTime::from_millis(200));
        let prog = &net.switch_as::<EventSwitch<NetCacheSwitch>>(0).program;
        let p2 = prog.cache_hits - p1;
        println!(
            "{:>12} {:>12} {:>12} {:>12}",
            if reset { "timer (2ms)" } else { "never" },
            p1,
            p2,
            f2(p2 as f64 / 3000.0),
        );
    }
    footnote(
        "cached GETs are answered by switch-generated replies (the \
         Generated Packet event); hot-key detection is a CMS cleared by a \
         timer event. Clearing keeps popularity *recent*, so the cache \
         re-converges after the hot set shifts — the paper's NetCache \
         improvement, measured.",
    );
}
