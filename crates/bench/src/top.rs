//! The `edp_top` runner: drives any registered app on the canonical
//! dumbbell under a telemetry session and renders what it saw.
//!
//! One sweep *point* is one seed: enable a fresh telemetry session,
//! build the app from [`builtin_apps`], run a one-sender dumbbell with a
//! CBR load that oversubscribes the bottleneck (so queues, drops, and
//! overflow handlers actually fire), publish every component's counters
//! into the session registry, and disable. A point is a pure function of
//! `(app, seed, options)` — `sweep` may place it on any worker thread
//! and the outputs stay byte-identical regardless of
//! `EDP_SWEEP_THREADS`, which is exactly what the determinism test
//! checks.

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::registry::builtin_apps;
use edp_core::event::{
    ControlPlaneEvent, DequeueEvent, EnqueueEvent, LinkStatusEvent, OverflowEvent, TimerEvent,
    TransmitEvent, UnderflowEvent, UserEvent,
};
use edp_core::{EventActions, EventProgram, EventSwitch, EventSwitchConfig, TimerSpec};
use edp_evsim::{default_threads, sweep, HorizonMode, Sim, SimDuration, SimTime};
use edp_netsim::traffic::start_cbr;
use edp_netsim::{
    run_sharded_opts, start_endpoints, start_replay, EndpointConfig, EndpointFleet, HostApp,
    Network,
};
use edp_packet::{Packet, PacketBuilder, ParsedPacket, PcapPacket};
use edp_pisa::{Destination, StdMeta};
use edp_telemetry::{self as telemetry, prof, Registry, TelemetryConfig};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// The traffic a sweep point drives through the app's dumbbell.
#[derive(Debug, Clone, Default)]
pub enum TopWorkload {
    /// The canonical oversubscribing CBR stream (the historical default).
    #[default]
    Cbr,
    /// Replay a decoded capture from the sender host, preserving the
    /// file's inter-arrival gaps divided by `speedup`.
    Pcap {
        /// The parsed capture's frames (shared across seeds/shards
        /// zero-copy).
        packets: Arc<Vec<PcapPacket>>,
        /// Gap compression factor (1 = real capture pacing).
        speedup: f64,
    },
    /// An endpoint fleet on the sender host against an RPC server on the
    /// sink: `count` logical clients doing closed-loop request/response
    /// with Zipf keys/sizes and timeout retransmit.
    Endpoints {
        /// Logical endpoints multiplexed onto the sender host.
        count: u32,
    },
}

/// How `edp_top` drives an app.
#[derive(Debug, Clone)]
pub struct TopOptions {
    /// Seeds to run, one sweep point each.
    pub seeds: Vec<u64>,
    /// Simulated duration per point.
    pub duration: SimDuration,
    /// Worker threads for the sweep (`EDP_SWEEP_THREADS` default).
    pub threads: usize,
    /// Trace-ring capacity per point.
    pub trace_capacity: usize,
    /// Shard count for the parallel engine (`EDP_SHARDS` default).
    /// `0` runs the classic single-world path; `>= 1` runs every point
    /// through [`edp_netsim::run_sharded`], whose output is byte-identical
    /// for any shard count.
    pub shards: usize,
    /// Burst factor (`EDP_BURST` default): sub-windows executed per
    /// negotiated shard window. Pure execution-strategy knob — output is
    /// byte-identical for any value `>= 1`; only the window count drops.
    pub burst: usize,
    /// Horizon mode (`EDP_HORIZON` default): classic conservative
    /// windows, or the certificate-aware effects horizon that spends each
    /// app's [`edp_core::EffectSummary`]. Pure execution-strategy knob —
    /// output is byte-identical; only window/barrier counts move.
    pub horizon: HorizonMode,
    /// The traffic source (CBR, pcap replay, or endpoint fleet).
    pub workload: TopWorkload,
    /// Opt-in wall-clock profiler ([`edp_telemetry::prof`]). Collects
    /// per-shard phase attribution over the monotonic clock —
    /// nondeterministic by nature, and therefore kept strictly out of
    /// the canonical trace/JSON/prom outputs, which stay byte-identical
    /// whether this is on or off.
    pub profile: bool,
}

/// Reads `EDP_SHARDS`; unset or empty means `0` (classic path).
///
/// Anything else must parse as a non-negative integer — garbage or
/// negative values exit with a diagnostic naming the bad value, matching
/// the engine's misconfiguration policy (`EDP_BURST`, `EDP_HORIZON`).
pub fn shards_from_env() -> usize {
    let raw = match std::env::var("EDP_SHARDS") {
        Ok(v) => v,
        Err(_) => return 0,
    };
    let v = raw.trim();
    if v.is_empty() {
        return 0;
    }
    match v.parse() {
        Ok(n) => n,
        Err(_) => edp_evsim::env_config_error(
            "EDP_SHARDS",
            v,
            "a non-negative shard count (0 = classic single-world path)",
        ),
    }
}

impl Default for TopOptions {
    fn default() -> Self {
        TopOptions {
            seeds: vec![1, 2],
            duration: SimDuration::from_millis(5),
            threads: default_threads(),
            trace_capacity: 65_536,
            shards: shards_from_env(),
            burst: edp_evsim::burst_from_env(),
            horizon: edp_evsim::horizon_from_env(),
            workload: TopWorkload::Cbr,
            profile: false,
        }
    }
}

/// Everything one `edp_top` run observed, merged across seeds.
#[derive(Debug)]
pub struct TopReport {
    /// App name as registered.
    pub app: String,
    /// Number of seeds (sweep points) merged into this report.
    pub n_seeds: usize,
    /// Simulated duration per point.
    pub duration: SimDuration,
    /// Unified metrics: counters summed across seeds, gauges folded as
    /// maxima (high-water marks), histogram buckets merged.
    pub registry: Registry,
    /// Rendered traces, one `== app seed N ==` section per point, in
    /// seed order.
    pub trace: String,
    /// Total trace records retained across points.
    pub trace_records: u64,
    /// Total trace records evicted by ring capacity across points.
    pub trace_dropped: u64,
    /// Shard count the points ran with (`0` = classic path).
    pub shards: usize,
    /// Safe-horizon windows executed, summed across points (0 classic).
    pub shard_windows: u64,
    /// Barrier rendezvous joined per shard, summed across points — the
    /// true synchronization cost (0 classic).
    pub shard_barriers: u64,
    /// Packets exchanged across shard boundaries, summed across points.
    pub shard_messages: u64,
    /// Wall-clock profiles, one `(seed, per-shard profiles)` entry per
    /// point in seed order — empty unless [`TopOptions::profile`] was
    /// set. Nondeterministic; rendered only by [`render_profile`] and
    /// [`profile_trace_json`], never by the canonical outputs.
    pub profiles: Vec<(u64, Vec<prof::Profile>)>,
}

/// Names of every registered app, in registry order.
pub fn app_names() -> Vec<&'static str> {
    builtin_apps().iter().map(|a| a.manifest.name).collect()
}

struct PointOutcome {
    registry: Registry,
    trace: String,
    records: u64,
    dropped: u64,
    windows: u64,
    barriers: u64,
    cross_messages: u64,
    profiles: Vec<prof::Profile>,
}

/// Fronts a registry app's program with a static return route: ingress
/// frames addressed to the fleet host go straight out its access port,
/// everything else runs the app's own ingress unchanged. Registry
/// programs are one-way (they egress toward the sink), so without this
/// the server's replies would reflect back into the bottleneck — the
/// closed-loop endpoint workload needs a reverse path, not a smarter app.
struct ReturnPath {
    inner: Box<dyn EventProgram>,
    client: std::net::Ipv4Addr,
    client_port: edp_pisa::PortId,
}

impl EventProgram for ReturnPath {
    fn on_ingress(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        actions: &mut EventActions,
    ) {
        if parsed.ipv4.map(|ip| ip.dst) == Some(self.client) {
            meta.dest = Destination::Port(self.client_port);
            return;
        }
        self.inner.on_ingress(pkt, parsed, meta, now, actions)
    }

    fn on_egress(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        actions: &mut EventActions,
    ) {
        self.inner.on_egress(pkt, parsed, meta, now, actions)
    }

    fn on_recirculated(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        actions: &mut EventActions,
    ) {
        self.inner.on_recirculated(pkt, parsed, meta, now, actions)
    }

    fn on_generated(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
        actions: &mut EventActions,
    ) {
        self.inner.on_generated(pkt, parsed, meta, now, actions)
    }

    fn on_enqueue(&mut self, ev: &EnqueueEvent, now: SimTime, actions: &mut EventActions) {
        self.inner.on_enqueue(ev, now, actions)
    }

    fn on_dequeue(&mut self, ev: &DequeueEvent, now: SimTime, actions: &mut EventActions) {
        self.inner.on_dequeue(ev, now, actions)
    }

    fn on_overflow(&mut self, ev: &OverflowEvent, now: SimTime, actions: &mut EventActions) {
        self.inner.on_overflow(ev, now, actions)
    }

    fn on_underflow(&mut self, ev: &UnderflowEvent, now: SimTime, actions: &mut EventActions) {
        self.inner.on_underflow(ev, now, actions)
    }

    fn on_timer(&mut self, ev: &TimerEvent, now: SimTime, actions: &mut EventActions) {
        self.inner.on_timer(ev, now, actions)
    }

    fn on_control_plane(
        &mut self,
        ev: &ControlPlaneEvent,
        now: SimTime,
        actions: &mut EventActions,
    ) {
        self.inner.on_control_plane(ev, now, actions)
    }

    fn on_link_status(&mut self, ev: &LinkStatusEvent, now: SimTime, actions: &mut EventActions) {
        self.inner.on_link_status(ev, now, actions)
    }

    fn on_user(&mut self, ev: &UserEvent, now: SimTime, actions: &mut EventActions) {
        self.inner.on_user(ev, now, actions)
    }

    fn on_transmit(&mut self, ev: &TransmitEvent, now: SimTime, actions: &mut EventActions) {
        self.inner.on_transmit(ev, now, actions)
    }

    fn flow_cacheable(&self) -> bool {
        // The return route is itself a pure function of the 5-tuple, so
        // the inner program's promise carries over unchanged.
        self.inner.flow_cacheable()
    }

    fn passive_events(&self) -> u16 {
        self.inner.passive_events()
    }
}

/// Builds the app's dumbbell with its CBR load armed but nothing run:
/// the piece of [`drive`] that is also usable as a [`run_sharded`] build
/// closure (the sharded engine arms switch timers and runs the loop
/// itself).
fn build_point(
    app: &str,
    seed: u64,
    duration: SimDuration,
    workload: &TopWorkload,
) -> (Network, Sim<Network>) {
    let reg_app = builtin_apps()
        .into_iter()
        .find(|a| a.manifest.name == app)
        .expect("caller validated the app name");
    // Arm every timer the manifest declares; periods are staggered so
    // multi-timer apps interleave firings instead of stacking them.
    let timers = reg_app
        .manifest
        .timer_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| TimerSpec {
            id,
            period: SimDuration::from_micros(100 + 25 * i as u64),
            start: SimDuration::from_micros(100 + 25 * i as u64),
        })
        .collect();
    let cfg = EventSwitchConfig {
        n_ports: 4,
        timers,
        ..Default::default()
    };
    // The endpoint workload is closed-loop: front the app with a return
    // route so the server's replies can reach the fleet host on port 0.
    let program: Box<dyn EventProgram> = match workload {
        TopWorkload::Endpoints { .. } => Box::new(ReturnPath {
            inner: reg_app.program,
            client: addr(1),
            client_port: 0,
        }),
        _ => reg_app.program,
    };
    let summary = edp_core::EffectSummary::from_manifest(&reg_app.manifest);
    let sw: EventSwitch<Box<dyn EventProgram>> = EventSwitch::new(program, cfg);
    // One sender on port 0, sink behind a 50 Mb/s bottleneck on port 1 —
    // the port most registry apps egress to — so ~190 Mb/s of CBR load
    // builds real queues and forces overflow/trim paths.
    let (mut net, senders, sink, _) = dumbbell(Box::new(sw), 1, 50_000_000, seed);
    // The app's emission certificate rides along so a sharded run under
    // the effects horizon can class certified timer cranks local. The
    // ReturnPath front adds an undeclared client-bound ingress emission,
    // so the endpoint workload conservatively runs uncertified.
    if !matches!(workload, TopWorkload::Endpoints { .. }) {
        net.install_effect_summary(0, summary);
    }
    let mut sim: Sim<Network> = Sim::new();
    let until = SimTime::ZERO + duration;
    match workload {
        TopWorkload::Cbr => {
            let src = addr(1);
            let interval = SimDuration::from_micros(10);
            let count = duration.as_nanos() / interval.as_nanos();
            start_cbr(
                &mut sim,
                senders[0],
                SimTime::ZERO,
                interval,
                count,
                move |i| {
                    PacketBuilder::udp(src, sink_addr(), 4000, 9000, &[0u8; 200])
                        .ident(i as u16)
                        .build()
                },
            );
        }
        TopWorkload::Pcap { packets, speedup } => {
            start_replay(
                &mut sim,
                senders[0],
                Arc::clone(packets),
                SimTime::ZERO,
                *speedup,
                until,
            );
        }
        TopWorkload::Endpoints { count } => {
            let cfg = EndpointConfig {
                endpoints: *count,
                seed,
                server: sink_addr(),
                keys: 4096,
                zipf_s: 1.0,
                think_mean_ns: 1_000_000.0,
                timeout: SimDuration::from_millis(1),
                max_retries: 3,
            };
            net.hosts[senders[0]].app =
                HostApp::ClientFleet(Box::new(EndpointFleet::new(addr(1), cfg)));
            net.hosts[sink].app = HostApp::RpcServer { served: 0 };
            start_endpoints(
                &mut sim,
                senders[0],
                SimTime::ZERO,
                SimDuration::from_micros(20),
                until,
            );
        }
    }
    (net, sim)
}

/// Builds the app's dumbbell, drives the CBR load for `duration`, and
/// returns the network for metric publication. Runs identically with
/// telemetry enabled or disabled — [`measure_overhead`] exploits that.
fn drive(app: &str, seed: u64, duration: SimDuration, workload: &TopWorkload) -> Network {
    let (mut net, mut sim) = build_point(app, seed, duration, workload);
    run_until(&mut net, &mut sim, SimTime::ZERO + duration);
    net
}

/// One sweep point: a pure function of `(app, seed, duration, capacity)`
/// on the classic path, and of those *plus nothing else* on the sharded
/// path — the sharded outcome is byte-identical for every `shards >= 1`.
/// The opt-in profiler rides alongside in separate (wall-clock,
/// nondeterministic) structures and never touches these outputs.
fn run_point(app: &str, seed: u64, o: &TopOptions) -> PointOutcome {
    if o.shards > 0 {
        return run_point_sharded(app, seed, o);
    }
    telemetry::enable(TelemetryConfig {
        trace_capacity: o.trace_capacity,
        ..TelemetryConfig::default()
    });
    // The classic engine has no windows or barriers: its minimal profile
    // is setup + one long execute span, comparable with a sharded run's
    // compute fraction.
    if o.profile {
        prof::enable(Instant::now(), 0, 1);
    }
    let (mut net, mut sim) = build_point(app, seed, o.duration, &o.workload);
    prof::lap(prof::Phase::Setup);
    run_until(&mut net, &mut sim, SimTime::ZERO + o.duration);
    prof::lap(prof::Phase::Execute);
    telemetry::with(|t| net.publish_metrics(&mut t.registry));
    let profiles = prof::disable().into_iter().collect();
    let t = telemetry::disable().expect("session enabled above");
    let mut trace = format!("== {app} seed {seed} ==\n");
    trace.push_str(&t.render_trace());
    PointOutcome {
        records: t.ring.len() as u64,
        dropped: t.ring.dropped(),
        registry: t.registry,
        trace,
        windows: 0,
        barriers: 0,
        cross_messages: 0,
        profiles,
    }
}

/// One sweep point through the sharded engine.
///
/// Each shard runs the identical build on its own thread under its own
/// telemetry session; `finish` publishes only owner-gated metrics into
/// that session. Scheduler records are disabled — they carry global
/// heap sequence numbers, which depend on how events were distributed
/// over shards — and the merged trace uses the canonical (span-less)
/// rendering sorted by `(time, text)`, so the whole outcome is a pure
/// function of `(app, seed, duration, capacity)` for any shard count.
fn run_point_sharded(app: &str, seed: u64, o: &TopOptions) -> PointOutcome {
    // One epoch per point, created before the workers spawn, so every
    // shard's profiling timestamps share an origin and the per-shard
    // tracks of the trace export line up.
    let epoch = Instant::now();
    let (sessions, stats) = run_sharded_opts(
        o.shards,
        o.burst,
        o.horizon,
        SimTime::ZERO + o.duration,
        |shard| {
            telemetry::enable(TelemetryConfig {
                trace_capacity: o.trace_capacity,
                scheduler_records: false,
                ..TelemetryConfig::default()
            });
            if o.profile {
                prof::enable(epoch, shard, o.shards);
            }
            build_point(app, seed, o.duration, &o.workload)
        },
        |_shard, net, _sim| {
            telemetry::with(|t| net.publish_metrics(&mut t.registry));
            let profile = prof::disable();
            (
                telemetry::disable().expect("session enabled in build"),
                profile,
            )
        },
    );
    let (sessions, profiles): (Vec<_>, Vec<_>) = sessions.into_iter().unzip();
    let profiles: Vec<prof::Profile> = profiles.into_iter().flatten().collect();
    // Counters/histograms are per-scope partial sums; gauges are written
    // only by the owning shard, so `merge`'s overwrite is safe and the
    // max re-fold below is a no-op kept for symmetry with `run`.
    let mut registry = Registry::new();
    for s in &sessions {
        registry.merge(&s.registry);
    }
    for s in &sessions {
        for (n, sc, v) in s.registry.gauges() {
            registry.gauge_max(n, sc, v);
        }
    }
    let mut lines: Vec<(u64, String)> = Vec::new();
    let (mut records, mut dropped) = (0u64, 0u64);
    for s in &sessions {
        records += s.ring.len() as u64;
        dropped += s.ring.dropped();
        for rec in s.ring.iter() {
            lines.push((rec.at_ns, rec.render_canonical()));
        }
    }
    lines.sort();
    let mut trace = format!("== {app} seed {seed} ==\n");
    for (_, line) in &lines {
        trace.push_str(line);
        trace.push('\n');
    }
    trace.push_str(&format!(
        "-- {records} records, {dropped} dropped (ring capacity {})\n",
        o.trace_capacity
    ));
    PointOutcome {
        registry,
        trace,
        records,
        dropped,
        windows: stats.windows,
        barriers: stats.barriers,
        cross_messages: stats.cross_messages,
        profiles,
    }
}

/// Wall-clock cost of a full telemetry session vs the disabled path:
/// runs the same point `reps` times with a session enabled, then `reps`
/// times disabled, and returns `(enabled_secs, disabled_secs)` totals.
/// The ratio is the number DESIGN.md §10's overhead budget quotes.
pub fn measure_overhead(app: &str, duration: SimDuration, reps: u64) -> (f64, f64) {
    use std::time::Instant;
    let t0 = Instant::now();
    for r in 0..reps {
        telemetry::enable(TelemetryConfig::default());
        drive(app, 1 + r, duration, &TopWorkload::Cbr);
        telemetry::disable();
    }
    let enabled = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for r in 0..reps {
        let _ = telemetry::disable(); // ensure the disabled path
        drive(app, 1 + r, duration, &TopWorkload::Cbr);
    }
    let disabled = t1.elapsed().as_secs_f64();
    (enabled, disabled)
}

/// Wall-clock cost of the profiler itself on the instrumented sharded
/// engine (the path with hooks at every rendezvous): runs a 2-shard
/// point `reps` times with a profiling session enabled, then `reps`
/// times with the hooks on their disabled one-branch path, and returns
/// `(profiled_secs, unprofiled_secs)` totals. Telemetry stays off for
/// both so the ratio isolates the profiler.
pub fn measure_prof_overhead(app: &str, duration: SimDuration, reps: u64) -> (f64, f64) {
    let run_once = |seed: u64, profile: bool| {
        let epoch = Instant::now();
        let (_, stats) = run_sharded_opts(
            2,
            1,
            HorizonMode::Classic,
            SimTime::ZERO + duration,
            |shard| {
                if profile {
                    prof::enable(epoch, shard, 2);
                }
                build_point(app, seed, duration, &TopWorkload::Cbr)
            },
            |_shard, _net, _sim| prof::disable(),
        );
        stats
    };
    let t0 = Instant::now();
    for r in 0..reps {
        run_once(1 + r, true);
    }
    let profiled = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for r in 0..reps {
        run_once(1 + r, false);
    }
    let unprofiled = t1.elapsed().as_secs_f64();
    (profiled, unprofiled)
}

/// Runs `app` over every seed in `opts` and merges the outcomes.
pub fn run(app: &str, opts: &TopOptions) -> Result<TopReport, String> {
    if !builtin_apps().iter().any(|a| a.manifest.name == app) {
        return Err(format!(
            "unknown app `{app}` (known: {})",
            app_names().join(", ")
        ));
    }
    let point_opts = TopOptions {
        burst: opts.burst.max(1),
        ..opts.clone()
    };
    let mut outcomes = sweep(opts.seeds.clone(), opts.threads, move |seed| {
        run_point(app, seed, &point_opts)
    });
    let mut registry = Registry::new();
    let mut trace = String::new();
    let mut records = 0u64;
    let mut dropped = 0u64;
    let mut windows = 0u64;
    let mut barriers = 0u64;
    let mut cross = 0u64;
    for o in &outcomes {
        registry.merge(&o.registry);
        trace.push_str(&o.trace);
        records += o.records;
        dropped += o.dropped;
        windows += o.windows;
        barriers += o.barriers;
        cross += o.cross_messages;
    }
    // `sweep` returns outcomes in input order, so zipping the seeds back
    // on labels each point's profiles correctly whatever thread ran it.
    let profiles: Vec<(u64, Vec<prof::Profile>)> = opts
        .seeds
        .iter()
        .zip(outcomes.iter_mut())
        .filter(|(_, o)| !o.profiles.is_empty())
        .map(|(&seed, o)| (seed, std::mem::take(&mut o.profiles)))
        .collect();
    // `merge` keeps the *later* gauge value; re-fold them as maxima so
    // high-water marks (staleness bounds, queue peaks) survive merging.
    for o in &outcomes {
        for (n, s, v) in o.registry.gauges() {
            registry.gauge_max(n, s, v);
        }
    }
    Ok(TopReport {
        app: app.to_string(),
        n_seeds: outcomes.len(),
        duration: opts.duration,
        registry,
        trace,
        trace_records: records,
        trace_dropped: dropped,
        shards: opts.shards,
        shard_windows: windows,
        shard_barriers: barriers,
        shard_messages: cross,
        profiles,
    })
}

/// Renders the wall-clock profile table for a profiled report: per-shard
/// phase attribution, the compute/barrier-wait/exchange headline, the
/// straggler-by-decile line, and the cross-shard message matrix.
/// Nondeterministic output — print it to a human, never into a pinned
/// artifact.
pub fn render_profile(r: &TopReport) -> String {
    let points: Vec<&[prof::Profile]> = r.profiles.iter().map(|(_, p)| p.as_slice()).collect();
    prof::render_table(&points)
}

/// Renders a profiled report as Chrome trace-event JSON (one process per
/// seed, one thread track per shard) for Perfetto / `chrome://tracing`.
pub fn profile_trace_json(r: &TopReport) -> String {
    let points: Vec<(String, &[prof::Profile])> = r
        .profiles
        .iter()
        .map(|(seed, p)| (format!("{} seed {seed}", r.app), p.as_slice()))
        .collect();
    prof::to_trace_json(&points)
}

/// Renders the report as the human-facing summary table.
pub fn render(r: &TopReport) -> String {
    let secs = r.duration.as_nanos() as f64 / 1e9 * r.n_seeds as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "edp_top — {} | {} seed(s) x {} ms sim",
        r.app,
        r.n_seeds,
        r.duration.as_nanos() / 1_000_000
    );

    let _ = writeln!(out, "\n  events (sw0)              count      rate/s");
    for (name, scope, v) in r.registry.counters() {
        if scope == "sw0" && name.starts_with("events_") && v > 0 {
            let _ = writeln!(
                out,
                "  {:<22} {:>9} {:>11.0}",
                &name["events_".len()..],
                v,
                v as f64 / secs
            );
        }
    }

    let _ = writeln!(out, "\n  drops (sw0)");
    for n in [
        "dropped_by_program",
        "dropped_overflow",
        "dropped_link_down",
        "parse_errors",
        "cascade_limit_drops",
    ] {
        let _ = writeln!(out, "  {:<22} {:>9}", n, r.registry.counter(n, "sw0"));
    }

    let _ = writeln!(
        out,
        "\n  queues         enq      deq     drop  pkts(hi)  bytes(hi)"
    );
    let scopes: Vec<&str> = r
        .registry
        .counters()
        .filter(|(n, s, _)| *n == "queue_enqueued" && s.starts_with("sw0:p"))
        .map(|(_, s, _)| s)
        .collect();
    for s in scopes {
        let _ = writeln!(
            out,
            "  {:<8} {:>9} {:>8} {:>8} {:>9} {:>10}",
            s,
            r.registry.counter("queue_enqueued", s),
            r.registry.counter("queue_dequeued", s),
            r.registry.counter("queue_dropped", s),
            r.registry.gauge("queue_pkts", s).unwrap_or(0),
            r.registry.gauge("queue_bytes", s).unwrap_or(0),
        );
    }

    let _ = writeln!(
        out,
        "\n  flow cache: {} hits, {} misses, {} insertions, {} invalidations",
        r.registry.counter("flow_cache_hits", "sw0"),
        r.registry.counter("flow_cache_misses", "sw0"),
        r.registry.counter("flow_cache_insertions", "sw0"),
        r.registry.counter("flow_cache_invalidations", "sw0"),
    );

    let mut any = false;
    for (name, scope, v) in r.registry.counters() {
        if name != "proto_pkts" || v == 0 {
            continue;
        }
        if !any {
            let _ = writeln!(out, "\n  protocols (hosts)           pkts       bytes");
            any = true;
        }
        let _ = writeln!(
            out,
            "  {:<22} {:>10} {:>11}",
            scope,
            v,
            r.registry.counter("proto_bytes", scope)
        );
    }

    if r.registry.counter("endpoint_connects", "net") > 0 {
        let responses = r.registry.counter("endpoint_responses", "net");
        let samples = r.registry.counter("endpoint_rtt_samples", "net");
        let mean_rtt = r
            .registry
            .counter("endpoint_rtt_ns", "net")
            .checked_div(samples)
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "\n  endpoints: {} connected | {} requests, {} responses, {} retransmits, {} gave up | mean rtt {} ns",
            r.registry.counter("endpoint_connected", "net"),
            r.registry.counter("endpoint_requests", "net"),
            responses,
            r.registry.counter("endpoint_retransmits", "net"),
            r.registry.counter("endpoint_gave_up", "net"),
            mean_rtt,
        );
    }

    let mut any = false;
    for (name, scope, h) in r.registry.histograms() {
        if !any {
            let _ = writeln!(
                out,
                "\n  histograms                          count      p50      p99      max"
            );
            any = true;
        }
        let _ = writeln!(
            out,
            "  {:<20} {:<12} {:>8} {:>8} {:>8} {:>8}",
            name,
            scope,
            h.count(),
            h.p50(),
            h.p99(),
            h.max()
        );
    }

    let mut any = false;
    for (name, scope, v) in r.registry.gauges() {
        if name.starts_with("queue_") {
            continue;
        }
        if !any {
            let _ = writeln!(out, "\n  gauges (high-water)");
            any = true;
        }
        let _ = writeln!(out, "  {:<22} {:<12} {:>8}", name, scope, v);
    }

    let _ = writeln!(
        out,
        "\n  trace ring: {} records, {} dropped",
        r.trace_records, r.trace_dropped
    );
    if r.shards > 0 {
        let _ = writeln!(
            out,
            "  shards: {} | {} windows, {} barriers, {} cross-shard msgs",
            r.shards, r.shard_windows, r.shard_barriers, r.shard_messages
        );
    }
    out
}

/// Renders the report as one JSON object (registry via
/// [`telemetry::to_json`], so the shape matches the exporter).
pub fn to_json_report(r: &TopReport) -> String {
    format!(
        "{{\"app\":\"{}\",\"seeds\":{},\"duration_ns\":{},\"trace_records\":{},\"trace_dropped\":{},\"registry\":{}}}",
        r.app,
        r.n_seeds,
        r.duration.as_nanos(),
        r.trace_records,
        r.trace_dropped,
        telemetry::to_json(&r.registry)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> TopOptions {
        TopOptions {
            seeds: vec![7],
            duration: SimDuration::from_millis(1),
            threads: 1,
            trace_capacity: 4096,
            shards: 0,
            burst: 1,
            horizon: HorizonMode::Classic,
            workload: TopWorkload::Cbr,
            profile: false,
        }
    }

    #[test]
    fn unknown_app_is_an_error() {
        assert!(run("no-such-app", &quick()).is_err());
    }

    #[test]
    fn microburst_report_has_events_and_queues() {
        let r = run("microburst", &quick()).expect("runs");
        assert!(r.registry.counter("events_ingress", "sw0") > 0);
        assert!(r.registry.counter("rx", "sw0") > 0);
        assert!(r.trace.contains("== microburst seed 7 =="));
        let text = render(&r);
        assert!(text.contains("events (sw0)"));
        assert!(text.contains("trace ring:"));
        let json = to_json_report(&r);
        assert!(json.starts_with("{\"app\":\"microburst\""));
        assert!(json.contains("\"registry\":{\"counters\":["));
    }

    #[test]
    fn timer_apps_fire_declared_timers() {
        let r = run("timer-policer", &quick()).expect("runs");
        assert!(
            r.registry.counter("events_timer", "sw0") > 0,
            "manifest timers must be armed"
        );
    }

    #[test]
    fn sharded_point_is_byte_identical_across_shard_counts() {
        let mut opts = quick();
        // Big enough that no shard's ring evicts — eviction order is the
        // one thing that legitimately differs per shard count.
        opts.trace_capacity = 65_536;
        opts.shards = 1;
        let one = run("microburst", &opts).expect("runs");
        opts.shards = 2;
        let two = run("microburst", &opts).expect("runs");
        assert_eq!(one.trace, two.trace, "merged canonical traces diverge");
        assert_eq!(to_json_report(&one), to_json_report(&two));
        assert!(one.trace_records > 0);
        assert_eq!(one.shards, 1);
        assert_eq!(two.shards, 2);
        assert!(render(&two).contains("shards: 2"));
    }

    #[test]
    fn profiled_points_attribute_their_wall_clock() {
        let mut opts = quick();
        opts.profile = true;
        let classic = run("microburst", &opts).expect("runs");
        assert_eq!(classic.profiles.len(), 1, "one profiled point");
        let (seed, profs) = &classic.profiles[0];
        assert_eq!(*seed, 7);
        assert_eq!(profs.len(), 1, "classic path is a single track");
        assert_eq!(profs[0].attributed_ns(), profs[0].total_ns);
        assert!(profs[0].phase_ns[prof::Phase::Execute.index()] > 0);

        opts.shards = 2;
        let sharded = run("microburst", &opts).expect("runs");
        assert_eq!(sharded.profiles[0].1.len(), 2, "one profile per shard");
        for p in &sharded.profiles[0].1 {
            assert_eq!(p.attributed_ns(), p.total_ns);
            assert!(p.phase_ns[prof::Phase::Negotiate.index()] > 0);
        }
        assert!(render_profile(&sharded).contains("wall-clock profile"));
        assert!(profile_trace_json(&sharded).contains("\"traceEvents\""));
    }

    #[test]
    fn env_default_is_classic_path() {
        // The suite doesn't set EDP_SHARDS, so Default must pick classic.
        if std::env::var("EDP_SHARDS").is_err() {
            assert_eq!(TopOptions::default().shards, 0);
        }
    }
}
