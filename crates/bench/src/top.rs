//! The `edp_top` runner: drives any registered app on the canonical
//! dumbbell under a telemetry session and renders what it saw.
//!
//! One sweep *point* is one seed: enable a fresh telemetry session,
//! build the app from [`builtin_apps`], run a one-sender dumbbell with a
//! CBR load that oversubscribes the bottleneck (so queues, drops, and
//! overflow handlers actually fire), publish every component's counters
//! into the session registry, and disable. A point is a pure function of
//! `(app, seed, options)` — `sweep` may place it on any worker thread
//! and the outputs stay byte-identical regardless of
//! `EDP_SWEEP_THREADS`, which is exactly what the determinism test
//! checks.

use edp_apps::common::{addr, dumbbell, run_until, sink_addr};
use edp_apps::registry::builtin_apps;
use edp_core::{EventProgram, EventSwitch, EventSwitchConfig, TimerSpec};
use edp_evsim::{default_threads, sweep, Sim, SimDuration, SimTime};
use edp_netsim::traffic::start_cbr;
use edp_netsim::Network;
use edp_packet::PacketBuilder;
use edp_telemetry::{self as telemetry, Registry, TelemetryConfig};
use std::fmt::Write as _;

/// How `edp_top` drives an app.
#[derive(Debug, Clone)]
pub struct TopOptions {
    /// Seeds to run, one sweep point each.
    pub seeds: Vec<u64>,
    /// Simulated duration per point.
    pub duration: SimDuration,
    /// Worker threads for the sweep (`EDP_SWEEP_THREADS` default).
    pub threads: usize,
    /// Trace-ring capacity per point.
    pub trace_capacity: usize,
}

impl Default for TopOptions {
    fn default() -> Self {
        TopOptions {
            seeds: vec![1, 2],
            duration: SimDuration::from_millis(5),
            threads: default_threads(),
            trace_capacity: 65_536,
        }
    }
}

/// Everything one `edp_top` run observed, merged across seeds.
#[derive(Debug)]
pub struct TopReport {
    /// App name as registered.
    pub app: String,
    /// Number of seeds (sweep points) merged into this report.
    pub n_seeds: usize,
    /// Simulated duration per point.
    pub duration: SimDuration,
    /// Unified metrics: counters summed across seeds, gauges folded as
    /// maxima (high-water marks), histogram buckets merged.
    pub registry: Registry,
    /// Rendered traces, one `== app seed N ==` section per point, in
    /// seed order.
    pub trace: String,
    /// Total trace records retained across points.
    pub trace_records: u64,
    /// Total trace records evicted by ring capacity across points.
    pub trace_dropped: u64,
}

/// Names of every registered app, in registry order.
pub fn app_names() -> Vec<&'static str> {
    builtin_apps().iter().map(|a| a.manifest.name).collect()
}

struct PointOutcome {
    registry: Registry,
    trace: String,
    records: u64,
    dropped: u64,
}

/// Builds the app's dumbbell, drives the CBR load for `duration`, and
/// returns the network for metric publication. Runs identically with
/// telemetry enabled or disabled — [`measure_overhead`] exploits that.
fn drive(app: &str, seed: u64, duration: SimDuration) -> Network {
    let reg_app = builtin_apps()
        .into_iter()
        .find(|a| a.manifest.name == app)
        .expect("caller validated the app name");
    // Arm every timer the manifest declares; periods are staggered so
    // multi-timer apps interleave firings instead of stacking them.
    let timers = reg_app
        .manifest
        .timer_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| TimerSpec {
            id,
            period: SimDuration::from_micros(100 + 25 * i as u64),
            start: SimDuration::from_micros(100 + 25 * i as u64),
        })
        .collect();
    let cfg = EventSwitchConfig {
        n_ports: 4,
        timers,
        ..Default::default()
    };
    let sw: EventSwitch<Box<dyn EventProgram>> = EventSwitch::new(reg_app.program, cfg);
    // One sender on port 0, sink behind a 50 Mb/s bottleneck on port 1 —
    // the port most registry apps egress to — so ~190 Mb/s of CBR load
    // builds real queues and forces overflow/trim paths.
    let (mut net, senders, _sink, _) = dumbbell(Box::new(sw), 1, 50_000_000, seed);
    let mut sim: Sim<Network> = Sim::new();
    let src = addr(1);
    let interval = SimDuration::from_micros(10);
    let count = duration.as_nanos() / interval.as_nanos();
    start_cbr(
        &mut sim,
        senders[0],
        SimTime::ZERO,
        interval,
        count,
        move |i| {
            PacketBuilder::udp(src, sink_addr(), 4000, 9000, &[0u8; 200])
                .ident(i as u16)
                .build()
        },
    );
    run_until(&mut net, &mut sim, SimTime::ZERO + duration);
    net
}

/// One sweep point: a pure function of `(app, seed, duration, capacity)`.
fn run_point(app: &str, seed: u64, duration: SimDuration, trace_capacity: usize) -> PointOutcome {
    telemetry::enable(TelemetryConfig {
        trace_capacity,
        ..TelemetryConfig::default()
    });
    let net = drive(app, seed, duration);
    telemetry::with(|t| net.publish_metrics(&mut t.registry));
    let t = telemetry::disable().expect("session enabled above");
    let mut trace = format!("== {app} seed {seed} ==\n");
    trace.push_str(&t.render_trace());
    PointOutcome {
        records: t.ring.len() as u64,
        dropped: t.ring.dropped(),
        registry: t.registry,
        trace,
    }
}

/// Wall-clock cost of a full telemetry session vs the disabled path:
/// runs the same point `reps` times with a session enabled, then `reps`
/// times disabled, and returns `(enabled_secs, disabled_secs)` totals.
/// The ratio is the number DESIGN.md §10's overhead budget quotes.
pub fn measure_overhead(app: &str, duration: SimDuration, reps: u64) -> (f64, f64) {
    use std::time::Instant;
    let t0 = Instant::now();
    for r in 0..reps {
        telemetry::enable(TelemetryConfig::default());
        drive(app, 1 + r, duration);
        telemetry::disable();
    }
    let enabled = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for r in 0..reps {
        let _ = telemetry::disable(); // ensure the disabled path
        drive(app, 1 + r, duration);
    }
    let disabled = t1.elapsed().as_secs_f64();
    (enabled, disabled)
}

/// Runs `app` over every seed in `opts` and merges the outcomes.
pub fn run(app: &str, opts: &TopOptions) -> Result<TopReport, String> {
    if !builtin_apps().iter().any(|a| a.manifest.name == app) {
        return Err(format!(
            "unknown app `{app}` (known: {})",
            app_names().join(", ")
        ));
    }
    let duration = opts.duration;
    let cap = opts.trace_capacity;
    let outcomes = sweep(opts.seeds.clone(), opts.threads, |seed| {
        run_point(app, seed, duration, cap)
    });
    let mut registry = Registry::new();
    let mut trace = String::new();
    let mut records = 0u64;
    let mut dropped = 0u64;
    for o in &outcomes {
        registry.merge(&o.registry);
        trace.push_str(&o.trace);
        records += o.records;
        dropped += o.dropped;
    }
    // `merge` keeps the *later* gauge value; re-fold them as maxima so
    // high-water marks (staleness bounds, queue peaks) survive merging.
    for o in &outcomes {
        for (n, s, v) in o.registry.gauges() {
            registry.gauge_max(n, s, v);
        }
    }
    Ok(TopReport {
        app: app.to_string(),
        n_seeds: outcomes.len(),
        duration,
        registry,
        trace,
        trace_records: records,
        trace_dropped: dropped,
    })
}

/// Renders the report as the human-facing summary table.
pub fn render(r: &TopReport) -> String {
    let secs = r.duration.as_nanos() as f64 / 1e9 * r.n_seeds as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "edp_top — {} | {} seed(s) x {} ms sim",
        r.app,
        r.n_seeds,
        r.duration.as_nanos() / 1_000_000
    );

    let _ = writeln!(out, "\n  events (sw0)              count      rate/s");
    for (name, scope, v) in r.registry.counters() {
        if scope == "sw0" && name.starts_with("events_") && v > 0 {
            let _ = writeln!(
                out,
                "  {:<22} {:>9} {:>11.0}",
                &name["events_".len()..],
                v,
                v as f64 / secs
            );
        }
    }

    let _ = writeln!(out, "\n  drops (sw0)");
    for n in [
        "dropped_by_program",
        "dropped_overflow",
        "dropped_link_down",
        "parse_errors",
        "cascade_limit_drops",
    ] {
        let _ = writeln!(out, "  {:<22} {:>9}", n, r.registry.counter(n, "sw0"));
    }

    let _ = writeln!(
        out,
        "\n  queues         enq      deq     drop  pkts(hi)  bytes(hi)"
    );
    let scopes: Vec<&str> = r
        .registry
        .counters()
        .filter(|(n, s, _)| *n == "queue_enqueued" && s.starts_with("sw0:p"))
        .map(|(_, s, _)| s)
        .collect();
    for s in scopes {
        let _ = writeln!(
            out,
            "  {:<8} {:>9} {:>8} {:>8} {:>9} {:>10}",
            s,
            r.registry.counter("queue_enqueued", s),
            r.registry.counter("queue_dequeued", s),
            r.registry.counter("queue_dropped", s),
            r.registry.gauge("queue_pkts", s).unwrap_or(0),
            r.registry.gauge("queue_bytes", s).unwrap_or(0),
        );
    }

    let _ = writeln!(
        out,
        "\n  flow cache: {} hits, {} misses, {} insertions, {} invalidations",
        r.registry.counter("flow_cache_hits", "sw0"),
        r.registry.counter("flow_cache_misses", "sw0"),
        r.registry.counter("flow_cache_insertions", "sw0"),
        r.registry.counter("flow_cache_invalidations", "sw0"),
    );

    let mut any = false;
    for (name, scope, h) in r.registry.histograms() {
        if !any {
            let _ = writeln!(
                out,
                "\n  histograms                          count      p50      p99      max"
            );
            any = true;
        }
        let _ = writeln!(
            out,
            "  {:<20} {:<12} {:>8} {:>8} {:>8} {:>8}",
            name,
            scope,
            h.count(),
            h.p50(),
            h.p99(),
            h.max()
        );
    }

    let mut any = false;
    for (name, scope, v) in r.registry.gauges() {
        if name.starts_with("queue_") {
            continue;
        }
        if !any {
            let _ = writeln!(out, "\n  gauges (high-water)");
            any = true;
        }
        let _ = writeln!(out, "  {:<22} {:<12} {:>8}", name, scope, v);
    }

    let _ = writeln!(
        out,
        "\n  trace ring: {} records, {} dropped",
        r.trace_records, r.trace_dropped
    );
    out
}

/// Renders the report as one JSON object (registry via
/// [`telemetry::to_json`], so the shape matches the exporter).
pub fn to_json_report(r: &TopReport) -> String {
    format!(
        "{{\"app\":\"{}\",\"seeds\":{},\"duration_ns\":{},\"trace_records\":{},\"trace_dropped\":{},\"registry\":{}}}",
        r.app,
        r.n_seeds,
        r.duration.as_nanos(),
        r.trace_records,
        r.trace_dropped,
        telemetry::to_json(&r.registry)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> TopOptions {
        TopOptions {
            seeds: vec![7],
            duration: SimDuration::from_millis(1),
            threads: 1,
            trace_capacity: 4096,
        }
    }

    #[test]
    fn unknown_app_is_an_error() {
        assert!(run("no-such-app", &quick()).is_err());
    }

    #[test]
    fn microburst_report_has_events_and_queues() {
        let r = run("microburst", &quick()).expect("runs");
        assert!(r.registry.counter("events_ingress", "sw0") > 0);
        assert!(r.registry.counter("rx", "sw0") > 0);
        assert!(r.trace.contains("== microburst seed 7 =="));
        let text = render(&r);
        assert!(text.contains("events (sw0)"));
        assert!(text.contains("trace ring:"));
        let json = to_json_report(&r);
        assert!(json.starts_with("{\"app\":\"microburst\""));
        assert!(json.contains("\"registry\":{\"counters\":["));
    }

    #[test]
    fn timer_apps_fire_declared_timers() {
        let r = run("timer-policer", &quick()).expect("runs");
        assert!(
            r.registry.counter("events_timer", "sw0") > 0,
            "manifest timers must be armed"
        );
    }
}
