//! The traffic manager: output queues between ingress and egress.
//!
//! Every state change in here — a packet enqueued, dequeued, or dropped on
//! overflow — is exactly the kind of *architectural event* the paper wants
//! to expose. The TM therefore returns a [`TmEvent`] record for each such
//! change. A baseline PISA switch discards these records (its programming
//! model has nowhere to deliver them); the event-driven switch in
//! `edp-core` feeds them to the program's event handlers. One traffic
//! manager, two architectures — the comparison stays apples-to-apples.

use crate::meta::{PortId, StdMeta};
use edp_evsim::SimTime;
use edp_packet::{Packet, ParsedPacket};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Emits a queue-occupancy sample when a telemetry session is live and
/// asked for queue-depth detail. Disabled cost: one thread-local branch.
#[inline]
fn depth_sample(at_ns: u64, port: PortId, q_bytes: u64, q_pkts: u32) {
    if !edp_telemetry::on() {
        return;
    }
    edp_telemetry::with(|t| {
        if t.config.queue_depth_samples {
            t.emit(
                at_ns,
                edp_telemetry::RecordKind::QueueDepth {
                    port,
                    q_bytes,
                    q_pkts,
                },
            );
        }
    });
}

/// Queueing discipline for an output queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueDisc {
    /// Single FIFO, drop-tail on byte overflow.
    DropTailFifo,
    /// Strict priority across `classes` FIFOs; `StdMeta::rank` (clamped)
    /// selects the class, lower rank = higher priority.
    StrictPriority {
        /// Number of priority classes.
        classes: u8,
    },
    /// Push-in-first-out on `StdMeta::rank` (lower pops first); overflow
    /// rejects the worst-ranked packet.
    Pifo,
}

/// Configuration for each output queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Byte capacity per output queue.
    pub capacity_bytes: u64,
    /// Discipline.
    pub disc: QueueDisc,
    /// Extra bytes admissible only to rank-0 packets: a reserved
    /// high-priority buffer, as NDP reserves for trimmed headers. 0
    /// disables the reserve.
    pub rank0_headroom: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            // 100 KB per port: about 66 MTU packets, small enough that the
            // microburst workloads actually exercise overflow.
            capacity_bytes: 100_000,
            disc: QueueDisc::DropTailFifo,
            rank0_headroom: 0,
        }
    }
}

/// An event record emitted by the traffic manager.
///
/// `meta` is the program-staged [`StdMeta::event_meta`] blob, surfaced so
/// event handlers can recover flow ids etc. without re-parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TmEvent {
    /// A packet was accepted into an output queue.
    Enqueue {
        /// Output port.
        port: PortId,
        /// Packet length in bytes.
        pkt_len: u32,
        /// Queue occupancy in bytes *after* the enqueue.
        q_bytes: u64,
        /// Queue depth in packets after the enqueue.
        q_pkts: u32,
        /// Program-staged event metadata.
        meta: [u64; 4],
    },
    /// A packet left an output queue toward the egress pipeline.
    Dequeue {
        /// Output port.
        port: PortId,
        /// Packet length in bytes.
        pkt_len: u32,
        /// Queue occupancy in bytes *after* the dequeue.
        q_bytes: u64,
        /// Queue depth in packets after the dequeue.
        q_pkts: u32,
        /// Time the packet spent queued.
        sojourn_ns: u64,
        /// Program-staged event metadata.
        meta: [u64; 4],
    },
    /// A packet was dropped because the queue was full (buffer overflow —
    /// the paper's "Buffer Overflow" event).
    Overflow {
        /// Output port.
        port: PortId,
        /// Packet length in bytes.
        pkt_len: u32,
        /// Queue occupancy at the time of the drop.
        q_bytes: u64,
        /// Program-staged event metadata.
        meta: [u64; 4],
    },
    /// A dequeue was attempted on an empty queue (buffer underflow).
    Underflow {
        /// Output port.
        port: PortId,
    },
}

#[derive(Debug, Clone)]
struct Item {
    pkt: Packet,
    /// The caller's ingress parse of `pkt`, when the caller can prove the
    /// frame bytes were not mutated after parsing (see
    /// [`TrafficManager::offer_parsed`]); handed back on dequeue so
    /// egress can skip the re-parse.
    parsed: Option<ParsedPacket>,
    meta: StdMeta,
    enq_time: SimTime,
    rank: u64,
    seq: u64,
}

#[derive(Debug, Clone)]
struct OutQueue {
    cfg: QueueConfig,
    /// For FIFO: one deque. For StrictPriority: one per class. For PIFO:
    /// a single deque kept sorted by (rank, seq).
    lanes: Vec<VecDeque<Item>>,
    bytes: u64,
    next_seq: u64,
    /// Cumulative statistics.
    enqueued: u64,
    dequeued: u64,
    dropped: u64,
    dropped_bytes: u64,
}

impl OutQueue {
    fn new(cfg: QueueConfig) -> Self {
        let lanes = match cfg.disc {
            QueueDisc::DropTailFifo | QueueDisc::Pifo => 1,
            QueueDisc::StrictPriority { classes } => classes.max(1) as usize,
        };
        OutQueue {
            cfg,
            lanes: (0..lanes).map(|_| VecDeque::new()).collect(),
            bytes: 0,
            next_seq: 0,
            enqueued: 0,
            dequeued: 0,
            dropped: 0,
            dropped_bytes: 0,
        }
    }

    fn depth_pkts(&self) -> u32 {
        self.lanes.iter().map(|l| l.len() as u32).sum()
    }

    fn push(
        &mut self,
        pkt: Packet,
        parsed: Option<ParsedPacket>,
        meta: StdMeta,
        now: SimTime,
    ) -> bool {
        let len = pkt.len() as u64;
        let cap = self.cfg.capacity_bytes
            + if meta.rank == 0 {
                self.cfg.rank0_headroom
            } else {
                0
            };
        if self.bytes + len > cap {
            self.dropped += 1;
            self.dropped_bytes += len;
            return false;
        }
        let rank = meta.rank;
        let item = Item {
            pkt,
            parsed,
            meta,
            enq_time: now,
            rank,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.bytes += len;
        self.enqueued += 1;
        match self.cfg.disc {
            QueueDisc::DropTailFifo => self.lanes[0].push_back(item),
            QueueDisc::StrictPriority { classes } => {
                let class = (rank.min(classes.saturating_sub(1) as u64)) as usize;
                self.lanes[class].push_back(item);
            }
            QueueDisc::Pifo => {
                // Insert sorted by (rank, seq): a software PIFO. Linear
                // from the back — bursts of equal rank append in O(1).
                let lane = &mut self.lanes[0];
                let pos = lane
                    .iter()
                    .rposition(|it| (it.rank, it.seq) <= (item.rank, item.seq))
                    .map(|p| p + 1)
                    .unwrap_or(0);
                lane.insert(pos, item);
            }
        }
        true
    }

    fn pop(&mut self) -> Option<Item> {
        for lane in &mut self.lanes {
            if let Some(item) = lane.pop_front() {
                self.bytes -= item.pkt.len() as u64;
                self.dequeued += 1;
                return Some(item);
            }
        }
        None
    }
}

/// Per-port queue statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Packets accepted.
    pub enqueued: u64,
    /// Packets handed to egress.
    pub dequeued: u64,
    /// Packets dropped on overflow.
    pub dropped: u64,
    /// Bytes dropped on overflow.
    pub dropped_bytes: u64,
    /// Current occupancy in bytes.
    pub bytes: u64,
    /// Current depth in packets.
    pub pkts: u32,
}

impl QueueStats {
    /// Publishes the snapshot into the unified metrics registry under
    /// `scope` (conventionally `sw<N>:p<PORT>`).
    pub fn publish(&self, reg: &mut edp_telemetry::Registry, scope: &str) {
        reg.set_counter("queue_enqueued", scope, self.enqueued);
        reg.set_counter("queue_dequeued", scope, self.dequeued);
        reg.set_counter("queue_dropped", scope, self.dropped);
        reg.set_counter("queue_dropped_bytes", scope, self.dropped_bytes);
        reg.set_gauge("queue_bytes", scope, self.bytes as i64);
        reg.set_gauge("queue_pkts", scope, self.pkts as i64);
    }
}

/// The traffic manager: one output queue per port.
#[derive(Debug, Clone)]
pub struct TrafficManager {
    queues: Vec<OutQueue>,
}

impl TrafficManager {
    /// Creates a TM with `n_ports` queues sharing one configuration.
    pub fn new(n_ports: usize, cfg: QueueConfig) -> Self {
        assert!(n_ports > 0, "switch with no ports");
        TrafficManager {
            queues: (0..n_ports).map(|_| OutQueue::new(cfg)).collect(),
        }
    }

    /// Number of output ports.
    pub fn n_ports(&self) -> usize {
        self.queues.len()
    }

    /// Dequeues the next packet from `port`, or an underflow record.
    pub fn dequeue(
        &mut self,
        port: PortId,
        now: SimTime,
    ) -> Result<(Packet, StdMeta, TmEvent), TmEvent> {
        self.dequeue_parsed(port, now)
            .map(|(pkt, _parsed, meta, ev)| (pkt, meta, ev))
    }

    /// [`TrafficManager::dequeue`], additionally handing back the ingress
    /// parse stashed by [`TrafficManager::offer_parsed`] (`None` when the
    /// packet was offered without one).
    pub fn dequeue_parsed(
        &mut self,
        port: PortId,
        now: SimTime,
    ) -> Result<(Packet, Option<ParsedPacket>, StdMeta, TmEvent), TmEvent> {
        let q = &mut self.queues[port as usize];
        match q.pop() {
            Some(item) => {
                let q_bytes = q.bytes;
                let q_pkts = q.depth_pkts();
                let ev = TmEvent::Dequeue {
                    port,
                    pkt_len: item.pkt.len() as u32,
                    q_bytes,
                    q_pkts,
                    sojourn_ns: now.saturating_since(item.enq_time).as_nanos(),
                    meta: item.meta.event_meta,
                };
                depth_sample(now.as_nanos(), port, q_bytes, q_pkts);
                Ok((item.pkt, item.parsed, item.meta, ev))
            }
            None => Err(TmEvent::Underflow { port }),
        }
    }

    /// Occupancy of `port`'s queue in bytes.
    pub fn occupancy_bytes(&self, port: PortId) -> u64 {
        self.queues[port as usize].bytes
    }

    /// Depth of `port`'s queue in packets.
    pub fn depth_pkts(&self, port: PortId) -> u32 {
        self.queues[port as usize].depth_pkts()
    }

    /// Total buffered bytes across all ports.
    pub fn total_bytes(&self) -> u64 {
        self.queues.iter().map(|q| q.bytes).sum()
    }

    /// Statistics snapshot for `port`.
    pub fn stats(&self, port: PortId) -> QueueStats {
        let q = &self.queues[port as usize];
        QueueStats {
            enqueued: q.enqueued,
            dequeued: q.dequeued,
            dropped: q.dropped,
            dropped_bytes: q.dropped_bytes,
            bytes: q.bytes,
            pkts: q.depth_pkts(),
        }
    }
}

impl TrafficManager {
    /// Offers a packet; on overflow the packet is returned together with
    /// the [`TmEvent::Overflow`] record (callers may recycle it into a
    /// drop-event handler or a mirror port).
    pub fn offer(
        &mut self,
        port: PortId,
        pkt: Packet,
        meta: StdMeta,
        now: SimTime,
    ) -> (Option<Packet>, TmEvent) {
        self.offer_parsed(port, pkt, None, meta, now)
    }

    /// [`TrafficManager::offer`], stashing the caller's ingress parse of
    /// `pkt` alongside it for [`TrafficManager::dequeue_parsed`] to hand
    /// back.
    ///
    /// Contract: pass `Some` only when `parsed` is the parse of `pkt`'s
    /// *current* bytes (no mutation since parsing — provable with
    /// [`Packet::mutation_count`]). Parsing is pure, so an egress that
    /// reuses the stash is byte-identical to one that re-parses; it just
    /// skips the redundant work.
    pub fn offer_parsed(
        &mut self,
        port: PortId,
        pkt: Packet,
        parsed: Option<ParsedPacket>,
        meta: StdMeta,
        now: SimTime,
    ) -> (Option<Packet>, TmEvent) {
        let q = &mut self.queues[port as usize];
        let pkt_len = pkt.len() as u32;
        let event_meta = meta.event_meta;
        let cap = q.cfg.capacity_bytes
            + if meta.rank == 0 {
                q.cfg.rank0_headroom
            } else {
                0
            };
        if q.bytes + pkt_len as u64 > cap {
            q.dropped += 1;
            q.dropped_bytes += pkt_len as u64;
            let ev = TmEvent::Overflow {
                port,
                pkt_len,
                q_bytes: q.bytes,
                meta: event_meta,
            };
            return (Some(pkt), ev);
        }
        let ok = q.push(pkt, parsed, meta, now);
        debug_assert!(ok, "capacity pre-checked");
        let q_bytes = q.bytes;
        let q_pkts = q.depth_pkts();
        depth_sample(now.as_nanos(), port, q_bytes, q_pkts);
        (
            None,
            TmEvent::Enqueue {
                port,
                pkt_len,
                q_bytes,
                q_pkts,
                meta: event_meta,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(len: usize) -> Packet {
        Packet::anonymous(vec![0; len])
    }

    fn meta(rank: u64) -> StdMeta {
        let mut m = StdMeta::ingress(0, SimTime::ZERO, 0);
        m.rank = rank;
        m
    }

    #[test]
    fn fifo_order_and_events() {
        let mut tm = TrafficManager::new(2, QueueConfig::default());
        let now = SimTime::from_nanos(10);
        let (d, ev) = tm.offer(1, pkt(100), meta(0), now);
        assert!(d.is_none());
        assert!(matches!(
            ev,
            TmEvent::Enqueue {
                port: 1,
                pkt_len: 100,
                q_bytes: 100,
                q_pkts: 1,
                ..
            }
        ));
        tm.offer(1, pkt(200), meta(0), now);
        assert_eq!(tm.occupancy_bytes(1), 300);

        let later = SimTime::from_nanos(50);
        let (p, _, ev) = tm.dequeue(1, later).expect("packet");
        assert_eq!(p.len(), 100);
        assert!(matches!(
            ev,
            TmEvent::Dequeue {
                sojourn_ns: 40,
                q_bytes: 200,
                q_pkts: 1,
                ..
            }
        ));
    }

    #[test]
    fn overflow_emits_drop_event_and_returns_packet() {
        let cfg = QueueConfig {
            capacity_bytes: 250,
            ..QueueConfig::default()
        };
        let mut tm = TrafficManager::new(1, cfg);
        tm.offer(0, pkt(200), meta(0), SimTime::ZERO);
        let (returned, ev) = tm.offer(0, pkt(100), meta(0), SimTime::ZERO);
        assert!(returned.is_some());
        assert!(matches!(
            ev,
            TmEvent::Overflow {
                pkt_len: 100,
                q_bytes: 200,
                ..
            }
        ));
        assert_eq!(tm.stats(0).dropped, 1);
        assert_eq!(tm.stats(0).dropped_bytes, 100);
    }

    #[test]
    fn underflow_event() {
        let mut tm = TrafficManager::new(1, QueueConfig::default());
        assert!(matches!(
            tm.dequeue(0, SimTime::ZERO),
            Err(TmEvent::Underflow { port: 0 })
        ));
    }

    #[test]
    fn strict_priority_dequeues_low_rank_first() {
        let cfg = QueueConfig {
            capacity_bytes: 10_000,
            disc: QueueDisc::StrictPriority { classes: 4 },
            ..QueueConfig::default()
        };
        let mut tm = TrafficManager::new(1, cfg);
        tm.offer(0, pkt(10), meta(3), SimTime::ZERO);
        tm.offer(0, pkt(20), meta(0), SimTime::ZERO);
        tm.offer(0, pkt(30), meta(9), SimTime::ZERO); // clamps to class 3
        let (p, _, _) = tm.dequeue(0, SimTime::ZERO).expect("p");
        assert_eq!(p.len(), 20, "class 0 first");
        let (p, _, _) = tm.dequeue(0, SimTime::ZERO).expect("p");
        assert_eq!(p.len(), 10, "then class 3 FIFO");
        let (p, _, _) = tm.dequeue(0, SimTime::ZERO).expect("p");
        assert_eq!(p.len(), 30);
    }

    #[test]
    fn pifo_orders_by_rank_stable() {
        let cfg = QueueConfig {
            capacity_bytes: 10_000,
            disc: QueueDisc::Pifo,
            rank0_headroom: 0,
        };
        let mut tm = TrafficManager::new(1, cfg);
        tm.offer(0, pkt(1), meta(50), SimTime::ZERO);
        tm.offer(0, pkt(2), meta(10), SimTime::ZERO);
        tm.offer(0, pkt(3), meta(50), SimTime::ZERO);
        tm.offer(0, pkt(4), meta(30), SimTime::ZERO);
        let lens: Vec<usize> = (0..4)
            .map(|_| tm.dequeue(0, SimTime::ZERO).expect("p").0.len())
            .collect();
        assert_eq!(lens, vec![2, 4, 1, 3]);
    }

    #[test]
    fn event_meta_flows_through() {
        let mut tm = TrafficManager::new(1, QueueConfig::default());
        let mut m = meta(0);
        m.event_meta = [7, 1500, 0, 0];
        let (_, ev) = tm.offer(0, pkt(64), m, SimTime::ZERO);
        assert!(matches!(
            ev,
            TmEvent::Enqueue {
                meta: [7, 1500, 0, 0],
                ..
            }
        ));
        let (_, _, ev) = tm.dequeue(0, SimTime::ZERO).expect("p");
        assert!(matches!(
            ev,
            TmEvent::Dequeue {
                meta: [7, 1500, 0, 0],
                ..
            }
        ));
    }

    #[test]
    fn stats_track_counts() {
        let mut tm = TrafficManager::new(1, QueueConfig::default());
        for _ in 0..5 {
            tm.offer(0, pkt(10), meta(0), SimTime::ZERO);
        }
        tm.dequeue(0, SimTime::ZERO).ok();
        let s = tm.stats(0);
        assert_eq!(s.enqueued, 5);
        assert_eq!(s.dequeued, 1);
        assert_eq!(s.pkts, 4);
        assert_eq!(s.bytes, 40);
    }
}
