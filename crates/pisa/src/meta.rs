//! Standard metadata: the per-packet scratch state a PISA architecture
//! hands to the P4 program alongside the packet itself.

use edp_evsim::SimTime;
use serde::{Deserialize, Serialize};

/// A switch port index.
pub type PortId = u8;

/// Where the ingress pipeline decided the packet should go.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Destination {
    /// No decision yet (treated as drop at the traffic manager).
    #[default]
    Unspecified,
    /// Send out one port.
    Port(PortId),
    /// Replicate to every port except the ingress port.
    Flood,
    /// Recirculate back to the ingress pipeline.
    Recirculate,
    /// Drop.
    Drop,
}

/// Standard metadata accompanying a packet through the pipelines.
///
/// This mirrors PSA's `psa_ingress_*`/`psa_egress_*` structs folded into
/// one: models fill in the input fields, programs write the output fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StdMeta {
    /// Port the packet arrived on.
    pub ingress_port: PortId,
    /// Arrival timestamp.
    pub ingress_ts: SimTime,
    /// Frame length in bytes at ingress.
    pub pkt_len: u32,
    /// Forwarding decision (program output).
    pub dest: Destination,
    /// Scheduling priority / PIFO rank (program output; lower is better).
    pub rank: u64,
    /// Number of times this packet has been recirculated so far.
    pub recirc_count: u8,
    /// Set by an egress program to request the packet be dropped at
    /// deparse time.
    pub egress_drop: bool,
    /// Event metadata staged by the ingress program for the enqueue /
    /// dequeue / drop event handlers (the paper's `enq_meta` / `deq_meta`:
    /// e.g. `[flow_id, pkt_len, 0, 0]` in microburst.p4). Travels with the
    /// packet through the traffic manager and is surfaced verbatim in the
    /// event records the TM emits.
    pub event_meta: [u64; 4],
}

impl StdMeta {
    /// Metadata for a fresh ingress packet.
    pub fn ingress(port: PortId, now: SimTime, pkt_len: usize) -> Self {
        StdMeta {
            ingress_port: port,
            ingress_ts: now,
            pkt_len: pkt_len as u32,
            dest: Destination::Unspecified,
            rank: 0,
            recirc_count: 0,
            egress_drop: false,
            event_meta: [0; 4],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ingress_defaults() {
        let m = StdMeta::ingress(3, SimTime::from_nanos(99), 1500);
        assert_eq!(m.ingress_port, 3);
        assert_eq!(m.pkt_len, 1500);
        assert_eq!(m.dest, Destination::Unspecified);
        assert_eq!(m.recirc_count, 0);
        assert!(!m.egress_drop);
    }
}
