//! # edp-pisa — the baseline PISA/PSA data-plane model
//!
//! The substrate the paper *starts from*: a Protocol Independent Switch
//! Architecture with programmable match-action processing, expressed as a
//! typed Rust embedding instead of P4 source. It provides:
//!
//! * [`MatchTable`] — exact / LPM / ternary / range match-action tables;
//! * [`RegisterArray`] — stateful externs with access accounting (memory
//!   bandwidth is the commodity §4 of the paper trades in);
//! * [`StdMeta`] — PSA-style standard metadata, extended with the
//!   program-staged `event_meta` the paper's `enq_meta`/`deq_meta` become;
//! * [`TrafficManager`] — output queues (FIFO / strict priority / PIFO)
//!   that emit [`TmEvent`] records for every enqueue/dequeue/overflow;
//! * [`PisaProgram`] + [`BaselineSwitch`] — the synchronous
//!   packet-by-packet programming model and the PSA switch around it
//!   (Figure 1 of the paper).
//!
//! The deliberate limitation — faithfully reproduced — is that a
//! [`BaselineSwitch`] throws its [`TmEvent`] records away: the baseline
//! programming model has no handler to deliver them to. The event-driven
//! architecture (`edp-core`) is built from these same parts but delivers
//! every event to P4-expressible handlers.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod cache;
mod meta;
pub mod probe;
mod program;
mod register;
mod switch;
mod table;
mod tm;

pub use cache::{CachedDecision, FlowCache, FlowCacheStats, DEFAULT_FLOW_CACHE_CAPACITY};
pub use meta::{Destination, PortId, StdMeta};
pub use probe::{ProbeAccess, ProbeClaim, ProbeClass, ProbeRecord};
pub use program::{ForwardTo, PisaProgram, TableRouter};
pub use register::{PacketByteCounter, RegisterArray};
pub use switch::{BaselineSwitch, SwitchCounters, MAX_RECIRCULATIONS};
pub use table::{
    insert_ipv4_route, ipv4_lpm_schema, FieldMatch, LookupBurstStats, MatchKind, MatchTable,
    ShapeEntry, TableEntry, TableError, TableShape,
};
pub use tm::{QueueConfig, QueueDisc, QueueStats, TmEvent, TrafficManager};
