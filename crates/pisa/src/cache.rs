//! A per-flow action cache (OVS-megaflow style) for the switch fast path.
//!
//! Real software switches avoid running the full match-action pipeline on
//! every packet: the first packet of a flow executes the pipeline and the
//! resulting forwarding decision is memoized under the flow's 5-tuple
//! hash; subsequent packets of the same flow replay the decision without
//! touching a table. The cache is purely an acceleration structure — a
//! program must opt in by declaring its ingress decision a pure function
//! of the flow 5-tuple and its table state
//! ([`PisaProgram::flow_cacheable`](crate::PisaProgram::flow_cacheable)),
//! and the switch invalidates the whole cache on every control-plane
//! update, which is when table state may change.
//!
//! Eviction is wholesale: when the cache reaches capacity the next insert
//! clears it. That is deterministic (no LRU clock, no random victim) and
//! matches how megaflow caches behave under churn — correctness never
//! depends on what happens to be cached.

use crate::meta::{Destination, StdMeta};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Default maximum number of cached flows.
pub const DEFAULT_FLOW_CACHE_CAPACITY: usize = 8192;

/// Pass-through hasher for keys that are already uniformly distributed.
///
/// Cache keys are [`FlowKey::hash64`](edp_packet::FlowKey::hash64) values
/// — FNV-mixed over the full 5-tuple — so re-hashing them through SipHash
/// on every probe would only add latency to the hot path. Identity is
/// safe here because the distribution (and any adversarial collision
/// question) is fixed at key-derivation time, not lookup time.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are expected; fold anything else conservatively.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type IdentityBuild = BuildHasherDefault<IdentityHasher>;

/// The memoized effect of one ingress-pipeline execution.
///
/// Exactly the fields an ingress program writes into [`StdMeta`]: the
/// forwarding decision, the scheduling rank, and the event metadata it
/// stages for enqueue/dequeue handlers. Replaying these is equivalent to
/// re-running the pipeline *provided* the program kept its cacheability
/// promise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedDecision {
    /// Forwarding decision (always `Destination::Port` — see
    /// [`FlowCache::admit`]).
    pub dest: Destination,
    /// Scheduling rank the program assigned.
    pub rank: u64,
    /// Event metadata the program staged.
    pub event_meta: [u64; 4],
}

impl CachedDecision {
    /// Captures the program-written fields from a completed ingress pass.
    pub fn capture(meta: &StdMeta) -> Self {
        CachedDecision {
            dest: meta.dest,
            rank: meta.rank,
            event_meta: meta.event_meta,
        }
    }

    /// Replays the decision onto a fresh packet's metadata.
    pub fn apply(&self, meta: &mut StdMeta) {
        meta.dest = self.dest;
        meta.rank = self.rank;
        meta.event_meta = self.event_meta;
    }
}

/// Hit/miss/churn counters for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowCacheStats {
    /// Lookups that replayed a cached decision.
    pub hits: u64,
    /// Lookups that fell through to the full pipeline.
    pub misses: u64,
    /// Decisions memoized.
    pub insertions: u64,
    /// Whole-cache invalidations (control-plane updates + capacity clears).
    pub invalidations: u64,
}

impl FlowCacheStats {
    /// Publishes the snapshot into the unified metrics registry under
    /// `scope` (conventionally the owning switch's `sw<N>`).
    pub fn publish(&self, reg: &mut edp_telemetry::Registry, scope: &str) {
        reg.set_counter("flow_cache_hits", scope, self.hits);
        reg.set_counter("flow_cache_misses", scope, self.misses);
        reg.set_counter("flow_cache_insertions", scope, self.insertions);
        reg.set_counter("flow_cache_invalidations", scope, self.invalidations);
    }
}

/// The cache proper: flow-hash → memoized decision.
#[derive(Debug, Clone)]
pub struct FlowCache {
    map: HashMap<u64, CachedDecision, IdentityBuild>,
    capacity: usize,
    stats: FlowCacheStats,
}

impl Default for FlowCache {
    fn default() -> Self {
        Self::new(DEFAULT_FLOW_CACHE_CAPACITY)
    }
}

impl FlowCache {
    /// Creates a cache bounded at `capacity` flows (min 1).
    pub fn new(capacity: usize) -> Self {
        FlowCache {
            map: HashMap::default(),
            capacity: capacity.max(1),
            stats: FlowCacheStats::default(),
        }
    }

    /// Looks up a flow hash, counting the hit or miss.
    pub fn lookup(&mut self, flow_hash: u64) -> Option<CachedDecision> {
        match self.map.get(&flow_hash) {
            Some(d) => {
                self.stats.hits += 1;
                Some(*d)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Probes once for a *run* of `run` packets sharing `flow_hash` (the
    /// burst fast path: one megaflow probe classifies the whole run).
    ///
    /// On a hit the decision applies to every packet of the run, so the
    /// hit counter is credited `run` at once — byte-identical to `run`
    /// sequential [`FlowCache::lookup`] hits. On a miss only the *first*
    /// packet is known to miss (the pipeline pass it triggers may admit
    /// the flow, turning the rest of the run into hits), so exactly one
    /// miss is counted and the caller re-probes for the remainder.
    pub fn lookup_run(&mut self, flow_hash: u64, run: u64) -> Option<CachedDecision> {
        debug_assert!(run >= 1, "a run has at least one packet");
        match self.map.get(&flow_hash) {
            Some(d) => {
                self.stats.hits += run;
                Some(*d)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Memoizes a completed ingress pass, if the decision is cacheable.
    ///
    /// Only unicast `Destination::Port` decisions are admitted: floods and
    /// recirculations have per-copy / multi-pass behaviour that a single
    /// replay cannot reproduce, and drops are cheap enough to re-derive.
    pub fn admit(&mut self, flow_hash: u64, meta: &StdMeta) {
        if !matches!(meta.dest, Destination::Port(_)) {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&flow_hash) {
            // Deterministic wholesale eviction.
            self.map.clear();
            self.stats.invalidations += 1;
        }
        self.map.insert(flow_hash, CachedDecision::capture(meta));
        self.stats.insertions += 1;
    }

    /// Drops every cached decision (control-plane update).
    pub fn invalidate_all(&mut self) {
        if !self.map.is_empty() {
            self.map.clear();
        }
        self.stats.invalidations += 1;
    }

    /// Number of currently cached flows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FlowCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edp_evsim::SimTime;

    fn meta_to(port: u8) -> StdMeta {
        let mut m = StdMeta::ingress(0, SimTime::ZERO, 100);
        m.dest = Destination::Port(port);
        m.rank = 7;
        m.event_meta = [1, 2, 3, 4];
        m
    }

    #[test]
    fn memoizes_and_replays() {
        let mut c = FlowCache::new(16);
        assert!(c.lookup(42).is_none());
        c.admit(42, &meta_to(3));
        let d = c.lookup(42).expect("hit");
        let mut fresh = StdMeta::ingress(1, SimTime::from_nanos(5), 64);
        d.apply(&mut fresh);
        assert_eq!(fresh.dest, Destination::Port(3));
        assert_eq!(fresh.rank, 7);
        assert_eq!(fresh.event_meta, [1, 2, 3, 4]);
        // Input-side fields are untouched.
        assert_eq!(fresh.ingress_port, 1);
        assert_eq!(fresh.pkt_len, 64);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lookup_run_credits_hits_like_sequential_probes() {
        // Sequential reference: 1 miss (first packet) + admit + 4 hits.
        let mut seq = FlowCache::new(16);
        assert!(seq.lookup(42).is_none());
        seq.admit(42, &meta_to(3));
        for _ in 0..4 {
            assert!(seq.lookup(42).is_some());
        }
        // Burst: one miss-probe for the 5-run, pipeline+admit, then one
        // run-probe covering the remaining 4.
        let mut burst = FlowCache::new(16);
        assert!(burst.lookup_run(42, 5).is_none());
        burst.admit(42, &meta_to(3));
        let d = burst.lookup_run(42, 4).expect("admitted mid-run");
        assert_eq!(d.dest, Destination::Port(3));
        assert_eq!(burst.stats(), seq.stats(), "stats byte-identical");
    }

    #[test]
    fn non_unicast_decisions_not_admitted() {
        let mut c = FlowCache::new(16);
        for dest in [
            Destination::Flood,
            Destination::Recirculate,
            Destination::Drop,
            Destination::Unspecified,
        ] {
            let mut m = meta_to(0);
            m.dest = dest;
            c.admit(99, &m);
        }
        assert!(c.is_empty());
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = FlowCache::new(16);
        c.admit(1, &meta_to(1));
        c.admit(2, &meta_to(2));
        assert_eq!(c.len(), 2);
        c.invalidate_all();
        assert!(c.is_empty());
        assert!(c.lookup(1).is_none());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn capacity_clear_is_wholesale_and_deterministic() {
        let mut c = FlowCache::new(2);
        c.admit(1, &meta_to(1));
        c.admit(2, &meta_to(2));
        c.admit(3, &meta_to(3)); // over capacity: clears, then inserts 3
        assert_eq!(c.len(), 1);
        assert!(c.lookup(3).is_some());
        assert!(c.lookup(1).is_none());
        // Re-admitting an already-cached flow at capacity must not clear.
        let mut c = FlowCache::new(1);
        c.admit(5, &meta_to(1));
        c.admit(5, &meta_to(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(5).map(|d| d.dest), Some(Destination::Port(2)));
    }
}
