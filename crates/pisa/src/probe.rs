//! Thread-local access recording for static analysis.
//!
//! `edp-analyze` derives the handler × register access matrix by invoking
//! each handler of an [`crate::PisaProgram`]/`EventProgram` once with
//! synthetic inputs while recording is armed. Every stateful extern
//! ([`crate::RegisterArray`], and through it `SharedRegister` and
//! `AggregatedState` in `edp-core`) reports its accesses here; the
//! analyzer then reasons about which handler *contexts* touch which
//! registers without simulating any traffic.
//!
//! Recording is off by default and costs one thread-local flag check per
//! register access when disarmed, so the data-path price is negligible.

use std::cell::{Cell, RefCell};

/// What a recorded register access did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeAccess {
    /// A plain read.
    Read,
    /// A plain write.
    Write,
    /// An atomic read-modify-write (one port transaction doing both).
    Rmw,
}

/// Which class of state primitive performed the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeClass {
    /// Direct register storage: [`crate::RegisterArray`], including the
    /// one inside a multiported `SharedRegister`. Writes land immediately,
    /// so concurrent handler contexts contend for ports.
    Plain,
    /// An aggregation register complex (`AggregatedState` / fold
    /// registers): event-side writes park in per-context aggregation
    /// arrays and fold during idle cycles, so multi-context writes are the
    /// design, not a hazard — provided the merge op tolerates reordering.
    Aggregated,
}

/// One recorded register access.
#[derive(Debug, Clone)]
pub struct ProbeRecord {
    /// Diagnostic name of the register that was accessed.
    pub register: String,
    /// State-primitive class performing the access.
    pub class: ProbeClass,
    /// What the access did.
    pub access: ProbeAccess,
    /// The handler context active when the access happened (set by the
    /// analyzer via [`set_context`]; empty outside any handler).
    pub context: &'static str,
}

/// A claimed accessor annotation (`edp-core`'s `Accessor` argument on
/// `SharedRegister` calls), recorded so the analyzer can cross-check the
/// claim against the context the access actually happened in.
#[derive(Debug, Clone)]
pub struct ProbeClaim {
    /// Register the claim was made against.
    pub register: String,
    /// The accessor class the program *claimed* ("packet", "enqueue",
    /// "dequeue" or "other").
    pub claimed: &'static str,
    /// The handler context the access actually ran in.
    pub context: &'static str,
}

/// One recorded frame emission: a packet left (or was queued to leave)
/// the switch on `port` while the probe was armed.
#[derive(Debug, Clone)]
pub struct ProbeEmission {
    /// Egress port the frame was destined to.
    pub port: u16,
    /// The innermost handler context active at the emission (the handler
    /// whose decision routed the frame).
    pub context: &'static str,
    /// The outermost context of the dispatch — the event that *entered*
    /// the switch and, possibly through a cascade (raise → user handler,
    /// generate → generated-packet pipeline), caused the emission.
    pub entry: &'static str,
}

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static CONTEXT: Cell<&'static str> = const { Cell::new("") };
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static RECORDS: RefCell<Vec<ProbeRecord>> = const { RefCell::new(Vec::new()) };
    static CLAIMS: RefCell<Vec<ProbeClaim>> = const { RefCell::new(Vec::new()) };
    static EMISSIONS: RefCell<Vec<ProbeEmission>> = const { RefCell::new(Vec::new()) };
}

/// Arms recording on this thread and clears any previous log.
pub fn arm() {
    ARMED.with(|a| a.set(true));
    CONTEXT.with(|c| c.set(""));
    STACK.with(|s| s.borrow_mut().clear());
    RECORDS.with(|r| r.borrow_mut().clear());
    CLAIMS.with(|c| c.borrow_mut().clear());
    EMISSIONS.with(|e| e.borrow_mut().clear());
}

/// Sets the handler context subsequent accesses are attributed to,
/// resetting any nested context stack to this single frame.
pub fn set_context(context: &'static str) {
    CONTEXT.with(|c| c.set(context));
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.clear();
        s.push(context);
    });
}

/// Pushes a nested handler context (a cascaded dispatch: a handler
/// raising an event whose handler runs inside it). The innermost frame
/// is what accesses are attributed to; the outermost is the `entry` of
/// any emission recorded meanwhile.
pub fn push_context(context: &'static str) {
    STACK.with(|s| s.borrow_mut().push(context));
    CONTEXT.with(|c| c.set(context));
}

/// Pops the innermost handler context pushed by [`push_context`].
pub fn pop_context() {
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.pop();
        CONTEXT.with(|c| c.set(s.last().copied().unwrap_or("")));
    });
}

/// The innermost active handler context (empty outside any handler).
pub fn context() -> &'static str {
    CONTEXT.with(|c| c.get())
}

/// The outermost active handler context — the event that entered the
/// switch (empty outside any handler).
pub fn entry() -> &'static str {
    STACK.with(|s| s.borrow().first().copied().unwrap_or(""))
}

/// Disarms recording and returns everything recorded since [`arm`]:
/// register accesses, accessor claims, and frame emissions.
pub fn disarm() -> (Vec<ProbeRecord>, Vec<ProbeClaim>, Vec<ProbeEmission>) {
    ARMED.with(|a| a.set(false));
    CONTEXT.with(|c| c.set(""));
    STACK.with(|s| s.borrow_mut().clear());
    (
        RECORDS.with(|r| std::mem::take(&mut *r.borrow_mut())),
        CLAIMS.with(|c| std::mem::take(&mut *c.borrow_mut())),
        EMISSIONS.with(|e| std::mem::take(&mut *e.borrow_mut())),
    )
}

/// True while recording is armed on this thread. The single flag check
/// every register access pays when analysis is *not* running.
#[inline]
pub fn armed() -> bool {
    ARMED.with(|a| a.get())
}

/// Records one register access. No-op unless [`arm`]ed.
#[inline]
pub fn record(register: &str, class: ProbeClass, access: ProbeAccess) {
    if !armed() {
        return;
    }
    let context = CONTEXT.with(|c| c.get());
    RECORDS.with(|r| {
        r.borrow_mut().push(ProbeRecord {
            register: register.to_string(),
            class,
            access,
            context,
        })
    });
}

/// Records one frame emission toward `port`. No-op unless [`arm`]ed.
/// Called by the switch models at the points where a routing decision
/// commits a frame to an egress queue.
#[inline]
pub fn record_emission(port: u16) {
    if !armed() {
        return;
    }
    EMISSIONS.with(|e| {
        e.borrow_mut().push(ProbeEmission {
            port,
            context: context(),
            entry: entry(),
        })
    });
}

/// Records an accessor-class claim. No-op unless [`arm`]ed.
#[inline]
pub fn record_claim(register: &str, claimed: &'static str) {
    if !armed() {
        return;
    }
    let context = CONTEXT.with(|c| c.get());
    CLAIMS.with(|c| {
        c.borrow_mut().push(ProbeClaim {
            register: register.to_string(),
            claimed,
            context,
        })
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_records_nothing() {
        record("x", ProbeClass::Plain, ProbeAccess::Read);
        record_emission(3);
        arm();
        let (records, claims, emissions) = disarm();
        assert!(records.is_empty());
        assert!(claims.is_empty());
        assert!(emissions.is_empty());
    }

    #[test]
    fn armed_records_with_context() {
        arm();
        set_context("enqueue");
        record("occ", ProbeClass::Plain, ProbeAccess::Rmw);
        record_claim("occ", "enqueue");
        set_context("ingress");
        record("occ", ProbeClass::Aggregated, ProbeAccess::Read);
        let (records, claims, _) = disarm();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].context, "enqueue");
        assert_eq!(records[0].access, ProbeAccess::Rmw);
        assert_eq!(records[1].context, "ingress");
        assert_eq!(records[1].class, ProbeClass::Aggregated);
        assert_eq!(claims.len(), 1);
        assert_eq!(claims[0].claimed, "enqueue");
        // Disarm cleared the log.
        record("occ", ProbeClass::Plain, ProbeAccess::Read);
        arm();
        let (records, _, _) = disarm();
        assert!(records.is_empty());
    }

    #[test]
    fn context_stack_attributes_innermost_and_entry() {
        arm();
        push_context("timer");
        record("cnt", ProbeClass::Plain, ProbeAccess::Read);
        push_context("user");
        record("cnt", ProbeClass::Plain, ProbeAccess::Write);
        record_emission(5);
        pop_context();
        record_emission(6);
        pop_context();
        assert_eq!(context(), "");
        let (records, _, emissions) = disarm();
        assert_eq!(records[0].context, "timer");
        assert_eq!(records[1].context, "user");
        assert_eq!(emissions.len(), 2);
        assert_eq!(emissions[0].port, 5);
        assert_eq!(emissions[0].context, "user");
        assert_eq!(emissions[0].entry, "timer");
        assert_eq!(emissions[1].context, "timer");
        assert_eq!(emissions[1].entry, "timer");
    }
}
