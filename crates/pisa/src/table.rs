//! Match-action tables.
//!
//! [`MatchTable<A>`] models a P4 table: a key schema (one [`MatchKind`]
//! per field), prioritized entries, and an action payload `A` chosen by
//! the control plane. Key fields are `u64` (wide enough for every header
//! field the apps match on). Lookup semantics follow P4 targets:
//!
//! * all-exact tables resolve via a hash map (O(1));
//! * single-field LPM tables with uniform priority resolve via
//!   per-prefix-length hash buckets probed longest-first (O(#distinct
//!   prefix lengths), independent of entry count);
//! * everything else scans entries in descending-priority order with an
//!   early exit once no remaining entry can beat the current winner
//!   (highest numeric priority wins; ties resolve by total matched LPM
//!   bits, then install order).
//!
//! All three paths return bit-for-bit the same winner as a naive full
//! scan; the index is an acceleration structure, never a semantic change.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::HashMap;

/// How one key field matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchKind {
    /// Field must equal the entry value.
    Exact,
    /// Longest-prefix match on the low `width` bits.
    Lpm {
        /// Field width in bits (for prefix semantics).
        width: u8,
    },
    /// Value/mask match.
    Ternary,
    /// Inclusive range match.
    Range,
}

/// One field of an entry's match key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldMatch {
    /// Matches exactly this value.
    Exact(u64),
    /// Matches when the top `prefix_len` bits (of the field's width) agree.
    Lpm {
        /// Prefix value (already masked).
        value: u64,
        /// Number of significant leading bits.
        prefix_len: u8,
    },
    /// Matches when `key & mask == value & mask`.
    Ternary {
        /// Comparison value.
        value: u64,
        /// Significant-bit mask.
        mask: u64,
    },
    /// Matches when `lo <= key <= hi`.
    Range {
        /// Low bound (inclusive).
        lo: u64,
        /// High bound (inclusive).
        hi: u64,
    },
    /// Wildcard: matches anything (ternary with mask 0).
    Any,
}

impl FieldMatch {
    fn matches(&self, kind: MatchKind, key: u64) -> bool {
        match (self, kind) {
            (FieldMatch::Exact(v), _) => key == *v,
            (FieldMatch::Lpm { value, prefix_len }, MatchKind::Lpm { width }) => {
                let width = width as u32;
                let plen = *prefix_len as u32;
                debug_assert!(plen <= width);
                if plen == 0 {
                    return true;
                }
                let shift = width - plen;
                (key >> shift) == (value >> shift)
            }
            (FieldMatch::Ternary { value, mask }, _) => key & mask == value & mask,
            (FieldMatch::Range { lo, hi }, _) => (*lo..=*hi).contains(&key),
            (FieldMatch::Any, _) => true,
            // An LPM FieldMatch against a non-LPM column: treat the prefix
            // length as exact when full-width, else reject loudly in debug.
            (FieldMatch::Lpm { value, .. }, _) => key == *value,
        }
    }
}

/// A table entry: per-field matches, a priority, and an action payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableEntry<A> {
    /// One match per key field, in schema order.
    pub fields: Vec<FieldMatch>,
    /// Higher wins among multiple matches.
    pub priority: i64,
    /// The action data returned on hit.
    pub action: A,
}

/// A rejected table mutation (see [`MatchTable::try_insert`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The entry's field count doesn't match the key schema.
    ArityMismatch {
        /// Diagnostic table name.
        table: String,
        /// Schema arity.
        expected: usize,
        /// Entry arity.
        got: usize,
    },
    /// A non-exact match aimed at an all-exact table; serving it would
    /// demote the hash index to a linear scan.
    NonExactField {
        /// Diagnostic table name.
        table: String,
        /// Index of the offending field (schema order).
        field: usize,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "table {table}: entry arity {got} != schema arity {expected}"
            ),
            TableError::NonExactField { table, field } => write!(
                f,
                "table {table}: non-exact match in field {field} of an all-exact table"
            ),
        }
    }
}

impl std::error::Error for TableError {}

/// Per-prefix-length hash buckets for a single-field LPM table.
///
/// Eligible while every installed entry is `FieldMatch::Lpm` at one shared
/// priority (the common case: routes installed with priority 0 and
/// longest-prefix ordering left to the table). The moment an entry breaks
/// that shape the table silently demotes itself to the sorted scan path —
/// correctness never depends on the index staying eligible.
#[derive(Debug, Clone)]
struct LpmIndex {
    width: u8,
    /// Priority shared by every indexed entry (None until the first insert).
    uniform_priority: Option<i64>,
    /// `(prefix_len, masked-prefix → entry index)`, sorted longest-first.
    /// Only prefix lengths ≥ 1 live here; duplicates keep the first install.
    buckets: Vec<(u8, HashMap<u64, usize>)>,
    /// The /0 catch-all (first installed), probed last.
    default: Option<usize>,
}

impl LpmIndex {
    fn new(width: u8) -> Self {
        LpmIndex {
            width,
            uniform_priority: None,
            buckets: Vec::new(),
            default: None,
        }
    }

    fn add(&mut self, idx: usize, value: u64, prefix_len: u8, priority: i64) {
        self.uniform_priority = Some(priority);
        if prefix_len == 0 {
            if self.default.is_none() {
                self.default = Some(idx);
            }
            return;
        }
        let shift = self.width as u32 - prefix_len as u32;
        let pos = self.buckets.partition_point(|(p, _)| *p > prefix_len);
        if self.buckets.get(pos).map(|(p, _)| *p) != Some(prefix_len) {
            self.buckets.insert(pos, (prefix_len, HashMap::new()));
        }
        // First install wins on duplicate prefixes, matching the scan
        // path's earliest-index tie-break.
        self.buckets[pos].1.entry(value >> shift).or_insert(idx);
    }

    fn lookup(&self, key: u64) -> Option<usize> {
        for (plen, bucket) in &self.buckets {
            let shift = self.width as u32 - *plen as u32;
            if let Some(&i) = bucket.get(&(key >> shift)) {
                return Some(i);
            }
        }
        self.default
    }
}

/// The acceleration structure backing [`MatchTable::lookup`].
#[derive(Debug, Clone)]
enum Index {
    /// All-exact schema: key fields → entry index.
    Exact(HashMap<Vec<u64>, usize>),
    /// Single-field LPM schema with uniform priority.
    Lpm(LpmIndex),
    /// Entry indices sorted by (priority desc, install order asc).
    Scan(Vec<usize>),
}

/// Hit/miss snapshot of one [`MatchTable::lookup_burst`] call, tagged
/// with the table generation the burst was probed under.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookupBurstStats {
    /// Keys in the burst that matched an entry.
    pub hits: u64,
    /// Keys in the burst that matched nothing.
    pub misses: u64,
    /// [`MatchTable::generation`] at probe time; a cached burst result is
    /// stale once the live table's generation moves past this.
    pub generation: u64,
}

/// A match-action table with key schema and entries.
#[derive(Debug, Clone)]
pub struct MatchTable<A> {
    name: String,
    schema: Vec<MatchKind>,
    entries: Vec<TableEntry<A>>,
    index: Index,
    /// Bumped on every mutation; lets callers (e.g. flow caches) detect
    /// control-plane churn without hooking each write path.
    generation: u64,
    /// Interior-mutable so [`lookup`](Self::lookup) works through `&self`
    /// (read-only probing by the analyzer; lookups are observations, not
    /// mutations — they never bump the generation).
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl<A> MatchTable<A> {
    /// Creates an empty table with the given key schema.
    pub fn new(name: impl Into<String>, schema: Vec<MatchKind>) -> Self {
        let index = if schema.iter().all(|k| matches!(k, MatchKind::Exact)) {
            Index::Exact(HashMap::new())
        } else if let [MatchKind::Lpm { width }] = schema[..] {
            Index::Lpm(LpmIndex::new(width))
        } else {
            Index::Scan(Vec::new())
        };
        MatchTable {
            name: name.into(),
            schema,
            entries: Vec::new(),
            index,
            generation: 0,
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mutation counter: bumped by [`insert`](Self::insert),
    /// [`remove_where`](Self::remove_where) and [`clear`](Self::clear).
    /// Anything derived from lookup results (flow caches, compiled
    /// fast paths) is stale once this moves.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Installs an entry. For a single-field LPM table, pass priority 0 and
    /// longest-prefix ordering is handled internally (prefix length is the
    /// effective priority). Replaces an identical-key exact entry.
    ///
    /// A non-exact match installed into an all-exact table demotes the
    /// table to the sorted scan path (same rule as LPM ineligibility) —
    /// the hash index simply can't serve wildcards, but the entry is
    /// semantically fine. Use [`try_insert`](Self::try_insert) to reject
    /// such entries instead, and `edp-analyze` (EDP-E006) to flag them
    /// statically.
    ///
    /// # Panics
    /// Panics if the entry's field count doesn't match the schema.
    pub fn insert(&mut self, entry: TableEntry<A>) {
        assert_eq!(
            entry.fields.len(),
            self.schema.len(),
            "entry arity != schema arity in table {}",
            self.name
        );
        self.generation += 1;
        self.insert_indexed(entry);
    }

    /// Installs an entry, rejecting shapes the table cannot take with a
    /// typed [`TableError`] instead of panicking or silently degrading:
    /// arity mismatches, and non-exact matches aimed at an all-exact
    /// table (which [`insert`](Self::insert) would accept by demoting the
    /// index). On `Err` the table is untouched — not even the generation
    /// moves.
    pub fn try_insert(&mut self, entry: TableEntry<A>) -> Result<(), TableError> {
        if entry.fields.len() != self.schema.len() {
            return Err(TableError::ArityMismatch {
                table: self.name.clone(),
                expected: self.schema.len(),
                got: entry.fields.len(),
            });
        }
        if matches!(self.index, Index::Exact(_)) {
            if let Some(field) = entry
                .fields
                .iter()
                .position(|f| !matches!(f, FieldMatch::Exact(_)))
            {
                return Err(TableError::NonExactField {
                    table: self.name.clone(),
                    field,
                });
            }
        }
        self.generation += 1;
        self.insert_indexed(entry);
        Ok(())
    }

    /// The index-maintaining tail of insertion; arity already checked.
    fn insert_indexed(&mut self, entry: TableEntry<A>) {
        if let Index::Exact(idx) = &mut self.index {
            if entry
                .fields
                .iter()
                .all(|f| matches!(f, FieldMatch::Exact(_)))
            {
                let key: Vec<u64> = entry
                    .fields
                    .iter()
                    .map(|f| match f {
                        FieldMatch::Exact(v) => *v,
                        _ => unreachable!("checked all-exact above"),
                    })
                    .collect();
                if let Some(&i) = idx.get(&key) {
                    self.entries[i] = entry;
                } else {
                    idx.insert(key, self.entries.len());
                    self.entries.push(entry);
                }
                return;
            }
            // Reachable from control-plane rule installs: a wildcard/range
            // aimed at an exact table. The scan path evaluates any
            // `FieldMatch` against any column kind, so demote rather than
            // abort the process.
            self.demote_to_scan();
        }
        if let Index::Lpm(lpm) = &self.index {
            let eligible = matches!(entry.fields[0], FieldMatch::Lpm { .. })
                && lpm.uniform_priority.is_none_or(|p| p == entry.priority);
            if !eligible {
                self.demote_to_scan();
            }
        }
        let idx = self.entries.len();
        match &mut self.index {
            Index::Exact(_) => unreachable!("handled or demoted above"),
            Index::Lpm(lpm) => {
                let FieldMatch::Lpm { value, prefix_len } = entry.fields[0] else {
                    unreachable!("eligibility checked above");
                };
                lpm.add(idx, value, prefix_len, entry.priority);
            }
            Index::Scan(order) => {
                let entries = &self.entries;
                let pos = order.partition_point(|&i| entries[i].priority >= entry.priority);
                order.insert(pos, idx);
            }
        }
        self.entries.push(entry);
    }

    /// Convenience: installs an all-exact entry.
    pub fn insert_exact(&mut self, key: &[u64], action: A) {
        self.insert(TableEntry {
            fields: key.iter().map(|&v| FieldMatch::Exact(v)).collect(),
            priority: 0,
            action,
        });
    }

    /// Looks up `key`, returning the winning entry's action.
    ///
    /// # Panics
    /// Panics if `key` arity doesn't match the schema.
    pub fn lookup(&self, key: &[u64]) -> Option<&A> {
        assert_eq!(key.len(), self.schema.len(), "key arity mismatch");
        match self.lookup_index(key) {
            Some(i) => {
                self.hits.set(self.hits.get().saturating_add(1));
                Some(&self.entries[i].action)
            }
            None => {
                self.misses.set(self.misses.get().saturating_add(1));
                None
            }
        }
    }

    /// Looks up a whole burst of keys in one pass, writing each key's
    /// winning action (or `None`) into `out` in key order.
    ///
    /// The per-lookup bookkeeping is hoisted out of the loop: arity is
    /// checked once against the shared schema, hit/miss counts accumulate
    /// in locals with a single (saturating) counter update at the end, and
    /// the returned [`LookupBurstStats`] snapshots the burst alongside the
    /// table generation it was probed under — callers caching burst
    /// results can compare generations instead of re-probing.
    ///
    /// # Panics
    /// Panics if any key's arity doesn't match the schema.
    pub fn lookup_burst<'a>(
        &'a self,
        keys: &[&[u64]],
        out: &mut Vec<Option<&'a A>>,
    ) -> LookupBurstStats {
        let arity = self.schema.len();
        assert!(
            keys.iter().all(|k| k.len() == arity),
            "key arity mismatch in burst"
        );
        out.clear();
        out.reserve(keys.len());
        let (mut hits, mut misses) = (0u64, 0u64);
        for key in keys {
            match self.lookup_index(key) {
                Some(i) => {
                    hits += 1;
                    out.push(Some(&self.entries[i].action));
                }
                None => {
                    misses += 1;
                    out.push(None);
                }
            }
        }
        self.hits.set(self.hits.get().saturating_add(hits));
        self.misses.set(self.misses.get().saturating_add(misses));
        LookupBurstStats {
            hits,
            misses,
            generation: self.generation,
        }
    }

    fn lookup_index(&self, key: &[u64]) -> Option<usize> {
        match &self.index {
            Index::Exact(idx) => idx.get(key).copied(),
            Index::Lpm(lpm) => lpm.lookup(key[0]),
            Index::Scan(order) => self.scan_lookup(order, key),
        }
    }

    /// Priority-ordered scan. `order` holds entry indices sorted by
    /// (priority desc, install order asc), so once a match exists no entry
    /// at strictly lower priority can win and the loop exits early; the
    /// remainder of the equal-priority run is still examined to maximize
    /// matched LPM bits (then earliest install, which iteration order
    /// gives for free).
    fn scan_lookup(&self, order: &[usize], key: &[u64]) -> Option<usize> {
        let mut best: Option<(i64, i64, usize)> = None; // (priority, lpm_bits, idx)
        'entry: for &i in order {
            let e = &self.entries[i];
            if let Some((bp, _, _)) = best {
                if e.priority < bp {
                    break;
                }
            }
            let mut lpm_bits = 0i64;
            for ((fm, &kind), &k) in e.fields.iter().zip(&self.schema).zip(key) {
                if !fm.matches(kind, k) {
                    continue 'entry;
                }
                if let FieldMatch::Lpm { prefix_len, .. } = fm {
                    lpm_bits += *prefix_len as i64;
                }
            }
            match best {
                None => best = Some((e.priority, lpm_bits, i)),
                Some((_, bl, _)) if lpm_bits > bl => best = Some((e.priority, lpm_bits, i)),
                Some(_) => {}
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Rebuilds the sorted scan order from scratch and switches to it.
    fn demote_to_scan(&mut self) {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.entries[i].priority), i));
        self.index = Index::Scan(order);
    }

    /// Rebuilds whichever index is active from the current entry list
    /// (after bulk removal).
    fn rebuild_index(&mut self) {
        match &mut self.index {
            Index::Exact(idx) => {
                idx.clear();
                for (i, e) in self.entries.iter().enumerate() {
                    let key: Vec<u64> = e
                        .fields
                        .iter()
                        .map(|f| match f {
                            FieldMatch::Exact(v) => *v,
                            _ => unreachable!("all-exact invariant"),
                        })
                        .collect();
                    idx.insert(key, i);
                }
            }
            Index::Lpm(lpm) => {
                let mut fresh = LpmIndex::new(lpm.width);
                for (i, e) in self.entries.iter().enumerate() {
                    let FieldMatch::Lpm { value, prefix_len } = e.fields[0] else {
                        unreachable!("lpm eligibility invariant");
                    };
                    fresh.add(i, value, prefix_len, e.priority);
                }
                *lpm = fresh;
            }
            Index::Scan(_) => self.demote_to_scan(),
        }
    }

    /// Removes entries whose action matches a predicate; returns how many
    /// were removed. (Control-plane flow removal.)
    pub fn remove_where(&mut self, pred: impl Fn(&TableEntry<A>) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !pred(e));
        self.generation += 1;
        self.rebuild_index();
        before - self.entries.len()
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.generation += 1;
        self.rebuild_index();
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// The key schema, one [`MatchKind`] per field.
    pub fn schema(&self) -> &[MatchKind] {
        &self.schema
    }

    /// The installed entries, in install order.
    pub fn entries(&self) -> &[TableEntry<A>] {
        &self.entries
    }

    /// An action-erased snapshot of the table for rule analysis
    /// (`edp-analyze` works on shapes so it needs no knowledge of `A`).
    pub fn shape(&self) -> TableShape {
        TableShape {
            name: self.name.clone(),
            schema: self.schema.clone(),
            entries: self
                .entries
                .iter()
                .map(|e| ShapeEntry {
                    fields: e.fields.clone(),
                    priority: e.priority,
                })
                .collect(),
        }
    }
}

/// An action-erased snapshot of a [`MatchTable`]: schema plus the match
/// side of every entry, in install order. This is what rule-level static
/// analysis (shadowing, duplicate prefixes, missing default) consumes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableShape {
    /// Diagnostic table name.
    pub name: String,
    /// Key schema.
    pub schema: Vec<MatchKind>,
    /// Match side of each entry, in install order.
    pub entries: Vec<ShapeEntry>,
}

/// The match side of one installed entry (see [`TableShape`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShapeEntry {
    /// One match per key field, in schema order.
    pub fields: Vec<FieldMatch>,
    /// Entry priority (higher wins).
    pub priority: i64,
}

/// Builds an IPv4 LPM route table schema (single 32-bit LPM field).
pub fn ipv4_lpm_schema() -> Vec<MatchKind> {
    vec![MatchKind::Lpm { width: 32 }]
}

/// Helper to install an IPv4 prefix route into a single-LPM-field table.
pub fn insert_ipv4_route<A>(
    table: &mut MatchTable<A>,
    addr: std::net::Ipv4Addr,
    prefix_len: u8,
    action: A,
) {
    assert!(prefix_len <= 32);
    let value = u32::from(addr) as u64;
    table.insert(TableEntry {
        fields: vec![FieldMatch::Lpm { value, prefix_len }],
        priority: 0,
        action,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn exact_table_hit_miss() {
        let mut t: MatchTable<&str> = MatchTable::new("mac", vec![MatchKind::Exact]);
        t.insert_exact(&[42], "port1");
        assert_eq!(t.lookup(&[42]), Some(&"port1"));
        assert_eq!(t.lookup(&[43]), None);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lookup_burst_matches_sequential_and_snapshots_stats() {
        let mut t: MatchTable<&str> = MatchTable::new("routes", ipv4_lpm_schema());
        insert_ipv4_route(&mut t, Ipv4Addr::new(10, 0, 0, 0), 8, "coarse");
        insert_ipv4_route(&mut t, Ipv4Addr::new(10, 1, 0, 0), 16, "fine");
        let keys: Vec<Vec<u64>> = [
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(10, 9, 2, 3),
            Ipv4Addr::new(192, 168, 0, 1),
            Ipv4Addr::new(10, 1, 0, 1),
        ]
        .iter()
        .map(|a| vec![u32::from(*a) as u64])
        .collect();
        let refs: Vec<&[u64]> = keys.iter().map(|k| k.as_slice()).collect();
        let mut out = Vec::new();
        let stats = t.lookup_burst(&refs, &mut out);
        assert_eq!(
            out,
            vec![Some(&"fine"), Some(&"coarse"), None, Some(&"fine")]
        );
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.generation, t.generation());
        // The burst feeds the same cumulative counters as per-key lookups.
        assert_eq!(t.hits(), 3);
        assert_eq!(t.misses(), 1);
        // A mutation after the probe makes the snapshot's generation stale.
        insert_ipv4_route(&mut t, Ipv4Addr::new(0, 0, 0, 0), 0, "default");
        assert!(t.generation() > stats.generation);
    }

    #[test]
    fn hit_miss_counters_saturate_instead_of_wrapping() {
        let mut t: MatchTable<&str> = MatchTable::new("mac", vec![MatchKind::Exact]);
        t.insert_exact(&[42], "port1");
        t.hits.set(u64::MAX);
        t.misses.set(u64::MAX - 1);
        assert_eq!(t.lookup(&[42]), Some(&"port1"));
        assert_eq!(t.hits(), u64::MAX, "hit counter pegs at the ceiling");
        assert_eq!(t.lookup(&[43]), None);
        assert_eq!(t.lookup(&[43]), None);
        assert_eq!(t.misses(), u64::MAX, "miss counter pegs at the ceiling");
        let mut out = Vec::new();
        let stats = t.lookup_burst(&[&[42u64][..], &[43u64][..]], &mut out);
        assert_eq!((t.hits(), t.misses()), (u64::MAX, u64::MAX));
        assert_eq!((stats.hits, stats.misses), (1, 1), "snapshot is per-burst");
    }

    #[test]
    fn exact_replaces_duplicate_key() {
        let mut t: MatchTable<u32> = MatchTable::new("x", vec![MatchKind::Exact]);
        t.insert_exact(&[1], 10);
        t.insert_exact(&[1], 20);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&[1]), Some(&20));
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let mut t: MatchTable<&str> = MatchTable::new("routes", ipv4_lpm_schema());
        insert_ipv4_route(&mut t, Ipv4Addr::new(10, 0, 0, 0), 8, "coarse");
        insert_ipv4_route(&mut t, Ipv4Addr::new(10, 1, 0, 0), 16, "fine");
        insert_ipv4_route(&mut t, Ipv4Addr::new(0, 0, 0, 0), 0, "default");
        let key = |a: Ipv4Addr| vec![u32::from(a) as u64];
        assert_eq!(t.lookup(&key(Ipv4Addr::new(10, 1, 2, 3))), Some(&"fine"));
        assert_eq!(t.lookup(&key(Ipv4Addr::new(10, 9, 2, 3))), Some(&"coarse"));
        assert_eq!(
            t.lookup(&key(Ipv4Addr::new(192, 168, 0, 1))),
            Some(&"default")
        );
    }

    #[test]
    fn lpm_duplicate_prefix_first_install_wins() {
        let mut t: MatchTable<&str> = MatchTable::new("routes", ipv4_lpm_schema());
        insert_ipv4_route(&mut t, Ipv4Addr::new(10, 0, 0, 0), 8, "first");
        insert_ipv4_route(&mut t, Ipv4Addr::new(10, 0, 0, 0), 8, "second");
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.lookup(&[u32::from(Ipv4Addr::new(10, 5, 5, 5)) as u64]),
            Some(&"first")
        );
    }

    #[test]
    fn lpm_mixed_priority_demotes_to_scan() {
        // Differing priorities break bucket eligibility; the table must
        // fall back to the scan path and honour priority over prefix len.
        let mut t: MatchTable<&str> = MatchTable::new("routes", ipv4_lpm_schema());
        insert_ipv4_route(&mut t, Ipv4Addr::new(10, 1, 0, 0), 16, "fine");
        t.insert(TableEntry {
            fields: vec![FieldMatch::Lpm {
                value: u32::from(Ipv4Addr::new(10, 0, 0, 0)) as u64,
                prefix_len: 8,
            }],
            priority: 100,
            action: "pinned",
        });
        assert_eq!(
            t.lookup(&[u32::from(Ipv4Addr::new(10, 1, 2, 3)) as u64]),
            Some(&"pinned")
        );
    }

    #[test]
    fn lpm_wildcard_field_demotes_to_scan() {
        let mut t: MatchTable<&str> = MatchTable::new("routes", ipv4_lpm_schema());
        insert_ipv4_route(&mut t, Ipv4Addr::new(10, 1, 0, 0), 16, "fine");
        t.insert(TableEntry {
            fields: vec![FieldMatch::Any],
            priority: 0,
            action: "wild",
        });
        // Longest prefix still beats the wildcard (more matched LPM bits).
        assert_eq!(
            t.lookup(&[u32::from(Ipv4Addr::new(10, 1, 2, 3)) as u64]),
            Some(&"fine")
        );
        assert_eq!(
            t.lookup(&[u32::from(Ipv4Addr::new(192, 168, 0, 1)) as u64]),
            Some(&"wild")
        );
    }

    #[test]
    fn ternary_priority() {
        let mut t: MatchTable<&str> = MatchTable::new("acl", vec![MatchKind::Ternary]);
        t.insert(TableEntry {
            fields: vec![FieldMatch::Ternary {
                value: 0x80,
                mask: 0x80,
            }],
            priority: 10,
            action: "high-bit",
        });
        t.insert(TableEntry {
            fields: vec![FieldMatch::Any],
            priority: 1,
            action: "any",
        });
        assert_eq!(t.lookup(&[0xFF]), Some(&"high-bit"));
        assert_eq!(t.lookup(&[0x01]), Some(&"any"));
    }

    #[test]
    fn ternary_priority_order_independent_of_install_order() {
        // Low priority installed first: the sorted scan must still pick
        // the higher-priority entry, and early exit must not skip it.
        let mut t: MatchTable<&str> = MatchTable::new("acl", vec![MatchKind::Ternary]);
        t.insert(TableEntry {
            fields: vec![FieldMatch::Any],
            priority: 1,
            action: "any",
        });
        t.insert(TableEntry {
            fields: vec![FieldMatch::Ternary {
                value: 0x80,
                mask: 0x80,
            }],
            priority: 10,
            action: "high-bit",
        });
        assert_eq!(t.lookup(&[0xFF]), Some(&"high-bit"));
        assert_eq!(t.lookup(&[0x01]), Some(&"any"));
    }

    #[test]
    fn range_match() {
        let mut t: MatchTable<&str> = MatchTable::new("ports", vec![MatchKind::Range]);
        t.insert(TableEntry {
            fields: vec![FieldMatch::Range { lo: 1000, hi: 2000 }],
            priority: 0,
            action: "mid",
        });
        assert_eq!(t.lookup(&[1000]), Some(&"mid"));
        assert_eq!(t.lookup(&[2000]), Some(&"mid"));
        assert_eq!(t.lookup(&[2001]), None);
    }

    #[test]
    fn multi_field_key() {
        // (exact dst, range port) — a small ACL.
        let mut t: MatchTable<u8> =
            MatchTable::new("acl2", vec![MatchKind::Exact, MatchKind::Range]);
        t.insert(TableEntry {
            fields: vec![FieldMatch::Exact(7), FieldMatch::Range { lo: 0, hi: 1023 }],
            priority: 5,
            action: 1,
        });
        assert_eq!(t.lookup(&[7, 80]), Some(&1));
        assert_eq!(t.lookup(&[7, 8080]), None);
        assert_eq!(t.lookup(&[8, 80]), None);
    }

    #[test]
    fn remove_where_rebuilds_exact_index() {
        let mut t: MatchTable<u32> = MatchTable::new("x", vec![MatchKind::Exact]);
        for i in 0..10u64 {
            t.insert_exact(&[i], i as u32);
        }
        let removed = t.remove_where(|e| e.action % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(t.lookup(&[3]), Some(&3));
        assert_eq!(t.lookup(&[4]), None);
    }

    #[test]
    fn remove_where_rebuilds_lpm_buckets() {
        let mut t: MatchTable<&str> = MatchTable::new("routes", ipv4_lpm_schema());
        insert_ipv4_route(&mut t, Ipv4Addr::new(10, 0, 0, 0), 8, "coarse");
        insert_ipv4_route(&mut t, Ipv4Addr::new(10, 1, 0, 0), 16, "fine");
        let removed = t.remove_where(|e| e.action == "fine");
        assert_eq!(removed, 1);
        assert_eq!(
            t.lookup(&[u32::from(Ipv4Addr::new(10, 1, 2, 3)) as u64]),
            Some(&"coarse")
        );
    }

    #[test]
    fn install_order_breaks_ties() {
        let mut t: MatchTable<&str> = MatchTable::new("tie", vec![MatchKind::Ternary]);
        t.insert(TableEntry {
            fields: vec![FieldMatch::Any],
            priority: 0,
            action: "first",
        });
        t.insert(TableEntry {
            fields: vec![FieldMatch::Any],
            priority: 0,
            action: "second",
        });
        assert_eq!(t.lookup(&[1]), Some(&"first"));
    }

    #[test]
    fn generation_tracks_mutations() {
        let mut t: MatchTable<u8> = MatchTable::new("g", vec![MatchKind::Exact]);
        let g0 = t.generation();
        t.insert_exact(&[1], 1);
        assert!(t.generation() > g0);
        let g1 = t.generation();
        t.lookup(&[1]);
        assert_eq!(t.generation(), g1, "lookups must not bump the generation");
        t.remove_where(|_| true);
        assert!(t.generation() > g1);
        let g2 = t.generation();
        t.clear();
        assert!(t.generation() > g2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let t: MatchTable<u8> = MatchTable::new("a", vec![MatchKind::Exact]);
        t.lookup(&[1, 2]);
    }

    #[test]
    fn non_exact_entry_demotes_exact_table_instead_of_panicking() {
        // Regression: this configuration used to abort the whole process
        // with "non-exact match ... in all-exact table".
        let mut t: MatchTable<&str> = MatchTable::new("mac", vec![MatchKind::Exact]);
        t.insert_exact(&[42], "port1");
        t.insert(TableEntry {
            fields: vec![FieldMatch::Any],
            priority: -1,
            action: "flood",
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(&[42]), Some(&"port1"), "exact entry still wins");
        assert_eq!(t.lookup(&[7]), Some(&"flood"), "wildcard now reachable");
    }

    #[test]
    fn try_insert_rejects_non_exact_without_mutating() {
        let mut t: MatchTable<&str> = MatchTable::new("mac", vec![MatchKind::Exact]);
        t.insert_exact(&[42], "port1");
        let g = t.generation();
        let err = t
            .try_insert(TableEntry {
                fields: vec![FieldMatch::Range { lo: 0, hi: 10 }],
                priority: 0,
                action: "bad",
            })
            .expect_err("non-exact into exact table must be rejected");
        assert_eq!(
            err,
            TableError::NonExactField {
                table: "mac".into(),
                field: 0
            }
        );
        assert!(err.to_string().contains("all-exact"));
        assert_eq!(t.generation(), g, "rejected insert must not mutate");
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.lookup(&[42]),
            Some(&"port1"),
            "index still exact and live"
        );
    }

    #[test]
    fn try_insert_rejects_arity_mismatch_and_accepts_good_entries() {
        let mut t: MatchTable<u8> =
            MatchTable::new("pair", vec![MatchKind::Exact, MatchKind::Exact]);
        let err = t
            .try_insert(TableEntry {
                fields: vec![FieldMatch::Exact(1)],
                priority: 0,
                action: 1,
            })
            .expect_err("arity mismatch");
        assert!(matches!(
            err,
            TableError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
        t.try_insert(TableEntry {
            fields: vec![FieldMatch::Exact(1), FieldMatch::Exact(2)],
            priority: 0,
            action: 9,
        })
        .expect("well-formed entry");
        assert_eq!(t.lookup(&[1, 2]), Some(&9));
    }

    #[test]
    fn try_insert_allows_non_exact_on_scan_tables() {
        let mut t: MatchTable<&str> = MatchTable::new("acl", vec![MatchKind::Ternary]);
        t.try_insert(TableEntry {
            fields: vec![FieldMatch::Any],
            priority: 0,
            action: "any",
        })
        .expect("scan tables take any match kind");
        assert_eq!(t.lookup(&[5]), Some(&"any"));
    }
}
