//! Match-action tables.
//!
//! [`MatchTable<A>`] models a P4 table: a key schema (one [`MatchKind`]
//! per field), prioritized entries, and an action payload `A` chosen by
//! the control plane. Key fields are `u64` (wide enough for every header
//! field the apps match on). Lookup semantics follow P4 targets:
//!
//! * all-exact tables resolve via a hash map (O(1));
//! * tables containing LPM/ternary/range fields scan entries in priority
//!   order (highest numeric priority wins; for a single LPM field the
//!   prefix length is folded into the priority, so longest prefix wins).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How one key field matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchKind {
    /// Field must equal the entry value.
    Exact,
    /// Longest-prefix match on the low `width` bits.
    Lpm {
        /// Field width in bits (for prefix semantics).
        width: u8,
    },
    /// Value/mask match.
    Ternary,
    /// Inclusive range match.
    Range,
}

/// One field of an entry's match key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldMatch {
    /// Matches exactly this value.
    Exact(u64),
    /// Matches when the top `prefix_len` bits (of the field's width) agree.
    Lpm {
        /// Prefix value (already masked).
        value: u64,
        /// Number of significant leading bits.
        prefix_len: u8,
    },
    /// Matches when `key & mask == value & mask`.
    Ternary {
        /// Comparison value.
        value: u64,
        /// Significant-bit mask.
        mask: u64,
    },
    /// Matches when `lo <= key <= hi`.
    Range {
        /// Low bound (inclusive).
        lo: u64,
        /// High bound (inclusive).
        hi: u64,
    },
    /// Wildcard: matches anything (ternary with mask 0).
    Any,
}

impl FieldMatch {
    fn matches(&self, kind: MatchKind, key: u64) -> bool {
        match (self, kind) {
            (FieldMatch::Exact(v), _) => key == *v,
            (FieldMatch::Lpm { value, prefix_len }, MatchKind::Lpm { width }) => {
                let width = width as u32;
                let plen = *prefix_len as u32;
                debug_assert!(plen <= width);
                if plen == 0 {
                    return true;
                }
                let shift = width - plen;
                (key >> shift) == (value >> shift)
            }
            (FieldMatch::Ternary { value, mask }, _) => key & mask == value & mask,
            (FieldMatch::Range { lo, hi }, _) => (*lo..=*hi).contains(&key),
            (FieldMatch::Any, _) => true,
            // An LPM FieldMatch against a non-LPM column: treat the prefix
            // length as exact when full-width, else reject loudly in debug.
            (FieldMatch::Lpm { value, .. }, _) => key == *value,
        }
    }
}

/// A table entry: per-field matches, a priority, and an action payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableEntry<A> {
    /// One match per key field, in schema order.
    pub fields: Vec<FieldMatch>,
    /// Higher wins among multiple matches.
    pub priority: i64,
    /// The action data returned on hit.
    pub action: A,
}

/// A match-action table with key schema and entries.
#[derive(Debug, Clone)]
pub struct MatchTable<A> {
    name: String,
    schema: Vec<MatchKind>,
    entries: Vec<TableEntry<A>>,
    /// Fast path for all-exact tables: key fields → entry index.
    exact_index: Option<HashMap<Vec<u64>, usize>>,
    hits: u64,
    misses: u64,
}

impl<A> MatchTable<A> {
    /// Creates an empty table with the given key schema.
    pub fn new(name: impl Into<String>, schema: Vec<MatchKind>) -> Self {
        let all_exact = schema.iter().all(|k| matches!(k, MatchKind::Exact));
        MatchTable {
            name: name.into(),
            schema,
            entries: Vec::new(),
            exact_index: if all_exact { Some(HashMap::new()) } else { None },
            hits: 0,
            misses: 0,
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Installs an entry. For a single-field LPM table, pass priority 0 and
    /// longest-prefix ordering is handled internally (prefix length is the
    /// effective priority). Replaces an identical-key exact entry.
    ///
    /// # Panics
    /// Panics if the entry's field count doesn't match the schema.
    pub fn insert(&mut self, entry: TableEntry<A>) {
        assert_eq!(
            entry.fields.len(),
            self.schema.len(),
            "entry arity != schema arity in table {}",
            self.name
        );
        if let Some(idx) = &mut self.exact_index {
            let key: Vec<u64> = entry
                .fields
                .iter()
                .map(|f| match f {
                    FieldMatch::Exact(v) => *v,
                    other => panic!(
                        "non-exact match {other:?} in all-exact table {}",
                        self.name
                    ),
                })
                .collect();
            if let Some(&i) = idx.get(&key) {
                self.entries[i] = entry;
            } else {
                idx.insert(key, self.entries.len());
                self.entries.push(entry);
            }
            return;
        }
        self.entries.push(entry);
    }

    /// Convenience: installs an all-exact entry.
    pub fn insert_exact(&mut self, key: &[u64], action: A) {
        self.insert(TableEntry {
            fields: key.iter().map(|&v| FieldMatch::Exact(v)).collect(),
            priority: 0,
            action,
        });
    }

    /// Looks up `key`, returning the winning entry's action.
    ///
    /// # Panics
    /// Panics if `key` arity doesn't match the schema.
    pub fn lookup(&mut self, key: &[u64]) -> Option<&A> {
        assert_eq!(key.len(), self.schema.len(), "key arity mismatch");
        match self.lookup_index(key) {
            Some(i) => {
                self.hits += 1;
                Some(&self.entries[i].action)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn lookup_index(&self, key: &[u64]) -> Option<usize> {
        if let Some(idx) = &self.exact_index {
            return idx.get(key).copied();
        }
        let mut best: Option<(i64, i64, usize)> = None; // (priority, lpm_bits, idx)
        'entry: for (i, e) in self.entries.iter().enumerate() {
            let mut lpm_bits = 0i64;
            for ((fm, &kind), &k) in e.fields.iter().zip(&self.schema).zip(key) {
                if !fm.matches(kind, k) {
                    continue 'entry;
                }
                if let FieldMatch::Lpm { prefix_len, .. } = fm {
                    lpm_bits += *prefix_len as i64;
                }
            }
            let cand = (e.priority, lpm_bits, i);
            let better = match best {
                None => true,
                // Higher priority wins; then longer prefix; then earlier
                // install order (stable, deterministic).
                Some((bp, bl, bi)) => {
                    (cand.0, cand.1) > (bp, bl) || ((cand.0, cand.1) == (bp, bl) && i < bi)
                }
            };
            if better {
                best = Some(cand);
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Removes entries whose action matches a predicate; returns how many
    /// were removed. (Control-plane flow removal.)
    pub fn remove_where(&mut self, pred: impl Fn(&TableEntry<A>) -> bool) -> usize {
        let before = self.entries.len();
        if self.exact_index.is_some() {
            // Rebuild the index after filtering.
            self.entries.retain(|e| !pred(e));
            let mut idx = HashMap::new();
            for (i, e) in self.entries.iter().enumerate() {
                let key: Vec<u64> = e
                    .fields
                    .iter()
                    .map(|f| match f {
                        FieldMatch::Exact(v) => *v,
                        _ => unreachable!("all-exact invariant"),
                    })
                    .collect();
                idx.insert(key, i);
            }
            self.exact_index = Some(idx);
        } else {
            self.entries.retain(|e| !pred(e));
        }
        before - self.entries.len()
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
        if let Some(idx) = &mut self.exact_index {
            idx.clear();
        }
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Builds an IPv4 LPM route table schema (single 32-bit LPM field).
pub fn ipv4_lpm_schema() -> Vec<MatchKind> {
    vec![MatchKind::Lpm { width: 32 }]
}

/// Helper to install an IPv4 prefix route into a single-LPM-field table.
pub fn insert_ipv4_route<A>(table: &mut MatchTable<A>, addr: std::net::Ipv4Addr, prefix_len: u8, action: A) {
    assert!(prefix_len <= 32);
    let value = u32::from(addr) as u64;
    table.insert(TableEntry {
        fields: vec![FieldMatch::Lpm { value, prefix_len }],
        priority: 0,
        action,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn exact_table_hit_miss() {
        let mut t: MatchTable<&str> = MatchTable::new("mac", vec![MatchKind::Exact]);
        t.insert_exact(&[42], "port1");
        assert_eq!(t.lookup(&[42]), Some(&"port1"));
        assert_eq!(t.lookup(&[43]), None);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn exact_replaces_duplicate_key() {
        let mut t: MatchTable<u32> = MatchTable::new("x", vec![MatchKind::Exact]);
        t.insert_exact(&[1], 10);
        t.insert_exact(&[1], 20);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&[1]), Some(&20));
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let mut t: MatchTable<&str> = MatchTable::new("routes", ipv4_lpm_schema());
        insert_ipv4_route(&mut t, Ipv4Addr::new(10, 0, 0, 0), 8, "coarse");
        insert_ipv4_route(&mut t, Ipv4Addr::new(10, 1, 0, 0), 16, "fine");
        insert_ipv4_route(&mut t, Ipv4Addr::new(0, 0, 0, 0), 0, "default");
        let key = |a: Ipv4Addr| vec![u32::from(a) as u64];
        assert_eq!(t.lookup(&key(Ipv4Addr::new(10, 1, 2, 3))), Some(&"fine"));
        assert_eq!(t.lookup(&key(Ipv4Addr::new(10, 9, 2, 3))), Some(&"coarse"));
        assert_eq!(t.lookup(&key(Ipv4Addr::new(192, 168, 0, 1))), Some(&"default"));
    }

    #[test]
    fn ternary_priority() {
        let mut t: MatchTable<&str> = MatchTable::new("acl", vec![MatchKind::Ternary]);
        t.insert(TableEntry {
            fields: vec![FieldMatch::Ternary { value: 0x80, mask: 0x80 }],
            priority: 10,
            action: "high-bit",
        });
        t.insert(TableEntry {
            fields: vec![FieldMatch::Any],
            priority: 1,
            action: "any",
        });
        assert_eq!(t.lookup(&[0xFF]), Some(&"high-bit"));
        assert_eq!(t.lookup(&[0x01]), Some(&"any"));
    }

    #[test]
    fn range_match() {
        let mut t: MatchTable<&str> =
            MatchTable::new("ports", vec![MatchKind::Range]);
        t.insert(TableEntry {
            fields: vec![FieldMatch::Range { lo: 1000, hi: 2000 }],
            priority: 0,
            action: "mid",
        });
        assert_eq!(t.lookup(&[1000]), Some(&"mid"));
        assert_eq!(t.lookup(&[2000]), Some(&"mid"));
        assert_eq!(t.lookup(&[2001]), None);
    }

    #[test]
    fn multi_field_key() {
        // (exact dst, range port) — a small ACL.
        let mut t: MatchTable<u8> = MatchTable::new(
            "acl2",
            vec![MatchKind::Exact, MatchKind::Range],
        );
        t.insert(TableEntry {
            fields: vec![FieldMatch::Exact(7), FieldMatch::Range { lo: 0, hi: 1023 }],
            priority: 5,
            action: 1,
        });
        assert_eq!(t.lookup(&[7, 80]), Some(&1));
        assert_eq!(t.lookup(&[7, 8080]), None);
        assert_eq!(t.lookup(&[8, 80]), None);
    }

    #[test]
    fn remove_where_rebuilds_exact_index() {
        let mut t: MatchTable<u32> = MatchTable::new("x", vec![MatchKind::Exact]);
        for i in 0..10u64 {
            t.insert_exact(&[i], i as u32);
        }
        let removed = t.remove_where(|e| e.action % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(t.lookup(&[3]), Some(&3));
        assert_eq!(t.lookup(&[4]), None);
    }

    #[test]
    fn install_order_breaks_ties() {
        let mut t: MatchTable<&str> = MatchTable::new("tie", vec![MatchKind::Ternary]);
        t.insert(TableEntry { fields: vec![FieldMatch::Any], priority: 0, action: "first" });
        t.insert(TableEntry { fields: vec![FieldMatch::Any], priority: 0, action: "second" });
        assert_eq!(t.lookup(&[1]), Some(&"first"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t: MatchTable<u8> = MatchTable::new("a", vec![MatchKind::Exact]);
        t.lookup(&[1, 2]);
    }
}
