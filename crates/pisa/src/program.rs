//! The baseline (synchronous packet-by-packet) programming model.
//!
//! A [`PisaProgram`] is the Rust embedding of a baseline P4 program: one
//! control invoked per ingress packet event and one per egress packet
//! event — and *nothing else*. There is deliberately no way for a baseline
//! program to see enqueue/dequeue/overflow records, timers, or link
//! changes; that is the restriction the event-driven model in `edp-core`
//! lifts.

use crate::meta::StdMeta;
use edp_evsim::SimTime;
use edp_packet::{Packet, ParsedPacket};

/// A baseline PISA program: ingress + egress packet-event handlers.
///
/// Programs are `Send` so a sharded simulation can build its switches on
/// worker threads and hand finished shard state back for inspection.
pub trait PisaProgram: Send {
    /// Handles an ingress packet event. Set `meta.dest` to forward; the
    /// parsed view reflects the packet *before* any rewrites this call
    /// makes.
    fn ingress(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
    );

    /// Handles an egress packet event (after the traffic manager). The
    /// packet was re-parsed, PSA-style. Default: pass through.
    fn egress(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
    ) {
        let _ = (pkt, parsed, meta, now);
    }

    /// Applies a control-plane update (P4Runtime-style table/register
    /// write). This is *not* a data-plane event: it is the ordinary
    /// management channel every PISA target has, and the only way a
    /// baseline program's behaviour can change at run time. Default:
    /// ignore.
    fn control_update(&mut self, opcode: u32, args: [u64; 4], now: SimTime) {
        let _ = (opcode, args, now);
    }

    /// Opt-in to the switch's per-flow action cache
    /// ([`crate::FlowCache`]). Returning `true` promises that
    /// [`ingress`](Self::ingress) is a pure function of the packet's flow
    /// 5-tuple and state that only changes via
    /// [`control_update`](Self::control_update): no per-packet counters
    /// read back into the decision, no dependence on payload bytes or
    /// arrival time, no packet rewrites. The switch then replays cached
    /// decisions without invoking `ingress` and invalidates the cache on
    /// every control-plane update. Default: `false` (never cached).
    fn flow_cacheable(&self) -> bool {
        false
    }
}

/// A trivial program forwarding everything to a fixed port (useful as a
/// building block and in tests).
#[derive(Debug, Clone, Copy)]
pub struct ForwardTo(
    /// The output port.
    pub crate::meta::PortId,
);

impl PisaProgram for ForwardTo {
    fn ingress(
        &mut self,
        _pkt: &mut Packet,
        _parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
    ) {
        meta.dest = crate::meta::Destination::Port(self.0);
    }

    fn flow_cacheable(&self) -> bool {
        true
    }
}

/// An L3 router over a single LPM table: the canonical flow-cacheable
/// program. Ingress looks the destination address up in the route table;
/// routes are installed exclusively through [`control_update`]
/// (P4Runtime-style), so the cacheability contract holds by construction.
#[derive(Debug, Clone)]
pub struct TableRouter {
    routes: crate::table::MatchTable<crate::meta::PortId>,
}

impl TableRouter {
    /// `control_update` opcode: install a route. Args:
    /// `[ipv4 as u32, prefix_len, out_port, _]`.
    pub const OP_INSERT_ROUTE: u32 = 1;
    /// `control_update` opcode: remove every route.
    pub const OP_CLEAR_ROUTES: u32 = 2;

    /// Creates a router with an empty route table.
    pub fn new() -> Self {
        TableRouter {
            routes: crate::table::MatchTable::new("routes", crate::table::ipv4_lpm_schema()),
        }
    }

    /// Read access to the route table (tests, inspection).
    pub fn routes(&self) -> &crate::table::MatchTable<crate::meta::PortId> {
        &self.routes
    }
}

impl Default for TableRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl PisaProgram for TableRouter {
    fn ingress(
        &mut self,
        _pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        _now: SimTime,
    ) {
        let Some(ip) = parsed.ipv4 else {
            meta.dest = crate::meta::Destination::Drop;
            return;
        };
        let key = u32::from(ip.dst) as u64;
        meta.dest = match self.routes.lookup(&[key]) {
            Some(&port) => crate::meta::Destination::Port(port),
            None => crate::meta::Destination::Drop,
        };
    }

    fn control_update(&mut self, opcode: u32, args: [u64; 4], _now: SimTime) {
        match opcode {
            Self::OP_INSERT_ROUTE => {
                crate::table::insert_ipv4_route(
                    &mut self.routes,
                    std::net::Ipv4Addr::from(args[0] as u32),
                    args[1] as u8,
                    args[2] as crate::meta::PortId,
                );
            }
            Self::OP_CLEAR_ROUTES => self.routes.clear(),
            _ => {}
        }
    }

    fn flow_cacheable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::Destination;
    use edp_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    #[test]
    fn forward_to_sets_dest() {
        let frame = PacketBuilder::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            &[],
        )
        .build();
        let mut pkt = Packet::anonymous(frame);
        let parsed = edp_packet::parse_packet(pkt.bytes()).expect("parse");
        let mut meta = StdMeta::ingress(0, SimTime::ZERO, pkt.len());
        ForwardTo(3).ingress(&mut pkt, &parsed, &mut meta, SimTime::ZERO);
        assert_eq!(meta.dest, Destination::Port(3));
    }
}
