//! The baseline (synchronous packet-by-packet) programming model.
//!
//! A [`PisaProgram`] is the Rust embedding of a baseline P4 program: one
//! control invoked per ingress packet event and one per egress packet
//! event — and *nothing else*. There is deliberately no way for a baseline
//! program to see enqueue/dequeue/overflow records, timers, or link
//! changes; that is the restriction the event-driven model in `edp-core`
//! lifts.

use crate::meta::StdMeta;
use edp_evsim::SimTime;
use edp_packet::{Packet, ParsedPacket};

/// A baseline PISA program: ingress + egress packet-event handlers.
pub trait PisaProgram {
    /// Handles an ingress packet event. Set `meta.dest` to forward; the
    /// parsed view reflects the packet *before* any rewrites this call
    /// makes.
    fn ingress(&mut self, pkt: &mut Packet, parsed: &ParsedPacket, meta: &mut StdMeta, now: SimTime);

    /// Handles an egress packet event (after the traffic manager). The
    /// packet was re-parsed, PSA-style. Default: pass through.
    fn egress(
        &mut self,
        pkt: &mut Packet,
        parsed: &ParsedPacket,
        meta: &mut StdMeta,
        now: SimTime,
    ) {
        let _ = (pkt, parsed, meta, now);
    }

    /// Applies a control-plane update (P4Runtime-style table/register
    /// write). This is *not* a data-plane event: it is the ordinary
    /// management channel every PISA target has, and the only way a
    /// baseline program's behaviour can change at run time. Default:
    /// ignore.
    fn control_update(&mut self, opcode: u32, args: [u64; 4], now: SimTime) {
        let _ = (opcode, args, now);
    }
}

/// A trivial program forwarding everything to a fixed port (useful as a
/// building block and in tests).
#[derive(Debug, Clone, Copy)]
pub struct ForwardTo(
    /// The output port.
    pub crate::meta::PortId,
);

impl PisaProgram for ForwardTo {
    fn ingress(&mut self, _pkt: &mut Packet, _parsed: &ParsedPacket, meta: &mut StdMeta, _now: SimTime) {
        meta.dest = crate::meta::Destination::Port(self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::Destination;
    use edp_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    #[test]
    fn forward_to_sets_dest() {
        let frame = PacketBuilder::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            &[],
        )
        .build();
        let mut pkt = Packet::anonymous(frame);
        let parsed = edp_packet::parse_packet(pkt.bytes()).expect("parse");
        let mut meta = StdMeta::ingress(0, SimTime::ZERO, pkt.len());
        ForwardTo(3).ingress(&mut pkt, &parsed, &mut meta, SimTime::ZERO);
        assert_eq!(meta.dest, Destination::Port(3));
    }
}
