//! The baseline PSA switch (Figure 1 of the paper).
//!
//! Ingress pipeline → traffic manager → egress pipeline, with packet
//! recirculation. The [`TmEvent`] records produced by the traffic manager
//! are *discarded* here — a baseline architecture has no programming-model
//! slot to deliver them to. `edp-core::sume` builds the event-driven
//! variant on the same parts and delivers them.

use crate::cache::{FlowCache, FlowCacheStats};
use crate::meta::{Destination, PortId, StdMeta};
use crate::program::PisaProgram;
use crate::tm::{QueueConfig, QueueStats, TrafficManager};
use edp_evsim::SimTime;
use edp_packet::{parse_packet, Packet};
use edp_telemetry::{emit, DropReason, RecordKind};
use serde::{Deserialize, Serialize};

/// Upper bound on recirculations per packet, guarding against programs
/// that loop a packet forever.
pub const MAX_RECIRCULATIONS: u8 = 8;

/// Aggregate switch counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchCounters {
    /// Frames offered to ingress.
    pub rx: u64,
    /// Frames handed out of egress.
    pub tx: u64,
    /// Frames dropped by program decision (dest = Drop / Unspecified).
    pub dropped_by_program: u64,
    /// Frames dropped on queue overflow.
    pub dropped_overflow: u64,
    /// Frames dropped because they failed to parse.
    pub parse_errors: u64,
    /// Recirculation passes executed.
    pub recirculated: u64,
    /// Frames dropped for exceeding [`MAX_RECIRCULATIONS`].
    pub recirc_limit_drops: u64,
}

impl SwitchCounters {
    /// Publishes the snapshot into the unified metrics registry under
    /// `scope` (conventionally `sw<N>`).
    pub fn publish(&self, reg: &mut edp_telemetry::Registry, scope: &str) {
        reg.set_counter("rx", scope, self.rx);
        reg.set_counter("tx", scope, self.tx);
        reg.set_counter("dropped_by_program", scope, self.dropped_by_program);
        reg.set_counter("dropped_overflow", scope, self.dropped_overflow);
        reg.set_counter("parse_errors", scope, self.parse_errors);
        reg.set_counter("recirculated", scope, self.recirculated);
        reg.set_counter("recirc_limit_drops", scope, self.recirc_limit_drops);
    }
}

/// A baseline PSA switch around a [`PisaProgram`].
#[derive(Debug)]
pub struct BaselineSwitch<P> {
    /// The P4-equivalent program.
    pub program: P,
    tm: TrafficManager,
    n_ports: usize,
    counters: SwitchCounters,
    cache: FlowCache,
}

impl<P: PisaProgram> BaselineSwitch<P> {
    /// Creates a switch with `n_ports` ports and per-port queue `cfg`.
    pub fn new(program: P, n_ports: usize, cfg: QueueConfig) -> Self {
        BaselineSwitch {
            program,
            tm: TrafficManager::new(n_ports, cfg),
            n_ports,
            counters: SwitchCounters::default(),
            cache: FlowCache::default(),
        }
    }

    /// Flow-cache counters (hits stay 0 unless the program opted in via
    /// [`PisaProgram::flow_cacheable`]).
    pub fn flow_cache_stats(&self) -> FlowCacheStats {
        self.cache.stats()
    }

    /// Number of ports.
    pub fn n_ports(&self) -> usize {
        self.n_ports
    }

    /// Counter snapshot.
    pub fn counters(&self) -> SwitchCounters {
        self.counters
    }

    /// Per-port queue statistics.
    pub fn queue_stats(&self, port: PortId) -> QueueStats {
        self.tm.stats(port)
    }

    /// Occupancy of `port`'s output queue in bytes.
    pub fn occupancy_bytes(&self, port: PortId) -> u64 {
        self.tm.occupancy_bytes(port)
    }

    /// Offers an arriving frame to the ingress pipeline; the packet lands
    /// in output queues (or is dropped). Call [`BaselineSwitch::transmit`]
    /// to drain.
    pub fn receive(&mut self, now: SimTime, port: PortId, pkt: Packet) {
        self.counters.rx += 1;
        emit(
            now.as_nanos(),
            RecordKind::PacketRx {
                switch: 0,
                port,
                len: pkt.len() as u32,
            },
        );
        let meta = StdMeta::ingress(port, now, pkt.len());
        self.ingress_pass(now, pkt, meta);
    }

    fn ingress_pass(&mut self, now: SimTime, mut pkt: Packet, mut meta: StdMeta) {
        let parsed = match parse_packet(pkt.bytes()) {
            Ok(p) => p,
            Err(_) => {
                self.counters.parse_errors += 1;
                emit(
                    now.as_nanos(),
                    RecordKind::PacketDrop {
                        switch: 0,
                        reason: DropReason::ParseError,
                    },
                );
                return;
            }
        };
        // Fast path: replay a memoized decision for a known flow instead
        // of running the pipeline. Only first-pass packets of programs
        // that declared themselves cacheable are eligible.
        let flow_hash = if meta.recirc_count == 0 && self.program.flow_cacheable() {
            parsed.flow_key().map(|k| k.hash64())
        } else {
            None
        };
        match flow_hash.and_then(|h| self.cache.lookup(h)) {
            Some(decision) => decision.apply(&mut meta),
            None => {
                self.program.ingress(&mut pkt, &parsed, &mut meta, now);
                if let Some(h) = flow_hash {
                    self.cache.admit(h, &meta);
                    emit(
                        now.as_nanos(),
                        RecordKind::FlowCacheAdmit {
                            entries: self.cache.len() as u32,
                        },
                    );
                }
            }
        }
        match meta.dest {
            Destination::Port(out) => {
                if (out as usize) < self.n_ports {
                    self.enqueue(out, pkt, meta, now);
                } else {
                    self.counters.dropped_by_program += 1;
                    emit(
                        now.as_nanos(),
                        RecordKind::PacketDrop {
                            switch: 0,
                            reason: DropReason::Program,
                        },
                    );
                }
            }
            Destination::Flood => {
                let ingress = meta.ingress_port;
                for out in 0..self.n_ports as PortId {
                    if out != ingress {
                        self.enqueue(out, pkt.clone(), meta, now);
                    }
                }
            }
            Destination::Recirculate => {
                if meta.recirc_count >= MAX_RECIRCULATIONS {
                    self.counters.recirc_limit_drops += 1;
                    emit(
                        now.as_nanos(),
                        RecordKind::PacketDrop {
                            switch: 0,
                            reason: DropReason::RecircLimit,
                        },
                    );
                    return;
                }
                self.counters.recirculated += 1;
                meta.recirc_count += 1;
                emit(
                    now.as_nanos(),
                    RecordKind::PacketRecirc {
                        switch: 0,
                        pass: meta.recirc_count,
                    },
                );
                meta.dest = Destination::Unspecified;
                self.ingress_pass(now, pkt, meta);
            }
            Destination::Drop | Destination::Unspecified => {
                self.counters.dropped_by_program += 1;
                emit(
                    now.as_nanos(),
                    RecordKind::PacketDrop {
                        switch: 0,
                        reason: DropReason::Program,
                    },
                );
            }
        }
    }

    fn enqueue(&mut self, out: PortId, pkt: Packet, meta: StdMeta, now: SimTime) {
        let (returned, _event) = self.tm.offer(out, pkt, meta, now);
        // Baseline architecture: the TmEvent is dropped on the floor.
        if returned.is_some() {
            self.counters.dropped_overflow += 1;
            emit(
                now.as_nanos(),
                RecordKind::PacketDrop {
                    switch: 0,
                    reason: DropReason::Overflow,
                },
            );
        }
    }

    /// Pulls the next frame queued for `port` through the egress pipeline.
    /// Returns `None` when the queue is empty or the egress program
    /// dropped the frame.
    pub fn transmit(&mut self, now: SimTime, port: PortId) -> Option<Packet> {
        let (mut pkt, mut meta, _event) = self.tm.dequeue(port, now).ok()?;
        let parsed = match parse_packet(pkt.bytes()) {
            Ok(p) => p,
            Err(_) => {
                self.counters.parse_errors += 1;
                emit(
                    now.as_nanos(),
                    RecordKind::PacketDrop {
                        switch: 0,
                        reason: DropReason::ParseError,
                    },
                );
                return None;
            }
        };
        self.program.egress(&mut pkt, &parsed, &mut meta, now);
        if meta.egress_drop {
            self.counters.dropped_by_program += 1;
            emit(
                now.as_nanos(),
                RecordKind::PacketDrop {
                    switch: 0,
                    reason: DropReason::Program,
                },
            );
            return None;
        }
        self.counters.tx += 1;
        emit(
            now.as_nanos(),
            RecordKind::PacketTx {
                switch: 0,
                port,
                len: pkt.len() as u32,
            },
        );
        Some(pkt)
    }

    /// True if `port` has frames waiting.
    pub fn has_pending(&self, port: PortId) -> bool {
        self.tm.depth_pkts(port) > 0
    }

    /// Delivers a control-plane update to the program (P4Runtime-style).
    /// Program state may have changed, so every memoized flow decision is
    /// invalidated — the next packet of each flow re-runs the pipeline.
    pub fn control_plane(&mut self, now: SimTime, opcode: u32, args: [u64; 4]) {
        self.program.control_update(opcode, args, now);
        let evicted = self.cache.len() as u32;
        self.cache.invalidate_all();
        emit(now.as_nanos(), RecordKind::FlowCacheInvalidate { evicted });
    }

    /// Publishes every counter this switch owns — aggregate counters,
    /// per-port queue statistics, flow-cache statistics — into the
    /// unified metrics registry under `scope`.
    pub fn publish_metrics(&self, reg: &mut edp_telemetry::Registry, scope: &str) {
        self.counters.publish(reg, scope);
        self.cache.stats().publish(reg, scope);
        for port in 0..self.n_ports as PortId {
            self.tm
                .stats(port)
                .publish(reg, &format!("{scope}:p{port}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ForwardTo;
    use edp_packet::PacketBuilder;
    use edp_packet::ParsedPacket;
    use std::net::Ipv4Addr;

    fn frame() -> Packet {
        Packet::anonymous(
            PacketBuilder::udp(
                Ipv4Addr::new(1, 0, 0, 1),
                Ipv4Addr::new(1, 0, 0, 2),
                1,
                2,
                b"x",
            )
            .build(),
        )
    }

    #[test]
    fn forwards_end_to_end() {
        let mut sw = BaselineSwitch::new(ForwardTo(2), 4, QueueConfig::default());
        sw.receive(SimTime::ZERO, 0, frame());
        assert!(sw.has_pending(2));
        assert!(!sw.has_pending(0));
        let out = sw.transmit(SimTime::from_nanos(5), 2);
        assert!(out.is_some());
        let c = sw.counters();
        assert_eq!(c.rx, 1);
        assert_eq!(c.tx, 1);
    }

    #[test]
    fn unparseable_frame_counted() {
        let mut sw = BaselineSwitch::new(ForwardTo(1), 2, QueueConfig::default());
        sw.receive(SimTime::ZERO, 0, Packet::anonymous(vec![1, 2, 3]));
        assert_eq!(sw.counters().parse_errors, 1);
        assert_eq!(sw.counters().tx, 0);
    }

    #[test]
    fn flood_replicates_to_all_but_ingress() {
        struct Flooder;
        impl PisaProgram for Flooder {
            fn ingress(
                &mut self,
                _p: &mut Packet,
                _h: &ParsedPacket,
                m: &mut StdMeta,
                _n: SimTime,
            ) {
                m.dest = Destination::Flood;
            }
        }
        let mut sw = BaselineSwitch::new(Flooder, 4, QueueConfig::default());
        sw.receive(SimTime::ZERO, 1, frame());
        assert!(sw.has_pending(0));
        assert!(!sw.has_pending(1));
        assert!(sw.has_pending(2));
        assert!(sw.has_pending(3));
    }

    #[test]
    fn drop_decision_counted() {
        struct Dropper;
        impl PisaProgram for Dropper {
            fn ingress(
                &mut self,
                _p: &mut Packet,
                _h: &ParsedPacket,
                m: &mut StdMeta,
                _n: SimTime,
            ) {
                m.dest = Destination::Drop;
            }
        }
        let mut sw = BaselineSwitch::new(Dropper, 2, QueueConfig::default());
        sw.receive(SimTime::ZERO, 0, frame());
        assert_eq!(sw.counters().dropped_by_program, 1);
    }

    #[test]
    fn recirculation_bounded() {
        struct Recirc;
        impl PisaProgram for Recirc {
            fn ingress(
                &mut self,
                _p: &mut Packet,
                _h: &ParsedPacket,
                m: &mut StdMeta,
                _n: SimTime,
            ) {
                m.dest = Destination::Recirculate;
            }
        }
        let mut sw = BaselineSwitch::new(Recirc, 2, QueueConfig::default());
        sw.receive(SimTime::ZERO, 0, frame());
        let c = sw.counters();
        assert_eq!(c.recirculated, MAX_RECIRCULATIONS as u64);
        assert_eq!(c.recirc_limit_drops, 1);
    }

    #[test]
    fn recirc_count_visible_to_program() {
        // Recirculate once, then forward; program sees the count.
        struct OneLoop;
        impl PisaProgram for OneLoop {
            fn ingress(
                &mut self,
                _p: &mut Packet,
                _h: &ParsedPacket,
                m: &mut StdMeta,
                _n: SimTime,
            ) {
                m.dest = if m.recirc_count == 0 {
                    Destination::Recirculate
                } else {
                    Destination::Port(1)
                };
            }
        }
        let mut sw = BaselineSwitch::new(OneLoop, 2, QueueConfig::default());
        sw.receive(SimTime::ZERO, 0, frame());
        assert!(sw.transmit(SimTime::ZERO, 1).is_some());
        assert_eq!(sw.counters().recirculated, 1);
    }

    /// The drop-accounting identity every counter snapshot must satisfy:
    /// every received frame either left the switch or is accounted to
    /// exactly one drop bucket (or still sits in a queue).
    fn assert_accounting_consistent(c: &SwitchCounters, queued: u64) {
        assert_eq!(
            c.rx - c.tx,
            c.dropped_by_program
                + c.dropped_overflow
                + c.parse_errors
                + c.recirc_limit_drops
                + queued,
            "rx - tx must equal the sum of the drop buckets plus still-queued frames: {c:?}"
        );
    }

    #[test]
    fn recirc_limit_drops_sum_consistently_with_rx_tx() {
        // A program that loops every packet until the recirculation bound
        // trips: all of rx must land in recirc_limit_drops, none in the
        // program/overflow buckets.
        struct Recirc;
        impl PisaProgram for Recirc {
            fn ingress(
                &mut self,
                _p: &mut Packet,
                _h: &ParsedPacket,
                m: &mut StdMeta,
                _n: SimTime,
            ) {
                m.dest = Destination::Recirculate;
            }
        }
        let mut sw = BaselineSwitch::new(Recirc, 2, QueueConfig::default());
        for _ in 0..3 {
            sw.receive(SimTime::ZERO, 0, frame());
        }
        sw.receive(SimTime::ZERO, 0, Packet::anonymous(vec![1, 2, 3])); // parse error
        let c = sw.counters();
        assert_eq!(c.rx, 4);
        assert_eq!(c.tx, 0);
        assert_eq!(c.recirc_limit_drops, 3);
        assert_eq!(c.recirculated, 3 * MAX_RECIRCULATIONS as u64);
        assert_eq!(c.dropped_by_program, 0);
        assert_eq!(c.dropped_overflow, 0);
        assert_eq!(c.parse_errors, 1);
        assert_accounting_consistent(&c, 0);
    }

    #[test]
    fn mixed_drop_buckets_sum_consistently_with_rx_tx() {
        // Odd packets recirculate forever; even packets forward into a
        // queue sized for exactly one of them, so the second even packet
        // overflows. Every drop bucket then holds a known share of rx.
        struct MixedRecirc {
            n: u64,
        }
        impl PisaProgram for MixedRecirc {
            fn ingress(
                &mut self,
                _p: &mut Packet,
                _h: &ParsedPacket,
                m: &mut StdMeta,
                _n: SimTime,
            ) {
                if m.recirc_count > 0 {
                    m.dest = Destination::Recirculate;
                    return;
                }
                self.n += 1;
                m.dest = if self.n % 2 == 1 {
                    Destination::Recirculate
                } else {
                    Destination::Port(1)
                };
            }
        }
        let cfg = QueueConfig {
            capacity_bytes: 64, // one ~50 B frame fits, the next overflows
            ..QueueConfig::default()
        };
        let mut sw = BaselineSwitch::new(MixedRecirc { n: 0 }, 2, cfg);
        for _ in 0..4 {
            sw.receive(SimTime::ZERO, 0, frame());
        }
        let sent = u64::from(sw.transmit(SimTime::ZERO, 1).is_some());
        let c = sw.counters();
        assert_eq!(c.rx, 4);
        assert_eq!(c.tx, sent);
        assert_eq!(c.recirc_limit_drops, 2, "both odd packets hit the bound");
        assert_eq!(c.dropped_overflow, 1, "second even packet overflowed");
        assert_eq!(c.dropped_by_program, 0);
        let queued = u64::from(sw.has_pending(1));
        assert_accounting_consistent(&c, queued);
    }

    #[test]
    fn egress_drop_respected() {
        struct EgressDropper;
        impl PisaProgram for EgressDropper {
            fn ingress(
                &mut self,
                _p: &mut Packet,
                _h: &ParsedPacket,
                m: &mut StdMeta,
                _n: SimTime,
            ) {
                m.dest = Destination::Port(1);
            }
            fn egress(&mut self, _p: &mut Packet, _h: &ParsedPacket, m: &mut StdMeta, _n: SimTime) {
                m.egress_drop = true;
            }
        }
        let mut sw = BaselineSwitch::new(EgressDropper, 2, QueueConfig::default());
        sw.receive(SimTime::ZERO, 0, frame());
        assert!(sw.transmit(SimTime::ZERO, 1).is_none());
        assert_eq!(sw.counters().tx, 0);
        assert_eq!(sw.counters().dropped_by_program, 1);
    }

    #[test]
    fn invalid_out_port_dropped() {
        let mut sw = BaselineSwitch::new(ForwardTo(9), 2, QueueConfig::default());
        sw.receive(SimTime::ZERO, 0, frame());
        assert_eq!(sw.counters().dropped_by_program, 1);
    }

    #[test]
    fn flow_cache_hits_on_repeat_flow() {
        let mut sw = BaselineSwitch::new(ForwardTo(2), 4, QueueConfig::default());
        for _ in 0..5 {
            sw.receive(SimTime::ZERO, 0, frame());
        }
        let stats = sw.flow_cache_stats();
        assert_eq!(stats.misses, 1, "first packet of the flow misses");
        assert_eq!(stats.hits, 4, "the rest replay the cached decision");
        // Cached and uncached packets take the same forwarding decision.
        for _ in 0..5 {
            assert!(sw.transmit(SimTime::ZERO, 2).is_some());
        }
    }

    #[test]
    fn control_update_invalidates_flow_cache_mid_run() {
        use crate::program::TableRouter;
        let dst = Ipv4Addr::new(1, 0, 0, 2);
        let mut sw = BaselineSwitch::new(TableRouter::new(), 4, QueueConfig::default());
        sw.control_plane(
            SimTime::ZERO,
            TableRouter::OP_INSERT_ROUTE,
            [u32::from(dst) as u64, 24, 1, 0],
        );
        // Warm the cache on port 1, with cached repeats.
        sw.receive(SimTime::ZERO, 0, frame());
        sw.receive(SimTime::ZERO, 0, frame());
        assert!(sw.flow_cache_stats().hits >= 1);
        assert!(sw.transmit(SimTime::ZERO, 1).is_some());
        assert!(sw.transmit(SimTime::ZERO, 1).is_some());
        // Mid-run route change: a more specific prefix to a new port. A
        // stale cache would keep sending the flow to port 1.
        sw.control_plane(
            SimTime::ZERO,
            TableRouter::OP_INSERT_ROUTE,
            [u32::from(dst) as u64, 32, 3, 0],
        );
        sw.receive(SimTime::ZERO, 0, frame());
        assert!(
            sw.has_pending(3),
            "post-update packets must see the new route, not the cached one"
        );
        assert!(!sw.has_pending(1));
    }

    #[test]
    fn non_cacheable_program_never_consults_cache() {
        struct Dropper;
        impl PisaProgram for Dropper {
            fn ingress(
                &mut self,
                _p: &mut Packet,
                _h: &ParsedPacket,
                m: &mut StdMeta,
                _n: SimTime,
            ) {
                m.dest = Destination::Drop;
            }
        }
        let mut sw = BaselineSwitch::new(Dropper, 2, QueueConfig::default());
        sw.receive(SimTime::ZERO, 0, frame());
        sw.receive(SimTime::ZERO, 0, frame());
        let stats = sw.flow_cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }
}
