//! Stateful externs: register arrays, counters, and access accounting.
//!
//! A PISA pipeline stage owns single-ported SRAM; the number of register
//! *accesses* a program makes per packet is therefore a first-class design
//! constraint (it is the constraint §4 of the paper is about). Every
//! access through [`RegisterArray`] is counted so experiments can report
//! memory bandwidth demand, and the resource model can price state words.

use serde::{Deserialize, Serialize};

/// A register array extern: `size` entries of `u64` state.
///
/// Models P4's `register<bit<W>>(size)` for W ≤ 64 (every register in the
/// paper's examples is 32-bit). Out-of-range indices wrap modulo `size`,
/// matching what a hash-indexed hardware register file does.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegisterArray {
    name: String,
    cells: Vec<u64>,
    reads: u64,
    writes: u64,
}

impl RegisterArray {
    /// Allocates `size` zeroed registers under a diagnostic `name`.
    pub fn new(name: impl Into<String>, size: usize) -> Self {
        assert!(size > 0, "zero-size register array");
        RegisterArray {
            name: name.into(),
            cells: vec![0; size],
            reads: 0,
            writes: 0,
        }
    }

    /// Number of entries.
    pub fn size(&self) -> usize {
        self.cells.len()
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn idx(&self, index: usize) -> usize {
        index % self.cells.len()
    }

    /// Reads entry `index` (wrapping).
    pub fn read(&mut self, index: usize) -> u64 {
        self.reads += 1;
        crate::probe::record(
            &self.name,
            crate::ProbeClass::Plain,
            crate::ProbeAccess::Read,
        );
        self.cells[self.idx(index)]
    }

    /// Writes entry `index` (wrapping).
    pub fn write(&mut self, index: usize, value: u64) {
        self.writes += 1;
        crate::probe::record(
            &self.name,
            crate::ProbeClass::Plain,
            crate::ProbeAccess::Write,
        );
        let i = self.idx(index);
        self.cells[i] = value;
    }

    /// Atomic read-modify-write: one read + one write, like a stateful ALU
    /// operation that completes within a stage.
    pub fn rmw(&mut self, index: usize, f: impl FnOnce(u64) -> u64) -> u64 {
        let i = self.idx(index);
        self.reads += 1;
        self.writes += 1;
        crate::probe::record(
            &self.name,
            crate::ProbeClass::Plain,
            crate::ProbeAccess::Rmw,
        );
        let v = f(self.cells[i]);
        self.cells[i] = v;
        v
    }

    /// Saturating add convenience (the enqueue-handler idiom).
    pub fn add(&mut self, index: usize, delta: u64) -> u64 {
        self.rmw(index, |v| v.saturating_add(delta))
    }

    /// Saturating subtract convenience (the dequeue-handler idiom).
    pub fn sub(&mut self, index: usize, delta: u64) -> u64 {
        self.rmw(index, |v| v.saturating_sub(delta))
    }

    /// Zeroes all entries — the timer-event reset operation. Counts as one
    /// write per cell (hardware sweeps the array).
    pub fn reset(&mut self) {
        self.writes += self.cells.len() as u64;
        crate::probe::record(
            &self.name,
            crate::ProbeClass::Plain,
            crate::ProbeAccess::Write,
        );
        self.cells.fill(0);
    }

    /// Peeks without counting an access (observability/testing only).
    pub fn peek(&self, index: usize) -> u64 {
        self.cells[self.idx(index)]
    }

    /// Total counted reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total counted writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// State footprint in 64-bit words (priced by `edp-resources`).
    pub fn state_words(&self) -> usize {
        self.cells.len()
    }

    /// Number of entries with a non-zero value (e.g. "active flows").
    pub fn nonzero_entries(&self) -> usize {
        self.cells.iter().filter(|&&v| v != 0).count()
    }
}

/// A packet/byte counter pair, PSA `Counter`-shaped.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PacketByteCounter {
    /// Packets counted.
    pub packets: u64,
    /// Bytes counted.
    pub bytes: u64,
}

impl PacketByteCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one packet of `bytes`.
    pub fn count(&mut self, bytes: usize) {
        self.packets += 1;
        self.bytes += bytes as u64;
    }

    /// Zeroes both fields.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut r = RegisterArray::new("buf", 8);
        r.write(3, 42);
        assert_eq!(r.read(3), 42);
        assert_eq!(r.read(4), 0);
        assert_eq!(r.name(), "buf");
        assert_eq!(r.size(), 8);
    }

    #[test]
    fn wrapping_index() {
        let mut r = RegisterArray::new("w", 4);
        r.write(7, 9); // 7 % 4 == 3
        assert_eq!(r.read(3), 9);
    }

    #[test]
    fn rmw_and_helpers() {
        let mut r = RegisterArray::new("q", 2);
        assert_eq!(r.add(0, 100), 100);
        assert_eq!(r.add(0, 50), 150);
        assert_eq!(r.sub(0, 200), 0, "saturating");
        assert_eq!(r.rmw(1, |v| v + 7), 7);
    }

    #[test]
    fn access_accounting() {
        let mut r = RegisterArray::new("acct", 4);
        r.read(0);
        r.write(0, 1);
        r.rmw(0, |v| v);
        assert_eq!(r.reads(), 2);
        assert_eq!(r.writes(), 2);
        r.reset();
        assert_eq!(r.writes(), 6, "reset writes every cell");
        assert_eq!(r.peek(0), 0);
        assert_eq!(r.reads(), 2, "peek not counted");
    }

    #[test]
    fn nonzero_entries() {
        let mut r = RegisterArray::new("nz", 8);
        r.write(1, 5);
        r.write(2, 5);
        r.write(2, 0);
        assert_eq!(r.nonzero_entries(), 1);
    }

    #[test]
    fn counter_counts() {
        let mut c = PacketByteCounter::new();
        c.count(100);
        c.count(50);
        assert_eq!(c.packets, 2);
        assert_eq!(c.bytes, 150);
        c.reset();
        assert_eq!(c.packets, 0);
    }
}
