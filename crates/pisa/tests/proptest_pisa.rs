//! Property-based tests for tables, registers, and the traffic manager.

use edp_evsim::SimTime;
use edp_packet::Packet;
use edp_pisa::{
    FieldMatch, MatchKind, MatchTable, QueueConfig, QueueDisc, RegisterArray, StdMeta, TableEntry,
    TrafficManager,
};
use proptest::prelude::*;

/// Reference LPM: longest matching prefix wins, first-installed breaks ties.
fn ref_lpm(routes: &[(u32, u8, u32)], key: u32) -> Option<u32> {
    routes
        .iter()
        .enumerate()
        .filter(|(_, &(value, plen, _))| {
            if plen == 0 {
                true
            } else {
                let shift = 32 - plen as u32;
                key >> shift == value >> shift
            }
        })
        .max_by_key(|(i, &(_, plen, _))| (plen, std::cmp::Reverse(*i)))
        .map(|(_, &(_, _, action))| action)
}

proptest! {
    /// The table's LPM semantics match a naive reference model.
    #[test]
    fn lpm_matches_reference(
        routes in prop::collection::vec((any::<u32>(), 0u8..=32, any::<u32>()), 1..40),
        keys in prop::collection::vec(any::<u32>(), 1..50),
    ) {
        let mut table: MatchTable<u32> =
            MatchTable::new("t", vec![MatchKind::Lpm { width: 32 }]);
        for &(value, plen, action) in &routes {
            table.insert(TableEntry {
                fields: vec![FieldMatch::Lpm { value: value as u64, prefix_len: plen }],
                priority: 0,
                action,
            });
        }
        for &key in &keys {
            let got = table.lookup(&[key as u64]).copied();
            let want = ref_lpm(&routes, key);
            prop_assert_eq!(got, want, "key {:#x}", key);
        }
    }

    /// Exact tables behave like a HashMap with last-write-wins.
    #[test]
    fn exact_matches_hashmap(
        inserts in prop::collection::vec((0u64..100, any::<u32>()), 1..200),
        keys in prop::collection::vec(0u64..120, 1..50),
    ) {
        let mut table: MatchTable<u32> = MatchTable::new("t", vec![MatchKind::Exact]);
        let mut model = std::collections::HashMap::new();
        for &(k, v) in &inserts {
            table.insert_exact(&[k], v);
            model.insert(k, v);
        }
        for &k in &keys {
            prop_assert_eq!(table.lookup(&[k]).copied(), model.get(&k).copied());
        }
        prop_assert_eq!(table.len(), model.len());
    }

    /// Ternary: the highest-priority matching entry wins.
    #[test]
    fn ternary_priority_wins(
        entries in prop::collection::vec((any::<u8>(), any::<u8>(), -100i64..100, any::<u32>()), 1..30),
        key: u8,
    ) {
        let mut table: MatchTable<u32> = MatchTable::new("t", vec![MatchKind::Ternary]);
        for &(value, mask, prio, action) in &entries {
            table.insert(TableEntry {
                fields: vec![FieldMatch::Ternary { value: value as u64, mask: mask as u64 }],
                priority: prio,
                action,
            });
        }
        let want = entries
            .iter()
            .enumerate()
            .filter(|(_, &(v, m, _, _))| key & m == v & m)
            .max_by_key(|(i, &(_, _, p, _))| (p, std::cmp::Reverse(*i)))
            .map(|(_, &(_, _, _, a))| a);
        prop_assert_eq!(table.lookup(&[key as u64]).copied(), want);
    }

    /// Register arrays behave like a plain vector with wrapping indices.
    #[test]
    fn register_matches_vec(
        size in 1usize..64,
        ops in prop::collection::vec((any::<usize>(), 0u64..1_000_000, any::<bool>()), 1..200),
    ) {
        let mut reg = RegisterArray::new("r", size);
        let mut model = vec![0u64; size];
        for &(idx, val, is_add) in &ops {
            if is_add {
                reg.add(idx, val);
                let i = idx % size;
                model[i] = model[i].saturating_add(val);
            } else {
                reg.write(idx, val);
                model[idx % size] = val;
            }
        }
        for (i, &m) in model.iter().enumerate() {
            prop_assert_eq!(reg.peek(i), m);
        }
        prop_assert_eq!(reg.nonzero_entries(), model.iter().filter(|&&v| v != 0).count());
    }

    /// Traffic-manager conservation: every offered packet is either
    /// queued, dequeued, or counted as an overflow drop — and occupancy
    /// equals the byte sum of queued packets.
    #[test]
    fn tm_conserves_packets(
        capacity in 200u64..5_000,
        ops in prop::collection::vec((any::<bool>(), 1usize..1500), 1..300),
    ) {
        let cfg = QueueConfig { capacity_bytes: capacity, disc: QueueDisc::DropTailFifo, rank0_headroom: 0 };
        let mut tm = TrafficManager::new(1, cfg);
        let mut queued_bytes = 0u64;
        let mut queued_pkts = 0u32;
        let (mut offered, mut dequeued) = (0u64, 0u64);
        for &(is_enqueue, len) in &ops {
            if is_enqueue {
                offered += 1;
                let meta = StdMeta::ingress(0, SimTime::ZERO, len);
                let (ret, _) = tm.offer(0, Packet::anonymous(vec![0; len]), meta, SimTime::ZERO);
                if ret.is_none() {
                    queued_bytes += len as u64;
                    queued_pkts += 1;
                }
            } else if let Ok((p, _, _)) = tm.dequeue(0, SimTime::ZERO) {
                dequeued += 1;
                queued_bytes -= p.len() as u64;
                queued_pkts -= 1;
            }
        }
        prop_assert_eq!(tm.occupancy_bytes(0), queued_bytes);
        prop_assert_eq!(tm.depth_pkts(0), queued_pkts);
        prop_assert!(tm.occupancy_bytes(0) <= capacity);
        let s = tm.stats(0);
        prop_assert_eq!(s.enqueued + s.dropped, offered);
        prop_assert_eq!(s.dequeued, dequeued);
        prop_assert_eq!(s.enqueued - s.dequeued, queued_pkts as u64);
    }

    /// The PIFO traffic-manager discipline dequeues in (rank, seq) order.
    #[test]
    fn tm_pifo_order(ranks in prop::collection::vec(0u64..50, 1..60)) {
        let cfg = QueueConfig { capacity_bytes: 1_000_000, disc: QueueDisc::Pifo, rank0_headroom: 0 };
        let mut tm = TrafficManager::new(1, cfg);
        for (i, &r) in ranks.iter().enumerate() {
            let mut meta = StdMeta::ingress(0, SimTime::ZERO, 10);
            meta.rank = r;
            meta.event_meta = [i as u64, 0, 0, 0];
            tm.offer(0, Packet::anonymous(vec![0; 10]), meta, SimTime::ZERO);
        }
        let mut out = Vec::new();
        while let Ok((_, m, _)) = tm.dequeue(0, SimTime::ZERO) {
            out.push((m.rank, m.event_meta[0]));
        }
        let mut expect: Vec<(u64, u64)> = ranks.iter().enumerate().map(|(i, &r)| (r, i as u64)).collect();
        expect.sort();
        prop_assert_eq!(out, expect);
    }
}
