//! Property-based tests for the network substrate's conservation and
//! determinism invariants.

use edp_evsim::{HorizonMode, Sim, SimDuration, SimTime};
use edp_netsim::traffic::start_cbr;
use edp_netsim::{merge_tracers, run_sharded_opts, Host, HostApp, LinkSpec, Network, NodeRef};
use edp_packet::PacketBuilder;
use edp_pisa::{BaselineSwitch, ForwardTo, QueueConfig};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn a(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, n)
}

/// Builds a line of `n_switches` ForwardTo(1) switches between two hosts.
fn line(n_switches: usize, drop_prob: f64, seed: u64) -> (Network, usize, usize) {
    let mut net = Network::new(seed);
    let mut prev: Option<usize> = None;
    let spec = LinkSpec {
        bandwidth_bps: 10_000_000_000,
        latency: SimDuration::from_micros(1),
        drop_prob,
    };
    let h1 = net.add_host(Host::new(a(1), HostApp::Sink));
    let h2 = net.add_host(Host::new(a(2), HostApp::Sink));
    for _ in 0..n_switches {
        let s = net.add_switch(Box::new(BaselineSwitch::new(
            ForwardTo(1),
            2,
            QueueConfig::default(),
        )));
        match prev {
            None => {
                net.connect((NodeRef::Host(h1), 0), (NodeRef::Switch(s), 0), spec);
            }
            Some(p) => {
                net.connect((NodeRef::Switch(p), 1), (NodeRef::Switch(s), 0), spec);
            }
        }
        prev = Some(s);
    }
    net.connect(
        (NodeRef::Switch(prev.expect("at least one switch")), 1),
        (NodeRef::Host(h2), 0),
        spec,
    );
    (net, h1, h2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Without faults, every sent packet is delivered, across any line
    /// length, packet size, and count.
    #[test]
    fn lossless_line_conserves_packets(
        n_switches in 1usize..5,
        count in 1u64..150,
        size in 64usize..1500,
        interval_us in 1u64..50,
    ) {
        let (mut net, h1, h2) = line(n_switches, 0.0, 7);
        let mut sim: Sim<Network> = Sim::new();
        start_cbr(
            &mut sim,
            h1,
            SimTime::ZERO,
            SimDuration::from_micros(interval_us),
            count,
            move |i| {
                PacketBuilder::udp(a(1), a(2), 9, 10, &[]).ident(i as u16).pad_to(size).build()
            },
        );
        sim.run(&mut net);
        prop_assert_eq!(net.hosts[h2].stats.rx_pkts, count);
        prop_assert_eq!(net.hosts[h2].stats.rx_errors, 0);
        // Every hop forwarded everything.
        for s in 0..n_switches {
            let sw = net.switch_as::<BaselineSwitch<ForwardTo>>(s);
            prop_assert_eq!(sw.counters().rx, count);
            prop_assert_eq!(sw.counters().tx, count);
        }
    }

    /// With fault injection, delivered + per-link fault drops == sent.
    #[test]
    fn faulty_line_accounts_for_every_packet(
        drop_pct in 0u32..60,
        count in 10u64..200,
        seed in 0u64..1000,
    ) {
        let (mut net, h1, h2) = line(1, drop_pct as f64 / 100.0, seed);
        let mut sim: Sim<Network> = Sim::new();
        start_cbr(&mut sim, h1, SimTime::ZERO, SimDuration::from_micros(10), count, move |i| {
            PacketBuilder::udp(a(1), a(2), 9, 10, &[]).ident(i as u16).build()
        });
        sim.run(&mut net);
        let delivered = net.hosts[h2].stats.rx_pkts;
        let mut fault_drops = 0;
        for l in 0..2 {
            fault_drops += net.link_drops(l).0;
        }
        prop_assert_eq!(delivered + fault_drops, count);
    }

    /// Two runs with the same seed are byte-identical; latency stats too.
    #[test]
    fn runs_are_deterministic(seed in 0u64..500, count in 1u64..100) {
        let run = |seed| {
            let (mut net, h1, h2) = line(2, 0.1, seed);
            let mut sim: Sim<Network> = Sim::new();
            start_cbr(&mut sim, h1, SimTime::ZERO, SimDuration::from_micros(7), count, move |i| {
                PacketBuilder::udp(a(1), a(2), 9, 10, &[]).ident(i as u16).build()
            });
            sim.run(&mut net);
            (
                net.hosts[h2].stats.rx_pkts,
                net.hosts[h2].stats.rx_bytes,
                sim.now(),
                sim.events_fired(),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Elision soundness: no publish pattern — bursty, sparse, or
    /// degenerate — may let a rendezvous-elided round (or the lock-free
    /// effects frontier) hide a published message. Any hidden message
    /// would change the merged schedule against the single-shard
    /// reference, or trip the EDP-E007 publish assert inside an elided
    /// span; both fail the property.
    #[test]
    fn no_publish_pattern_hides_a_message_from_an_elided_round(
        count in 1u64..40,
        interval_us in 1u64..40,
        subwindows in 1usize..64,
        effects in any::<bool>(),
    ) {
        let mode = if effects { HorizonMode::Effects } else { HorizonMode::Classic };
        let run = |shards: usize, subwindows: usize, mode: HorizonMode| {
            let (nets, _) = run_sharded_opts(
                shards,
                subwindows,
                mode,
                SimTime::from_millis(3),
                |_me| {
                    let (mut net, h1, _h2) = line(2, 0.0, 5);
                    net.tracer.enabled = true;
                    let mut sim: Sim<Network> = Sim::new();
                    start_cbr(
                        &mut sim,
                        h1,
                        SimTime::ZERO,
                        SimDuration::from_micros(interval_us),
                        count,
                        move |i| {
                            PacketBuilder::udp(a(1), a(2), 9, 10, &[])
                                .ident(i as u16)
                                .pad_to(256)
                                .build()
                        },
                    );
                    (net, sim)
                },
                |_me, net, _sim| net,
            );
            let rx: u64 = nets.iter().map(|n| n.hosts[1].stats.rx_pkts).sum();
            let tracers: Vec<&edp_netsim::Tracer> = nets.iter().map(|n| &n.tracer).collect();
            (rx, merge_tracers(&tracers))
        };
        let (rx_ref, trace_ref) = run(1, 1, HorizonMode::Classic);
        prop_assert_eq!(rx_ref, count);
        let (rx, trace) = run(2, subwindows, mode);
        prop_assert_eq!(rx, rx_ref);
        prop_assert_eq!(trace, trace_ref);
    }
}
