//! Uniform driving interface over baseline and event switches.
//!
//! The network layer must not care which architecture a node runs, so both
//! switch types are driven through [`SwitchHarness`]. The trait's default
//! no-ops for timers/links/control-plane are themselves meaningful: they
//! are exactly the stimuli a baseline switch has no way to react to.

use edp_core::{CpNotification, EventProgram, EventSwitch};
use edp_evsim::SimTime;
use edp_packet::Packet;
use edp_pisa::{BaselineSwitch, PisaProgram, PortId};
use std::any::Any;

/// A switch that the network can drive.
///
/// `Send` so finished shard state (the owning [`crate::Network`]) can be
/// handed back across the worker-thread boundary for inspection.
pub trait SwitchHarness: Any + Send {
    /// Number of ports.
    fn n_ports(&self) -> usize;
    /// Deliver an arriving frame.
    fn receive(&mut self, now: SimTime, port: PortId, pkt: Packet);
    /// Deliver a same-instant burst of frames. The default unrolls into
    /// per-frame [`SwitchHarness::receive`] calls; switches with a native
    /// burst fast path override it, and must stay byte-identical to the
    /// unrolled form.
    fn receive_burst(&mut self, now: SimTime, port: PortId, burst: edp_packet::Burst) {
        for pkt in burst {
            self.receive(now, port, pkt);
        }
    }
    /// Pull the next frame for `port` (None if empty or dropped).
    fn transmit(&mut self, now: SimTime, port: PortId) -> Option<Packet>;
    /// True if `port` has queued frames.
    fn has_pending(&self, port: PortId) -> bool;
    /// Fire timers due at or before `now` (no-op for baseline switches).
    fn fire_due_timers(&mut self, _now: SimTime) {}
    /// Earliest pending timer deadline (None for baseline switches).
    fn next_timer_due(&self) -> Option<SimTime> {
        None
    }
    /// Notify a link status change (baseline switches cannot react).
    fn set_link_status(&mut self, _now: SimTime, _port: PortId, _up: bool) {}
    /// Deliver a control-plane message. On an event switch this fires a
    /// control-plane-triggered *event*; on a baseline switch it becomes a
    /// P4Runtime-style management update (tables/registers only).
    fn control_plane(&mut self, _now: SimTime, _opcode: u32, _args: [u64; 4]) {}
    /// Drain control-plane notifications raised by handlers.
    fn drain_cp(&mut self) -> Vec<CpNotification> {
        Vec::new()
    }
    /// Publish this switch's counters into the unified metrics registry
    /// under `scope` (default: nothing to publish).
    fn publish_metrics(&self, _reg: &mut edp_telemetry::Registry, _scope: &str) {}
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// Downcast support (mutable).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<P: PisaProgram + 'static> SwitchHarness for BaselineSwitch<P> {
    fn n_ports(&self) -> usize {
        BaselineSwitch::n_ports(self)
    }
    fn receive(&mut self, now: SimTime, port: PortId, pkt: Packet) {
        BaselineSwitch::receive(self, now, port, pkt)
    }
    fn transmit(&mut self, now: SimTime, port: PortId) -> Option<Packet> {
        BaselineSwitch::transmit(self, now, port)
    }
    fn has_pending(&self, port: PortId) -> bool {
        BaselineSwitch::has_pending(self, port)
    }
    fn control_plane(&mut self, now: SimTime, opcode: u32, args: [u64; 4]) {
        BaselineSwitch::control_plane(self, now, opcode, args)
    }
    fn publish_metrics(&self, reg: &mut edp_telemetry::Registry, scope: &str) {
        BaselineSwitch::publish_metrics(self, reg, scope)
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<P: EventProgram + 'static> SwitchHarness for EventSwitch<P> {
    fn n_ports(&self) -> usize {
        EventSwitch::n_ports(self)
    }
    fn receive(&mut self, now: SimTime, port: PortId, pkt: Packet) {
        EventSwitch::receive(self, now, port, pkt)
    }
    fn receive_burst(&mut self, now: SimTime, port: PortId, burst: edp_packet::Burst) {
        EventSwitch::receive_burst(self, now, port, burst)
    }
    fn transmit(&mut self, now: SimTime, port: PortId) -> Option<Packet> {
        EventSwitch::transmit(self, now, port)
    }
    fn has_pending(&self, port: PortId) -> bool {
        EventSwitch::has_pending(self, port)
    }
    fn fire_due_timers(&mut self, now: SimTime) {
        EventSwitch::fire_due_timers(self, now);
    }
    fn next_timer_due(&self) -> Option<SimTime> {
        EventSwitch::next_timer_due(self)
    }
    fn set_link_status(&mut self, now: SimTime, port: PortId, up: bool) {
        EventSwitch::set_link_status(self, now, port, up)
    }
    fn control_plane(&mut self, now: SimTime, opcode: u32, args: [u64; 4]) {
        EventSwitch::control_plane(self, now, opcode, args)
    }
    fn drain_cp(&mut self) -> Vec<CpNotification> {
        EventSwitch::drain_cp_notifications(self)
    }
    fn publish_metrics(&self, reg: &mut edp_telemetry::Registry, scope: &str) {
        EventSwitch::publish_metrics(self, reg, scope)
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edp_core::EventSwitchConfig;
    use edp_pisa::{ForwardTo, QueueConfig};

    #[test]
    fn baseline_harness_roundtrip() {
        let mut h: Box<dyn SwitchHarness> =
            Box::new(BaselineSwitch::new(ForwardTo(1), 2, QueueConfig::default()));
        assert_eq!(h.n_ports(), 2);
        assert!(h.next_timer_due().is_none());
        h.set_link_status(SimTime::ZERO, 0, false); // no-op, must not panic
        h.control_plane(SimTime::ZERO, 1, [0; 4]);
        assert!(h.drain_cp().is_empty());
        // Downcast back to the concrete type.
        let sw = h
            .as_any()
            .downcast_ref::<BaselineSwitch<ForwardTo>>()
            .expect("downcast");
        assert_eq!(sw.counters().rx, 0);
    }

    #[test]
    fn burst_delivery_matches_sequential_for_both_architectures() {
        use edp_packet::{Burst, PacketBuilder};
        use std::net::Ipv4Addr;
        let frame = || {
            Packet::anonymous(
                PacketBuilder::udp(
                    Ipv4Addr::new(1, 0, 0, 1),
                    Ipv4Addr::new(1, 0, 0, 2),
                    5,
                    6,
                    b"y",
                )
                .pad_to(64)
                .build(),
            )
        };
        let drain = |h: &mut dyn SwitchHarness| {
            let mut out = Vec::new();
            while let Some(p) = h.transmit(SimTime::from_nanos(9), 1) {
                out.push(p.bytes().to_vec());
            }
            out
        };
        // Baseline switch exercises the trait's default unrolling; the
        // event switch exercises its native burst override.
        let mut base: Box<dyn SwitchHarness> =
            Box::new(BaselineSwitch::new(ForwardTo(1), 2, QueueConfig::default()));
        let mut seq: Box<dyn SwitchHarness> =
            Box::new(BaselineSwitch::new(ForwardTo(1), 2, QueueConfig::default()));
        base.receive_burst(SimTime::ZERO, 0, Burst::from_frames(vec![frame(), frame()]));
        seq.receive(SimTime::ZERO, 0, frame());
        seq.receive(SimTime::ZERO, 0, frame());
        assert_eq!(drain(base.as_mut()), drain(seq.as_mut()));

        let mut ev: Box<dyn SwitchHarness> = Box::new(EventSwitch::new(
            edp_core::BaselineAdapter(ForwardTo(1)),
            EventSwitchConfig {
                n_ports: 2,
                ..Default::default()
            },
        ));
        ev.receive_burst(SimTime::ZERO, 0, Burst::from_frames(vec![frame(), frame()]));
        let ev_out = drain(ev.as_mut());
        assert_eq!(ev_out.len(), 2, "native burst path delivered both frames");
    }

    #[test]
    fn event_harness_exposes_timers() {
        struct Nop;
        impl EventProgram for Nop {}
        let cfg = EventSwitchConfig {
            n_ports: 3,
            timers: vec![edp_core::TimerSpec {
                id: 0,
                period: edp_evsim::SimDuration::from_micros(7),
                start: edp_evsim::SimDuration::from_micros(7),
            }],
            ..Default::default()
        };
        let mut h: Box<dyn SwitchHarness> = Box::new(EventSwitch::new(Nop, cfg));
        assert_eq!(h.next_timer_due(), Some(SimTime::from_micros(7)));
        h.fire_due_timers(SimTime::from_micros(8));
        assert_eq!(h.next_timer_due(), Some(SimTime::from_micros(14)));
    }
}
