//! Capture replay: inject a decoded pcap onto sim-time.
//!
//! [`start_replay`] turns a parsed [`PcapFile`](edp_packet::PcapFile)
//! into host traffic, preserving the capture's original inter-arrival
//! gaps (optionally compressed by a speedup factor). Injection goes
//! through [`Network::host_send`], so replay is ownership-gated under
//! sharded execution exactly like every other generator and the replayed
//! schedule is a pure function of the capture file.

use crate::host::HostId;
use crate::net::Network;
use edp_evsim::{Sim, SimTime};
use edp_packet::PcapPacket;
use std::sync::Arc;

/// Replays `packets` from `host`, starting at `start`.
///
/// The i-th frame is injected at `start + (ts_i - ts_0) / speedup`, so
/// the capture's relative timing is preserved; `speedup > 1` compresses
/// the gaps (10 = ten times faster), `speedup < 1` stretches them.
/// Frames whose scaled time lands at or past `until` are not injected.
/// Events self-chain — one outstanding event per replay stream no matter
/// how large the capture is.
///
/// # Panics
/// Panics if `speedup` is not finite and positive.
pub fn start_replay(
    sim: &mut Sim<Network>,
    host: HostId,
    packets: Arc<Vec<PcapPacket>>,
    start: SimTime,
    speedup: f64,
    until: SimTime,
) {
    assert!(
        speedup.is_finite() && speedup > 0.0,
        "replay speedup must be finite and positive, got {speedup}"
    );
    if packets.is_empty() {
        return;
    }
    arm(sim, host, packets, start, speedup, until, 0);
}

/// Injection time of packet `i`: gaps are scaled relative to the first
/// packet's timestamp. Integer nanoseconds after one f64 division keep
/// the schedule deterministic.
fn inject_at(packets: &[PcapPacket], start: SimTime, speedup: f64, i: usize) -> SimTime {
    let gap = packets[i].ts_ns.saturating_sub(packets[0].ts_ns);
    start + edp_evsim::SimDuration::from_nanos((gap as f64 / speedup) as u64)
}

fn arm(
    sim: &mut Sim<Network>,
    host: HostId,
    packets: Arc<Vec<PcapPacket>>,
    start: SimTime,
    speedup: f64,
    until: SimTime,
    i: usize,
) {
    if i >= packets.len() {
        return;
    }
    let at = inject_at(&packets, start, speedup, i);
    if at >= until {
        return;
    }
    sim.schedule_at(at, move |w: &mut Network, s: &mut Sim<Network>| {
        w.host_send(s, host, packets[i].data.clone());
        arm(s, host, packets, start, speedup, until, i + 1);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{Host, HostApp};
    use crate::link::LinkSpec;
    use crate::net::NodeRef;
    use edp_evsim::SimDuration;
    use edp_packet::{PacketBuilder, PcapFile};
    use std::net::Ipv4Addr;

    fn a(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    fn two_hosts() -> (Network, HostId, HostId) {
        let mut net = Network::new(3);
        let h0 = net.add_host(Host::new(a(1), HostApp::Sink));
        let h1 = net.add_host(Host::new(a(2), HostApp::Sink));
        net.connect(
            (NodeRef::Host(h0), 0),
            (NodeRef::Host(h1), 0),
            LinkSpec::ten_gig(SimDuration::from_nanos(10)),
        );
        (net, h0, h1)
    }

    fn capture(n: u64, gap_ns: u64) -> PcapFile {
        PcapFile {
            packets: (0..n)
                .map(|i| {
                    PcapPacket::full(
                        1_000_000 + i * gap_ns,
                        PacketBuilder::udp(a(1), a(2), 5, 6, &[])
                            .ident(i as u16)
                            .pad_to(64)
                            .build(),
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn replay_delivers_all_frames_with_gaps() {
        let (mut net, h0, h1) = two_hosts();
        let mut sim: Sim<Network> = Sim::new();
        start_replay(
            &mut sim,
            h0,
            Arc::new(capture(20, 1_000).packets),
            SimTime::from_micros(5),
            1.0,
            SimTime::from_millis(1),
        );
        sim.run(&mut net);
        assert_eq!(net.hosts[h1].stats.rx_pkts, 20);
        // Last injection at 5µs + 19 gaps of 1µs = 24µs, plus wire time.
        assert!(sim.now().as_nanos() >= 24_000);
    }

    #[test]
    fn speedup_compresses_gaps() {
        let (mut net, h0, h1) = two_hosts();
        let mut sim: Sim<Network> = Sim::new();
        start_replay(
            &mut sim,
            h0,
            Arc::new(capture(10, 10_000).packets),
            SimTime::ZERO,
            10.0,
            SimTime::from_millis(1),
        );
        sim.run(&mut net);
        assert_eq!(net.hosts[h1].stats.rx_pkts, 10);
        // 9 gaps of 10µs compressed 10x -> last injection at 9µs.
        assert!(sim.now().as_nanos() < 15_000, "ended at {}", sim.now());
    }

    #[test]
    fn until_cuts_the_tail() {
        let (mut net, h0, h1) = two_hosts();
        let mut sim: Sim<Network> = Sim::new();
        start_replay(
            &mut sim,
            h0,
            Arc::new(capture(10, 1_000).packets),
            SimTime::ZERO,
            1.0,
            SimTime::from_nanos(4_500),
        );
        sim.run(&mut net);
        // Injections at 0..4µs make the cut; 5µs+ do not.
        assert_eq!(net.hosts[h1].stats.rx_pkts, 5);
    }

    #[test]
    fn empty_capture_is_noop() {
        let (mut net, h0, _) = two_hosts();
        let mut sim: Sim<Network> = Sim::new();
        start_replay(
            &mut sim,
            h0,
            Arc::new(Vec::new()),
            SimTime::ZERO,
            1.0,
            SimTime::from_millis(1),
        );
        sim.run(&mut net);
        assert_eq!(net.hosts[0].stats.rx_pkts, 0);
    }
}
