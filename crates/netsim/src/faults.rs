//! Deterministic fault injection: seeded schedules of link failures,
//! flaps, packet impairments, and switch stalls.
//!
//! A [`FaultPlan`] is a declarative description of everything that goes
//! wrong in an experiment. [`FaultPlan::apply`] installs it on a built
//! [`Network`]: status changes become scheduled events (so attached
//! switches see the link-status stimuli of the paper's Table 1), and
//! packet impairment models get their own per-link, per-direction RNG
//! streams derived statelessly via [`SimRng::stream`] from the plan's
//! seed — never from the shared workload RNG. That makes every run a
//! pure function of `(topology, workload seed, fault seed)`: adding a
//! fault to one link cannot perturb another link's impairments, and the
//! outcome is identical regardless of thread count or construction
//! order.

use crate::link::{LinkFaultModel, LinkFaults, LinkId};
use crate::net::Network;
use edp_evsim::{Sim, SimDuration, SimRng, SimTime};

/// First path element of every fault RNG stream: separates the fault
/// domain from any other consumer of [`SimRng::stream`] on the same
/// master seed.
pub const FAULT_DOMAIN: u64 = 0xFA17;

/// A repeating down/up cycle on one link.
#[derive(Debug, Clone, Copy)]
struct Flap {
    link: LinkId,
    first_down: SimTime,
    down_for: SimDuration,
    period: SimDuration,
    count: u32,
}

/// A declarative, seeded schedule of faults for one experiment.
///
/// Build with the fluent methods, then [`apply`](FaultPlan::apply) once
/// after the topology exists. The plan itself is plain data — applying
/// the same plan to the same network always produces the same run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    downs: Vec<(LinkId, SimTime, Option<SimTime>)>,
    flaps: Vec<Flap>,
    models: Vec<(LinkId, LinkFaultModel)>,
    stalls: Vec<(usize, SimTime, SimTime)>,
}

impl FaultPlan {
    /// An empty plan whose impairment models will draw from streams
    /// derived from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            downs: Vec::new(),
            flaps: Vec::new(),
            models: Vec::new(),
            stalls: Vec::new(),
        }
    }

    /// Takes `link` down at `at`, optionally bringing it back at
    /// `back_up`.
    pub fn link_down_at(mut self, link: LinkId, at: SimTime, back_up: Option<SimTime>) -> Self {
        self.downs.push((link, at, back_up));
        self
    }

    /// Flaps `link`: `count` down/up cycles starting at `first_down`,
    /// each staying down for `down_for`, one cycle every `period`.
    pub fn link_flap(
        mut self,
        link: LinkId,
        first_down: SimTime,
        down_for: SimDuration,
        period: SimDuration,
        count: u32,
    ) -> Self {
        assert!(
            down_for < period,
            "flap must come back up within its period"
        );
        self.flaps.push(Flap {
            link,
            first_down,
            down_for,
            period,
            count,
        });
        self
    }

    /// Installs a packet impairment model (drop/corrupt/duplicate/
    /// reorder) on `link`, both directions.
    pub fn link_model(mut self, link: LinkId, model: LinkFaultModel) -> Self {
        self.models.push((link, model));
        self
    }

    /// Freezes switch `i` between `from` and `until` (no receive,
    /// transmit, or timer cranks while stalled).
    pub fn switch_stall(mut self, i: usize, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "empty stall window");
        self.stalls.push((i, from, until));
        self
    }

    /// Number of scheduled status transitions (downs + ups, including
    /// every flap cycle). Stalls and impairment models are not
    /// transitions.
    pub fn transitions(&self) -> usize {
        let downs: usize = self
            .downs
            .iter()
            .map(|(_, _, up)| 1 + usize::from(up.is_some()))
            .sum();
        let flaps: usize = self.flaps.iter().map(|f| 2 * f.count as usize).sum();
        downs + flaps
    }

    /// The RNG stream a given link direction's impairment model draws
    /// from: `stream(seed, [FAULT_DOMAIN, link, dir])`. Exposed so tests
    /// can reproduce a model's draws independently.
    pub fn model_stream(&self, link: LinkId, dir: usize) -> SimRng {
        SimRng::stream(self.seed, &[FAULT_DOMAIN, link as u64, dir as u64])
    }

    /// Installs the plan on a built network: impairment models
    /// immediately, status changes and stalls as scheduled events.
    pub fn apply(&self, net: &mut Network, sim: &mut Sim<Network>) {
        for &(link, model) in &self.models {
            net.set_link_faults(
                link,
                Some(LinkFaults::new(
                    model,
                    self.model_stream(link, 0),
                    self.model_stream(link, 1),
                )),
            );
        }
        for &(link, at, back_up) in &self.downs {
            net.schedule_link_failure(sim, link, at, back_up);
        }
        for &f in &self.flaps {
            for k in 0..f.count {
                let down = f.first_down + f.period * u64::from(k);
                net.schedule_link_failure(sim, f.link, down, Some(down + f.down_for));
            }
        }
        for &(i, from, until) in &self.stalls {
            sim.schedule_at(from, move |w: &mut Network, s: &mut Sim<Network>| {
                w.stall_switch(s, i, until)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_count_downs_ups_and_flap_cycles() {
        let plan = FaultPlan::new(1)
            .link_down_at(0, SimTime::from_micros(5), None)
            .link_down_at(1, SimTime::from_micros(5), Some(SimTime::from_micros(9)))
            .link_flap(
                2,
                SimTime::from_micros(10),
                SimDuration::from_micros(1),
                SimDuration::from_micros(4),
                3,
            );
        assert_eq!(plan.transitions(), 1 + 2 + 6);
    }

    #[test]
    fn model_streams_are_per_link_and_direction() {
        let plan = FaultPlan::new(42);
        let draw = |mut r: SimRng| -> Vec<u64> {
            (0..8).map(|_| r.uniform_u64(0, u64::MAX - 1)).collect()
        };
        let a = draw(plan.model_stream(0, 0));
        assert_eq!(
            a,
            draw(plan.model_stream(0, 0)),
            "stateless: same every time"
        );
        assert_ne!(a, draw(plan.model_stream(0, 1)), "directions differ");
        assert_ne!(a, draw(plan.model_stream(1, 0)), "links differ");
        assert_ne!(
            a,
            draw(FaultPlan::new(43).model_stream(0, 0)),
            "seeds differ"
        );
    }

    #[test]
    #[should_panic(expected = "within its period")]
    fn flap_longer_than_period_panics() {
        let _ = FaultPlan::new(1).link_flap(
            0,
            SimTime::ZERO,
            SimDuration::from_micros(5),
            SimDuration::from_micros(5),
            1,
        );
    }
}
