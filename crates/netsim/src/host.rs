//! End hosts: traffic sinks with per-flow accounting plus small
//! programmable responders (echo, key-value server, RPC server, and the
//! endpoint-fleet client).

use crate::endpoint::EndpointFleet;
use edp_evsim::{SimTime, Welford};
use edp_packet::{
    parse_packet, AppHeader, EtherType, FlowKey, IpProto, KvHeader, KvOp, Packet, PacketBuilder,
    ParsedPacket, RpcHeader, RpcKind,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Index of a host within the network.
pub type HostId = usize;

/// Per-flow receive statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowStats {
    /// Packets received.
    pub pkts: u64,
    /// Bytes received.
    pub bytes: u64,
    /// One-way latency samples (ns), when send times were recorded.
    pub latency_ns: Welford,
}

/// Human-readable labels for [`ProtoStats::eth`] buckets.
pub const ETH_CLASSES: [&str; 4] = ["ipv4", "arp", "event", "other"];
/// Human-readable labels for [`ProtoStats::ip`] buckets.
pub const IP_CLASSES: [&str; 4] = ["udp", "tcp", "icmp", "other"];
/// Human-readable labels for [`ProtoStats::port`] buckets.
pub const PORT_CLASSES: [&str; 6] = ["hula", "int", "kv", "live", "rpc", "other"];

/// Per-protocol receive accounting: packets and bytes bucketed by
/// ethertype, IP protocol, and well-known-port class. Fixed-size arrays
/// (indices match the `*_CLASSES` label tables) so counting is two adds
/// per layer and publishing is deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtoStats {
    /// Packets by ethertype class (see [`ETH_CLASSES`]).
    pub eth: [u64; 4],
    /// Bytes by ethertype class.
    pub eth_bytes: [u64; 4],
    /// IPv4 packets by protocol class (see [`IP_CLASSES`]).
    pub ip: [u64; 4],
    /// IPv4 bytes by protocol class.
    pub ip_bytes: [u64; 4],
    /// UDP packets by well-known-port class (see [`PORT_CLASSES`]).
    pub port: [u64; 6],
    /// UDP bytes by well-known-port class.
    pub port_bytes: [u64; 6],
}

impl ProtoStats {
    /// Folds one parsed frame of `len` bytes into the buckets.
    pub fn record(&mut self, pp: &ParsedPacket, len: u64) {
        let e = match pp.eth.ethertype {
            EtherType::Ipv4 => 0,
            EtherType::Arp => 1,
            EtherType::EventCarrier => 2,
            EtherType::Other(_) => 3,
        };
        self.eth[e] += 1;
        self.eth_bytes[e] += len;
        let Some(ip) = pp.ipv4 else { return };
        let i = match ip.proto {
            IpProto::Udp => 0,
            IpProto::Tcp => 1,
            IpProto::Icmp => 2,
            IpProto::Other(_) => 3,
        };
        self.ip[i] += 1;
        self.ip_bytes[i] += len;
        if i != 0 {
            return;
        }
        let p = match pp.app {
            Some(AppHeader::Hula(_)) => 0,
            Some(AppHeader::Telemetry(_)) => 1,
            Some(AppHeader::Kv(_)) => 2,
            Some(AppHeader::Liveness(_)) => 3,
            Some(AppHeader::Rpc(_)) => 4,
            None => 5,
        };
        self.port[p] += 1;
        self.port_bytes[p] += len;
    }

    /// Sums `other` into `self` (shard-merge / multi-host aggregation).
    pub fn absorb(&mut self, other: &ProtoStats) {
        for (a, b) in self.eth.iter_mut().zip(other.eth) {
            *a += b;
        }
        for (a, b) in self.eth_bytes.iter_mut().zip(other.eth_bytes) {
            *a += b;
        }
        for (a, b) in self.ip.iter_mut().zip(other.ip) {
            *a += b;
        }
        for (a, b) in self.ip_bytes.iter_mut().zip(other.ip_bytes) {
            *a += b;
        }
        for (a, b) in self.port.iter_mut().zip(other.port) {
            *a += b;
        }
        for (a, b) in self.port_bytes.iter_mut().zip(other.port_bytes) {
            *a += b;
        }
    }
}

/// Aggregate host receive statistics.
#[derive(Debug, Clone, Default)]
pub struct HostStats {
    /// Total frames received.
    pub rx_pkts: u64,
    /// Total bytes received.
    pub rx_bytes: u64,
    /// Frames that failed to parse.
    pub rx_errors: u64,
    /// Per-protocol breakdown of parsed frames.
    pub proto: ProtoStats,
    /// Per-flow breakdown.
    pub flows: HashMap<FlowKey, FlowStats>,
}

impl HostStats {
    /// Received packets for a flow (0 if none).
    pub fn flow_pkts(&self, key: &FlowKey) -> u64 {
        self.flows.get(key).map(|f| f.pkts).unwrap_or(0)
    }

    /// Total goodput in bits over the interval `[0, now]`, as bits/s.
    pub fn goodput_bps(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.rx_bytes as f64 * 8.0 * 1e9 / now.as_nanos() as f64
    }
}

/// What a host does with arriving packets beyond counting them.
#[derive(Debug, Clone)]
pub enum HostApp {
    /// Count only.
    Sink,
    /// Reflect every UDP datagram back to its sender (ports swapped).
    UdpEcho,
    /// A NetCache-style key-value server: answers `Get` with `Reply`,
    /// applies `Put`s to its store.
    KvServer {
        /// The backing store.
        store: HashMap<u64, u64>,
        /// Served request count.
        served: u64,
    },
    /// An HTTP/gRPC-shaped RPC server: acks `Connect`s and answers
    /// `Request`s with a `Response` padded to the client-requested size.
    RpcServer {
        /// Served message count (connects + requests).
        served: u64,
    },
    /// A fleet of logical clients (see [`crate::endpoint::EndpointFleet`]):
    /// consumes `ConnectAck`/`Response` frames; its requests are injected
    /// by the [`crate::endpoint::start_endpoints`] pacer.
    ClientFleet(Box<EndpointFleet>),
}

/// An end host attached to the network by one link.
#[derive(Debug, Clone)]
pub struct Host {
    /// This host's IPv4 address.
    pub addr: Ipv4Addr,
    /// Behaviour on receive.
    pub app: HostApp,
    /// Receive statistics.
    pub stats: HostStats,
}

impl Host {
    /// Creates a host.
    pub fn new(addr: Ipv4Addr, app: HostApp) -> Self {
        Host {
            addr,
            app,
            stats: HostStats::default(),
        }
    }

    /// Processes an arriving frame; returns response frames to send.
    ///
    /// `latency_ns` is the precomputed one-way latency when the network
    /// tracked the packet's send time.
    pub fn on_receive(
        &mut self,
        now: SimTime,
        pkt: &Packet,
        latency_ns: Option<u64>,
    ) -> Vec<Vec<u8>> {
        self.stats.rx_pkts += 1;
        self.stats.rx_bytes += pkt.len() as u64;
        let parsed = match parse_packet(pkt.bytes()) {
            Ok(p) => p,
            Err(_) => {
                self.stats.rx_errors += 1;
                return Vec::new();
            }
        };
        self.stats.proto.record(&parsed, pkt.len() as u64);
        if let Some(key) = parsed.flow_key() {
            let f = self.stats.flows.entry(key).or_default();
            f.pkts += 1;
            f.bytes += pkt.len() as u64;
            if let Some(l) = latency_ns {
                f.latency_ns.add(l as f64);
            }
        }
        match &mut self.app {
            HostApp::Sink => Vec::new(),
            HostApp::UdpEcho => {
                if let (Some(ip), Some(edp_packet::L4::Udp(udp))) = (parsed.ipv4, parsed.l4) {
                    let payload = &pkt.bytes()[parsed.payload_offset..];
                    let resp =
                        PacketBuilder::udp(ip.dst, ip.src, udp.dst_port, udp.src_port, payload)
                            .build();
                    vec![resp]
                } else {
                    Vec::new()
                }
            }
            HostApp::KvServer { store, served } => {
                let (Some(ip), Some(AppHeader::Kv(kv))) = (parsed.ipv4, parsed.app) else {
                    return Vec::new();
                };
                match kv.op {
                    KvOp::Get => {
                        *served += 1;
                        let value = store.get(&kv.key).copied().unwrap_or(0);
                        let reply = KvHeader {
                            op: KvOp::Reply,
                            key: kv.key,
                            value,
                        };
                        vec![PacketBuilder::kv(ip.dst, ip.src, &reply).build()]
                    }
                    KvOp::Put => {
                        *served += 1;
                        store.insert(kv.key, kv.value);
                        Vec::new()
                    }
                    KvOp::Reply => Vec::new(),
                }
            }
            HostApp::RpcServer { served } => {
                let (Some(ip), Some(AppHeader::Rpc(rpc))) = (parsed.ipv4, parsed.app) else {
                    return Vec::new();
                };
                match rpc.kind {
                    RpcKind::Connect => {
                        *served += 1;
                        let ack = RpcHeader {
                            kind: RpcKind::ConnectAck,
                            ..rpc
                        };
                        vec![PacketBuilder::rpc(ip.dst, ip.src, &ack).build()]
                    }
                    RpcKind::Request => {
                        *served += 1;
                        let resp = RpcHeader {
                            kind: RpcKind::Response,
                            ..rpc
                        };
                        vec![PacketBuilder::rpc(ip.dst, ip.src, &resp)
                            .pad_to(rpc.resp_bytes as usize)
                            .build()]
                    }
                    RpcKind::ConnectAck | RpcKind::Response => Vec::new(),
                }
            }
            HostApp::ClientFleet(fleet) => {
                if let Some(AppHeader::Rpc(rpc)) = parsed.app {
                    fleet.on_rpc(now, &rpc);
                }
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    #[test]
    fn sink_counts_flows_and_latency() {
        let mut h = Host::new(a(2), HostApp::Sink);
        let f = PacketBuilder::udp(a(1), a(2), 7, 8, b"abc").build();
        let pkt = Packet::anonymous(f);
        h.on_receive(SimTime::ZERO, &pkt, Some(1500));
        h.on_receive(SimTime::ZERO, &pkt, Some(2500));
        assert_eq!(h.stats.rx_pkts, 2);
        let parsed = parse_packet(pkt.bytes()).expect("p");
        let key = parsed.flow_key().expect("k");
        let fs = &h.stats.flows[&key];
        assert_eq!(fs.pkts, 2);
        assert_eq!(fs.latency_ns.mean(), 2000.0);
    }

    #[test]
    fn echo_swaps_addresses_and_ports() {
        let mut h = Host::new(a(2), HostApp::UdpEcho);
        let f = PacketBuilder::udp(a(1), a(2), 1111, 2222, b"ping").build();
        let out = h.on_receive(SimTime::ZERO, &Packet::anonymous(f), None);
        assert_eq!(out.len(), 1);
        let parsed = parse_packet(&out[0]).expect("parse");
        let ip = parsed.ipv4.expect("ip");
        assert_eq!(ip.src, a(2));
        assert_eq!(ip.dst, a(1));
        match parsed.l4 {
            Some(edp_packet::L4::Udp(u)) => {
                assert_eq!(u.src_port, 2222);
                assert_eq!(u.dst_port, 1111);
            }
            other => panic!("not udp: {other:?}"),
        }
    }

    #[test]
    fn kv_server_get_put() {
        let mut h = Host::new(
            a(5),
            HostApp::KvServer {
                store: HashMap::new(),
                served: 0,
            },
        );
        // Put 99 => 1234.
        let put = PacketBuilder::kv(
            a(1),
            a(5),
            &KvHeader {
                op: KvOp::Put,
                key: 99,
                value: 1234,
            },
        )
        .build();
        assert!(h
            .on_receive(SimTime::ZERO, &Packet::anonymous(put), None)
            .is_empty());
        // Get 99 -> reply 1234.
        let get = PacketBuilder::kv(
            a(1),
            a(5),
            &KvHeader {
                op: KvOp::Get,
                key: 99,
                value: 0,
            },
        )
        .build();
        let out = h.on_receive(SimTime::ZERO, &Packet::anonymous(get), None);
        assert_eq!(out.len(), 1);
        let parsed = parse_packet(&out[0]).expect("parse");
        match parsed.app {
            Some(AppHeader::Kv(kv)) => {
                assert_eq!(kv.op, KvOp::Reply);
                assert_eq!(kv.value, 1234);
            }
            other => panic!("not kv: {other:?}"),
        }
        match &h.app {
            HostApp::KvServer { served, .. } => assert_eq!(*served, 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn garbage_counted_as_error() {
        let mut h = Host::new(a(2), HostApp::Sink);
        h.on_receive(SimTime::ZERO, &Packet::anonymous(vec![9, 9]), None);
        assert_eq!(h.stats.rx_errors, 1);
    }
}
