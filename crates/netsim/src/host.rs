//! End hosts: traffic sinks with per-flow accounting plus small
//! programmable responders (echo, key-value server).

use edp_evsim::{SimTime, Welford};
use edp_packet::{parse_packet, AppHeader, FlowKey, KvHeader, KvOp, Packet, PacketBuilder};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Index of a host within the network.
pub type HostId = usize;

/// Per-flow receive statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowStats {
    /// Packets received.
    pub pkts: u64,
    /// Bytes received.
    pub bytes: u64,
    /// One-way latency samples (ns), when send times were recorded.
    pub latency_ns: Welford,
}

/// Aggregate host receive statistics.
#[derive(Debug, Clone, Default)]
pub struct HostStats {
    /// Total frames received.
    pub rx_pkts: u64,
    /// Total bytes received.
    pub rx_bytes: u64,
    /// Frames that failed to parse.
    pub rx_errors: u64,
    /// Per-flow breakdown.
    pub flows: HashMap<FlowKey, FlowStats>,
}

impl HostStats {
    /// Received packets for a flow (0 if none).
    pub fn flow_pkts(&self, key: &FlowKey) -> u64 {
        self.flows.get(key).map(|f| f.pkts).unwrap_or(0)
    }

    /// Total goodput in bits over the interval `[0, now]`, as bits/s.
    pub fn goodput_bps(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.rx_bytes as f64 * 8.0 * 1e9 / now.as_nanos() as f64
    }
}

/// What a host does with arriving packets beyond counting them.
#[derive(Debug, Clone)]
pub enum HostApp {
    /// Count only.
    Sink,
    /// Reflect every UDP datagram back to its sender (ports swapped).
    UdpEcho,
    /// A NetCache-style key-value server: answers `Get` with `Reply`,
    /// applies `Put`s to its store.
    KvServer {
        /// The backing store.
        store: HashMap<u64, u64>,
        /// Served request count.
        served: u64,
    },
}

/// An end host attached to the network by one link.
#[derive(Debug, Clone)]
pub struct Host {
    /// This host's IPv4 address.
    pub addr: Ipv4Addr,
    /// Behaviour on receive.
    pub app: HostApp,
    /// Receive statistics.
    pub stats: HostStats,
}

impl Host {
    /// Creates a host.
    pub fn new(addr: Ipv4Addr, app: HostApp) -> Self {
        Host {
            addr,
            app,
            stats: HostStats::default(),
        }
    }

    /// Processes an arriving frame; returns response frames to send.
    ///
    /// `latency_ns` is the precomputed one-way latency when the network
    /// tracked the packet's send time.
    pub fn on_receive(
        &mut self,
        _now: SimTime,
        pkt: &Packet,
        latency_ns: Option<u64>,
    ) -> Vec<Vec<u8>> {
        self.stats.rx_pkts += 1;
        self.stats.rx_bytes += pkt.len() as u64;
        let parsed = match parse_packet(pkt.bytes()) {
            Ok(p) => p,
            Err(_) => {
                self.stats.rx_errors += 1;
                return Vec::new();
            }
        };
        if let Some(key) = parsed.flow_key() {
            let f = self.stats.flows.entry(key).or_default();
            f.pkts += 1;
            f.bytes += pkt.len() as u64;
            if let Some(l) = latency_ns {
                f.latency_ns.add(l as f64);
            }
        }
        match &mut self.app {
            HostApp::Sink => Vec::new(),
            HostApp::UdpEcho => {
                if let (Some(ip), Some(edp_packet::L4::Udp(udp))) = (parsed.ipv4, parsed.l4) {
                    let payload = &pkt.bytes()[parsed.payload_offset..];
                    let resp =
                        PacketBuilder::udp(ip.dst, ip.src, udp.dst_port, udp.src_port, payload)
                            .build();
                    vec![resp]
                } else {
                    Vec::new()
                }
            }
            HostApp::KvServer { store, served } => {
                let (Some(ip), Some(AppHeader::Kv(kv))) = (parsed.ipv4, parsed.app) else {
                    return Vec::new();
                };
                match kv.op {
                    KvOp::Get => {
                        *served += 1;
                        let value = store.get(&kv.key).copied().unwrap_or(0);
                        let reply = KvHeader {
                            op: KvOp::Reply,
                            key: kv.key,
                            value,
                        };
                        vec![PacketBuilder::kv(ip.dst, ip.src, &reply).build()]
                    }
                    KvOp::Put => {
                        *served += 1;
                        store.insert(kv.key, kv.value);
                        Vec::new()
                    }
                    KvOp::Reply => Vec::new(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    #[test]
    fn sink_counts_flows_and_latency() {
        let mut h = Host::new(a(2), HostApp::Sink);
        let f = PacketBuilder::udp(a(1), a(2), 7, 8, b"abc").build();
        let pkt = Packet::anonymous(f);
        h.on_receive(SimTime::ZERO, &pkt, Some(1500));
        h.on_receive(SimTime::ZERO, &pkt, Some(2500));
        assert_eq!(h.stats.rx_pkts, 2);
        let parsed = parse_packet(pkt.bytes()).expect("p");
        let key = parsed.flow_key().expect("k");
        let fs = &h.stats.flows[&key];
        assert_eq!(fs.pkts, 2);
        assert_eq!(fs.latency_ns.mean(), 2000.0);
    }

    #[test]
    fn echo_swaps_addresses_and_ports() {
        let mut h = Host::new(a(2), HostApp::UdpEcho);
        let f = PacketBuilder::udp(a(1), a(2), 1111, 2222, b"ping").build();
        let out = h.on_receive(SimTime::ZERO, &Packet::anonymous(f), None);
        assert_eq!(out.len(), 1);
        let parsed = parse_packet(&out[0]).expect("parse");
        let ip = parsed.ipv4.expect("ip");
        assert_eq!(ip.src, a(2));
        assert_eq!(ip.dst, a(1));
        match parsed.l4 {
            Some(edp_packet::L4::Udp(u)) => {
                assert_eq!(u.src_port, 2222);
                assert_eq!(u.dst_port, 1111);
            }
            other => panic!("not udp: {other:?}"),
        }
    }

    #[test]
    fn kv_server_get_put() {
        let mut h = Host::new(
            a(5),
            HostApp::KvServer {
                store: HashMap::new(),
                served: 0,
            },
        );
        // Put 99 => 1234.
        let put = PacketBuilder::kv(
            a(1),
            a(5),
            &KvHeader {
                op: KvOp::Put,
                key: 99,
                value: 1234,
            },
        )
        .build();
        assert!(h
            .on_receive(SimTime::ZERO, &Packet::anonymous(put), None)
            .is_empty());
        // Get 99 -> reply 1234.
        let get = PacketBuilder::kv(
            a(1),
            a(5),
            &KvHeader {
                op: KvOp::Get,
                key: 99,
                value: 0,
            },
        )
        .build();
        let out = h.on_receive(SimTime::ZERO, &Packet::anonymous(get), None);
        assert_eq!(out.len(), 1);
        let parsed = parse_packet(&out[0]).expect("parse");
        match parsed.app {
            Some(AppHeader::Kv(kv)) => {
                assert_eq!(kv.op, KvOp::Reply);
                assert_eq!(kv.value, 1234);
            }
            other => panic!("not kv: {other:?}"),
        }
        match &h.app {
            HostApp::KvServer { served, .. } => assert_eq!(*served, 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn garbage_counted_as_error() {
        let mut h = Host::new(a(2), HostApp::Sink);
        h.on_receive(SimTime::ZERO, &Packet::anonymous(vec![9, 9]), None);
        assert_eq!(h.stats.rx_errors, 1);
    }
}
