//! Packet tracing: a tcpdump-flavoured view of everything on the wire.
//!
//! Enable with [`Tracer::enabled`]; the network records one line per
//! delivery with timestamp, receiving endpoint, and a parsed summary.
//! Bounded capacity keeps long experiments from hoarding memory — the
//! storage is the same eviction-counting [`edp_telemetry::Ring`] the
//! structured trace uses, and the eviction count is surfaced in both
//! [`Tracer::render`] and [`Tracer::to_json`].

use crate::net::{Endpoint, NodeRef};
use edp_evsim::SimTime;
use edp_telemetry::Ring;

/// What a trace entry records.
#[derive(Debug, Clone)]
pub enum TraceKind {
    /// A frame delivery.
    Rx {
        /// Receiving endpoint.
        to: Endpoint,
        /// Frame length in bytes.
        len: usize,
        /// Parsed one-line summary.
        summary: String,
    },
    /// An out-of-band annotation (link status flips, injected faults).
    Note(String),
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEntry {
    /// Renders the entry tcpdump-style.
    pub fn render(&self) -> String {
        match &self.kind {
            TraceKind::Rx { to, summary, .. } => {
                let who = match to.0 {
                    NodeRef::Switch(i) => format!("sw{}:p{}", i, to.1),
                    NodeRef::Host(h) => format!("host{h}"),
                };
                format!("{:>12} {:>10} rx {}", self.at.to_string(), who, summary)
            }
            TraceKind::Note(text) => {
                format!("{:>12} {:>10} -- {}", self.at.to_string(), "", text)
            }
        }
    }
}

/// A bounded in-memory packet trace.
#[derive(Debug)]
pub struct Tracer {
    /// Whether recording is active.
    pub enabled: bool,
    entries: Ring<TraceEntry>,
}

impl Tracer {
    /// Creates a disabled tracer with the given entry capacity.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: false,
            entries: Ring::new(capacity),
        }
    }

    /// Records a delivery (no-op when disabled).
    pub fn record(&mut self, at: SimTime, to: Endpoint, frame: &[u8]) {
        if !self.enabled {
            return;
        }
        self.push(TraceEntry {
            at,
            kind: TraceKind::Rx {
                to,
                len: frame.len(),
                summary: edp_packet::summarize(frame),
            },
        });
    }

    /// Records an out-of-band annotation (no-op when disabled). The
    /// network uses this for link status flips and injected faults so a
    /// rendered trace shows *why* deliveries stopped.
    pub fn note(&mut self, at: SimTime, text: impl Into<String>) {
        if !self.enabled {
            return;
        }
        self.push(TraceEntry {
            at,
            kind: TraceKind::Note(text.into()),
        });
    }

    fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// Recorded entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.entries.dropped()
    }

    /// The ring's entry capacity.
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Renders the whole trace, with a footer reporting eviction losses.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.entries.iter() {
            out.push_str(&e.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "-- {} entries, {} dropped (capacity {})\n",
            self.entries.len(),
            self.entries.dropped(),
            self.entries.capacity()
        ));
        out
    }

    /// Exports the trace as a JSON object: retained entries plus the
    /// eviction count, so consumers can tell a quiet wire from a wrapped
    /// ring.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        let mut out = String::from("{\"entries\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match &e.kind {
                TraceKind::Rx { to, len, summary } => {
                    let who = match to.0 {
                        NodeRef::Switch(s) => format!("sw{}:p{}", s, to.1),
                        NodeRef::Host(h) => format!("host{h}"),
                    };
                    out.push_str(&format!(
                        "{{\"at_ns\":{},\"kind\":\"rx\",\"to\":\"{}\",\"len\":{},\"summary\":\"{}\"}}",
                        e.at.as_nanos(),
                        who,
                        len,
                        esc(summary)
                    ));
                }
                TraceKind::Note(text) => {
                    out.push_str(&format!(
                        "{{\"at_ns\":{},\"kind\":\"note\",\"text\":\"{}\"}}",
                        e.at.as_nanos(),
                        esc(text)
                    ));
                }
            }
        }
        out.push_str(&format!(
            "],\"len\":{},\"dropped\":{},\"capacity\":{}}}",
            self.entries.len(),
            self.entries.dropped(),
            self.entries.capacity()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edp_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn frame() -> Vec<u8> {
        PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            5,
            6,
            b"x",
        )
        .build()
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::new(10);
        t.record(SimTime::ZERO, (NodeRef::Host(0), 0), &frame());
        assert!(t.is_empty());
    }

    #[test]
    fn records_and_renders() {
        let mut t = Tracer::new(10);
        t.enabled = true;
        t.record(SimTime::from_micros(3), (NodeRef::Switch(1), 2), &frame());
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.contains("sw1:p2"), "{s}");
        assert!(s.contains("10.0.0.1:5 > 10.0.0.2:6 UDP"), "{s}");
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut t = Tracer::new(3);
        t.enabled = true;
        for i in 0..5u64 {
            t.record(SimTime::from_nanos(i), (NodeRef::Host(0), 0), &frame());
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.entries().next().expect("entry");
        assert_eq!(first.at, SimTime::from_nanos(2));
    }

    #[test]
    fn malformed_frames_still_trace() {
        let mut t = Tracer::new(4);
        t.enabled = true;
        t.record(SimTime::ZERO, (NodeRef::Host(0), 0), &[1, 2, 3]);
        assert!(t.render().contains("malformed"));
    }

    #[test]
    fn notes_render_and_share_the_capacity_bound() {
        let mut t = Tracer::new(2);
        t.enabled = true;
        t.note(SimTime::from_micros(1), "link0 down");
        t.record(SimTime::from_micros(2), (NodeRef::Host(0), 0), &frame());
        t.note(SimTime::from_micros(3), "link0 up");
        // Capacity 2: the note at t=1 was evicted and counted.
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let s = t.render();
        assert!(!s.contains("link0 down"), "{s}");
        assert!(s.contains("link0 up"), "{s}");
        assert!(s.contains("-- link0 up"), "note marker: {s}");
    }

    #[test]
    fn disabled_tracer_ignores_notes() {
        let mut t = Tracer::new(4);
        t.note(SimTime::ZERO, "invisible");
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn dropped_count_surfaces_in_render_and_json() {
        let mut t = Tracer::new(2);
        t.enabled = true;
        for i in 0..5u64 {
            t.record(SimTime::from_nanos(i), (NodeRef::Host(0), 0), &frame());
        }
        assert_eq!(t.dropped(), 3);
        let rendered = t.render();
        assert!(
            rendered.contains("-- 2 entries, 3 dropped (capacity 2)"),
            "{rendered}"
        );
        let json = t.to_json();
        assert!(json.contains("\"dropped\":3"), "{json}");
        assert!(json.contains("\"len\":2"), "{json}");
        assert!(json.contains("\"capacity\":2"), "{json}");
        // Zero-loss traces say so too.
        let mut quiet = Tracer::new(8);
        quiet.enabled = true;
        quiet.note(SimTime::ZERO, "hello \"quoted\"");
        assert!(quiet.render().contains("-- 1 entries, 0 dropped"));
        assert!(quiet.to_json().contains("\"dropped\":0"));
        assert!(quiet.to_json().contains("hello \\\"quoted\\\""));
    }

    #[test]
    fn eviction_keeps_counting_past_multiple_wraps() {
        let mut t = Tracer::new(2);
        t.enabled = true;
        for i in 0..9u64 {
            t.record(SimTime::from_nanos(i), (NodeRef::Host(0), 0), &frame());
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 7, "every eviction counts exactly once");
        assert_eq!(
            t.entries().next().expect("entry").at,
            SimTime::from_nanos(7)
        );
    }
}
