//! The network world: nodes, links, and the event-driven glue.
//!
//! [`Network`] is the world type `W` for [`Sim<Network>`]: every link
//! delivery, transmission opportunity, timer crank, and control-plane
//! round trip is a scheduled event. All methods that advance the world
//! take `&mut Sim<Network>` so they can schedule follow-up events.

use crate::harness::SwitchHarness;
use crate::host::{Host, HostId};
use crate::link::{Dir, LinkDirState, LinkFaults, LinkId, LinkSpec, LinkState};
use crate::shard::{ShardCtx, ShardMsg, ShardPlan};
use crate::trace::Tracer;
use edp_core::{CpNotification, EffectSummary};
use edp_evsim::{EventClass, Sim, SimDuration, SimRng, SimTime, UNKEYED};
use edp_packet::{Packet, PacketUid};
use edp_pisa::PortId;
use std::collections::{HashMap, HashSet, VecDeque};

/// A node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeRef {
    /// A switch, by index.
    Switch(usize),
    /// A host, by index.
    Host(HostId),
}

/// A (node, port) attachment point.
pub type Endpoint = (NodeRef, PortId);

struct NetLink {
    state: LinkState,
    ends: [Endpoint; 2],
}

/// The simulated network.
pub struct Network {
    /// Switches (baseline or event-driven), boxed behind the harness.
    pub switches: Vec<Box<dyn SwitchHarness>>,
    /// End hosts.
    pub hosts: Vec<Host>,
    links: Vec<NetLink>,
    /// Per-switch stall deadline: a switch with `stalled_until > now`
    /// neither receives, transmits, nor cranks timers until the deadline.
    stalled_until: Vec<SimTime>,
    /// Per-switch emission certificate (see
    /// [`install_effect_summary`](Self::install_effect_summary)); `None`
    /// means no proof — every event stays horizon-bound.
    effect_summaries: Vec<Option<EffectSummary>>,
    port_links: HashMap<Endpoint, (LinkId, Dir)>,
    tx_armed: HashSet<Endpoint>,
    host_txq: Vec<VecDeque<Packet>>,
    send_times: HashMap<PacketUid, SimTime>,
    next_uid: u64,
    /// Per-link, per-direction wire sequence counters feeding the
    /// delivery ordering keys (see [`Network::next_wire_key`]).
    wire_seq: Vec<[u64; 2]>,
    /// Sharded-execution role; `None` for a classic single-world run.
    shard: Option<ShardCtx>,
    /// Workload randomness (fault injection, Poisson arrivals).
    pub rng: SimRng,
    /// Control-plane notifications collected from all switches:
    /// `(switch index, notification)`.
    pub cp_log: Vec<(usize, CpNotification)>,
    /// Control-plane messages sent *to* switches (overhead accounting).
    pub cp_messages: u64,
    /// Frames a switch emitted on a port with no link attached.
    pub dropped_unconnected: u64,
    /// Optional tcpdump-style packet trace (disabled by default).
    pub tracer: Tracer,
}

impl Network {
    /// Creates an empty network with the given workload seed.
    pub fn new(seed: u64) -> Self {
        Network {
            switches: Vec::new(),
            hosts: Vec::new(),
            links: Vec::new(),
            stalled_until: Vec::new(),
            effect_summaries: Vec::new(),
            port_links: HashMap::new(),
            tx_armed: HashSet::new(),
            host_txq: Vec::new(),
            send_times: HashMap::new(),
            next_uid: 1,
            wire_seq: Vec::new(),
            shard: None,
            rng: SimRng::seed_from_u64(seed),
            cp_log: Vec::new(),
            cp_messages: 0,
            dropped_unconnected: 0,
            tracer: Tracer::new(4096),
        }
    }

    /// Adds a switch; returns its index.
    pub fn add_switch(&mut self, sw: Box<dyn SwitchHarness>) -> usize {
        self.switches.push(sw);
        self.stalled_until.push(SimTime::ZERO);
        self.effect_summaries.push(None);
        self.switches.len() - 1
    }

    /// Installs the emission certificate for switch `i`'s program (see
    /// [`EffectSummary`]). Under [`crate::run_sharded`] with the effects
    /// horizon (`EDP_HORIZON=effects`), a summary whose timer closure
    /// cannot emit lets the engine class that switch's timer cranks
    /// [`EventClass::Local`] — invisible to the safe-horizon negotiation,
    /// so purely internal bookkeeping (policer refills, sketch decay,
    /// epoch rotation) no longer forces a barrier per period.
    ///
    /// Install the same summary in every shard's build closure (the
    /// engine is SPMD: all shards must agree on event classes). Without a
    /// summary every event stays conservatively horizon-bound.
    pub fn install_effect_summary(&mut self, i: usize, summary: EffectSummary) {
        self.effect_summaries[i] = Some(summary);
    }

    /// Event class for switch `i`'s timer cranks: `Local` only when an
    /// installed summary proves the whole timer cascade (timer handler,
    /// raised user events, generated packets) emits nothing.
    fn timer_class(&self, i: usize) -> EventClass {
        match &self.effect_summaries[i] {
            Some(s) if s.timer_local() => EventClass::Local,
            _ => EventClass::Bound,
        }
    }

    /// Event class for a delivery to `dest`. Deliveries to hosts that
    /// never respond ([`crate::host::HostApp::Sink`] and
    /// [`crate::host::HostApp::ClientFleet`], whose requests are injected
    /// by a separate — bound — pacer event) are certified local: their
    /// cascades end at the host's counters. Switch deliveries stay bound:
    /// the receive path can enqueue and hence transmit.
    fn delivery_class(&self, dest: Endpoint) -> EventClass {
        match dest.0 {
            NodeRef::Host(h) => match self.hosts[h].app {
                crate::host::HostApp::Sink | crate::host::HostApp::ClientFleet(_) => {
                    EventClass::Local
                }
                _ => EventClass::Bound,
            },
            NodeRef::Switch(_) => EventClass::Bound,
        }
    }

    /// Adds a host; returns its id.
    pub fn add_host(&mut self, host: Host) -> HostId {
        self.hosts.push(host);
        self.host_txq.push(VecDeque::new());
        self.hosts.len() - 1
    }

    /// Connects two endpoints with a link; returns the link id.
    ///
    /// # Panics
    /// Panics if either endpoint is already connected or out of range.
    pub fn connect(&mut self, a: Endpoint, b: Endpoint, spec: LinkSpec) -> LinkId {
        self.validate_endpoint(a);
        self.validate_endpoint(b);
        let id = self.links.len();
        assert!(
            self.port_links.insert(a, (id, Dir::AtoB)).is_none(),
            "endpoint {a:?} already connected"
        );
        assert!(
            self.port_links.insert(b, (id, Dir::BtoA)).is_none(),
            "endpoint {b:?} already connected"
        );
        self.links.push(NetLink {
            state: LinkState::new(spec),
            ends: [a, b],
        });
        self.wire_seq.push([0, 0]);
        id
    }

    /// Every link's endpoints and spec, for partitioning.
    pub(crate) fn topology_edges(&self) -> impl Iterator<Item = ([Endpoint; 2], LinkSpec)> + '_ {
        self.links.iter().map(|l| (l.ends, l.state.spec))
    }

    /// Installs this world's shard role. Engine-only: called by
    /// [`crate::shard::run_sharded`] after the build closure returns and
    /// before any event fires.
    pub(crate) fn install_shard(&mut self, id: usize, plan: ShardPlan) {
        assert!(id < plan.shards(), "shard id out of range");
        self.shard = Some(ShardCtx {
            id,
            plan,
            outbox: Vec::new(),
        });
    }

    /// True when this world executes `node`'s side effects — always true
    /// in a classic single-world run; under sharded execution, true only
    /// on the owning shard. Every externally visible action (packet
    /// injection, switch processing, timer cranks, telemetry) is gated on
    /// this at fire time, so the same schedule can run everywhere while
    /// each effect happens exactly once.
    pub fn owns_node(&self, node: NodeRef) -> bool {
        match &self.shard {
            None => true,
            Some(c) => c.plan.owner(node) == c.id,
        }
    }

    /// This world's `(shard id, shard count)`; `(0, 1)` when unsharded.
    pub fn shard_role(&self) -> (usize, usize) {
        match &self.shard {
            None => (0, 1),
            Some(c) => (c.id, c.plan.shards()),
        }
    }

    fn validate_endpoint(&self, (node, port): Endpoint) {
        match node {
            NodeRef::Switch(i) => {
                assert!(i < self.switches.len(), "no switch {i}");
                assert!(
                    (port as usize) < self.switches[i].n_ports(),
                    "switch {i} has no port {port}"
                );
            }
            NodeRef::Host(h) => {
                assert!(h < self.hosts.len(), "no host {h}");
                assert_eq!(port, 0, "hosts have a single port 0");
            }
        }
    }

    /// Access a switch's concrete type (e.g. to read program state).
    ///
    /// # Panics
    /// Panics if the switch at `i` is not a `T`.
    pub fn switch_as<T: 'static>(&self, i: usize) -> &T {
        self.switches[i]
            .as_any()
            .downcast_ref::<T>()
            .expect("switch type mismatch")
    }

    /// Mutable access to a switch's concrete type.
    pub fn switch_as_mut<T: 'static>(&mut self, i: usize) -> &mut T {
        self.switches[i]
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("switch type mismatch")
    }

    /// Link utilization in `[0,1]` for the direction leaving `ep`.
    pub fn link_utilization(&self, ep: Endpoint, now: SimTime) -> f64 {
        let Some(&(lid, dir)) = self.port_links.get(&ep) else {
            return 0.0;
        };
        self.links[lid].state.utilization(dir, now)
    }

    /// Per-direction drop counters of a link: (fault drops, down drops).
    pub fn link_drops(&self, link: LinkId) -> (u64, u64) {
        let l = &self.links[link].state;
        (
            l.dirs[0].fault_drops + l.dirs[1].fault_drops,
            l.dirs[0].down_drops + l.dirs[1].down_drops,
        )
    }

    /// Installs (or clears) a packet impairment model on a link. See
    /// [`LinkFaults::new`] and [`edp_evsim::SimRng::stream`] for where the
    /// per-direction RNG streams come from.
    pub fn set_link_faults(&mut self, link: LinkId, faults: Option<LinkFaults>) {
        self.links[link].state.faults = faults;
    }

    /// Read-only view of one direction's wire counters (frames, bytes,
    /// fault drops, corruptions, duplicates, reorders).
    pub fn link_dir_state(&self, link: LinkId, dir: Dir) -> &LinkDirState {
        &self.links[link].state.dirs[dir as usize]
    }

    /// Allocates a uid. Under sharded execution uids are strided by shard
    /// (`counter * shards + id`) so every shard draws from a disjoint set
    /// without coordination; uids appear in no observable output, so the
    /// mode-dependent numbering is invisible.
    fn alloc_uid(&mut self) -> PacketUid {
        let n = self.next_uid;
        self.next_uid += 1;
        match &self.shard {
            None => PacketUid(n),
            Some(c) => PacketUid(n * c.plan.shards() as u64 + c.id as u64),
        }
    }

    /// Allocates a fresh packet uid and records its send time.
    pub fn stamp_packet(&mut self, now: SimTime, frame: Vec<u8>) -> Packet {
        let uid = self.alloc_uid();
        self.send_times.insert(uid, now);
        Packet::new(uid, frame)
    }

    /// Like [`stamp_packet`](Self::stamp_packet) but wrapping an
    /// already-shared payload without copying it — repeated sends of the
    /// same template frame cost an `Arc` bump each, not a buffer each.
    pub fn stamp_packet_shared(
        &mut self,
        now: SimTime,
        payload: std::sync::Arc<Vec<u8>>,
    ) -> Packet {
        let uid = self.alloc_uid();
        self.send_times.insert(uid, now);
        Packet::from_shared(uid, payload)
    }

    // ------------------------------------------------------------------
    // Event-driven machinery
    // ------------------------------------------------------------------

    /// Sends `frame` from `host` (stamps uid and send time). Under
    /// sharded execution this is the injection gate: the same workload
    /// closure fires on every shard, and only the host's owner stamps and
    /// queues the frame.
    pub fn host_send(&mut self, sim: &mut Sim<Network>, host: HostId, frame: Vec<u8>) {
        if !self.owns_node(NodeRef::Host(host)) {
            return;
        }
        let pkt = self.stamp_packet(sim.now(), frame);
        self.host_txq[host].push_back(pkt);
        self.kick(sim, (NodeRef::Host(host), 0));
    }

    /// Sends a shared template payload from `host` zero-copy (fresh uid,
    /// same bytes; see [`stamp_packet_shared`](Self::stamp_packet_shared)).
    pub fn host_send_shared(
        &mut self,
        sim: &mut Sim<Network>,
        host: HostId,
        payload: std::sync::Arc<Vec<u8>>,
    ) {
        if !self.owns_node(NodeRef::Host(host)) {
            return;
        }
        let pkt = self.stamp_packet_shared(sim.now(), payload);
        self.host_txq[host].push_back(pkt);
        self.kick(sim, (NodeRef::Host(host), 0));
    }

    /// Arms a transmit attempt on `ep` if none is pending. Only the
    /// endpoint owner's shard transmits.
    pub fn kick(&mut self, sim: &mut Sim<Network>, ep: Endpoint) {
        if !self.owns_node(ep.0) {
            return;
        }
        if self.tx_armed.contains(&ep) {
            return;
        }
        self.tx_armed.insert(ep);
        sim.schedule_in(
            SimDuration::ZERO,
            move |w: &mut Network, s: &mut Sim<Network>| w.try_transmit(s, ep),
        );
    }

    /// Arms transmit attempts on every switch port with pending frames.
    pub fn kick_switch_ports(&mut self, sim: &mut Sim<Network>, i: usize) {
        for port in 0..self.switches[i].n_ports() as PortId {
            if self.switches[i].has_pending(port) {
                self.kick(sim, (NodeRef::Switch(i), port));
            }
        }
    }

    fn try_transmit(&mut self, sim: &mut Sim<Network>, ep: Endpoint) {
        self.tx_armed.remove(&ep);
        let now = sim.now();
        let (node, port) = ep;
        let link = self.port_links.get(&ep).copied();
        // A stalled switch's egress pipeline is frozen too: defer the
        // whole attempt until the stall lifts.
        if let NodeRef::Switch(i) = node {
            let until = self.stalled_until[i];
            if until > now {
                self.tx_armed.insert(ep);
                sim.schedule_at(until, move |w: &mut Network, s: &mut Sim<Network>| {
                    w.try_transmit(s, ep)
                });
                return;
            }
        }
        // If the wire is still busy, wait until it frees.
        if let Some((lid, dir)) = link {
            let busy = self.links[lid].state.dirs[dir as usize].busy_until;
            if busy > now {
                self.tx_armed.insert(ep);
                sim.schedule_at(busy, move |w: &mut Network, s: &mut Sim<Network>| {
                    w.try_transmit(s, ep)
                });
                return;
            }
        }
        let pkt = match node {
            NodeRef::Switch(i) => {
                if !self.switches[i].has_pending(port) {
                    return;
                }
                let p = self.switches[i].transmit(now, port);
                self.collect_cp(i);
                p
            }
            NodeRef::Host(h) => self.host_txq[h].pop_front(),
        };
        let Some(pkt) = pkt else {
            // Program dropped it at egress; try the next one if any.
            self.maybe_rekick(sim, ep, now);
            return;
        };
        let Some((lid, dir)) = link else {
            self.dropped_unconnected += 1;
            self.maybe_rekick(sim, ep, now);
            return;
        };
        let out = self.links[lid]
            .state
            .offer_faulty(dir, now, pkt.len(), &mut self.rng);
        let dest = self.links[lid].ends[match dir {
            Dir::AtoB => 1,
            Dir::BtoA => 0,
        }];
        // The duplicate (if any) is cloned before the corruption flip:
        // the model corrupts the original in flight, not the copy.
        let dup = out.second.map(|d| (d, pkt.clone()));
        if let Some(d) = out.first {
            let mut pkt = pkt;
            if let Some(off) = d.corrupt_at {
                pkt.bytes_mut()[off] ^= 0xFF;
            }
            let key = self.next_wire_key(lid, dir);
            self.schedule_delivery(sim, d.at, dest, pkt, key);
        }
        if let Some((d, copy)) = dup {
            let key = self.next_wire_key(lid, dir);
            self.schedule_delivery(sim, d.at, dest, copy, key);
        }
        self.maybe_rekick(sim, ep, now);
    }

    /// Allocates the next wire-order key for `(link, dir)`.
    ///
    /// Deliveries are the only events that cross shards, so each carries
    /// a key encoding (link direction, position on that wire). The event
    /// heap orders same-instant events by key before insertion order
    /// (see [`edp_evsim::Sim::schedule_keyed_at`]), which makes the
    /// merged delivery schedule a pure function of wire order — and wire
    /// order is advanced only by the transmitting shard, identically in
    /// every execution mode. All other events stay
    /// [`edp_evsim::UNKEYED`] and keep insertion order.
    fn next_wire_key(&mut self, lid: LinkId, dir: Dir) -> u64 {
        let seq = &mut self.wire_seq[lid][dir as usize];
        let s = *seq;
        *seq += 1;
        let linkdir = (lid as u64) * 2 + dir as u64;
        debug_assert!(linkdir < (1 << 19) && s < (1 << 44), "wire key overflow");
        ((linkdir + 1) << 44) | s
    }

    /// Schedules (or, for a remote destination, exports) one delivery.
    fn schedule_delivery(
        &mut self,
        sim: &mut Sim<Network>,
        at: SimTime,
        dest: Endpoint,
        pkt: Packet,
        key: u64,
    ) {
        if self.owns_node(dest.0) {
            let class = self.delivery_class(dest);
            sim.schedule_classed_at(
                at,
                key,
                class,
                move |w: &mut Network, s: &mut Sim<Network>| w.deliver(s, dest, pkt, key),
            );
        } else {
            // Hand the frame to the destination shard at the window
            // close. The in-flight send-time record travels with it so
            // end-to-end latency accounting survives the crossing.
            let send_time = self.send_times.remove(&pkt.uid);
            self.shard
                .as_mut()
                .expect("unowned destination without a shard role")
                .outbox
                .push(ShardMsg {
                    at,
                    dest,
                    pkt,
                    send_time,
                    key,
                });
        }
    }

    /// Schedules a delivery handed over from another shard.
    pub(crate) fn accept_shard_msg(&mut self, sim: &mut Sim<Network>, m: ShardMsg) {
        if let Some(t) = m.send_time {
            self.send_times.insert(m.pkt.uid, t);
        }
        let ShardMsg {
            at, dest, pkt, key, ..
        } = m;
        let class = self.delivery_class(dest);
        sim.schedule_classed_at(
            at,
            key,
            class,
            move |w: &mut Network, s: &mut Sim<Network>| w.deliver(s, dest, pkt, key),
        );
    }

    /// Drains the outbound mailbox, tagging each message with its
    /// destination shard.
    pub(crate) fn take_outbox(&mut self) -> Vec<(usize, ShardMsg)> {
        match self.shard.as_mut() {
            None => Vec::new(),
            Some(c) => {
                let msgs = std::mem::take(&mut c.outbox);
                msgs.into_iter()
                    .map(|m| (c.plan.owner(m.dest.0), m))
                    .collect()
            }
        }
    }

    fn maybe_rekick(&mut self, sim: &mut Sim<Network>, ep: Endpoint, _now: SimTime) {
        let (node, port) = ep;
        let pending = match node {
            NodeRef::Switch(i) => self.switches[i].has_pending(port),
            NodeRef::Host(h) => !self.host_txq[h].is_empty(),
        };
        if pending {
            self.kick(sim, ep);
        }
    }

    fn deliver(&mut self, sim: &mut Sim<Network>, ep: Endpoint, pkt: Packet, key: u64) {
        let now = sim.now();
        if let NodeRef::Switch(i) = ep.0 {
            let until = self.stalled_until[i];
            if until > now {
                // A stalled switch processes nothing: the frame waits at
                // the ingress and is re-delivered when the stall lifts,
                // keeping its original wire-order key so the re-delivery
                // order is the arrival order in every execution mode.
                sim.schedule_keyed_at(until, key, move |w: &mut Network, s: &mut Sim<Network>| {
                    w.deliver(s, ep, pkt, key)
                });
                return;
            }
        }
        self.tracer.record(now, ep, pkt.bytes());
        edp_telemetry::emit(
            now.as_nanos(),
            edp_telemetry::RecordKind::LinkDeliver {
                node: match ep.0 {
                    NodeRef::Switch(i) => i as u32,
                    NodeRef::Host(h) => 0x8000_0000 | h as u32,
                },
                port: ep.1,
                len: pkt.len() as u32,
            },
        );
        let (node, port) = ep;
        match node {
            NodeRef::Switch(i) => {
                self.switches[i].receive(now, port, pkt);
                self.collect_cp(i);
                self.kick_switch_ports(sim, i);
            }
            NodeRef::Host(h) => {
                let latency = self
                    .send_times
                    .remove(&pkt.uid)
                    .map(|t| now.saturating_since(t).as_nanos());
                let responses = self.hosts[h].on_receive(now, &pkt, latency);
                for frame in responses {
                    self.host_send(sim, h, frame);
                }
            }
        }
    }

    fn collect_cp(&mut self, i: usize) {
        for n in self.switches[i].drain_cp() {
            self.cp_log.push((i, n));
        }
    }

    /// Schedules the timer crank for switch `i` (call once after build;
    /// re-arms itself). No-op if the switch has no timers.
    pub fn arm_switch_timers(&mut self, sim: &mut Sim<Network>, i: usize) {
        if !self.owns_node(NodeRef::Switch(i)) {
            return;
        }
        let Some(due) = self.switches[i].next_timer_due() else {
            return;
        };
        let due = due.max(sim.now()).max(self.stalled_until[i]);
        // A crank backed by an emission-free timer certificate is local:
        // its whole cascade (handler, user events, the re-arm below) stays
        // inside the switch, so under the effects horizon it never forces
        // a window barrier.
        let class = self.timer_class(i);
        sim.schedule_classed_at(
            due,
            UNKEYED,
            class,
            move |w: &mut Network, s: &mut Sim<Network>| w.crank_timers(s, i),
        );
    }

    fn crank_timers(&mut self, sim: &mut Sim<Network>, i: usize) {
        let until = self.stalled_until[i];
        if until > sim.now() {
            // The switch is stalled mid-chain: wait out the stall, then
            // crank (there is exactly one crank chain per switch).
            let class = self.timer_class(i);
            sim.schedule_classed_at(
                until,
                UNKEYED,
                class,
                move |w: &mut Network, s: &mut Sim<Network>| w.crank_timers(s, i),
            );
            return;
        }
        self.switches[i].fire_due_timers(sim.now());
        self.collect_cp(i);
        self.kick_switch_ports(sim, i);
        self.arm_switch_timers(sim, i);
    }

    /// Freezes switch `i` until `until`: a stalled switch neither
    /// receives, transmits, nor cranks timers — frames arriving meanwhile
    /// wait at the ingress in arrival order. Extends (never shortens) an
    /// active stall.
    pub fn stall_switch(&mut self, sim: &mut Sim<Network>, i: usize, until: SimTime) {
        let now = sim.now();
        if until <= now {
            return;
        }
        if until > self.stalled_until[i] {
            self.stalled_until[i] = until;
        }
        if self.owns_node(NodeRef::Switch(i)) {
            self.tracer
                .note(now, format!("sw{i} stalled until {until}"));
        }
        // Restart egress once the stall lifts (deliveries and timer
        // cranks re-schedule themselves; queued frames need a kick).
        sim.schedule_at(until, move |w: &mut Network, s: &mut Sim<Network>| {
            w.kick_switch_ports(s, i);
        });
    }

    /// Arms timers on every switch.
    pub fn arm_all_timers(&mut self, sim: &mut Sim<Network>) {
        for i in 0..self.switches.len() {
            self.arm_switch_timers(sim, i);
        }
    }

    /// Changes a link's status, delivering link-status-change events to
    /// attached switches (the hardware-level signal of Table 1).
    pub fn set_link_up(&mut self, sim: &mut Sim<Network>, link: LinkId, up: bool) {
        if self.links[link].state.up == up {
            return;
        }
        self.links[link].state.up = up;
        let now = sim.now();
        // Under sharding the status flip runs everywhere (every shard's
        // copy of the wire must agree), but exactly one shard — the owner
        // of the link's A end — records it, so merged traces and rings
        // carry one copy.
        if self.owns_node(self.links[link].ends[0].0) {
            self.tracer.note(
                now,
                format!("link{link} {}", if up { "up" } else { "down" }),
            );
            edp_telemetry::emit(
                now.as_nanos(),
                edp_telemetry::RecordKind::LinkStatus {
                    link: link as u32,
                    up,
                },
            );
        }
        for &(node, port) in &self.links[link].ends.clone() {
            if let NodeRef::Switch(i) = node {
                if !self.owns_node(node) {
                    continue;
                }
                self.switches[i].set_link_status(now, port, up);
                self.collect_cp(i);
                self.kick_switch_ports(sim, i);
            }
        }
    }

    /// Schedules a link failure at `at` and optional recovery at `back_up`.
    pub fn schedule_link_failure(
        &mut self,
        sim: &mut Sim<Network>,
        link: LinkId,
        at: SimTime,
        back_up: Option<SimTime>,
    ) {
        sim.schedule_at(at, move |w: &mut Network, s: &mut Sim<Network>| {
            w.set_link_up(s, link, false)
        });
        if let Some(t) = back_up {
            sim.schedule_at(t, move |w: &mut Network, s: &mut Sim<Network>| {
                w.set_link_up(s, link, true)
            });
        }
    }

    /// Publishes the whole network's metrics into the unified registry:
    /// each switch under `sw<i>` (via [`SwitchHarness::publish_metrics`]),
    /// link wire/fault counters per link under `net`, and control-plane /
    /// tracer accounting under `net`.
    ///
    /// Under sharded execution each shard publishes only the switches it
    /// owns plus its partial `net`-scope counts (wire counters advance
    /// only on the transmitting shard); summing the per-shard registries
    /// (e.g. [`edp_telemetry::Registry::merge`]) reconstructs exactly the
    /// single-world numbers.
    pub fn publish_metrics(&self, reg: &mut edp_telemetry::Registry) {
        for (i, sw) in self.switches.iter().enumerate() {
            if !self.owns_node(NodeRef::Switch(i)) {
                continue;
            }
            sw.publish_metrics(reg, &format!("sw{i}"));
        }
        let (mut fault_drops, mut down_drops) = (0u64, 0u64);
        let (mut frames, mut bytes) = (0u64, 0u64);
        for l in &self.links {
            for d in &l.state.dirs {
                fault_drops += d.fault_drops;
                down_drops += d.down_drops;
                frames += d.tx_frames;
                bytes += d.tx_bytes;
            }
        }
        reg.set_counter("link_frames", "net", frames);
        reg.set_counter("link_bytes", "net", bytes);
        reg.set_counter("link_fault_drops", "net", fault_drops);
        reg.set_counter("link_down_drops", "net", down_drops);
        reg.set_counter("cp_messages", "net", self.cp_messages);
        reg.set_counter("cp_notifications", "net", self.cp_log.len() as u64);
        reg.set_counter("dropped_unconnected", "net", self.dropped_unconnected);
        reg.set_counter("tracer_entries", "net", self.tracer.len() as u64);
        reg.set_counter("tracer_dropped", "net", self.tracer.dropped());
        self.publish_proto_metrics(reg);
    }

    /// Per-protocol receive breakdown and endpoint-fleet counters, summed
    /// over this world's *owned* hosts (non-owned hosts never receive, so
    /// classic and merged-shard registries agree). Zero buckets are
    /// skipped: presence of a key then depends only on whether that
    /// traffic class exists in the run, not on the engine mode.
    fn publish_proto_metrics(&self, reg: &mut edp_telemetry::Registry) {
        let mut proto = crate::host::ProtoStats::default();
        let mut fleet = crate::endpoint::FleetStats::default();
        let mut have_fleet = false;
        for (i, h) in self.hosts.iter().enumerate() {
            if !self.owns_node(NodeRef::Host(i)) {
                continue;
            }
            proto.absorb(&h.stats.proto);
            if let crate::host::HostApp::ClientFleet(f) = &h.app {
                have_fleet = true;
                let s = &f.stats;
                fleet.connects_sent += s.connects_sent;
                fleet.connected += s.connected;
                fleet.requests += s.requests;
                fleet.responses += s.responses;
                fleet.retransmits += s.retransmits;
                fleet.gave_up += s.gave_up;
                fleet.rtt_ns_sum += s.rtt_ns_sum;
                fleet.rtt_samples += s.rtt_samples;
            }
        }
        let mut put = |name: &str, scope: String, v: u64| {
            if v > 0 {
                reg.set_counter(name, &scope, v);
            }
        };
        for (c, label) in crate::host::ETH_CLASSES.iter().enumerate() {
            put("proto_pkts", format!("eth:{label}"), proto.eth[c]);
            put("proto_bytes", format!("eth:{label}"), proto.eth_bytes[c]);
        }
        for (c, label) in crate::host::IP_CLASSES.iter().enumerate() {
            put("proto_pkts", format!("ip:{label}"), proto.ip[c]);
            put("proto_bytes", format!("ip:{label}"), proto.ip_bytes[c]);
        }
        for (c, label) in crate::host::PORT_CLASSES.iter().enumerate() {
            put("proto_pkts", format!("port:{label}"), proto.port[c]);
            put("proto_bytes", format!("port:{label}"), proto.port_bytes[c]);
        }
        if have_fleet {
            put("endpoint_connects", "net".into(), fleet.connects_sent);
            put("endpoint_connected", "net".into(), fleet.connected);
            put("endpoint_requests", "net".into(), fleet.requests);
            put("endpoint_responses", "net".into(), fleet.responses);
            put("endpoint_retransmits", "net".into(), fleet.retransmits);
            put("endpoint_gave_up", "net".into(), fleet.gave_up);
            put("endpoint_rtt_ns", "net".into(), fleet.rtt_ns_sum);
            put("endpoint_rtt_samples", "net".into(), fleet.rtt_samples);
        }
    }

    /// Sends a control-plane command to switch `i` after `delay`
    /// (modelling the controller↔switch channel latency) and counts the
    /// message.
    pub fn control_plane_send(
        &mut self,
        sim: &mut Sim<Network>,
        delay: SimDuration,
        i: usize,
        opcode: u32,
        args: [u64; 4],
    ) {
        if self.shard.is_none() {
            self.cp_messages += 1;
        }
        sim.schedule_in(delay, move |w: &mut Network, s: &mut Sim<Network>| {
            if !w.owns_node(NodeRef::Switch(i)) {
                return;
            }
            if w.shard.is_some() {
                // Counted at delivery under sharding: the send site runs
                // on every shard, and only the owner may touch counters.
                w.cp_messages += 1;
            }
            w.switches[i].control_plane(s.now(), opcode, args);
            w.collect_cp(i);
            w.kick_switch_ports(s, i);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostApp;
    use edp_packet::PacketBuilder;
    use edp_pisa::{BaselineSwitch, ForwardTo, QueueConfig};
    use std::net::Ipv4Addr;

    fn a(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    /// host0 — sw(port0) — (port1) — host1, ForwardTo(1).
    fn line_topology() -> (Network, HostId, HostId) {
        let mut net = Network::new(7);
        let sw = net.add_switch(Box::new(BaselineSwitch::new(
            ForwardTo(1),
            2,
            QueueConfig::default(),
        )));
        let h0 = net.add_host(Host::new(a(1), HostApp::Sink));
        let h1 = net.add_host(Host::new(a(2), HostApp::Sink));
        let spec = LinkSpec::ten_gig(SimDuration::from_micros(1));
        net.connect((NodeRef::Host(h0), 0), (NodeRef::Switch(sw), 0), spec);
        net.connect((NodeRef::Switch(sw), 1), (NodeRef::Host(h1), 0), spec);
        (net, h0, h1)
    }

    #[test]
    fn packet_crosses_switch() {
        let (mut net, h0, h1) = line_topology();
        let mut sim: Sim<Network> = Sim::new();
        let frame = PacketBuilder::udp(a(1), a(2), 5, 6, b"hello")
            .pad_to(125)
            .build();
        sim.schedule_at(
            SimTime::ZERO,
            move |w: &mut Network, s: &mut Sim<Network>| {
                w.host_send(s, h0, frame.clone());
            },
        );
        sim.run(&mut net);
        assert_eq!(net.hosts[h1].stats.rx_pkts, 1);
        assert_eq!(net.hosts[h0].stats.rx_pkts, 0);
        // Latency = 2 links × (ser 100ns + prop 1us) = 2.2 us.
        let fs = net.hosts[h1].stats.flows.values().next().expect("flow");
        assert_eq!(fs.latency_ns.mean(), 2_200.0);
    }

    #[test]
    fn serialization_paces_back_to_back_packets() {
        let (mut net, h0, h1) = line_topology();
        let mut sim: Sim<Network> = Sim::new();
        sim.schedule_at(
            SimTime::ZERO,
            move |w: &mut Network, s: &mut Sim<Network>| {
                for i in 0..10u16 {
                    let f = PacketBuilder::udp(a(1), a(2), 5, 6, &[])
                        .ident(i)
                        .pad_to(1250)
                        .build();
                    w.host_send(s, h0, f);
                }
            },
        );
        sim.run(&mut net);
        assert_eq!(net.hosts[h1].stats.rx_pkts, 10);
        // 10 × 1250 B at 10 Gb/s = 10 us of wire time + 2 us prop + 1 us
        // last-hop ser; the run can't finish faster than ~12 us.
        assert!(
            sim.now() >= SimTime::from_micros(12),
            "finished at {}",
            sim.now()
        );
    }

    #[test]
    fn echo_host_replies() {
        /// Forwards port 0 → 1 and port 1 → 0 (a two-port wire).
        struct PortSwap;
        impl edp_pisa::PisaProgram for PortSwap {
            fn ingress(
                &mut self,
                _p: &mut Packet,
                _h: &edp_packet::ParsedPacket,
                m: &mut edp_pisa::StdMeta,
                _n: SimTime,
            ) {
                m.dest = edp_pisa::Destination::Port(1 - m.ingress_port);
            }
        }
        let mut net = Network::new(1);
        let sw = net.add_switch(Box::new(BaselineSwitch::new(
            PortSwap,
            2,
            QueueConfig::default(),
        )));
        let h0 = net.add_host(Host::new(a(1), HostApp::Sink));
        let h1 = net.add_host(Host::new(a(2), HostApp::UdpEcho));
        let spec = LinkSpec::ten_gig(SimDuration::from_nanos(100));
        net.connect((NodeRef::Host(h0), 0), (NodeRef::Switch(sw), 0), spec);
        net.connect((NodeRef::Switch(sw), 1), (NodeRef::Host(h1), 0), spec);
        let mut sim: Sim<Network> = Sim::new();
        let f = PacketBuilder::udp(a(1), a(2), 5, 6, b"ping").build();
        sim.schedule_at(
            SimTime::ZERO,
            move |w: &mut Network, s: &mut Sim<Network>| {
                w.host_send(s, h0, f.clone());
            },
        );
        sim.run(&mut net);
        assert_eq!(net.hosts[h1].stats.rx_pkts, 1, "echo host got the ping");
        assert_eq!(net.hosts[h0].stats.rx_pkts, 1, "sender got the echo");
    }

    #[test]
    fn link_failure_drops_traffic_and_recovery_restores() {
        let (mut net, h0, h1) = line_topology();
        let mut sim: Sim<Network> = Sim::new();
        net.schedule_link_failure(
            &mut sim,
            1, // switch->h1 link
            SimTime::from_micros(10),
            Some(SimTime::from_micros(50)),
        );
        // One packet while up, one while down, one after recovery.
        for (t, ident) in [(0u64, 0u16), (20, 1), (60, 2)] {
            sim.schedule_at(
                SimTime::from_micros(t),
                move |w: &mut Network, s: &mut Sim<Network>| {
                    let f = PacketBuilder::udp(a(1), a(2), 5, 6, &[])
                        .ident(ident)
                        .build();
                    w.host_send(s, h0, f);
                },
            );
        }
        sim.run(&mut net);
        assert_eq!(net.hosts[h1].stats.rx_pkts, 2, "middle packet lost");
        let (_, down_drops) = net.link_drops(1);
        assert_eq!(down_drops, 1);
    }

    #[test]
    fn unconnected_port_counts_drops() {
        let mut net = Network::new(1);
        let sw = net.add_switch(Box::new(BaselineSwitch::new(
            ForwardTo(1), // port 1 not connected
            2,
            QueueConfig::default(),
        )));
        let h0 = net.add_host(Host::new(a(1), HostApp::Sink));
        net.connect(
            (NodeRef::Host(h0), 0),
            (NodeRef::Switch(sw), 0),
            LinkSpec::ten_gig(SimDuration::ZERO),
        );
        let mut sim: Sim<Network> = Sim::new();
        let f = PacketBuilder::udp(a(1), a(2), 5, 6, &[]).build();
        sim.schedule_at(
            SimTime::ZERO,
            move |w: &mut Network, s: &mut Sim<Network>| {
                w.host_send(s, h0, f.clone());
            },
        );
        sim.run(&mut net);
        assert_eq!(net.dropped_unconnected, 1);
    }

    #[test]
    fn publish_metrics_covers_switches_links_and_tracer() {
        let (mut net, h0, h1) = line_topology();
        net.tracer.enabled = true;
        let mut sim: Sim<Network> = Sim::new();
        edp_telemetry::enable(edp_telemetry::TelemetryConfig::default());
        let frame = PacketBuilder::udp(a(1), a(2), 5, 6, b"hello")
            .pad_to(125)
            .build();
        sim.schedule_at(
            SimTime::ZERO,
            move |w: &mut Network, s: &mut Sim<Network>| {
                w.host_send(s, h0, frame.clone());
            },
        );
        sim.run(&mut net);
        assert_eq!(net.hosts[h1].stats.rx_pkts, 1);
        let t = edp_telemetry::disable().expect("session");
        // Two deliveries traced structurally: the switch hop and the host.
        let delivers: Vec<_> = t
            .ring
            .iter()
            .filter(|r| matches!(r.kind, edp_telemetry::RecordKind::LinkDeliver { .. }))
            .collect();
        assert_eq!(delivers.len(), 2);
        assert!(delivers.iter().any(|r| matches!(
            r.kind,
            edp_telemetry::RecordKind::LinkDeliver {
                node: 0,
                port: 0,
                ..
            }
        )));
        assert!(delivers.iter().any(|r| matches!(
            r.kind,
            edp_telemetry::RecordKind::LinkDeliver {
                node: 0x8000_0001,
                ..
            }
        )));
        let mut reg = edp_telemetry::Registry::new();
        net.publish_metrics(&mut reg);
        assert_eq!(reg.counter("rx", "sw0"), 1);
        assert_eq!(reg.counter("tx", "sw0"), 1);
        assert_eq!(reg.counter("link_frames", "net"), 2);
        assert_eq!(reg.counter("tracer_entries", "net"), 2);
        assert_eq!(reg.counter("tracer_dropped", "net"), 0);
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut net = Network::new(1);
        let h0 = net.add_host(Host::new(a(1), HostApp::Sink));
        let h1 = net.add_host(Host::new(a(2), HostApp::Sink));
        let h2 = net.add_host(Host::new(a(3), HostApp::Sink));
        let spec = LinkSpec::ten_gig(SimDuration::ZERO);
        net.connect((NodeRef::Host(h0), 0), (NodeRef::Host(h1), 0), spec);
        net.connect((NodeRef::Host(h0), 0), (NodeRef::Host(h2), 0), spec);
    }
}
