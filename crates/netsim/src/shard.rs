//! Sharded parallel execution of a [`Network`] simulation.
//!
//! The engine runs the *same* build closure on every worker thread (SPMD):
//! each shard holds a full copy of the topology and the full event
//! schedule, but only executes the side effects of the nodes it owns —
//! [`Network::owns_node`] gates packet injection, switch processing,
//! timer cranks, and telemetry at fire time. Packets that cross a shard
//! boundary travel through per-`(src, dst)` mailboxes at conservative
//! safe-horizon barriers (see [`edp_evsim::drive_windows`]), carrying a
//! wire-order key so the destination shard schedules them exactly where a
//! single-threaded run would have.
//!
//! # Partitioning rule
//!
//! [`ShardPlan::partition`] groups nodes with a union-find over the links
//! that cannot be cut:
//!
//! * **host links** — a host and its attached switch must co-shard, so
//!   end-to-end latency accounting and response frames never race a
//!   window boundary;
//! * **zero-latency links** — the safe-horizon argument needs every
//!   cross-shard hop to take at least the lookahead of simulated time; a
//!   zero-latency link would force a zero lookahead and serialize the
//!   run, so its endpoints are co-sharded instead.
//!
//! Groups are anchored at their smallest node index and dealt round-robin
//! to shards in anchor order — a pure function of the topology, so every
//! worker computes the identical plan. The lookahead is the minimum
//! latency over the links that ended up crossing shards (`None` when none
//! do: the whole run is then a single window).

use crate::net::{Endpoint, Network, NodeRef};
use crate::trace::Tracer;
use edp_evsim::{drive_windows, HorizonMode, Sim, SimDuration, SimTime, WindowSync};
use edp_packet::Packet;
use edp_telemetry::prof;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A packet crossing from one shard to another, carrying everything the
/// destination shard needs to schedule the delivery exactly as the
/// single-shard run would have: the arrival instant, the wire-order key,
/// and the in-flight send-time record for latency accounting.
pub(crate) struct ShardMsg {
    pub(crate) at: SimTime,
    pub(crate) dest: Endpoint,
    pub(crate) pkt: Packet,
    pub(crate) send_time: Option<SimTime>,
    pub(crate) key: u64,
}

/// This shard's role in a sharded run: its id, the shared partition, and
/// the outbound frames awaiting the next window close.
pub(crate) struct ShardCtx {
    pub(crate) id: usize,
    pub(crate) plan: ShardPlan,
    pub(crate) outbox: Vec<ShardMsg>,
}

/// A static partition of a topology across shards. Pure function of the
/// topology: every worker thread computes the same plan independently.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    nshards: usize,
    switch_owner: Vec<usize>,
    host_owner: Vec<usize>,
    lookahead: Option<SimDuration>,
}

impl ShardPlan {
    /// Partitions `net`'s topology into `nshards` shards (see the module
    /// docs for the rule).
    ///
    /// # Panics
    /// Panics when `nshards > 1` and any link sets the legacy
    /// [`LinkSpec::drop_prob`]: that path draws the shared workload RNG on
    /// the transmitting shard only, desynchronizing every other shard's
    /// copy. Use [`crate::LinkFaultModel::loss`] (per-link streams)
    /// instead.
    pub fn partition(net: &Network, nshards: usize) -> ShardPlan {
        assert!(nshards >= 1, "a plan needs at least one shard");
        let ns = net.switches.len();
        let nh = net.hosts.len();
        let n = ns + nh;
        let flat = |node: NodeRef| match node {
            NodeRef::Switch(i) => i,
            NodeRef::Host(h) => ns + h,
        };
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (ends, spec) in net.topology_edges() {
            assert!(
                nshards == 1 || spec.drop_prob == 0.0,
                "LinkSpec::drop_prob is unsupported under sharded execution: it draws \
                 the shared workload RNG on one shard only; install a LinkFaultModel \
                 (per-link RNG streams) instead"
            );
            let host_edge = ends.iter().any(|e| matches!(e.0, NodeRef::Host(_)));
            if host_edge || spec.latency.is_zero() {
                let ra = find(&mut parent, flat(ends[0].0));
                let rb = find(&mut parent, flat(ends[1].0));
                // Anchor every group at its smallest member so group
                // identity is independent of union order.
                let (lo, hi) = (ra.min(rb), ra.max(rb));
                parent[hi] = lo;
            }
        }
        // Scanning nodes in index order visits each group first at its
        // anchor, so the round-robin deal is deterministic.
        let mut owner = vec![0usize; n];
        let mut group_shard: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for (x, slot) in owner.iter_mut().enumerate() {
            let r = find(&mut parent, x);
            let next = group_shard.len() % nshards;
            *slot = *group_shard.entry(r).or_insert(next);
        }
        let mut lookahead: Option<SimDuration> = None;
        for (ends, spec) in net.topology_edges() {
            if owner[flat(ends[0].0)] != owner[flat(ends[1].0)] {
                debug_assert!(!spec.latency.is_zero(), "zero-latency links are co-sharded");
                lookahead = Some(match lookahead {
                    None => spec.latency,
                    Some(cur) if spec.latency.as_nanos() < cur.as_nanos() => spec.latency,
                    Some(cur) => cur,
                });
            }
        }
        let host_owner = owner.split_off(ns);
        ShardPlan {
            nshards,
            switch_owner: owner,
            host_owner,
            lookahead,
        }
    }

    /// Number of shards the plan was built for.
    pub fn shards(&self) -> usize {
        self.nshards
    }

    /// The shard that owns `node`'s side effects.
    pub fn owner(&self, node: NodeRef) -> usize {
        match node {
            NodeRef::Switch(i) => self.switch_owner[i],
            NodeRef::Host(h) => self.host_owner[h],
        }
    }

    /// Minimum simulated latency of any cross-shard link; `None` when the
    /// partition cut no links (one safe-horizon window covers the run).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }
}

/// Aggregate statistics of one sharded run. Both fields are deterministic
/// for a given (topology, workload, shard count) — they are *not* part of
/// the simulation's observable schedule, which is shard-count-invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Safe-horizon windows executed (identical on every shard).
    pub windows: u64,
    /// Barrier rendezvous joined per shard (identical on every shard) —
    /// the true synchronization cost; see [`edp_evsim::DriveStats`].
    pub barriers: u64,
    /// Packets that crossed a shard boundary through the mailboxes.
    pub cross_messages: u64,
    /// Burst sub-steps that advanced with no rendezvous at all because
    /// they lay below the negotiated bound floor (classic-mode exchange
    /// elision; identical on every shard). See
    /// [`edp_evsim::DriveStats::elided`].
    pub elided: u64,
}

/// Runs a network simulation across `nshards` worker threads and returns
/// each shard's `finish` result (in shard order) plus run statistics.
///
/// `build` runs once per shard **on that shard's thread** and must
/// construct the identical topology and workload schedule regardless of
/// the shard id — the engine installs the shard role afterwards, then
/// arms switch timers (ownership-gated), so `build` must do neither.
/// `finish` runs after the deadline on the same thread and typically
/// extracts statistics, telemetry, or the whole [`Network`].
///
/// With `nshards == 1` this is the single-threaded reference schedule;
/// larger counts produce the byte-identical observable outcome.
///
/// The sub-window batch size comes from the `EDP_BURST` environment
/// variable (default 1) and the horizon mode from `EDP_HORIZON`
/// (`effects` spends installed [`edp_core::EffectSummary`] certificates;
/// default classic); use [`run_sharded_opts`] to pin both explicitly.
pub fn run_sharded<T, B, F>(
    nshards: usize,
    deadline: SimTime,
    build: B,
    finish: F,
) -> (Vec<T>, ShardStats)
where
    T: Send,
    B: Fn(usize) -> (Network, Sim<Network>) + Sync,
    F: Fn(usize, Network, Sim<Network>) -> T + Sync,
{
    run_sharded_opts(
        nshards,
        edp_evsim::burst_from_env(),
        edp_evsim::horizon_from_env(),
        deadline,
        build,
        finish,
    )
}

/// [`run_sharded`] with an explicit sub-window batch size and horizon
/// mode.
///
/// `subwindows` is the number of lookahead-sized sub-steps each negotiated
/// window may cover (see [`edp_evsim::drive_windows`]); `1` reproduces the
/// legacy one-negotiation-per-lookahead protocol exactly. `mode` selects
/// the classic conservative horizon or the certificate-aware effects
/// horizon ([`HorizonMode::Effects`]), which extends windows past events
/// proven local by installed effect summaries (see
/// [`Network::install_effect_summary`]). The observable simulation
/// outcome is byte-identical for every combination — only the window and
/// barrier counts ([`ShardStats`]) change.
pub fn run_sharded_opts<T, B, F>(
    nshards: usize,
    subwindows: usize,
    mode: HorizonMode,
    deadline: SimTime,
    build: B,
    finish: F,
) -> (Vec<T>, ShardStats)
where
    T: Send,
    B: Fn(usize) -> (Network, Sim<Network>) + Sync,
    F: Fn(usize, Network, Sim<Network>) -> T + Sync,
{
    assert!(nshards >= 1, "run_sharded needs at least one shard");
    let sync = WindowSync::new(nshards);
    let mailboxes: Vec<Vec<Mutex<Vec<ShardMsg>>>> = (0..nshards)
        .map(|_| (0..nshards).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let crossed = AtomicU64::new(0);
    let mut results: Vec<Option<(T, edp_evsim::DriveStats)>> = (0..nshards).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nshards)
            .map(|me| {
                let sync = &sync;
                let mailboxes = &mailboxes;
                let crossed = &crossed;
                let build = &build;
                let finish = &finish;
                scope.spawn(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        run_shard(
                            me, nshards, subwindows, mode, deadline, sync, mailboxes, crossed,
                            build, finish,
                        )
                    }));
                    match out {
                        Ok(v) => v,
                        Err(p) => {
                            // Wake peers blocked at a window barrier so the
                            // run fails loudly instead of deadlocking.
                            sync.poison();
                            resume_unwind(p);
                        }
                    }
                })
            })
            .collect();
        for (me, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(v) => results[me] = Some(v),
                Err(p) => resume_unwind(p),
            }
        }
    });
    let mut drive = edp_evsim::DriveStats::default();
    let outs: Vec<T> = results
        .into_iter()
        .map(|r| {
            let (t, d) = r.expect("shard result");
            drive = d;
            t
        })
        .collect();
    (
        outs,
        ShardStats {
            windows: drive.windows,
            barriers: drive.barriers,
            cross_messages: crossed.load(Ordering::Relaxed),
            elided: drive.elided,
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn run_shard<T, B, F>(
    me: usize,
    nshards: usize,
    subwindows: usize,
    mode: HorizonMode,
    deadline: SimTime,
    sync: &WindowSync,
    mailboxes: &[Vec<Mutex<Vec<ShardMsg>>>],
    crossed: &AtomicU64,
    build: &B,
    finish: &F,
) -> (T, edp_evsim::DriveStats)
where
    B: Fn(usize) -> (Network, Sim<Network>) + Sync,
    F: Fn(usize, Network, Sim<Network>) -> T + Sync,
{
    let (mut net, mut sim) = build(me);
    let plan = ShardPlan::partition(&net, nshards);
    let lookahead = plan.lookahead();
    net.install_shard(me, plan);
    net.arm_all_timers(&mut sim);
    // Everything since prof::enable (world build, partition, timer
    // arming) is setup; the drive loop laps the rest.
    prof::lap(prof::Phase::Setup);
    // Reused per-destination staging rows so a window's whole batch for a
    // peer costs one mailbox lock instead of one per message.
    let mut staged: Vec<Vec<ShardMsg>> = (0..nshards).map(|_| Vec::new()).collect();
    // Inbox sequence watermark: peers bump `inbox_seq(me)` after landing
    // a batch in this shard's mailbox, so a drain that would find nothing
    // skips all `nshards` row locks. Reading the watermark *before* the
    // drain keeps it conservative — a batch landing mid-drain is counted
    // under the next watermark and picked up by the next accept.
    let mut seen_seq: u64 = 0;
    let stats = drive_windows(
        &mut net,
        &mut sim,
        me,
        sync,
        lookahead,
        deadline,
        mode,
        subwindows,
        |net, sim| {
            let seq = sync.inbox_seq(me);
            if seq == seen_seq {
                return;
            }
            seen_seq = seq;
            for (src, row) in mailboxes.iter().enumerate() {
                let msgs: Vec<ShardMsg> = row[me]
                    .lock()
                    .expect("shard mailbox poisoned")
                    .drain(..)
                    .collect();
                if !msgs.is_empty() {
                    prof::flow_recv(src, msgs.len() as u64);
                }
                for m in msgs {
                    net.accept_shard_msg(sim, m);
                }
            }
        },
        |net, _sim, horizon| {
            let out = net.take_outbox();
            if out.is_empty() {
                return None;
            }
            crossed.fetch_add(out.len() as u64, Ordering::Relaxed);
            let mut earliest: Option<SimTime> = None;
            for (dst, msg) in out {
                // The conservative-window invariant, checked at runtime:
                // everything published from a window arrives at or past
                // its horizon. A failure here means an event classed
                // local emitted after all — an effect summary lied (the
                // dynamic face of lint EDP-E007).
                assert!(
                    msg.at >= horizon,
                    "cross-shard arrival at {} precedes the window horizon {horizon}: \
                     a handler emitted outside its effect summary (EDP-E007)",
                    msg.at
                );
                earliest = Some(match earliest {
                    Some(e) if e <= msg.at => e,
                    _ => msg.at,
                });
                staged[dst].push(msg);
            }
            for (dst, batch) in staged.iter_mut().enumerate() {
                if !batch.is_empty() {
                    prof::flow_send(dst, batch.len() as u64);
                    mailboxes[me][dst]
                        .lock()
                        .expect("shard mailbox poisoned")
                        .append(batch);
                    // After the batch lands: bump the destination's inbox
                    // watermark (and the shared traffic counter) so its
                    // next accept knows a drain will find something.
                    sync.mark_traffic(dst);
                }
            }
            earliest
        },
    );
    (finish(me, net, sim), stats)
}

/// Deterministically merges per-shard packet traces into one canonical
/// rendering: entries sorted by `(time, rendered line)`, with summed
/// footer accounting. The result is a pure function of the entry multiset
/// — which ownership gating makes shard-count-invariant — so the merged
/// text is byte-identical across shard counts (compare merged output on
/// *both* sides; a raw single-shard [`Tracer::render`] keeps insertion
/// order instead). Entries must not have been evicted: an eviction on any
/// shard shows up in the footer and breaks equality loudly.
pub fn merge_tracers(tracers: &[&Tracer]) -> String {
    let mut lines: Vec<(SimTime, String)> = Vec::new();
    let (mut len, mut dropped, mut capacity) = (0usize, 0u64, 0usize);
    for t in tracers {
        len += t.len();
        dropped += t.dropped();
        capacity = capacity.max(t.capacity());
        for e in t.entries() {
            lines.push((e.at, e.render()));
        }
    }
    lines.sort();
    let mut out = String::new();
    for (_, l) in &lines {
        out.push_str(l);
        out.push('\n');
    }
    out.push_str(&format!(
        "-- {len} entries, {dropped} dropped (capacity {capacity})\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{Host, HostApp, HostId};
    use crate::link::LinkSpec;
    use edp_packet::PacketBuilder;
    use edp_pisa::{BaselineSwitch, ForwardTo, QueueConfig};
    use std::net::Ipv4Addr;

    fn a(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    /// h0 — sw0 — sw1 — h1, switch-switch latency 2 us.
    fn two_switch_line(seed: u64) -> (Network, HostId, HostId) {
        let mut net = Network::new(seed);
        let s0 = net.add_switch(Box::new(BaselineSwitch::new(
            ForwardTo(1),
            2,
            QueueConfig::default(),
        )));
        let s1 = net.add_switch(Box::new(BaselineSwitch::new(
            ForwardTo(1),
            2,
            QueueConfig::default(),
        )));
        let h0 = net.add_host(Host::new(a(1), HostApp::Sink));
        let h1 = net.add_host(Host::new(a(2), HostApp::Sink));
        let edge = LinkSpec::ten_gig(SimDuration::from_micros(1));
        let trunk = LinkSpec::ten_gig(SimDuration::from_micros(2));
        net.connect((NodeRef::Host(h0), 0), (NodeRef::Switch(s0), 0), edge);
        net.connect((NodeRef::Switch(s0), 1), (NodeRef::Switch(s1), 0), trunk);
        net.connect((NodeRef::Switch(s1), 1), (NodeRef::Host(h1), 0), edge);
        (net, h0, h1)
    }

    #[test]
    fn partition_cosh_shards_hosts_and_cuts_the_trunk() {
        let (net, h0, h1) = two_switch_line(1);
        let plan = ShardPlan::partition(&net, 2);
        assert_eq!(
            plan.owner(NodeRef::Host(h0)),
            plan.owner(NodeRef::Switch(0))
        );
        assert_eq!(
            plan.owner(NodeRef::Host(h1)),
            plan.owner(NodeRef::Switch(1))
        );
        assert_ne!(
            plan.owner(NodeRef::Switch(0)),
            plan.owner(NodeRef::Switch(1))
        );
        assert_eq!(plan.lookahead(), Some(SimDuration::from_micros(2)));
    }

    #[test]
    fn zero_latency_links_force_co_sharding() {
        let mut net = Network::new(1);
        let s0 = net.add_switch(Box::new(BaselineSwitch::new(
            ForwardTo(1),
            2,
            QueueConfig::default(),
        )));
        let s1 = net.add_switch(Box::new(BaselineSwitch::new(
            ForwardTo(1),
            2,
            QueueConfig::default(),
        )));
        net.connect(
            (NodeRef::Switch(s0), 1),
            (NodeRef::Switch(s1), 0),
            LinkSpec::ten_gig(SimDuration::ZERO),
        );
        let plan = ShardPlan::partition(&net, 2);
        assert_eq!(
            plan.owner(NodeRef::Switch(s0)),
            plan.owner(NodeRef::Switch(s1))
        );
        assert_eq!(plan.lookahead(), None, "nothing left to cut");
    }

    #[test]
    #[should_panic(expected = "drop_prob is unsupported")]
    fn legacy_drop_prob_rejected_under_sharding() {
        let mut net = Network::new(1);
        let h0 = net.add_host(Host::new(a(1), HostApp::Sink));
        let h1 = net.add_host(Host::new(a(2), HostApp::Sink));
        let mut spec = LinkSpec::ten_gig(SimDuration::from_micros(1));
        spec.drop_prob = 0.5;
        net.connect((NodeRef::Host(h0), 0), (NodeRef::Host(h1), 0), spec);
        let _ = ShardPlan::partition(&net, 2);
    }

    /// Runs the two-switch line under `shards` workers and folds the
    /// observables: (delivered count, flow latency means, merged trace).
    fn run_line(shards: usize) -> (u64, String, String, ShardStats) {
        run_line_opts(shards, 1, HorizonMode::Classic)
    }

    fn run_line_opts(
        shards: usize,
        subwindows: usize,
        mode: HorizonMode,
    ) -> (u64, String, String, ShardStats) {
        let (nets, stats) = run_sharded_opts(
            shards,
            subwindows,
            mode,
            SimTime::from_millis(1),
            |_me| {
                let (mut net, h0, _h1) = two_switch_line(11);
                net.tracer.enabled = true;
                let mut sim: Sim<Network> = Sim::new();
                for i in 0..20u16 {
                    sim.schedule_at(
                        SimTime::from_micros(i as u64 * 5),
                        move |w: &mut Network, s: &mut Sim<Network>| {
                            let f = PacketBuilder::udp(a(1), a(2), 5, 6, &[])
                                .ident(i)
                                .pad_to(500)
                                .build();
                            w.host_send(s, h0, f);
                        },
                    );
                }
                (net, sim)
            },
            |_me, net, _sim| net,
        );
        let rx: u64 = nets.iter().map(|n| n.hosts[1].stats.rx_pkts).sum();
        let means: String = nets
            .iter()
            .filter_map(|n| n.hosts[1].stats.flows.values().next())
            .map(|f| format!("{:.3}", f.latency_ns.mean()))
            .collect::<Vec<_>>()
            .join(",");
        let tracers: Vec<&Tracer> = nets.iter().map(|n| &n.tracer).collect();
        (rx, means, merge_tracers(&tracers), stats)
    }

    #[test]
    fn sharded_line_matches_single_shard_byte_for_byte() {
        let (rx1, means1, trace1, stats1) = run_line(1);
        let (rx2, means2, trace2, stats2) = run_line(2);
        assert_eq!(rx1, 20);
        assert_eq!(rx1, rx2);
        assert_eq!(means1, means2, "end-to-end latency survives the crossing");
        assert_eq!(trace1, trace2, "merged traces byte-identical");
        assert_eq!(stats1.cross_messages, 0, "one shard crosses nothing");
        assert!(stats2.cross_messages >= 20, "trunk frames cross the cut");
        assert!(stats2.windows >= 1);
    }

    #[test]
    fn subwindows_keep_byte_identity_and_shrink_the_window_count() {
        let (rx_base, means_base, trace_base, stats_base) =
            run_line_opts(2, 1, HorizonMode::Classic);
        for sub in [8usize, 32] {
            let (rx, means, trace, stats) = run_line_opts(2, sub, HorizonMode::Classic);
            assert_eq!(rx, rx_base);
            assert_eq!(
                means, means_base,
                "latency accounting under subwindows={sub}"
            );
            assert_eq!(trace, trace_base, "merged trace under subwindows={sub}");
            assert_eq!(
                stats.cross_messages, stats_base.cross_messages,
                "batched publish must move the same frames"
            );
            assert!(
                stats.windows < stats_base.windows,
                "subwindows={sub} should negotiate fewer windows ({} vs {})",
                stats.windows,
                stats_base.windows
            );
        }
    }

    #[test]
    fn effects_horizon_without_summaries_stays_byte_identical() {
        // No certificates installed: the effects horizon can only lean on
        // the structurally local sink deliveries, but the schedule must
        // still match classic mode byte for byte.
        let (rx_c, means_c, trace_c, _) = run_line_opts(2, 1, HorizonMode::Classic);
        let (rx_e, means_e, trace_e, stats_e) = run_line_opts(2, 1, HorizonMode::Effects);
        assert_eq!(rx_c, rx_e);
        assert_eq!(means_c, means_e, "latency accounting under effects");
        assert_eq!(trace_c, trace_e, "merged trace under effects");
        assert!(stats_e.barriers > 0);
    }

    /// h0 — ev0 — ev1 — h1: two event switches with a silent 10 us
    /// periodic timer each, forwarding toward h1, plus a certificate
    /// declaring the pipeline emission and the timer's silence.
    fn timer_line(certify: bool) -> (Network, HostId) {
        use edp_core::{
            AppManifest, BaselineAdapter, EffectSummary, EmitFootprint, EventKind, EventSwitch,
            EventSwitchConfig, TimerSpec,
        };
        let mut net = Network::new(3);
        let manifest = AppManifest::new("silent-timer")
            .handles([EventKind::IngressPacket, EventKind::TimerExpiration])
            .emits(EventKind::IngressPacket, EmitFootprint::Any);
        for _ in 0..2 {
            let cfg = EventSwitchConfig {
                n_ports: 2,
                timers: vec![TimerSpec {
                    id: 0,
                    period: SimDuration::from_micros(10),
                    start: SimDuration::from_micros(10),
                }],
                ..Default::default()
            };
            let i = net.add_switch(Box::new(EventSwitch::new(
                BaselineAdapter(ForwardTo(1)),
                cfg,
            )));
            if certify {
                net.install_effect_summary(i, EffectSummary::from_manifest(&manifest));
            }
        }
        let h0 = net.add_host(Host::new(a(1), HostApp::Sink));
        let h1 = net.add_host(Host::new(a(2), HostApp::Sink));
        let edge = LinkSpec::ten_gig(SimDuration::from_micros(1));
        let trunk = LinkSpec::ten_gig(SimDuration::from_micros(2));
        net.connect((NodeRef::Host(h0), 0), (NodeRef::Switch(0), 0), edge);
        net.connect((NodeRef::Switch(0), 1), (NodeRef::Switch(1), 0), trunk);
        net.connect((NodeRef::Switch(1), 1), (NodeRef::Host(h1), 0), edge);
        (net, h0)
    }

    fn run_timer_line(
        mode: HorizonMode,
        subwindows: usize,
        certify: bool,
    ) -> (u64, String, ShardStats) {
        let (nets, stats) = run_sharded_opts(
            2,
            subwindows,
            mode,
            SimTime::from_millis(1),
            |_me| {
                let (mut net, h0) = timer_line(certify);
                net.tracer.enabled = true;
                let mut sim: Sim<Network> = Sim::new();
                for i in 0..5u16 {
                    sim.schedule_at(
                        SimTime::from_micros(i as u64 * 7),
                        move |w: &mut Network, s: &mut Sim<Network>| {
                            let f = PacketBuilder::udp(a(1), a(2), 5, 6, &[])
                                .ident(i)
                                .pad_to(500)
                                .build();
                            w.host_send(s, h0, f);
                        },
                    );
                }
                (net, sim)
            },
            |_me, net, _sim| net,
        );
        let rx: u64 = nets.iter().map(|n| n.hosts[1].stats.rx_pkts).sum();
        let tracers: Vec<&Tracer> = nets.iter().map(|n| &n.tracer).collect();
        (rx, merge_tracers(&tracers), stats)
    }

    #[test]
    fn certified_timers_collapse_barriers_without_changing_the_schedule() {
        let (rx_c, trace_c, stats_c) = run_timer_line(HorizonMode::Classic, 1, true);
        let (rx_e, trace_e, stats_e) = run_timer_line(HorizonMode::Effects, 1, true);
        assert_eq!(rx_c, 5);
        assert_eq!(rx_c, rx_e);
        assert_eq!(
            trace_c, trace_e,
            "certificates must not change the schedule"
        );
        // Classic mode pays a rendezvous per 2 us lookahead over the whole
        // millisecond; the frontier session joins none, so the effects run
        // coasts to the deadline on lock-free frontier reads.
        assert!(
            stats_e.barriers * 4 < stats_c.barriers,
            "effects barriers {} vs classic {}",
            stats_e.barriers,
            stats_c.barriers
        );
        // The frontier session is rendezvous-free with or without the
        // certificate — summaries no longer gate the effects win, they
        // power classic-mode exchange elision instead (see below).
        let (rx_u, trace_u, stats_u) = run_timer_line(HorizonMode::Effects, 1, false);
        assert_eq!(rx_u, rx_c);
        assert_eq!(trace_u, trace_c);
        assert_eq!(
            stats_u.barriers, stats_e.barriers,
            "uncertified frontier session must match the certified one"
        );
    }

    /// The elision satellite: the timer line is traffic-free after its
    /// five packets drain (~35 us of a 1 ms run), so almost every burst
    /// sub-step lies below the certified bound floor. Classic burst mode
    /// must elide the rendezvous for those sub-steps — cutting barriers
    /// at least 10x against the per-sub-step protocol — without moving a
    /// single byte of the merged schedule.
    #[test]
    fn traffic_free_gaps_elide_barriers_without_changing_the_schedule() {
        let (rx_1, trace_1, stats_1) = run_timer_line(HorizonMode::Classic, 1, true);
        let (rx_b, trace_b, stats_b) = run_timer_line(HorizonMode::Classic, 256, true);
        assert_eq!(rx_1, 5);
        assert_eq!(rx_b, rx_1);
        assert_eq!(trace_b, trace_1, "elision must not change the schedule");
        assert!(
            stats_b.elided > 0,
            "certified gaps must elide burst sub-steps"
        );
        assert!(
            stats_b.barriers * 10 <= stats_1.barriers,
            "elided barriers {} vs per-sub-step {}",
            stats_b.barriers,
            stats_1.barriers
        );
        // Without certificates every sub-step stays at or above the bound
        // floor: no elision, and the schedule still matches.
        let (rx_u, trace_u, stats_u) = run_timer_line(HorizonMode::Classic, 256, false);
        assert_eq!(rx_u, rx_1);
        assert_eq!(trace_u, trace_1);
        assert_eq!(stats_u.elided, 0, "no certificate, no elision");
    }
}
