//! Workload generators.
//!
//! Each generator is a function that arms events on a [`Sim<Network>`];
//! frames come from a caller-supplied builder closure so experiments
//! control every header field. All randomness draws from the network's
//! seeded RNG, keeping workloads reproducible.

use crate::host::HostId;
use crate::net::Network;
use edp_evsim::{Periodic, Sim, SimDuration, SimTime};

/// A frame factory: builds the `i`-th frame of a stream.
pub trait FrameFn: FnMut(u64) -> Vec<u8> + 'static {}
impl<F: FnMut(u64) -> Vec<u8> + 'static> FrameFn for F {}

/// Constant-bit-rate stream: `count` frames from `host`, one every
/// `interval`, starting at `start`. `count = u64::MAX` runs until the
/// simulation deadline.
pub fn start_cbr(
    sim: &mut Sim<Network>,
    host: HostId,
    start: SimTime,
    interval: SimDuration,
    count: u64,
    mut frame: impl FrameFn,
) {
    if count == 0 {
        return;
    }
    let mut sent = 0u64;
    sim.schedule_periodic(
        start,
        interval,
        move |w: &mut Network, s: &mut Sim<Network>| {
            w.host_send(s, host, frame(sent));
            sent += 1;
            if sent >= count {
                Periodic::Stop
            } else {
                Periodic::Continue
            }
        },
    );
}

/// Constant-bit-rate stream of one fixed frame: like [`start_cbr`] but
/// the template is built once and every injection shares its payload
/// zero-copy (an `Arc` bump per frame instead of a buffer allocation).
/// Use when the stream does not vary per frame — the common case for
/// load generation.
pub fn start_cbr_template(
    sim: &mut Sim<Network>,
    host: HostId,
    start: SimTime,
    interval: SimDuration,
    count: u64,
    template: Vec<u8>,
) {
    if count == 0 {
        return;
    }
    let payload = std::sync::Arc::new(template);
    let mut sent = 0u64;
    sim.schedule_periodic(
        start,
        interval,
        move |w: &mut Network, s: &mut Sim<Network>| {
            w.host_send_shared(s, host, std::sync::Arc::clone(&payload));
            sent += 1;
            if sent >= count {
                Periodic::Stop
            } else {
                Periodic::Continue
            }
        },
    );
}

/// Poisson arrivals with the given mean interval, from `start` until
/// `until` (exclusive).
pub fn start_poisson(
    sim: &mut Sim<Network>,
    host: HostId,
    start: SimTime,
    mean_interval: SimDuration,
    until: SimTime,
    frame: impl FrameFn,
) {
    fn arm(
        sim: &mut Sim<Network>,
        w: &mut Network,
        host: HostId,
        mean_ns: f64,
        until: SimTime,
        mut frame: impl FrameFn,
        seq: u64,
    ) {
        let dt = SimDuration::from_nanos(w.rng.exp(mean_ns).max(1.0) as u64);
        let at = sim.now() + dt;
        if at >= until {
            return;
        }
        sim.schedule_at(at, move |w: &mut Network, s: &mut Sim<Network>| {
            w.host_send(s, host, frame(seq));
            arm(s, w, host, mean_ns, until, frame, seq + 1);
        });
    }
    let mean_ns = mean_interval.as_nanos() as f64;
    sim.schedule_at(start, move |w: &mut Network, s: &mut Sim<Network>| {
        arm(s, w, host, mean_ns, until, frame, 0);
    });
}

/// A microburst: `n` frames back-to-back (spaced by `spacing`) at `at`.
pub fn start_burst(
    sim: &mut Sim<Network>,
    host: HostId,
    at: SimTime,
    n: u64,
    spacing: SimDuration,
    mut frame: impl FrameFn,
) {
    sim.schedule_at(at, move |w: &mut Network, s: &mut Sim<Network>| {
        // Queue all frames at once; host egress serialization paces them.
        // Spacing (possibly zero) separates nominal injection times.
        for i in 0..n {
            let f = frame(i);
            if spacing.is_zero() {
                w.host_send(s, host, f);
            } else {
                s.schedule_in(spacing * i, move |w: &mut Network, s: &mut Sim<Network>| {
                    w.host_send(s, host, f.clone());
                });
            }
        }
    });
}

/// An on/off source: bursts of `burst_len` frames every `period`, frames
/// within a burst spaced by `spacing`; runs until `until`.
#[allow(clippy::too_many_arguments)]
pub fn start_on_off(
    sim: &mut Sim<Network>,
    host: HostId,
    start: SimTime,
    period: SimDuration,
    burst_len: u64,
    spacing: SimDuration,
    until: SimTime,
    mut frame: impl FrameFn,
) {
    let mut seq = 0u64;
    sim.schedule_periodic(
        start,
        period,
        move |w: &mut Network, s: &mut Sim<Network>| {
            if s.now() >= until {
                return Periodic::Stop;
            }
            for i in 0..burst_len {
                let f = frame(seq);
                seq += 1;
                if spacing.is_zero() {
                    w.host_send(s, host, f);
                } else {
                    s.schedule_in(spacing * i, move |w: &mut Network, s: &mut Sim<Network>| {
                        w.host_send(s, host, f.clone());
                    });
                }
            }
            Periodic::Continue
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{Host, HostApp};
    use crate::link::LinkSpec;
    use crate::net::NodeRef;
    use edp_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    fn a(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    fn two_hosts() -> (Network, HostId, HostId) {
        let mut net = Network::new(3);
        let h0 = net.add_host(Host::new(a(1), HostApp::Sink));
        let h1 = net.add_host(Host::new(a(2), HostApp::Sink));
        net.connect(
            (NodeRef::Host(h0), 0),
            (NodeRef::Host(h1), 0),
            LinkSpec::ten_gig(SimDuration::from_nanos(10)),
        );
        (net, h0, h1)
    }

    fn mk_frame(i: u64) -> Vec<u8> {
        PacketBuilder::udp(a(1), a(2), 5, 6, &[])
            .ident(i as u16)
            .build()
    }

    #[test]
    fn cbr_sends_exact_count() {
        let (mut net, h0, _h1) = two_hosts();
        let mut sim: Sim<Network> = Sim::new();
        start_cbr(
            &mut sim,
            h0,
            SimTime::from_micros(1),
            SimDuration::from_micros(1),
            25,
            mk_frame,
        );
        sim.run(&mut net);
        assert_eq!(net.hosts[1].stats.rx_pkts, 25);
    }

    #[test]
    fn cbr_template_delivers_shared_frames() {
        let (mut net, h0, _h1) = two_hosts();
        let mut sim: Sim<Network> = Sim::new();
        start_cbr_template(
            &mut sim,
            h0,
            SimTime::from_micros(1),
            SimDuration::from_micros(1),
            25,
            mk_frame(0),
        );
        sim.run(&mut net);
        assert_eq!(net.hosts[1].stats.rx_pkts, 25);
    }

    #[test]
    fn poisson_rate_approximately_right() {
        let (mut net, h0, _) = two_hosts();
        let mut sim: Sim<Network> = Sim::new();
        start_poisson(
            &mut sim,
            h0,
            SimTime::ZERO,
            SimDuration::from_micros(10),
            SimTime::from_millis(10),
            mk_frame,
        );
        sim.run(&mut net);
        let n = net.hosts[1].stats.rx_pkts;
        // Expect ~1000 arrivals; allow generous CI.
        assert!((800..1200).contains(&n), "poisson sent {n}");
    }

    #[test]
    fn burst_delivers_all() {
        let (mut net, h0, _) = two_hosts();
        let mut sim: Sim<Network> = Sim::new();
        start_burst(
            &mut sim,
            h0,
            SimTime::from_micros(5),
            40,
            SimDuration::ZERO,
            mk_frame,
        );
        sim.run(&mut net);
        assert_eq!(net.hosts[1].stats.rx_pkts, 40);
    }

    #[test]
    fn on_off_produces_periodic_bursts() {
        let (mut net, h0, _) = two_hosts();
        let mut sim: Sim<Network> = Sim::new();
        start_on_off(
            &mut sim,
            h0,
            SimTime::ZERO,
            SimDuration::from_millis(1),
            10,
            SimDuration::ZERO,
            SimTime::from_millis(5),
            mk_frame,
        );
        sim.run(&mut net);
        // Bursts at 0,1,2,3,4 ms = 50 frames.
        assert_eq!(net.hosts[1].stats.rx_pkts, 50);
    }

    #[test]
    fn zero_count_cbr_is_noop() {
        let (mut net, h0, _) = two_hosts();
        let mut sim: Sim<Network> = Sim::new();
        start_cbr(
            &mut sim,
            h0,
            SimTime::ZERO,
            SimDuration::from_micros(1),
            0,
            mk_frame,
        );
        sim.run(&mut net);
        assert_eq!(net.hosts[1].stats.rx_pkts, 0);
    }
}
