//! # edp-netsim — the network substrate
//!
//! Topologies of hosts and switches over links with serialization delay,
//! propagation latency, failure schedules, and probabilistic fault
//! injection — everything needed to put the event-driven and baseline
//! switches under realistic, reproducible workloads.
//!
//! * [`Network`] is the simulation world: build a topology with
//!   [`Network::add_switch`] / [`Network::add_host`] /
//!   [`Network::connect`], then run it on a [`edp_evsim::Sim`].
//! * [`SwitchHarness`] drives baseline and event switches uniformly; the
//!   trait's no-op defaults for timers/link-status/control-plane *are*
//!   the baseline architecture's blindness to those stimuli.
//! * [`Host`] endpoints count per-flow statistics and can run small
//!   responders (UDP echo, key-value server).
//! * [`traffic`] provides CBR / Poisson / microburst / on-off generators.
//! * Control-plane round trips are modelled by
//!   [`Network::control_plane_send`] with an explicit channel latency —
//!   the quantity the paper's event-driven designs remove from the
//!   critical path.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod endpoint;
pub mod faults;
mod harness;
mod host;
mod link;
mod net;
pub mod replay;
pub mod shard;
pub mod trace;
pub mod traffic;

pub use endpoint::{
    start_endpoints, EndpointConfig, EndpointFleet, FleetStats, ENDPOINT_DOMAIN, RESPONSE_SIZES,
};
pub use faults::{FaultPlan, FAULT_DOMAIN};
pub use harness::SwitchHarness;
pub use host::{
    FlowStats, Host, HostApp, HostId, HostStats, ProtoStats, ETH_CLASSES, IP_CLASSES, PORT_CLASSES,
};
pub use link::{
    Deliveries, Delivery, Dir, LinkDirState, LinkFaultModel, LinkFaults, LinkId, LinkSpec,
    LinkState,
};
pub use net::{Endpoint, Network, NodeRef};
pub use replay::start_replay;
pub use shard::{merge_tracers, run_sharded, run_sharded_opts, ShardPlan, ShardStats};
pub use trace::{TraceEntry, TraceKind, Tracer};
