//! Point-to-point links with serialization, propagation, and faults.

use edp_evsim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Index of a link within the network.
pub type LinkId = usize;

/// Static link parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Capacity in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Probability of silently dropping each frame (fault injection).
    pub drop_prob: f64,
}

impl LinkSpec {
    /// A 10 Gb/s link with the given propagation delay and no faults —
    /// the SUME port speed.
    pub fn ten_gig(latency: SimDuration) -> Self {
        LinkSpec {
            bandwidth_bps: 10_000_000_000,
            latency,
            drop_prob: 0.0,
        }
    }

    /// Serialization delay for a frame of `bytes` on this link.
    pub fn ser_delay(&self, bytes: usize) -> SimDuration {
        SimDuration::for_bytes_at_rate(bytes as u64, self.bandwidth_bps)
    }
}

/// One direction of a full-duplex link.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LinkDirState {
    /// The wire is serializing a frame until this instant.
    pub busy_until: SimTime,
    /// Frames carried.
    pub tx_frames: u64,
    /// Bytes carried.
    pub tx_bytes: u64,
    /// Frames dropped by fault injection.
    pub fault_drops: u64,
    /// Frames dropped because the link was down.
    pub down_drops: u64,
}

/// Runtime state of a full-duplex link.
#[derive(Debug, Clone)]
pub struct LinkState {
    /// Static parameters.
    pub spec: LinkSpec,
    /// Administrative/physical status.
    pub up: bool,
    /// Per-direction state, indexed by [`Dir`].
    pub dirs: [LinkDirState; 2],
}

/// Link direction: A→B or B→A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// From endpoint A to endpoint B.
    AtoB = 0,
    /// From endpoint B to endpoint A.
    BtoA = 1,
}

impl LinkState {
    /// Creates an up link.
    pub fn new(spec: LinkSpec) -> Self {
        LinkState {
            spec,
            up: true,
            dirs: [LinkDirState::default(), LinkDirState::default()],
        }
    }

    /// Attempts to put a frame of `bytes` on the wire in direction `dir`
    /// at `now`. Returns the delivery time at the far end, or `None` if
    /// the frame was dropped (link down or fault injection). The wire is
    /// marked busy for the serialization time either way it is accepted.
    pub fn offer(
        &mut self,
        dir: Dir,
        now: SimTime,
        bytes: usize,
        rng: &mut SimRng,
    ) -> Option<SimTime> {
        let d = &mut self.dirs[dir as usize];
        if !self.up {
            d.down_drops += 1;
            return None;
        }
        let ser = self.spec.ser_delay(bytes);
        let start = now.max(d.busy_until);
        d.busy_until = start + ser;
        if self.spec.drop_prob > 0.0 && rng.chance(self.spec.drop_prob) {
            d.fault_drops += 1;
            return None;
        }
        d.tx_frames += 1;
        d.tx_bytes += bytes as u64;
        Some(d.busy_until + self.spec.latency)
    }

    /// Utilization of direction `dir` over `[0, now]`: busy time fraction.
    ///
    /// Approximated as bytes·8/bandwidth over elapsed time — exact for
    /// non-preempted serialization.
    pub fn utilization(&self, dir: Dir, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        let d = &self.dirs[dir as usize];
        let busy_ns = d.tx_bytes as f64 * 8.0 * 1e9 / self.spec.bandwidth_bps as f64;
        (busy_ns / now.as_nanos() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    #[test]
    fn delivery_time_includes_ser_and_latency() {
        let mut l = LinkState::new(LinkSpec::ten_gig(SimDuration::from_micros(1)));
        let t = l
            .offer(Dir::AtoB, SimTime::ZERO, 1250, &mut rng())
            .expect("delivered");
        // 1250 B at 10 Gb/s = 1 us ser + 1 us latency.
        assert_eq!(t, SimTime::from_micros(2));
    }

    #[test]
    fn back_to_back_serialize_in_order() {
        let mut l = LinkState::new(LinkSpec::ten_gig(SimDuration::ZERO));
        let mut r = rng();
        let t1 = l.offer(Dir::AtoB, SimTime::ZERO, 1250, &mut r).expect("1");
        let t2 = l.offer(Dir::AtoB, SimTime::ZERO, 1250, &mut r).expect("2");
        assert_eq!(t1, SimTime::from_micros(1));
        assert_eq!(t2, SimTime::from_micros(2), "second waits for the wire");
    }

    #[test]
    fn directions_independent() {
        let mut l = LinkState::new(LinkSpec::ten_gig(SimDuration::ZERO));
        let mut r = rng();
        let t1 = l.offer(Dir::AtoB, SimTime::ZERO, 1250, &mut r).expect("a");
        let t2 = l.offer(Dir::BtoA, SimTime::ZERO, 1250, &mut r).expect("b");
        assert_eq!(t1, t2, "full duplex");
    }

    #[test]
    fn down_link_drops() {
        let mut l = LinkState::new(LinkSpec::ten_gig(SimDuration::ZERO));
        l.up = false;
        assert!(l.offer(Dir::AtoB, SimTime::ZERO, 100, &mut rng()).is_none());
        assert_eq!(l.dirs[0].down_drops, 1);
    }

    #[test]
    fn fault_injection_drops_statistically() {
        let mut l = LinkState::new(LinkSpec {
            bandwidth_bps: 10_000_000_000,
            latency: SimDuration::ZERO,
            drop_prob: 0.5,
        });
        let mut r = rng();
        let mut dropped = 0;
        for i in 0..1000 {
            if l.offer(Dir::AtoB, SimTime::from_micros(i * 10), 100, &mut r).is_none() {
                dropped += 1;
            }
        }
        assert!((380..620).contains(&dropped), "drop_prob 0.5 gave {dropped}/1000");
        assert_eq!(l.dirs[0].fault_drops, dropped);
    }

    #[test]
    fn utilization_tracks_bytes() {
        let mut l = LinkState::new(LinkSpec::ten_gig(SimDuration::ZERO));
        let mut r = rng();
        // 1250 B = 1 us of a 10 Gb/s wire.
        l.offer(Dir::AtoB, SimTime::ZERO, 1250, &mut r);
        let u = l.utilization(Dir::AtoB, SimTime::from_micros(10));
        assert!((u - 0.1).abs() < 1e-9, "{u}");
        assert_eq!(l.utilization(Dir::BtoA, SimTime::from_micros(10)), 0.0);
    }
}
