//! Point-to-point links with serialization, propagation, and faults.

use edp_evsim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Index of a link within the network.
pub type LinkId = usize;

/// Static link parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Capacity in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Probability of silently dropping each frame (fault injection).
    pub drop_prob: f64,
}

impl LinkSpec {
    /// A 10 Gb/s link with the given propagation delay and no faults —
    /// the SUME port speed.
    pub fn ten_gig(latency: SimDuration) -> Self {
        LinkSpec {
            bandwidth_bps: 10_000_000_000,
            latency,
            drop_prob: 0.0,
        }
    }

    /// Serialization delay for a frame of `bytes` on this link.
    pub fn ser_delay(&self, bytes: usize) -> SimDuration {
        SimDuration::for_bytes_at_rate(bytes as u64, self.bandwidth_bps)
    }
}

/// A per-link packet impairment model (fault injection).
///
/// All probabilities are independent Bernoulli draws per offered frame,
/// evaluated in a fixed order (drop, corrupt, duplicate, reorder) from the
/// model's own deterministic RNG stream — never from the shared workload
/// RNG — so installing a model on one link cannot perturb any other
/// randomness in the run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LinkFaultModel {
    /// Probability of silently dropping a frame.
    pub drop_prob: f64,
    /// Probability of flipping one payload byte in transit.
    pub corrupt_prob: f64,
    /// Probability of delivering a frame twice (the duplicate re-occupies
    /// the wire for a second serialization slot).
    pub duplicate_prob: f64,
    /// Probability of delaying a frame by [`reorder_delay`]
    /// (`LinkFaultModel::reorder_delay`), letting later frames overtake it.
    pub reorder_prob: f64,
    /// Extra latency applied to reordered frames.
    pub reorder_delay: SimDuration,
}

impl LinkFaultModel {
    /// A pure loss model.
    pub fn loss(p: f64) -> Self {
        LinkFaultModel {
            drop_prob: p,
            ..Default::default()
        }
    }

    /// True when every probability is zero (the model is a no-op).
    pub fn is_noop(&self) -> bool {
        self.drop_prob <= 0.0
            && self.corrupt_prob <= 0.0
            && self.duplicate_prob <= 0.0
            && self.reorder_prob <= 0.0
    }
}

/// An installed fault model plus its per-direction RNG streams.
#[derive(Debug, Clone)]
pub struct LinkFaults {
    /// The impairment probabilities.
    pub model: LinkFaultModel,
    /// Independent streams, indexed by [`Dir`].
    rng: [SimRng; 2],
}

impl LinkFaults {
    /// Pairs a model with its two direction streams (see
    /// [`SimRng::stream`] for the derivation scheme).
    pub fn new(model: LinkFaultModel, rng_ab: SimRng, rng_ba: SimRng) -> Self {
        LinkFaults {
            model,
            rng: [rng_ab, rng_ba],
        }
    }
}

/// What the wire did with one offered frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Arrival instant at the far end.
    pub at: SimTime,
    /// When set, the byte at this frame offset arrives bit-flipped.
    pub corrupt_at: Option<usize>,
}

/// Outcome of offering a frame to a faulty wire: zero, one, or two
/// deliveries (two when the duplication model fired). Fixed-size so the
/// fault path allocates nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deliveries {
    /// The original frame's delivery, if it survived.
    pub first: Option<Delivery>,
    /// The duplicate's delivery, if one was made.
    pub second: Option<Delivery>,
}

/// One direction of a full-duplex link.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LinkDirState {
    /// The wire is serializing a frame until this instant.
    pub busy_until: SimTime,
    /// Frames carried.
    pub tx_frames: u64,
    /// Bytes carried.
    pub tx_bytes: u64,
    /// Frames dropped by fault injection.
    pub fault_drops: u64,
    /// Frames dropped because the link was down.
    pub down_drops: u64,
    /// Frames delivered with a flipped byte.
    pub corrupted: u64,
    /// Extra copies delivered by the duplication model.
    pub duplicated: u64,
    /// Frames delayed by the reordering model.
    pub reordered: u64,
}

/// Runtime state of a full-duplex link.
#[derive(Debug, Clone)]
pub struct LinkState {
    /// Static parameters.
    pub spec: LinkSpec,
    /// Administrative/physical status.
    pub up: bool,
    /// Per-direction state, indexed by [`Dir`].
    pub dirs: [LinkDirState; 2],
    /// Installed impairment model, if any.
    pub faults: Option<LinkFaults>,
}

/// Link direction: A→B or B→A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// From endpoint A to endpoint B.
    AtoB = 0,
    /// From endpoint B to endpoint A.
    BtoA = 1,
}

impl LinkState {
    /// Creates an up link.
    pub fn new(spec: LinkSpec) -> Self {
        LinkState {
            spec,
            up: true,
            dirs: [LinkDirState::default(), LinkDirState::default()],
            faults: None,
        }
    }

    /// Attempts to put a frame of `bytes` on the wire in direction `dir`
    /// at `now`. Returns the delivery time at the far end, or `None` if
    /// the frame was dropped (link down or fault injection). The wire is
    /// marked busy for the serialization time either way it is accepted.
    pub fn offer(
        &mut self,
        dir: Dir,
        now: SimTime,
        bytes: usize,
        rng: &mut SimRng,
    ) -> Option<SimTime> {
        let d = &mut self.dirs[dir as usize];
        if !self.up {
            d.down_drops += 1;
            return None;
        }
        let ser = self.spec.ser_delay(bytes);
        let start = now.max(d.busy_until);
        d.busy_until = start + ser;
        if self.spec.drop_prob > 0.0 && rng.chance(self.spec.drop_prob) {
            d.fault_drops += 1;
            return None;
        }
        d.tx_frames += 1;
        d.tx_bytes += bytes as u64;
        Some(d.busy_until + self.spec.latency)
    }

    /// Like [`offer`](Self::offer), but additionally runs the installed
    /// [`LinkFaultModel`], which can drop, corrupt, duplicate, or delay the
    /// frame. Model randomness comes from the model's own per-direction
    /// stream; `rng` is only consulted for the legacy `spec.drop_prob`.
    pub fn offer_faulty(
        &mut self,
        dir: Dir,
        now: SimTime,
        bytes: usize,
        rng: &mut SimRng,
    ) -> Deliveries {
        let Some(at) = self.offer(dir, now, bytes, rng) else {
            return Deliveries::default();
        };
        let Some(faults) = self.faults.as_mut() else {
            return Deliveries {
                first: Some(Delivery {
                    at,
                    corrupt_at: None,
                }),
                second: None,
            };
        };
        let m = faults.model;
        let frng = &mut faults.rng[dir as usize];
        let d = &mut self.dirs[dir as usize];
        if m.drop_prob > 0.0 && frng.chance(m.drop_prob) {
            // The frame burned its wire slot (busy_until stands) but never
            // arrives; undo the carried-traffic accounting `offer` did.
            d.fault_drops += 1;
            d.tx_frames -= 1;
            d.tx_bytes -= bytes as u64;
            return Deliveries::default();
        }
        let corrupt_at = if m.corrupt_prob > 0.0 && bytes > 0 && frng.chance(m.corrupt_prob) {
            d.corrupted += 1;
            Some(frng.index(bytes))
        } else {
            None
        };
        let mut out = Deliveries {
            first: Some(Delivery { at, corrupt_at }),
            second: None,
        };
        if m.duplicate_prob > 0.0 && frng.chance(m.duplicate_prob) {
            // The copy serializes right behind the original.
            let ser = self.spec.ser_delay(bytes);
            d.busy_until += ser;
            d.duplicated += 1;
            d.tx_frames += 1;
            d.tx_bytes += bytes as u64;
            out.second = Some(Delivery {
                at: d.busy_until + self.spec.latency,
                corrupt_at: None,
            });
        }
        if m.reorder_prob > 0.0 && frng.chance(m.reorder_prob) {
            d.reordered += 1;
            if let Some(first) = out.first.as_mut() {
                first.at += m.reorder_delay;
            }
        }
        out
    }

    /// Utilization of direction `dir` over `[0, now]`: busy time fraction.
    ///
    /// Approximated as bytes·8/bandwidth over elapsed time — exact for
    /// non-preempted serialization.
    pub fn utilization(&self, dir: Dir, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        let d = &self.dirs[dir as usize];
        let busy_ns = d.tx_bytes as f64 * 8.0 * 1e9 / self.spec.bandwidth_bps as f64;
        (busy_ns / now.as_nanos() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    #[test]
    fn delivery_time_includes_ser_and_latency() {
        let mut l = LinkState::new(LinkSpec::ten_gig(SimDuration::from_micros(1)));
        let t = l
            .offer(Dir::AtoB, SimTime::ZERO, 1250, &mut rng())
            .expect("delivered");
        // 1250 B at 10 Gb/s = 1 us ser + 1 us latency.
        assert_eq!(t, SimTime::from_micros(2));
    }

    #[test]
    fn back_to_back_serialize_in_order() {
        let mut l = LinkState::new(LinkSpec::ten_gig(SimDuration::ZERO));
        let mut r = rng();
        let t1 = l.offer(Dir::AtoB, SimTime::ZERO, 1250, &mut r).expect("1");
        let t2 = l.offer(Dir::AtoB, SimTime::ZERO, 1250, &mut r).expect("2");
        assert_eq!(t1, SimTime::from_micros(1));
        assert_eq!(t2, SimTime::from_micros(2), "second waits for the wire");
    }

    #[test]
    fn directions_independent() {
        let mut l = LinkState::new(LinkSpec::ten_gig(SimDuration::ZERO));
        let mut r = rng();
        let t1 = l.offer(Dir::AtoB, SimTime::ZERO, 1250, &mut r).expect("a");
        let t2 = l.offer(Dir::BtoA, SimTime::ZERO, 1250, &mut r).expect("b");
        assert_eq!(t1, t2, "full duplex");
    }

    #[test]
    fn down_link_drops() {
        let mut l = LinkState::new(LinkSpec::ten_gig(SimDuration::ZERO));
        l.up = false;
        assert!(l.offer(Dir::AtoB, SimTime::ZERO, 100, &mut rng()).is_none());
        assert_eq!(l.dirs[0].down_drops, 1);
    }

    #[test]
    fn fault_injection_drops_statistically() {
        let mut l = LinkState::new(LinkSpec {
            bandwidth_bps: 10_000_000_000,
            latency: SimDuration::ZERO,
            drop_prob: 0.5,
        });
        let mut r = rng();
        let mut dropped = 0;
        for i in 0..1000 {
            if l.offer(Dir::AtoB, SimTime::from_micros(i * 10), 100, &mut r)
                .is_none()
            {
                dropped += 1;
            }
        }
        assert!(
            (380..620).contains(&dropped),
            "drop_prob 0.5 gave {dropped}/1000"
        );
        assert_eq!(l.dirs[0].fault_drops, dropped);
    }

    fn faulty(model: LinkFaultModel) -> LinkState {
        let mut l = LinkState::new(LinkSpec::ten_gig(SimDuration::ZERO));
        l.faults = Some(LinkFaults::new(
            model,
            SimRng::stream(1, &[0]),
            SimRng::stream(1, &[1]),
        ));
        l
    }

    #[test]
    fn model_loss_drops_from_its_own_stream() {
        let mut l = faulty(LinkFaultModel::loss(0.5));
        let mut workload = rng();
        let before = workload.clone();
        let mut dropped = 0;
        for i in 0..1000 {
            let out = l.offer_faulty(Dir::AtoB, SimTime::from_micros(i * 10), 100, &mut workload);
            if out.first.is_none() {
                dropped += 1;
            }
        }
        assert!((380..620).contains(&dropped), "p=0.5 gave {dropped}/1000");
        assert_eq!(l.dirs[0].fault_drops, dropped);
        assert_eq!(l.dirs[0].tx_frames, 1000 - dropped);
        // spec.drop_prob is zero, so the shared workload RNG was untouched.
        let mut a = before;
        let mut b = workload;
        assert_eq!(a.uniform_u64(0, 1 << 40), b.uniform_u64(0, 1 << 40));
    }

    #[test]
    fn model_duplicate_delivers_twice_and_corrupt_flags_offset() {
        let mut l = faulty(LinkFaultModel {
            duplicate_prob: 1.0,
            corrupt_prob: 1.0,
            ..Default::default()
        });
        let out = l.offer_faulty(Dir::AtoB, SimTime::ZERO, 1250, &mut rng());
        let first = out.first.expect("original delivered");
        let second = out.second.expect("duplicate delivered");
        assert!(first.corrupt_at.is_some_and(|o| o < 1250));
        assert_eq!(second.corrupt_at, None, "copy is taken before the flip");
        // 1250 B = 1 us per serialization: original at 1 us, copy at 2 us.
        assert_eq!(first.at, SimTime::from_micros(1));
        assert_eq!(second.at, SimTime::from_micros(2));
        assert_eq!(l.dirs[0].duplicated, 1);
        assert_eq!(l.dirs[0].corrupted, 1);
        assert_eq!(l.dirs[0].tx_frames, 2);
    }

    #[test]
    fn model_reorder_delays_delivery() {
        let mut l = faulty(LinkFaultModel {
            reorder_prob: 1.0,
            reorder_delay: SimDuration::from_micros(50),
            ..Default::default()
        });
        let out = l.offer_faulty(Dir::AtoB, SimTime::ZERO, 1250, &mut rng());
        assert_eq!(out.first.expect("delivered").at, SimTime::from_micros(51));
        assert_eq!(l.dirs[0].reordered, 1);
    }

    #[test]
    fn no_model_offer_faulty_matches_offer() {
        let mut a = LinkState::new(LinkSpec::ten_gig(SimDuration::from_micros(1)));
        let mut b = LinkState::new(LinkSpec::ten_gig(SimDuration::from_micros(1)));
        let t1 = a
            .offer(Dir::AtoB, SimTime::ZERO, 1250, &mut rng())
            .expect("a");
        let out = b.offer_faulty(Dir::AtoB, SimTime::ZERO, 1250, &mut rng());
        assert_eq!(
            out.first,
            Some(Delivery {
                at: t1,
                corrupt_at: None
            })
        );
        assert!(out.second.is_none());
    }

    #[test]
    fn utilization_tracks_bytes() {
        let mut l = LinkState::new(LinkSpec::ten_gig(SimDuration::ZERO));
        let mut r = rng();
        // 1250 B = 1 us of a 10 Gb/s wire.
        l.offer(Dir::AtoB, SimTime::ZERO, 1250, &mut r);
        let u = l.utilization(Dir::AtoB, SimTime::from_micros(10));
        assert!((u - 0.1).abs() < 1e-9, "{u}");
        assert_eq!(l.utilization(Dir::BtoA, SimTime::from_micros(10)), 0.0);
    }
}
