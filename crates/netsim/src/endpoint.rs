//! The endpoint fleet: one host modelling many HTTP/gRPC-shaped clients.
//!
//! Each logical endpoint runs a tiny connection state machine — connect,
//! then closed-loop request/response with think times — with
//! Zipf-distributed keys and response sizes and timeout-driven
//! retransmit, so the fleet reacts to [`crate::FaultPlan`] impairments
//! the way real request traffic does: a dropped request or response
//! surfaces as a retransmission after the timeout, not silence.
//!
//! Determinism: every endpoint draws from its own stateless RNG stream,
//! `SimRng::stream(seed, &[ENDPOINT_DOMAIN, endpoint_id])`, so the whole
//! fleet's traffic is a pure function of the config seed — independent of
//! endpoint count ordering, shard count, or burst mode. The fleet is
//! advanced only by its host's pacer event, whose body is gated on shard
//! ownership like every other traffic source.

use crate::host::{HostApp, HostId};
use crate::net::{Network, NodeRef};
use edp_evsim::{Periodic, Sim, SimDuration, SimRng, SimTime, Zipf};
use edp_packet::{PacketBuilder, RpcHeader, RpcKind};
use std::net::Ipv4Addr;

/// Domain tag for per-endpoint RNG streams (see [`SimRng::stream`]).
pub const ENDPOINT_DOMAIN: u64 = 0xE9D0;

/// Response-size classes the client draws from (a Zipf over this table:
/// small responses common, a heavy tail of large ones). Values are total
/// frame bytes the server pads the `Response` to.
pub const RESPONSE_SIZES: [u32; 8] = [96, 128, 192, 256, 384, 512, 1024, 1536];

/// Fleet configuration. All timing is simulation time.
#[derive(Debug, Clone)]
pub struct EndpointConfig {
    /// Number of logical endpoints multiplexed onto the host.
    pub endpoints: u32,
    /// Master seed; endpoint `i` draws from stream `[ENDPOINT_DOMAIN, i]`.
    pub seed: u64,
    /// The RPC server's address.
    pub server: Ipv4Addr,
    /// Key-space size for request keys.
    pub keys: usize,
    /// Zipf exponent for key popularity (~0.9–1.1 matches measured
    /// key-value workloads; 0 = uniform).
    pub zipf_s: f64,
    /// Mean think time between a response and the next request, ns
    /// (exponentially distributed).
    pub think_mean_ns: f64,
    /// Retransmit timeout for connects and requests.
    pub timeout: SimDuration,
    /// Retransmits before an endpoint gives up on an exchange.
    pub max_retries: u32,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        EndpointConfig {
            endpoints: 100,
            seed: 1,
            server: Ipv4Addr::new(10, 0, 0, 200),
            keys: 1024,
            zipf_s: 1.0,
            think_mean_ns: 100_000.0,
            timeout: SimDuration::from_micros(50),
            max_retries: 3,
        }
    }
}

/// Aggregate fleet accounting, published as `endpoint_*` counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// `Connect` frames sent (including retransmitted connects).
    pub connects_sent: u64,
    /// Endpoints that completed connection setup.
    pub connected: u64,
    /// First-transmission requests sent.
    pub requests: u64,
    /// Responses received and matched to an outstanding request.
    pub responses: u64,
    /// Timeout-driven retransmissions (connects and requests).
    pub retransmits: u64,
    /// Exchanges abandoned after `max_retries` retransmits.
    pub gave_up: u64,
    /// Sum of request→response round-trip times, ns.
    pub rtt_ns_sum: u64,
    /// Count of RTT samples in `rtt_ns_sum`.
    pub rtt_samples: u64,
}

/// One endpoint's protocol position.
#[derive(Debug, Clone)]
enum EpState {
    /// `Connect` not yet sent (first action due at the embedded time).
    Start(SimTime),
    /// `Connect` in flight; retransmit at the embedded deadline.
    Connecting { deadline: SimTime, retries: u32 },
    /// Connected, thinking; next request due at the embedded time.
    Idle(SimTime),
    /// Request in flight.
    Waiting {
        seq: u32,
        key: u64,
        resp_bytes: u32,
        sent_at: SimTime,
        deadline: SimTime,
        retries: u32,
    },
    /// Gave up (connect or request exceeded `max_retries`).
    Dead,
}

#[derive(Debug, Clone)]
struct Ep {
    rng: SimRng,
    state: EpState,
    next_seq: u32,
}

/// A fleet of logical clients multiplexed onto one host (installed as
/// [`HostApp::ClientFleet`]).
#[derive(Debug, Clone)]
pub struct EndpointFleet {
    cfg: EndpointConfig,
    /// The client host's address (stamped as the IP source).
    addr: Ipv4Addr,
    eps: Vec<Ep>,
    key_zipf: Zipf,
    size_zipf: Zipf,
    /// Aggregate accounting.
    pub stats: FleetStats,
}

impl EndpointFleet {
    /// Builds the fleet for a host at `addr`. Each endpoint's first
    /// connect is staggered by an exponential draw with the think-time
    /// mean so the fleet does not start as one synchronized burst.
    pub fn new(addr: Ipv4Addr, cfg: EndpointConfig) -> Self {
        let eps = (0..cfg.endpoints as u64)
            .map(|i| {
                let mut rng = SimRng::stream(cfg.seed, &[ENDPOINT_DOMAIN, i]);
                let first = SimTime::from_nanos(rng.exp(cfg.think_mean_ns) as u64);
                Ep {
                    rng,
                    state: EpState::Start(first),
                    next_seq: 0,
                }
            })
            .collect();
        EndpointFleet {
            key_zipf: Zipf::new(cfg.keys.max(1), cfg.zipf_s),
            size_zipf: Zipf::new(RESPONSE_SIZES.len(), 1.0),
            cfg,
            addr,
            eps,
            stats: FleetStats::default(),
        }
    }

    /// Number of endpoints currently dead (gave up).
    pub fn dead(&self) -> u64 {
        self.eps
            .iter()
            .filter(|e| matches!(e.state, EpState::Dead))
            .count() as u64
    }

    fn frame(&self, ep: u32, kind: RpcKind, seq: u32, key: u64, resp_bytes: u32) -> Vec<u8> {
        PacketBuilder::rpc(
            self.addr,
            self.cfg.server,
            &RpcHeader {
                kind,
                endpoint: ep,
                seq,
                key,
                resp_bytes,
            },
        )
        .build()
    }

    /// Advances every endpoint to `now`; returns the frames to inject,
    /// in endpoint order. Timeouts are detected here, so their
    /// granularity is the pacer's tick interval.
    pub fn advance(&mut self, now: SimTime) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for i in 0..self.eps.len() {
            let id = i as u32;
            // Take the state to appease the borrow checker; every arm
            // either restores it or installs a successor.
            let state = std::mem::replace(&mut self.eps[i].state, EpState::Dead);
            self.eps[i].state = match state {
                EpState::Start(at) if at <= now => {
                    self.stats.connects_sent += 1;
                    out.push(self.frame(id, RpcKind::Connect, 0, 0, 0));
                    EpState::Connecting {
                        deadline: now + self.cfg.timeout,
                        retries: 0,
                    }
                }
                EpState::Connecting { deadline, retries } if deadline <= now => {
                    if retries >= self.cfg.max_retries {
                        self.stats.gave_up += 1;
                        EpState::Dead
                    } else {
                        self.stats.retransmits += 1;
                        self.stats.connects_sent += 1;
                        out.push(self.frame(id, RpcKind::Connect, 0, 0, 0));
                        EpState::Connecting {
                            deadline: now + self.cfg.timeout,
                            retries: retries + 1,
                        }
                    }
                }
                EpState::Idle(at) if at <= now => {
                    let ep = &mut self.eps[i];
                    let seq = ep.next_seq;
                    ep.next_seq += 1;
                    let key = self.key_zipf.sample(&mut ep.rng) as u64;
                    let resp_bytes = RESPONSE_SIZES[self.size_zipf.sample(&mut ep.rng)];
                    self.stats.requests += 1;
                    out.push(self.frame(id, RpcKind::Request, seq, key, resp_bytes));
                    EpState::Waiting {
                        seq,
                        key,
                        resp_bytes,
                        sent_at: now,
                        deadline: now + self.cfg.timeout,
                        retries: 0,
                    }
                }
                EpState::Waiting {
                    seq,
                    key,
                    resp_bytes,
                    sent_at,
                    deadline,
                    retries,
                } if deadline <= now => {
                    if retries >= self.cfg.max_retries {
                        self.stats.gave_up += 1;
                        EpState::Dead
                    } else {
                        self.stats.retransmits += 1;
                        out.push(self.frame(id, RpcKind::Request, seq, key, resp_bytes));
                        EpState::Waiting {
                            seq,
                            key,
                            resp_bytes,
                            sent_at,
                            deadline: now + self.cfg.timeout,
                            retries: retries + 1,
                        }
                    }
                }
                unchanged => unchanged,
            };
        }
        out
    }

    /// Feeds a received RPC frame (called from the host's receive path).
    /// Duplicate and stale responses — e.g. the original arriving after a
    /// retransmit already won — are ignored.
    pub fn on_rpc(&mut self, now: SimTime, hdr: &RpcHeader) {
        let Some(ep) = self.eps.get_mut(hdr.endpoint as usize) else {
            return;
        };
        match (hdr.kind, &ep.state) {
            (RpcKind::ConnectAck, EpState::Connecting { .. }) => {
                self.stats.connected += 1;
                let think = SimDuration::from_nanos(ep.rng.exp(self.cfg.think_mean_ns) as u64);
                ep.state = EpState::Idle(now + think);
            }
            (RpcKind::Response, EpState::Waiting { seq, sent_at, .. }) if *seq == hdr.seq => {
                self.stats.responses += 1;
                self.stats.rtt_ns_sum += now.as_nanos().saturating_sub(sent_at.as_nanos());
                self.stats.rtt_samples += 1;
                let think = SimDuration::from_nanos(ep.rng.exp(self.cfg.think_mean_ns) as u64);
                ep.state = EpState::Idle(now + think);
            }
            _ => {}
        }
    }
}

/// Arms the fleet pacer on `host` (whose app must be
/// [`HostApp::ClientFleet`]): every `tick` from `start` until `until`,
/// the fleet advances and its frames are injected. The body is gated on
/// shard ownership, so under sharded execution only the host's owner
/// advances fleet state or injects — the same schedule fires everywhere,
/// the effects happen exactly once.
pub fn start_endpoints(
    sim: &mut Sim<Network>,
    host: HostId,
    start: SimTime,
    tick: SimDuration,
    until: SimTime,
) {
    sim.schedule_periodic(start, tick, move |w: &mut Network, s: &mut Sim<Network>| {
        if s.now() >= until {
            return Periodic::Stop;
        }
        if !w.owns_node(NodeRef::Host(host)) {
            return Periodic::Continue;
        }
        let frames = match &mut w.hosts[host].app {
            HostApp::ClientFleet(fleet) => fleet.advance(s.now()),
            _ => return Periodic::Stop,
        };
        for f in frames {
            w.host_send(s, host, f);
        }
        Periodic::Continue
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Host;
    use crate::link::LinkSpec;
    use edp_packet::{parse_packet, AppHeader};

    fn a(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    fn cfg(endpoints: u32) -> EndpointConfig {
        EndpointConfig {
            endpoints,
            seed: 7,
            server: a(2),
            think_mean_ns: 20_000.0,
            timeout: SimDuration::from_micros(30),
            ..EndpointConfig::default()
        }
    }

    /// client-fleet host — server host, direct link.
    fn fleet_pair(endpoints: u32) -> (Network, HostId, HostId) {
        let mut net = Network::new(5);
        let fleet = EndpointFleet::new(a(1), cfg(endpoints));
        let h0 = net.add_host(Host::new(a(1), HostApp::ClientFleet(Box::new(fleet))));
        let h1 = net.add_host(Host::new(a(2), HostApp::RpcServer { served: 0 }));
        net.connect(
            (NodeRef::Host(h0), 0),
            (NodeRef::Host(h1), 0),
            LinkSpec::ten_gig(SimDuration::from_nanos(500)),
        );
        (net, h0, h1)
    }

    fn fleet_stats(net: &Network, h: HostId) -> FleetStats {
        match &net.hosts[h].app {
            HostApp::ClientFleet(f) => f.stats.clone(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn closed_loop_exchanges_complete() {
        let (mut net, h0, h1) = fleet_pair(20);
        let mut sim: Sim<Network> = Sim::new();
        start_endpoints(
            &mut sim,
            h0,
            SimTime::ZERO,
            SimDuration::from_micros(5),
            SimTime::from_millis(2),
        );
        sim.run(&mut net);
        let st = fleet_stats(&net, h0);
        assert_eq!(st.connected, 20, "all endpoints connect: {st:?}");
        assert!(st.requests > 20, "requests flowed: {st:?}");
        assert_eq!(st.responses, st.rtt_samples);
        assert!(st.responses > 0 && st.responses <= st.requests + st.retransmits);
        // A clean wire: no timeouts at all.
        assert_eq!(st.retransmits, 0, "{st:?}");
        assert_eq!(st.gave_up, 0);
        match &net.hosts[h1].app {
            HostApp::RpcServer { served } => {
                assert_eq!(*served, st.connects_sent + st.requests + st.retransmits)
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn traffic_is_a_pure_function_of_seed() {
        let run = |seed: u64| {
            let mut f = EndpointFleet::new(a(1), EndpointConfig { seed, ..cfg(10) });
            let mut frames = Vec::new();
            for step in 0..200u64 {
                frames.extend(f.advance(SimTime::from_nanos(step * 10_000)));
            }
            frames
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn requests_are_wire_valid_rpc() {
        let mut f = EndpointFleet::new(a(1), cfg(1));
        let frames = f.advance(SimTime::from_millis(1));
        assert_eq!(frames.len(), 1, "one connect");
        let pp = parse_packet(&frames[0]).expect("parse");
        match pp.app {
            Some(AppHeader::Rpc(r)) => assert!(matches!(r.kind, RpcKind::Connect)),
            other => panic!("not rpc: {other:?}"),
        }
    }

    #[test]
    fn timeout_retransmits_then_gives_up() {
        // No server attached: every connect times out.
        let mut f = EndpointFleet::new(a(1), cfg(1));
        let mut sent = 0;
        for step in 0..40u64 {
            sent += f.advance(SimTime::from_nanos(step * 50_000)).len();
        }
        // 1 original + max_retries retransmits, then dead.
        assert_eq!(sent, 1 + 3);
        assert_eq!(f.stats.retransmits, 3);
        assert_eq!(f.stats.gave_up, 1);
        assert_eq!(f.dead(), 1);
    }

    #[test]
    fn stale_response_is_ignored() {
        let mut f = EndpointFleet::new(a(1), cfg(1));
        f.advance(SimTime::from_millis(1));
        f.on_rpc(
            SimTime::from_millis(1),
            &RpcHeader {
                kind: RpcKind::ConnectAck,
                endpoint: 0,
                seq: 0,
                key: 0,
                resp_bytes: 0,
            },
        );
        assert_eq!(f.stats.connected, 1);
        // Request goes out once the think time elapses.
        let mut frames = Vec::new();
        let mut t = SimTime::from_millis(1);
        while frames.is_empty() {
            t += SimDuration::from_micros(10);
            frames = f.advance(t);
        }
        let pp = parse_packet(&frames[0]).expect("parse");
        let Some(AppHeader::Rpc(req)) = pp.app else {
            panic!("not rpc")
        };
        // A response for the wrong seq does nothing...
        f.on_rpc(
            t,
            &RpcHeader {
                seq: req.seq + 7,
                kind: RpcKind::Response,
                ..req
            },
        );
        assert_eq!(f.stats.responses, 0);
        // ...as does one for an unknown endpoint.
        f.on_rpc(
            t,
            &RpcHeader {
                endpoint: 99,
                kind: RpcKind::Response,
                ..req
            },
        );
        assert_eq!(f.stats.responses, 0);
        // The right one completes the exchange.
        f.on_rpc(
            t + SimDuration::from_micros(3),
            &RpcHeader {
                kind: RpcKind::Response,
                ..req
            },
        );
        assert_eq!(f.stats.responses, 1);
        assert!(f.stats.rtt_ns_sum >= 3_000);
    }
}
