//! The unified metrics registry: named counters, gauges, and log-linear
//! histograms keyed by `(name, scope)`, with Prometheus-text and JSON
//! exporters.
//!
//! Scopes identify the component a metric belongs to — `sw0` for a
//! switch, `sw0:p2` for a port, `net` for the substrate. Storage is
//! `BTreeMap`-backed so every export walks metrics in one deterministic
//! order regardless of registration order.

use std::collections::BTreeMap;

/// A log-linear histogram for non-negative values, HDR-style with 16
/// sub-buckets per octave (relative error ~6% across the full `u64`
/// range). Mirrors `edp_evsim::stats::Histogram`, re-implemented here so
/// the telemetry crate stays dependency-free at the bottom of the
/// workspace.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

const SUB_BITS: u32 = 4; // 16 sub-buckets per power of two.

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; (64 << SUB_BITS) as usize],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v < (1 << SUB_BITS) {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((v >> shift) & ((1 << SUB_BITS) - 1)) as u32;
        (((msb - SUB_BITS + 1) << SUB_BITS) + sub) as usize
    }

    fn bucket_low(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < (1 << SUB_BITS) {
            return idx;
        }
        let octave = (idx >> SUB_BITS) - 1;
        let sub = idx & ((1 << SUB_BITS) - 1);
        ((1 << SUB_BITS) | sub) << octave
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]`, within bucket resolution.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q}");
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_low(i).min(self.max);
            }
        }
        self.max
    }

    /// Shorthand for the median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Shorthand for the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// The unified metrics registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<(String, String), u64>,
    gauges: BTreeMap<(String, String), i64>,
    histograms: BTreeMap<(String, String), LogHistogram>,
}

fn key(name: &str, scope: &str) -> (String, String) {
    (name.to_string(), scope.to_string())
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name` in `scope` (registering it on first use).
    pub fn add_counter(&mut self, name: &str, scope: &str, n: u64) {
        let c = self.counters.entry(key(name, scope)).or_insert(0);
        *c = c.saturating_add(n);
    }

    /// Sets counter `name` in `scope` to an absolute value (used when
    /// publishing component-owned counters like `SwitchCounters`).
    pub fn set_counter(&mut self, name: &str, scope: &str, v: u64) {
        self.counters.insert(key(name, scope), v);
    }

    /// Current value of a counter; 0 if never registered.
    pub fn counter(&self, name: &str, scope: &str) -> u64 {
        self.counters.get(&key(name, scope)).copied().unwrap_or(0)
    }

    /// Sets gauge `name` in `scope`.
    pub fn set_gauge(&mut self, name: &str, scope: &str, v: i64) {
        self.gauges.insert(key(name, scope), v);
    }

    /// Raises gauge `name` in `scope` to `v` if `v` is larger (high-water
    /// marks like staleness bounds).
    pub fn gauge_max(&mut self, name: &str, scope: &str, v: i64) {
        let g = self.gauges.entry(key(name, scope)).or_insert(i64::MIN);
        *g = (*g).max(v);
    }

    /// Current value of a gauge; `None` if never set.
    pub fn gauge(&self, name: &str, scope: &str) -> Option<i64> {
        self.gauges.get(&key(name, scope)).copied()
    }

    /// Records `v` into histogram `name` in `scope`.
    pub fn observe(&mut self, name: &str, scope: &str, v: u64) {
        self.histograms
            .entry(key(name, scope))
            .or_default()
            .record(v);
    }

    /// The histogram registered as `name` in `scope`, if any.
    pub fn histogram(&self, name: &str, scope: &str) -> Option<&LogHistogram> {
        self.histograms.get(&key(name, scope))
    }

    /// All counters, sorted by `(name, scope)`.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counters
            .iter()
            .map(|((n, s), v)| (n.as_str(), s.as_str(), *v))
    }

    /// All gauges, sorted by `(name, scope)`.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &str, i64)> {
        self.gauges
            .iter()
            .map(|((n, s), v)| (n.as_str(), s.as_str(), *v))
    }

    /// All histograms, sorted by `(name, scope)`.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &str, &LogHistogram)> {
        self.histograms
            .iter()
            .map(|((n, s), h)| (n.as_str(), s.as_str(), h))
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges take
    /// the later value, histogram buckets merge.
    pub fn merge(&mut self, other: &Registry) {
        for ((n, s), v) in &other.counters {
            let c = self.counters.entry((n.clone(), s.clone())).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for ((n, s), v) in &other.gauges {
            self.gauges.insert((n.clone(), s.clone()), *v);
        }
        for ((n, s), h) in &other.histograms {
            let mine = self.histograms.entry((n.clone(), s.clone())).or_default();
            for (i, c) in h.counts.iter().enumerate() {
                mine.counts[i] += c;
            }
            mine.total += h.total;
            mine.sum += h.sum;
            mine.max = mine.max.max(h.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut r = Registry::new();
        r.add_counter("rx", "sw0", 3);
        r.add_counter("rx", "sw0", 2);
        r.set_counter("tx", "sw0", 7);
        r.set_gauge("occ_bytes", "sw0:p1", 1500);
        r.gauge_max("staleness", "sw0", 4);
        r.gauge_max("staleness", "sw0", 2);
        assert_eq!(r.counter("rx", "sw0"), 5);
        assert_eq!(r.counter("tx", "sw0"), 7);
        assert_eq!(r.counter("nope", "sw0"), 0);
        assert_eq!(r.gauge("occ_bytes", "sw0:p1"), Some(1500));
        assert_eq!(r.gauge("staleness", "sw0"), Some(4));
    }

    #[test]
    fn counter_saturates() {
        let mut r = Registry::new();
        r.set_counter("c", "s", u64::MAX - 1);
        r.add_counter("c", "s", 10);
        assert_eq!(r.counter("c", "s"), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_bounded_error() {
        let mut r = Registry::new();
        for v in 1..=10_000u64 {
            r.observe("lat", "sw0", v);
        }
        let h = r.histogram("lat", "sw0").unwrap();
        assert_eq!(h.count(), 10_000);
        let p50 = h.p50() as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.07, "p50 {p50}");
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.add_counter("rx", "sw0", 1);
        b.add_counter("rx", "sw0", 2);
        b.add_counter("rx", "sw1", 5);
        a.observe("lat", "sw0", 10);
        b.observe("lat", "sw0", 20);
        a.merge(&b);
        assert_eq!(a.counter("rx", "sw0"), 3);
        assert_eq!(a.counter("rx", "sw1"), 5);
        let h = a.histogram("lat", "sw0").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 20);
    }
}
