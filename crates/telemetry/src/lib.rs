//! Unified telemetry for the edp workspace: a structured trace ring, a
//! metrics registry with Prometheus/JSON exporters, and the thread-local
//! session the instrumentation hooks in every other crate write into.
//!
//! # Design
//!
//! Telemetry is a per-thread *session*, mirroring the `edp_pisa::probe`
//! idiom the analyzer already uses: a `Cell<bool>` armed flag plus a
//! `RefCell` holding the live state. Every hook first calls [`on`] — one
//! thread-local load and one predictable branch — and returns
//! immediately when telemetry is disabled, so the instrumented hot paths
//! pay a single branch when nobody is watching. Sessions being
//! thread-local is also what keeps `EDP_SWEEP_THREADS` determinism: a
//! sweep worker enables a fresh session per point, so the trace a point
//! produces is a pure function of that point's seed, never of which
//! thread ran it or what ran before.
//!
//! Records carry *sim time only* (nanoseconds), never wall-clock time.
//! Wall-clock attribution lives in the separate, opt-in [`prof`] module,
//! whose output is structurally nondeterministic and therefore never
//! feeds a canonical export.
//!
//! # Span/cause model
//!
//! [`span_begin`] allocates the next span id from a per-session counter,
//! emits the opening record (e.g. `EventFired`), and makes that span the
//! *current cause*. Every record emitted until the matching [`span_end`]
//! carries the span's id in its `cause` field — so the packets a handler
//! enqueued and the follow-on events it raised all point back at the
//! handler firing that produced them. Spans nest: `span_begin` saves the
//! previous cause in the returned token and `span_end` restores it.

pub mod export;
pub mod metrics;
pub mod prof;
pub mod record;
pub mod ring;

pub use export::{to_json, to_prometheus_text};
pub use metrics::{LogHistogram, Registry};
pub use record::{event_kind_label, register_label, DropReason, RecordKind, TraceRecord};
pub use ring::Ring;

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The span/cause id meaning "none" (top level).
pub const NO_SPAN: u64 = 0;

/// Name prefix marking a register as telemetry state, not program state.
/// `edp-analyze` exempts registers with this prefix from the multi-writer
/// (W001) and cross-handler RMW (W002) hazard lints: telemetry mirrors
/// observe the data path, they are not data-plane state contended over
/// SRAM ports.
pub const TELEMETRY_REGISTER_PREFIX: &str = "tele:";

/// True when `name` names telemetry state exempt from hazard lints.
pub fn is_telemetry_register(name: &str) -> bool {
    name.starts_with(TELEMETRY_REGISTER_PREFIX)
}

/// What a telemetry session records. All fields gate *enabled-path*
/// detail; the disabled path is always the same single branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Trace-ring capacity in records (oldest evicted beyond this).
    pub trace_capacity: usize,
    /// Record `QueueDepth` samples on every enqueue/dequeue.
    pub queue_depth_samples: bool,
    /// Record scheduler arm/fire/cancel activity.
    pub scheduler_records: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            trace_capacity: 65_536,
            queue_depth_samples: true,
            scheduler_records: true,
        }
    }
}

/// A live telemetry session: the trace ring, the unified metrics
/// registry, and the span bookkeeping.
#[derive(Debug)]
pub struct Telemetry {
    /// The configuration the session was enabled with.
    pub config: TelemetryConfig,
    /// The structured trace ring.
    pub ring: Ring<TraceRecord>,
    /// The unified metrics registry hooks publish into.
    pub registry: Registry,
    next_span: u64,
    cause: u64,
}

impl Telemetry {
    fn new(config: TelemetryConfig) -> Self {
        Telemetry {
            config,
            ring: Ring::new(config.trace_capacity),
            registry: Registry::new(),
            next_span: NO_SPAN,
            cause: NO_SPAN,
        }
    }

    /// Pushes one record under the current cause. The method form of
    /// [`emit`], for hooks already inside a [`with`] closure (e.g. after
    /// checking a [`TelemetryConfig`] gate).
    pub fn emit(&mut self, at_ns: u64, kind: RecordKind) {
        let cause = self.cause;
        self.ring.push(TraceRecord {
            at_ns,
            span: NO_SPAN,
            cause,
            kind,
        });
    }

    /// Renders the whole trace ring as stable text, one record per line,
    /// with a footer reporting ring-eviction losses.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        for rec in self.ring.iter() {
            out.push_str(&rec.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "-- {} records, {} dropped (ring capacity {})\n",
            self.ring.len(),
            self.ring.dropped(),
            self.ring.capacity()
        ));
        out
    }
}

/// Token returned by [`span_begin`]; hand it back to [`span_end`].
#[derive(Debug, Clone, Copy)]
pub struct SpanToken {
    span: u64,
    prev_cause: u64,
}

impl SpanToken {
    /// The id of the span this token opened (0 when telemetry was off).
    pub fn span(&self) -> u64 {
        self.span
    }
}

thread_local! {
    static ON: Cell<bool> = const { Cell::new(false) };
    static SESSION: RefCell<Option<Telemetry>> = const { RefCell::new(None) };
}

/// Count of enabled sessions across all threads. The first gate in
/// [`on`]: with no session anywhere, hooks pay one relaxed load of this
/// static and never touch thread-local storage — TLS access is the part
/// that actually shows up in tight loops like the scheduler's re-arm
/// path. (A thread that dies without `disable` leaks its count, which
/// only costs other threads the TLS check, never correctness.)
static ACTIVE_SESSIONS: AtomicUsize = AtomicUsize::new(0);

/// True while a telemetry session is enabled on this thread. With no
/// session on *any* thread this is a single static load and predictable
/// branch — the only cost instrumented hot paths pay when disabled.
#[inline(always)]
pub fn on() -> bool {
    if ACTIVE_SESSIONS.load(Ordering::Relaxed) == 0 {
        return false;
    }
    ON.with(|c| c.get())
}

/// Starts a fresh session on this thread, discarding any previous one.
pub fn enable(config: TelemetryConfig) {
    SESSION.with(|s| *s.borrow_mut() = Some(Telemetry::new(config)));
    ON.with(|c| {
        if !c.get() {
            ACTIVE_SESSIONS.fetch_add(1, Ordering::Relaxed);
            c.set(true);
        }
    });
}

/// Stops the session on this thread and returns everything it recorded.
pub fn disable() -> Option<Telemetry> {
    ON.with(|c| {
        if c.get() {
            ACTIVE_SESSIONS.fetch_sub(1, Ordering::Relaxed);
            c.set(false);
        }
    });
    SESSION.with(|s| s.borrow_mut().take())
}

/// Runs `f` against the live session, if any. Hooks use the dedicated
/// helpers below; this is for consumers that need registry access.
pub fn with<R>(f: impl FnOnce(&mut Telemetry) -> R) -> Option<R> {
    if !on() {
        return None;
    }
    SESSION.with(|s| s.borrow_mut().as_mut().map(f))
}

/// Emits one trace record under the current cause. No-op when disabled.
#[inline]
pub fn emit(at_ns: u64, kind: RecordKind) {
    if !on() {
        return;
    }
    SESSION.with(|s| {
        if let Some(t) = s.borrow_mut().as_mut() {
            t.emit(at_ns, kind);
        }
    });
}

/// Opens a span: emits `kind` carrying the new span id, and makes the
/// span the current cause until the matching [`span_end`].
#[inline]
pub fn span_begin(at_ns: u64, kind: RecordKind) -> SpanToken {
    if !on() {
        return SpanToken {
            span: NO_SPAN,
            prev_cause: NO_SPAN,
        };
    }
    SESSION.with(|s| {
        let mut s = s.borrow_mut();
        let Some(t) = s.as_mut() else {
            return SpanToken {
                span: NO_SPAN,
                prev_cause: NO_SPAN,
            };
        };
        t.next_span += 1;
        let span = t.next_span;
        t.ring.push(TraceRecord {
            at_ns,
            span,
            cause: t.cause,
            kind,
        });
        let prev_cause = t.cause;
        t.cause = span;
        SpanToken { span, prev_cause }
    })
}

/// Closes a span opened by [`span_begin`]: emits `kind` with the span's
/// id and restores the previous cause. No-op on a disabled-path token.
#[inline]
pub fn span_end(at_ns: u64, token: SpanToken, kind: RecordKind) {
    if !on() || token.span == NO_SPAN {
        return;
    }
    SESSION.with(|s| {
        if let Some(t) = s.borrow_mut().as_mut() {
            t.ring.push(TraceRecord {
                at_ns,
                span: token.span,
                cause: token.prev_cause,
                kind,
            });
            t.cause = token.prev_cause;
        }
    });
}

/// Adds `n` to registry counter `name` in `scope`. No-op when disabled.
#[inline]
pub fn count(name: &str, scope: &str, n: u64) {
    if !on() {
        return;
    }
    with(|t| t.registry.add_counter(name, scope, n));
}

/// Records `v` into registry histogram `name` in `scope`. No-op when
/// disabled.
#[inline]
pub fn observe(name: &str, scope: &str, v: u64) {
    if !on() {
        return;
    }
    with(|t| t.registry.observe(name, scope, v));
}

/// Raises gauge `name` in `scope` to at least `v`. No-op when disabled.
#[inline]
pub fn gauge_max(name: &str, scope: &str, v: i64) {
    if !on() {
        return;
    }
    with(|t| t.registry.gauge_max(name, scope, v));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let _ = disable();
        emit(
            10,
            RecordKind::Note {
                code: 1,
                a: 0,
                b: 0,
            },
        );
        count("rx", "sw0", 1);
        let tok = span_begin(11, RecordKind::EventFired { kind: 0 });
        assert_eq!(tok.span(), NO_SPAN);
        span_end(12, tok, RecordKind::HandlerDone { kind: 0 });
        assert!(disable().is_none());
    }

    #[test]
    fn span_cause_chain_links_children_to_handler() {
        enable(TelemetryConfig::default());
        emit(
            1,
            RecordKind::Note {
                code: 0,
                a: 0,
                b: 0,
            },
        ); // top level
        let outer = span_begin(2, RecordKind::EventFired { kind: 0 });
        emit(
            3,
            RecordKind::PacketRx {
                switch: 0,
                port: 1,
                len: 64,
            },
        );
        let inner = span_begin(4, RecordKind::EventFired { kind: 5 });
        emit(5, RecordKind::EventRaised { kind: 12 });
        span_end(6, inner, RecordKind::HandlerDone { kind: 5 });
        emit(
            7,
            RecordKind::Note {
                code: 9,
                a: 0,
                b: 0,
            },
        ); // back under outer
        span_end(8, outer, RecordKind::HandlerDone { kind: 0 });
        let t = disable().expect("session");
        let recs: Vec<TraceRecord> = t.ring.iter().copied().collect();
        assert_eq!(recs.len(), 8);
        assert_eq!(recs[0].cause, NO_SPAN);
        assert_eq!(recs[1].span, 1); // outer opened
        assert_eq!(recs[2].cause, 1); // child of outer
        assert_eq!(recs[3].span, 2); // inner opened
        assert_eq!(recs[3].cause, 1); // ... caused by outer
        assert_eq!(recs[4].cause, 2); // raised inside inner
        assert_eq!(recs[5].span, 2); // inner closed
        assert_eq!(recs[6].cause, 1); // cause restored to outer
        assert_eq!(recs[7].span, 1); // outer closed
        assert_eq!(recs[7].cause, NO_SPAN);
    }

    #[test]
    fn enable_resets_session_state() {
        enable(TelemetryConfig::default());
        let tok = span_begin(1, RecordKind::EventFired { kind: 0 });
        assert_eq!(tok.span(), 1);
        // Re-enabling (a new sweep point on this worker) starts from a
        // clean ring and span counter — determinism across thread counts.
        enable(TelemetryConfig::default());
        let tok = span_begin(1, RecordKind::EventFired { kind: 0 });
        assert_eq!(tok.span(), 1);
        let t = disable().expect("session");
        assert_eq!(t.ring.len(), 1);
    }

    #[test]
    fn registry_helpers_write_through() {
        enable(TelemetryConfig::default());
        count("rx", "sw0", 2);
        count("rx", "sw0", 3);
        observe("lat", "sw0", 7);
        gauge_max("stale", "sw0", 5);
        gauge_max("stale", "sw0", 3);
        let t = disable().expect("session");
        assert_eq!(t.registry.counter("rx", "sw0"), 5);
        assert_eq!(t.registry.histogram("lat", "sw0").unwrap().count(), 1);
        assert_eq!(t.registry.gauge("stale", "sw0"), Some(5));
    }

    #[test]
    fn render_trace_reports_drops() {
        enable(TelemetryConfig {
            trace_capacity: 2,
            ..TelemetryConfig::default()
        });
        for i in 0..5 {
            emit(
                i,
                RecordKind::Note {
                    code: 0,
                    a: i,
                    b: 0,
                },
            );
        }
        let t = disable().expect("session");
        let text = t.render_trace();
        assert!(text.contains("-- 2 records, 3 dropped (ring capacity 2)"));
    }

    #[test]
    fn telemetry_register_prefix() {
        assert!(is_telemetry_register("tele:rx_mirror"));
        assert!(!is_telemetry_register("flowBufSize_reg"));
    }
}
