//! Wall-clock shard profiler: where does the *real* time go?
//!
//! The trace ring and metrics registry in this crate are sim-time-only
//! and determinism-pinned — byte-identical across thread counts, shard
//! counts, and burst factors. That is exactly why they cannot answer the
//! question the sharded engine's perf work needs answered: of a run's
//! wall-clock seconds, how many were compute, how many were barrier
//! wait, and how many were mailbox exchange? This module is the
//! complementary layer: a per-thread *profiling session* over the
//! monotonic clock ([`std::time::Instant`]), opt-in, and structurally
//! nondeterministic — its output must never feed a canonical render,
//! JSON export, or Prometheus dump that a determinism pin covers.
//!
//! # Clock discipline
//!
//! Every session on a run shares one `Instant` *epoch* (created by
//! whoever orchestrates the run, before worker threads spawn), so all
//! timestamps are nanoseconds since the same instant and per-shard
//! tracks line up in a trace viewer. Records never mix sim time and
//! wall time: the trace ring speaks `at_ns` of *simulated* time, this
//! module speaks nanoseconds of *elapsed wall clock*, and nothing
//! converts between them.
//!
//! # Attribution model: laps, not paired spans
//!
//! Instrumented code calls [`lap`]`(phase)` at each phase *boundary*:
//! every nanosecond between two laps is attributed to the phase named
//! by the second one. One clock read per transition, no unbalanced
//! begin/end pairs possible, and — because [`enable`] starts the
//! stopwatch and [`disable`] laps the tail into [`Phase::Finish`] —
//! the sum of per-phase totals equals the session's wall-clock span by
//! construction. The ≥95% attribution bar is therefore met structurally;
//! anything that would have been "unattributed" lands in the phase
//! whose boundary follows it.
//!
//! Each lap also appends a span to a capped timeline (evictions are
//! counted, never silent — the aggregate totals stay exact regardless),
//! and while a window is open ([`window_begin`]/[`window_end`]) feeds
//! the per-window compute/wait accumulators that the straggler analysis
//! reads.
//!
//! # Flow marks
//!
//! Cross-shard mailbox batches are recorded on both sides:
//! [`flow_send`] on the publisher, [`flow_recv`] on the acceptor. The
//! pair is matched by `(barrier_seq, src, dst)` — [`rendezvous`]
//! advances `barrier_seq` in lockstep on every shard (each rendezvous
//! is a full-group barrier), a batch is published immediately *before*
//! one barrier and accepted immediately *after* it, so the sender tags
//! the upcoming barrier (`seq + 1`) and the receiver the one it just
//! crossed (`seq`). [`to_trace_json`] turns matched pairs into Chrome
//! trace-event flow arrows between shard tracks.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Number of profiling phases (the length of [`Phase::ALL`]).
pub const NPHASES: usize = 8;

/// The wall-clock phase a lap attributes time to. Mirrors the event
/// lifecycle of one shard worker: build the world, then loop
/// negotiate → execute → fill mailboxes → wait at the barrier →
/// extend the window, and finally tear down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// World construction: topology build, workload scheduling,
    /// partitioning, timer arming — everything before the window loop.
    Setup = 0,
    /// Event execution: `Sim::run_before` / `run_until` firing handlers.
    Execute = 1,
    /// Window negotiation: publishing the local frontier and waiting for
    /// the global minimum (both rendezvous of `WindowSync::negotiate`).
    Negotiate = 2,
    /// Mailbox exchange work: draining inbound mailboxes into the
    /// schedule and staging/publishing outbound batches.
    Mailbox = 3,
    /// Blocked at an exchange / vote / horizon barrier waiting for
    /// peer shards.
    Barrier = 4,
    /// Horizon extension: continuing a window past a sub-barrier
    /// (mid-window accepts and the next-horizon bookkeeping).
    Extend = 5,
    /// Rendezvous elision: the bookkeeping of sub-steps that advance
    /// without a barrier — bound-floor checks, frontier publication,
    /// and seq-counter polling on the lock-free exchange path.
    Elide = 6,
    /// Teardown after the window loop: metric publication, session
    /// collection, and the tail up to `disable`.
    Finish = 7,
}

impl Phase {
    /// All phases, in `phase_ns` index order.
    pub const ALL: [Phase; NPHASES] = [
        Phase::Setup,
        Phase::Execute,
        Phase::Negotiate,
        Phase::Mailbox,
        Phase::Barrier,
        Phase::Extend,
        Phase::Elide,
        Phase::Finish,
    ];

    /// Index into a `phase_ns` array.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lower-case label (used in tables and the trace export).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::Execute => "execute",
            Phase::Negotiate => "negotiate",
            Phase::Mailbox => "mailbox",
            Phase::Barrier => "barrier",
            Phase::Extend => "extend",
            Phase::Elide => "elide",
            Phase::Finish => "finish",
        }
    }
}

/// One attributed interval on a shard's timeline: `[start_ns, end_ns)`
/// since the run epoch, attributed to `phase`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfSpan {
    /// Phase the interval was attributed to.
    pub phase: Phase,
    /// Interval start, nanoseconds since the run epoch.
    pub start_ns: u64,
    /// Interval end, nanoseconds since the run epoch.
    pub end_ns: u64,
}

/// Per-negotiated-window wall-clock sample on one shard: the window's
/// span plus how much of it was event execution vs rendezvous wait.
/// Windows are negotiated by the whole group, so sample index `i` on
/// every shard of a run refers to the same logical window — that
/// alignment is what the straggler analysis leans on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSample {
    /// Window open (negotiation settled), ns since the run epoch.
    pub start_ns: u64,
    /// Window close (final barrier of the window), ns since the epoch.
    pub end_ns: u64,
    /// Nanoseconds spent in [`Phase::Execute`] inside this window.
    pub exec_ns: u64,
    /// Nanoseconds spent in [`Phase::Barrier`] + [`Phase::Negotiate`]
    /// inside this window.
    pub wait_ns: u64,
}

/// One side of a cross-shard mailbox batch: `peer` is the destination
/// shard on the sending side and the source shard on the receiving
/// side; `seq` is the rendezvous the batch crossed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowMark {
    /// Nanoseconds since the run epoch at which the mark was recorded.
    pub at_ns: u64,
    /// The other shard of the exchange.
    pub peer: u32,
    /// Barrier sequence number the batch crossed at (see module docs).
    pub seq: u64,
    /// Messages in the batch.
    pub count: u64,
}

/// Retention caps for the timeline detail a session keeps. Aggregates
/// (phase totals, message matrix) are always exact; only the per-span /
/// per-window / per-flow detail is capped, with evictions counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfConfig {
    /// Timeline spans retained per session (oldest kept, newest dropped).
    pub span_capacity: usize,
    /// Per-window samples retained per session.
    pub window_capacity: usize,
    /// Flow marks retained per direction per session.
    pub flow_capacity: usize,
}

impl Default for ProfConfig {
    fn default() -> Self {
        ProfConfig {
            span_capacity: 262_144,
            window_capacity: 131_072,
            flow_capacity: 65_536,
        }
    }
}

/// Everything one profiling session recorded, returned by [`disable`].
#[derive(Debug, Clone)]
pub struct Profile {
    /// Shard id the session profiled (0 on the classic engine).
    pub shard: usize,
    /// Shard count of the run (1 on the classic engine).
    pub shards: usize,
    /// Session start, nanoseconds since the shared run epoch.
    pub start_ns: u64,
    /// Wall-clock nanoseconds from [`enable`] to [`disable`].
    pub total_ns: u64,
    /// Per-phase attributed nanoseconds, indexed by [`Phase::index`].
    /// Sums to `total_ns` by construction of the lap model.
    pub phase_ns: [u64; NPHASES],
    /// Timeline of attributed spans (capped; see `spans_dropped`).
    pub spans: Vec<ProfSpan>,
    /// Spans evicted by [`ProfConfig::span_capacity`].
    pub spans_dropped: u64,
    /// Per-negotiated-window samples (capped; see `windows_dropped`).
    pub windows: Vec<WindowSample>,
    /// Window samples evicted by [`ProfConfig::window_capacity`].
    pub windows_dropped: u64,
    /// Outbound mailbox batches this shard published.
    pub flows_out: Vec<FlowMark>,
    /// Inbound mailbox batches this shard accepted.
    pub flows_in: Vec<FlowMark>,
    /// Flow marks evicted by [`ProfConfig::flow_capacity`].
    pub flows_dropped: u64,
    /// Cross-shard messages sent, by destination shard (the session's
    /// row of the run's message matrix). Always exact.
    pub msgs_to: Vec<u64>,
}

impl Profile {
    /// Nanoseconds attributed to named phases — equals `total_ns` in a
    /// healthy session (the lap model attributes everything).
    pub fn attributed_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Fraction of attributed time spent in `phase` (0.0 when empty).
    pub fn frac(&self, phase: Phase) -> f64 {
        let attr = self.attributed_ns();
        if attr == 0 {
            return 0.0;
        }
        self.phase_ns[phase.index()] as f64 / attr as f64
    }
}

struct ProfState {
    epoch: Instant,
    config: ProfConfig,
    shard: usize,
    shards: usize,
    start_ns: u64,
    last_ns: u64,
    phase_ns: [u64; NPHASES],
    spans: Vec<ProfSpan>,
    spans_dropped: u64,
    windows: Vec<WindowSample>,
    windows_dropped: u64,
    open_window: Option<WindowSample>,
    flows_out: Vec<FlowMark>,
    flows_in: Vec<FlowMark>,
    flows_dropped: u64,
    msgs_to: Vec<u64>,
    seq: u64,
}

impl ProfState {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn lap(&mut self, phase: Phase) {
        let now = self.now_ns();
        let start = self.last_ns;
        self.last_ns = now;
        self.phase_ns[phase.index()] += now - start;
        if self.spans.len() < self.config.span_capacity {
            self.spans.push(ProfSpan {
                phase,
                start_ns: start,
                end_ns: now,
            });
        } else {
            self.spans_dropped += 1;
        }
        if let Some(w) = self.open_window.as_mut() {
            match phase {
                Phase::Execute => w.exec_ns += now - start,
                Phase::Barrier | Phase::Negotiate => w.wait_ns += now - start,
                _ => {}
            }
        }
    }
}

thread_local! {
    static PROF_ON: Cell<bool> = const { Cell::new(false) };
    static PROF: RefCell<Option<ProfState>> = const { RefCell::new(None) };
}

/// Count of enabled profiling sessions across all threads — the same
/// disabled-path discipline as the telemetry session: with no session
/// anywhere, every hook is one relaxed static load and a predictable
/// branch, never a TLS access.
static PROF_ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// True while a profiling session is enabled on this thread.
#[inline(always)]
pub fn on() -> bool {
    if PROF_ACTIVE.load(Ordering::Relaxed) == 0 {
        return false;
    }
    PROF_ON.with(|c| c.get())
}

/// Starts a profiling session on this thread with default caps.
/// `epoch` must be shared by every session of the run so their
/// timestamps align; `shard`/`shards` place this session on the run's
/// track layout (use `0`/`1` on the classic engine).
pub fn enable(epoch: Instant, shard: usize, shards: usize) {
    enable_with(epoch, shard, shards, ProfConfig::default());
}

/// [`enable`] with explicit retention caps.
pub fn enable_with(epoch: Instant, shard: usize, shards: usize, config: ProfConfig) {
    let start_ns = epoch.elapsed().as_nanos() as u64;
    PROF.with(|s| {
        *s.borrow_mut() = Some(ProfState {
            epoch,
            config,
            shard,
            shards: shards.max(1),
            start_ns,
            last_ns: start_ns,
            phase_ns: [0; NPHASES],
            spans: Vec::new(),
            spans_dropped: 0,
            windows: Vec::new(),
            windows_dropped: 0,
            open_window: None,
            flows_out: Vec::new(),
            flows_in: Vec::new(),
            flows_dropped: 0,
            msgs_to: vec![0; shards.max(1)],
            seq: 0,
        })
    });
    PROF_ON.with(|c| {
        if !c.get() {
            PROF_ACTIVE.fetch_add(1, Ordering::Relaxed);
            c.set(true);
        }
    });
}

/// Stops the session on this thread and returns its profile. The tail
/// since the last lap is attributed to [`Phase::Finish`], so the
/// per-phase totals account for the session's whole wall-clock span.
pub fn disable() -> Option<Profile> {
    PROF_ON.with(|c| {
        if c.get() {
            PROF_ACTIVE.fetch_sub(1, Ordering::Relaxed);
            c.set(false);
        }
    });
    PROF.with(|s| s.borrow_mut().take()).map(|mut st| {
        st.lap(Phase::Finish);
        Profile {
            shard: st.shard,
            shards: st.shards,
            start_ns: st.start_ns,
            total_ns: st.last_ns - st.start_ns,
            phase_ns: st.phase_ns,
            spans: st.spans,
            spans_dropped: st.spans_dropped,
            windows: st.windows,
            windows_dropped: st.windows_dropped,
            flows_out: st.flows_out,
            flows_in: st.flows_in,
            flows_dropped: st.flows_dropped,
            msgs_to: st.msgs_to,
        }
    })
}

/// Attributes everything since the previous lap (or [`enable`]) to
/// `phase`. No-op when disabled.
#[inline]
pub fn lap(phase: Phase) {
    if !on() {
        return;
    }
    PROF.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.lap(phase);
        }
    });
}

/// Opens a per-window sample at the current lap boundary (call right
/// after the negotiation lap). No clock read: the window opens where
/// the last lap ended.
#[inline]
pub fn window_begin() {
    if !on() {
        return;
    }
    PROF.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.open_window = Some(WindowSample {
                start_ns: st.last_ns,
                ..WindowSample::default()
            });
        }
    });
}

/// Closes the open window sample at the current lap boundary (call
/// right after the window's final barrier lap).
#[inline]
pub fn window_end() {
    if !on() {
        return;
    }
    PROF.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            if let Some(mut w) = st.open_window.take() {
                w.end_ns = st.last_ns;
                if st.windows.len() < st.config.window_capacity {
                    st.windows.push(w);
                } else {
                    st.windows_dropped += 1;
                }
            }
        }
    });
}

/// Advances the barrier sequence by `n` (call wherever the drive loop
/// counts rendezvous, with the same `n`, so every shard's sequence
/// stays in lockstep). No-op when disabled.
#[inline]
pub fn rendezvous(n: u64) {
    if !on() {
        return;
    }
    PROF.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.seq += n;
        }
    });
}

/// Records an outbound mailbox batch of `count` messages to shard
/// `dst`, tagged with the *upcoming* rendezvous (the one that will
/// publish it). Also feeds the exact message matrix.
#[inline]
pub fn flow_send(dst: usize, count: u64) {
    if !on() {
        return;
    }
    PROF.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            if let Some(slot) = st.msgs_to.get_mut(dst) {
                *slot += count;
            }
            let mark = FlowMark {
                at_ns: st.now_ns(),
                peer: dst as u32,
                seq: st.seq + 1,
                count,
            };
            if st.flows_out.len() < st.config.flow_capacity {
                st.flows_out.push(mark);
            } else {
                st.flows_dropped += 1;
            }
        }
    });
}

/// Records an inbound mailbox batch of `count` messages from shard
/// `src`, tagged with the rendezvous just crossed.
#[inline]
pub fn flow_recv(src: usize, count: u64) {
    if !on() {
        return;
    }
    PROF.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            let mark = FlowMark {
                at_ns: st.now_ns(),
                peer: src as u32,
                seq: st.seq,
                count,
            };
            if st.flows_in.len() < st.config.flow_capacity {
                st.flows_in.push(mark);
            } else {
                st.flows_dropped += 1;
            }
        }
    });
}

// ---------------------------------------------------------------------
// Aggregation & reporting
// ---------------------------------------------------------------------

/// Per-shard totals folded over one or more profiled points (seeds).
#[derive(Debug, Clone, Default)]
pub struct ShardAgg {
    /// Shard id.
    pub shard: usize,
    /// Summed wall-clock nanoseconds across points.
    pub total_ns: u64,
    /// Summed per-phase nanoseconds across points.
    pub phase_ns: [u64; NPHASES],
    /// Windows sampled across points.
    pub windows: u64,
    /// Cross-shard messages sent across points.
    pub messages: u64,
}

impl ShardAgg {
    /// Nanoseconds attributed to named phases.
    pub fn attributed_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }
}

fn shard_count(points: &[&[Profile]]) -> usize {
    points
        .iter()
        .flat_map(|p| p.iter())
        .map(|p| p.shards)
        .max()
        .unwrap_or(0)
}

/// Folds per-point per-shard profiles into one [`ShardAgg`] per shard.
pub fn aggregate(points: &[&[Profile]]) -> Vec<ShardAgg> {
    let shards = shard_count(points);
    let mut out: Vec<ShardAgg> = (0..shards)
        .map(|shard| ShardAgg {
            shard,
            ..ShardAgg::default()
        })
        .collect();
    for point in points {
        for p in point.iter() {
            let a = &mut out[p.shard];
            a.total_ns += p.total_ns;
            for (dst, src) in a.phase_ns.iter_mut().zip(p.phase_ns.iter()) {
                *dst += src;
            }
            a.windows += p.windows.len() as u64;
            a.messages += p.msgs_to.iter().sum::<u64>();
        }
    }
    out
}

/// The run's cross-shard message matrix: `matrix[src][dst]` messages,
/// summed across points. Exact (fed by [`flow_send`], never capped).
pub fn message_matrix(points: &[&[Profile]]) -> Vec<Vec<u64>> {
    let shards = shard_count(points);
    let mut m = vec![vec![0u64; shards]; shards];
    for point in points {
        for p in point.iter() {
            for (dst, n) in p.msgs_to.iter().enumerate() {
                m[p.shard][dst] += n;
            }
        }
    }
    m
}

/// Straggler analysis: splits each point's window sequence into ten
/// deciles and reports, per decile, the shard that was most often the
/// *straggler* (largest in-window execute time — the shard the others
/// waited for). Returns `(modal straggler shard, times it straggled,
/// windows in the decile)` per decile; empty when no windows sampled.
pub fn straggler_deciles(points: &[&[Profile]]) -> Vec<(usize, u64, u64)> {
    let shards = shard_count(points);
    if shards == 0 {
        return Vec::new();
    }
    // counts[decile][shard] = windows in which `shard` straggled.
    let mut counts = vec![vec![0u64; shards]; 10];
    let mut totals = [0u64; 10];
    for point in points {
        // Window index i means the same negotiated window on every
        // shard of a point; profiles with fewer samples (capped) bound
        // the comparable range.
        let n = point.iter().map(|p| p.windows.len()).min().unwrap_or(0);
        if n == 0 {
            continue;
        }
        for i in 0..n {
            let straggler = point
                .iter()
                .max_by_key(|p| p.windows[i].exec_ns)
                .map(|p| p.shard)
                .unwrap_or(0);
            let decile = (i * 10 / n).min(9);
            counts[decile][straggler] += 1;
            totals[decile] += 1;
        }
    }
    if totals.iter().all(|&t| t == 0) {
        return Vec::new();
    }
    (0..10)
        .map(|d| {
            let (shard, &n) = counts[d]
                .iter()
                .enumerate()
                .max_by_key(|(_, &n)| n)
                .unwrap();
            (shard, n, totals[d])
        })
        .collect()
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

/// Renders the human profile table: per-shard wall-clock and phase
/// percentages, the compute / barrier-wait / exchange headline, the
/// straggler-by-decile line, and the cross-shard message matrix.
/// Wall-clock and therefore nondeterministic — never part of a
/// canonical export.
pub fn render_table(points: &[&[Profile]]) -> String {
    let aggs = aggregate(points);
    let mut out = String::new();
    if aggs.is_empty() {
        out.push_str("  wall-clock profile: no sessions recorded\n");
        return out;
    }
    let _ = writeln!(
        out,
        "  wall-clock profile ({} point(s), {} shard track(s))",
        points.len(),
        aggs.len()
    );
    let _ = writeln!(
        out,
        "  shard     wall ms   attr%  setup%   exec%  negot%  mailbx%  barrier%  extend%  elide%  finish%"
    );
    let mut grand = ShardAgg::default();
    for a in &aggs {
        grand.total_ns += a.total_ns;
        for (dst, src) in grand.phase_ns.iter_mut().zip(a.phase_ns.iter()) {
            *dst += src;
        }
        let attr = a.attributed_ns();
        let _ = writeln!(
            out,
            "  {:<7} {:>9.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>8.1} {:>9.1} {:>8.1} {:>7.1} {:>8.1}",
            a.shard,
            a.total_ns as f64 / 1e6,
            pct(attr, a.total_ns),
            pct(a.phase_ns[Phase::Setup.index()], attr),
            pct(a.phase_ns[Phase::Execute.index()], attr),
            pct(a.phase_ns[Phase::Negotiate.index()], attr),
            pct(a.phase_ns[Phase::Mailbox.index()], attr),
            pct(a.phase_ns[Phase::Barrier.index()], attr),
            pct(a.phase_ns[Phase::Extend.index()], attr),
            pct(a.phase_ns[Phase::Elide.index()], attr),
            pct(a.phase_ns[Phase::Finish.index()], attr),
        );
    }
    let attr = grand.attributed_ns();
    let compute = grand.phase_ns[Phase::Execute.index()];
    let wait = grand.phase_ns[Phase::Negotiate.index()] + grand.phase_ns[Phase::Barrier.index()];
    let exchange = grand.phase_ns[Phase::Mailbox.index()] + grand.phase_ns[Phase::Extend.index()];
    let _ = writeln!(
        out,
        "  totals: compute {:.1}% | barrier-wait {:.1}% | exchange {:.1}% | attributed {:.1}% of wall",
        pct(compute, attr),
        pct(wait, attr),
        pct(exchange, attr),
        pct(attr, grand.total_ns),
    );
    let deciles = straggler_deciles(points);
    if !deciles.is_empty() && aggs.len() > 1 {
        out.push_str("  straggler shard by window decile (largest in-window execute):\n   ");
        for (d, (shard, n, total)) in deciles.iter().enumerate() {
            if *total == 0 {
                continue;
            }
            let _ = write!(out, " d{d}:s{shard}({:.0}%)", pct(*n, *total));
        }
        out.push('\n');
    }
    let matrix = message_matrix(points);
    if matrix.iter().flatten().any(|&n| n > 0) {
        out.push_str("  cross-shard messages (row = from, col = to):\n");
        out.push_str("  from \\ to");
        for dst in 0..matrix.len() {
            let _ = write!(out, " {dst:>10}");
        }
        out.push('\n');
        for (src, row) in matrix.iter().enumerate() {
            let _ = write!(out, "  {src:<9}");
            for (dst, n) in row.iter().enumerate() {
                if src == dst {
                    let _ = write!(out, " {:>10}", "-");
                } else {
                    let _ = write!(out, " {n:>10}");
                }
            }
            out.push('\n');
        }
    }
    let dropped: u64 = points
        .iter()
        .flat_map(|p| p.iter())
        .map(|p| p.spans_dropped + p.windows_dropped + p.flows_dropped)
        .sum();
    if dropped > 0 {
        let _ = writeln!(
            out,
            "  note: {dropped} timeline record(s) beyond retention caps (totals stay exact)"
        );
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond precision, the trace-event `ts` unit.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

/// Renders profiled points as Chrome trace-event JSON, loadable in
/// Perfetto (`ui.perfetto.dev`) or `chrome://tracing`: one process per
/// point, one thread track per shard, phase laps as complete (`"X"`)
/// spans, and matched [`flow_send`]/[`flow_recv`] pairs as flow arrows
/// (`"s"`/`"f"`) between tracks. Events on each track are emitted in
/// nondecreasing `ts` order.
pub fn to_trace_json(points: &[(String, &[Profile])]) -> String {
    // (pid, tid, ts_ns, rendered event) — sorted so every track is
    // monotone and tracks are grouped.
    let mut events: Vec<(usize, usize, u64, String)> = Vec::new();
    let mut meta: Vec<String> = Vec::new();
    for (idx, (label, profiles)) in points.iter().enumerate() {
        let pid = idx + 1;
        meta.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(label)
        ));
        for p in profiles.iter() {
            let tid = p.shard;
            meta.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"shard {tid}\"}}}}"
            ));
            for s in &p.spans {
                events.push((
                    pid,
                    tid,
                    s.start_ns,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{},\
                         \"dur\":{},\"pid\":{pid},\"tid\":{tid}}}",
                        s.phase.label(),
                        us(s.start_ns),
                        us(s.end_ns - s.start_ns),
                    ),
                ));
            }
        }
        // Flow arrows: match send/recv marks by (seq, src, dst).
        let mut sends: std::collections::HashMap<(u64, u32, u32), (u64, u64)> =
            std::collections::HashMap::new();
        for p in profiles.iter() {
            for f in &p.flows_out {
                sends.insert((f.seq, p.shard as u32, f.peer), (f.at_ns, f.count));
            }
        }
        let shards = shard_count(&[profiles]) as u64;
        for p in profiles.iter() {
            for f in &p.flows_in {
                let key = (f.seq, f.peer, p.shard as u32);
                let Some(&(sent_at, count)) = sends.get(&key) else {
                    continue;
                };
                let id = ((pid as u64) << 48)
                    | ((f.seq * shards + f.peer as u64) * shards + p.shard as u64);
                events.push((
                    pid,
                    f.peer as usize,
                    sent_at,
                    format!(
                        "{{\"name\":\"xshard\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{id},\
                         \"ts\":{},\"pid\":{pid},\"tid\":{},\"args\":{{\"msgs\":{count}}}}}",
                        us(sent_at),
                        f.peer,
                    ),
                ));
                events.push((
                    pid,
                    p.shard,
                    f.at_ns.max(sent_at),
                    format!(
                        "{{\"name\":\"xshard\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\
                         \"id\":{id},\"ts\":{},\"pid\":{pid},\"tid\":{}}}",
                        us(f.at_ns.max(sent_at)),
                        p.shard,
                    ),
                ));
            }
        }
    }
    events.sort_by_key(|a| (a.0, a.1, a.2));
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    for m in &meta {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(m);
    }
    for (_, _, _, e) in &events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(e);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(ns: u64) {
        let t0 = Instant::now();
        while (t0.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_path_is_inert() {
        let _ = disable();
        lap(Phase::Execute);
        window_begin();
        window_end();
        rendezvous(2);
        flow_send(0, 5);
        flow_recv(0, 5);
        assert!(!on());
        assert!(disable().is_none());
    }

    #[test]
    fn laps_attribute_every_nanosecond() {
        enable(Instant::now(), 0, 1);
        spin(50_000);
        lap(Phase::Setup);
        spin(50_000);
        lap(Phase::Execute);
        let p = disable().expect("session");
        assert_eq!(
            p.attributed_ns(),
            p.total_ns,
            "lap model must attribute the whole session"
        );
        assert!(p.phase_ns[Phase::Setup.index()] >= 50_000);
        assert!(p.phase_ns[Phase::Execute.index()] >= 50_000);
        // The tail between the last lap and disable lands in Finish.
        assert_eq!(p.spans.last().unwrap().phase, Phase::Finish);
        // Spans tile the session: contiguous, no gaps.
        assert_eq!(p.spans[0].start_ns, p.start_ns);
        for w in p.spans.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns, "timeline must be gap-free");
        }
    }

    #[test]
    fn window_samples_nest_the_phase_spans_between_their_bounds() {
        enable(Instant::now(), 0, 2);
        lap(Phase::Mailbox);
        lap(Phase::Negotiate);
        window_begin();
        spin(20_000);
        lap(Phase::Execute);
        lap(Phase::Mailbox);
        spin(20_000);
        lap(Phase::Barrier);
        window_end();
        lap(Phase::Negotiate);
        let p = disable().expect("session");
        assert_eq!(p.windows.len(), 1);
        let w = p.windows[0];
        let exec: u64 = p
            .spans
            .iter()
            .filter(|s| s.phase == Phase::Execute)
            .map(|s| s.end_ns - s.start_ns)
            .sum();
        let barrier: u64 = p
            .spans
            .iter()
            .filter(|s| s.phase == Phase::Barrier)
            .map(|s| s.end_ns - s.start_ns)
            .sum();
        assert_eq!(
            w.exec_ns, exec,
            "window must absorb exactly its execute laps"
        );
        assert_eq!(w.wait_ns, barrier, "in-window barrier time is wait");
        // The window opens where the negotiate lap ended and closes
        // where its final barrier lap ended — span nesting by times.
        let negotiate_end = p
            .spans
            .iter()
            .find(|s| s.phase == Phase::Negotiate)
            .unwrap()
            .end_ns;
        assert_eq!(w.start_ns, negotiate_end);
        assert!(w.end_ns >= w.start_ns + 40_000);
        for s in p.spans.iter().filter(|s| s.phase == Phase::Execute) {
            assert!(
                s.start_ns >= w.start_ns && s.end_ns <= w.end_ns,
                "execute spans nest inside their window"
            );
        }
        // The post-window negotiate lap must not leak into the sample.
        assert!(w.wait_ns < p.phase_ns[Phase::Negotiate.index()] + barrier);
    }

    #[test]
    fn span_cap_evicts_loudly_but_totals_stay_exact() {
        enable_with(
            Instant::now(),
            0,
            1,
            ProfConfig {
                span_capacity: 2,
                ..ProfConfig::default()
            },
        );
        for _ in 0..5 {
            spin(5_000);
            lap(Phase::Execute);
        }
        let p = disable().expect("session");
        assert_eq!(p.spans.len(), 2);
        assert_eq!(p.spans_dropped, 4, "3 execute laps + the finish lap");
        assert_eq!(p.attributed_ns(), p.total_ns, "totals unaffected by caps");
        assert!(p.phase_ns[Phase::Execute.index()] >= 25_000);
    }

    fn fake_profile(shard: usize, shards: usize, exec: u64, wait: u64) -> Profile {
        let mut phase_ns = [0u64; NPHASES];
        phase_ns[Phase::Execute.index()] = exec;
        phase_ns[Phase::Barrier.index()] = wait;
        Profile {
            shard,
            shards,
            start_ns: 0,
            total_ns: exec + wait,
            phase_ns,
            spans: vec![
                ProfSpan {
                    phase: Phase::Execute,
                    start_ns: 0,
                    end_ns: exec,
                },
                ProfSpan {
                    phase: Phase::Barrier,
                    start_ns: exec,
                    end_ns: exec + wait,
                },
            ],
            spans_dropped: 0,
            windows: (0..10)
                .map(|i| WindowSample {
                    start_ns: i * 100,
                    end_ns: i * 100 + 100,
                    // Shard 1 executes longer in every window.
                    exec_ns: 10 + shard as u64 * 5,
                    wait_ns: 5,
                })
                .collect(),
            windows_dropped: 0,
            flows_out: Vec::new(),
            flows_in: Vec::new(),
            flows_dropped: 0,
            msgs_to: (0..shards)
                .map(|d| if d == shard { 0 } else { 7 })
                .collect(),
        }
    }

    #[test]
    fn aggregation_folds_points_per_shard() {
        let a = vec![fake_profile(0, 2, 100, 50), fake_profile(1, 2, 120, 30)];
        let b = vec![fake_profile(0, 2, 10, 5), fake_profile(1, 2, 12, 3)];
        let aggs = aggregate(&[&a, &b]);
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].phase_ns[Phase::Execute.index()], 110);
        assert_eq!(aggs[1].phase_ns[Phase::Execute.index()], 132);
        assert_eq!(aggs[0].total_ns, 165);
        assert_eq!(aggs[0].windows, 20);
        assert_eq!(aggs[0].messages, 14);
        let m = message_matrix(&[&a, &b]);
        assert_eq!(m[0][1], 14);
        assert_eq!(m[1][0], 14);
        assert_eq!(m[0][0], 0);
        // Shard 1's exec_ns is larger in every window sample: it is the
        // straggler in all ten deciles.
        let deciles = straggler_deciles(&[&a, &b]);
        assert_eq!(deciles.len(), 10);
        for (shard, n, total) in deciles {
            assert_eq!(shard, 1);
            assert_eq!(n, total);
        }
    }

    #[test]
    fn render_table_names_the_headline_fractions() {
        let a = vec![fake_profile(0, 2, 100, 50), fake_profile(1, 2, 120, 30)];
        let text = render_table(&[&a]);
        assert!(text.contains("wall-clock profile"));
        assert!(text.contains("compute"));
        assert!(text.contains("barrier-wait"));
        assert!(text.contains("exchange"));
        assert!(text.contains("straggler shard by window decile"));
        assert!(text.contains("cross-shard messages"));
    }

    #[test]
    fn trace_json_pairs_flows_and_keeps_tracks_monotone() {
        let mut a = fake_profile(0, 2, 100, 50);
        let mut b = fake_profile(1, 2, 120, 30);
        a.flows_out.push(FlowMark {
            at_ns: 90,
            peer: 1,
            seq: 3,
            count: 7,
        });
        b.flows_in.push(FlowMark {
            at_ns: 130,
            peer: 0,
            seq: 3,
            count: 7,
        });
        // An unmatched recv (sender side evicted) must be skipped, not
        // emitted as a dangling arrow.
        b.flows_in.push(FlowMark {
            at_ns: 140,
            peer: 0,
            seq: 9,
            count: 1,
        });
        let point = vec![a, b];
        let json = to_trace_json(&[("seed 1".to_string(), &point)]);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"execute\""));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1, "one matched flow");
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1);
        // Monotone ts per (pid, tid) track over complete spans: walk the
        // rendered lines in order and track the last ts seen per track.
        let mut last: std::collections::HashMap<(u64, u64), f64> = std::collections::HashMap::new();
        for line in json.lines().filter(|l| l.contains("\"ph\":\"X\"")) {
            let field = |k: &str| -> f64 {
                let i = line.find(k).unwrap() + k.len();
                line[i..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '.')
                    .collect::<String>()
                    .parse()
                    .unwrap()
            };
            let key = (field("\"pid\":") as u64, field("\"tid\":") as u64);
            let ts = field("\"ts\":");
            assert!(
                ts >= *last.get(&key).unwrap_or(&-1.0),
                "track {key:?} ts must be nondecreasing"
            );
            last.insert(key, ts);
        }
        assert!(!last.is_empty());
    }

    #[test]
    fn flow_marks_tag_the_carrying_rendezvous() {
        enable(Instant::now(), 0, 2);
        rendezvous(2); // a negotiation
        flow_send(1, 4); // published before barrier 3
        rendezvous(1); // the exchange that carries it
        flow_recv(1, 2); // accepted right after barrier 3
        let p = disable().expect("session");
        assert_eq!(p.flows_out[0].seq, 3);
        assert_eq!(p.flows_in[0].seq, 3);
        assert_eq!(p.msgs_to[1], 4);
        assert_eq!(p.msgs_to[0], 0);
    }
}
