//! A fixed-capacity ring buffer that counts what it evicts.
//!
//! The trace ring and netsim's packet `Tracer` both sit on this type: a
//! bounded queue that, once full, drops the *oldest* entry to admit a new
//! one and keeps an exact count of everything dropped. The backing store
//! is allocated once at construction; steady-state pushes never allocate.

use std::collections::VecDeque;

/// Fixed-capacity ring with a dropped-oldest counter.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Ring {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an entry, evicting (and counting) the oldest if full.
    #[inline]
    pub fn push(&mut self, item: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
        self.buf.push_back(item);
    }

    /// Entries currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of entries the ring holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many entries were evicted to make room since construction
    /// (or the last [`Ring::clear`]).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Empties the ring and resets the dropped counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }

    /// Oldest entry, if any.
    pub fn front(&self) -> Option<&T> {
        self.buf.front()
    }

    /// Newest entry, if any.
    pub fn back(&self) -> Option<&T> {
        self.buf.back()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_within_capacity_drops_nothing() {
        let mut r = Ring::new(4);
        for i in 0..4 {
            r.push(i);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts() {
        let mut r = Ring::new(3);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(r.front(), Some(&7));
        assert_eq!(r.back(), Some(&9));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = Ring::new(0);
        r.push('a');
        r.push('b');
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.back(), Some(&'b'));
    }

    #[test]
    fn clear_resets_dropped() {
        let mut r = Ring::new(1);
        r.push(1);
        r.push(2);
        assert_eq!(r.dropped(), 1);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }
}
