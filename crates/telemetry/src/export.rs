//! Exporters: Prometheus text exposition and flat JSON.
//!
//! Both walk the registry's `BTreeMap`s, so output is byte-deterministic
//! for a given registry state. JSON is hand-rolled (the workspace keeps
//! this crate dependency-free); names and scopes are escaped, values are
//! integers except histogram means.

use crate::metrics::Registry;

/// Maps a metric name to a Prometheus-legal name: `edp_` prefix plus the
/// name with every non-`[a-zA-Z0-9_]` byte replaced by `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("edp_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the registry in Prometheus text exposition format.
pub fn to_prometheus_text(reg: &Registry) -> String {
    let mut out = String::new();
    let mut last_type_line = String::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        let line = format!("# TYPE {name} {kind}\n");
        if line != last_type_line {
            out.push_str(&line);
            last_type_line = line;
        }
    };
    for (name, scope, v) in reg.counters() {
        let pname = prom_name(name);
        type_line(&mut out, &pname, "counter");
        out.push_str(&format!("{pname}{{scope=\"{scope}\"}} {v}\n"));
    }
    for (name, scope, v) in reg.gauges() {
        let pname = prom_name(name);
        type_line(&mut out, &pname, "gauge");
        out.push_str(&format!("{pname}{{scope=\"{scope}\"}} {v}\n"));
    }
    for (name, scope, h) in reg.histograms() {
        let pname = prom_name(name);
        type_line(&mut out, &pname, "summary");
        for (q, v) in [(0.5, h.p50()), (0.99, h.p99()), (1.0, h.max())] {
            out.push_str(&format!(
                "{pname}{{scope=\"{scope}\",quantile=\"{q}\"}} {v}\n"
            ));
        }
        out.push_str(&format!("{pname}_sum{{scope=\"{scope}\"}} {}\n", h.sum()));
        out.push_str(&format!(
            "{pname}_count{{scope=\"{scope}\"}} {}\n",
            h.count()
        ));
    }
    out
}

/// Renders the registry as one JSON object:
/// `{"counters": [...], "gauges": [...], "histograms": [...]}` with
/// entries sorted by `(name, scope)`.
pub fn to_json(reg: &Registry) -> String {
    let mut out = String::from("{\"counters\":[");
    let mut first = true;
    for (name, scope, v) in reg.counters() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"scope\":\"{}\",\"value\":{v}}}",
            json_escape(name),
            json_escape(scope)
        ));
    }
    out.push_str("],\"gauges\":[");
    first = true;
    for (name, scope, v) in reg.gauges() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"scope\":\"{}\",\"value\":{v}}}",
            json_escape(name),
            json_escape(scope)
        ));
    }
    out.push_str("],\"histograms\":[");
    first = true;
    for (name, scope, h) in reg.histograms() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"scope\":\"{}\",\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"max\":{},\"mean\":{:.3}}}",
            json_escape(name),
            json_escape(scope),
            h.count(),
            h.sum(),
            h.p50(),
            h.p99(),
            h.max(),
            h.mean()
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.add_counter("rx", "sw1", 4);
        r.add_counter("rx", "sw0", 9);
        r.set_gauge("occ_bytes", "sw0:p1", 1500);
        r.observe("sojourn_ns", "sw0:p1", 100);
        r.observe("sojourn_ns", "sw0:p1", 200);
        r
    }

    #[test]
    fn prometheus_text_sorted_and_typed() {
        let text = to_prometheus_text(&sample());
        let sw0 = text.find("edp_rx{scope=\"sw0\"} 9").expect("sw0 counter");
        let sw1 = text.find("edp_rx{scope=\"sw1\"} 4").expect("sw1 counter");
        assert!(sw0 < sw1, "scopes must export in sorted order");
        assert!(text.contains("# TYPE edp_rx counter"));
        assert!(text.contains("# TYPE edp_occ_bytes gauge"));
        assert!(text.contains("# TYPE edp_sojourn_ns summary"));
        assert!(text.contains("edp_sojourn_ns_count{scope=\"sw0:p1\"} 2"));
        assert!(text.contains("edp_sojourn_ns_sum{scope=\"sw0:p1\"} 300"));
    }

    #[test]
    fn json_deterministic_and_parsable_shape() {
        let a = to_json(&sample());
        let b = to_json(&sample());
        assert_eq!(a, b, "export must be deterministic");
        assert!(a.starts_with("{\"counters\":["));
        assert!(a.contains("{\"name\":\"rx\",\"scope\":\"sw0\",\"value\":9}"));
        assert!(a.contains("\"count\":2"));
        assert!(a.contains("\"mean\":150.000"));
        assert!(a.ends_with("]}"));
    }

    #[test]
    fn json_escapes_quotes() {
        let mut r = Registry::new();
        r.add_counter("we\"ird", "s\\cope", 1);
        let j = to_json(&r);
        assert!(j.contains("we\\\"ird"));
        assert!(j.contains("s\\\\cope"));
    }
}
