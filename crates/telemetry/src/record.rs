//! The structured trace record schema.
//!
//! Every record is a small `Copy` struct: a sim-time stamp, a span id
//! (non-zero only on records that *open* or *close* a handler span), a
//! cause id (the span that was active when the record was emitted — zero
//! at top level), and a closed [`RecordKind`] payload. Records carry only
//! values derived from simulation state, never wall-clock time, so a
//! trace is a pure function of the run's seeds.
//!
//! Event-kind codes are indices into `EventKind::ALL` (Table 1 order);
//! [`event_kind_label`] maps them back to short stable labels.

/// Why a packet was dropped inside a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The program chose `Drop` (or left the destination unspecified).
    Program,
    /// A traffic-manager queue was full.
    Overflow,
    /// The parser rejected the frame.
    ParseError,
    /// The recirculation bound was exceeded.
    RecircLimit,
    /// The egress link was administratively down.
    LinkDown,
    /// The event-cascade depth bound was exceeded.
    CascadeLimit,
}

impl DropReason {
    /// Short stable label used in rendered traces and metric names.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::Program => "program",
            DropReason::Overflow => "overflow",
            DropReason::ParseError => "parse_error",
            DropReason::RecircLimit => "recirc_limit",
            DropReason::LinkDown => "link_down",
            DropReason::CascadeLimit => "cascade_limit",
        }
    }
}

/// The payload of one trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A handler raised a follow-on event (user event or generated
    /// packet) that will be dispatched.
    EventRaised {
        /// Index into `EventKind::ALL`.
        kind: u8,
    },
    /// An event was accepted into a queue/merger for later dispatch.
    EventEnqueued {
        /// Index into `EventKind::ALL`.
        kind: u8,
    },
    /// An event handler started running. Opens a span.
    EventFired {
        /// Index into `EventKind::ALL`.
        kind: u8,
    },
    /// The handler opened by the matching `EventFired` finished.
    HandlerDone {
        /// Index into `EventKind::ALL`.
        kind: u8,
    },
    /// A packet arrived on a switch port.
    PacketRx {
        /// Switch id (0 for the baseline switch).
        switch: u16,
        /// Ingress port.
        port: u8,
        /// Frame length in bytes.
        len: u32,
    },
    /// A packet left a switch port.
    PacketTx {
        /// Switch id.
        switch: u16,
        /// Egress port.
        port: u8,
        /// Frame length in bytes.
        len: u32,
    },
    /// A packet re-entered the ingress pipeline.
    PacketRecirc {
        /// Switch id.
        switch: u16,
        /// Recirculation pass number (1-based).
        pass: u8,
    },
    /// A packet was dropped.
    PacketDrop {
        /// Switch id.
        switch: u16,
        /// Why.
        reason: DropReason,
    },
    /// Queue occupancy sampled after an enqueue or dequeue.
    QueueDepth {
        /// Output port.
        port: u8,
        /// Bytes queued after the operation.
        q_bytes: u64,
        /// Packets queued after the operation.
        q_pkts: u32,
    },
    /// An aggregation register folded its parked deltas into main state.
    RegisterFlush {
        /// FNV-1a hash of the register name ([`register_label`]).
        register: u32,
        /// Cells folded in this flush.
        folds: u64,
    },
    /// A staleness bound observed on an aggregation-register read.
    Staleness {
        /// FNV-1a hash of the register name.
        register: u32,
        /// Unfolded delta magnitude visible to the read.
        bound: u64,
    },
    /// The flow cache admitted an entry.
    FlowCacheAdmit {
        /// Entries resident after admission.
        entries: u32,
    },
    /// The flow cache was invalidated wholesale.
    FlowCacheInvalidate {
        /// Entries evicted.
        evicted: u32,
    },
    /// The scheduler armed a future event.
    SchedArm {
        /// Heap sequence number of the armed event.
        seq: u64,
        /// Absolute due time in nanoseconds.
        due_ns: u64,
    },
    /// The scheduler fired an armed event.
    SchedFire {
        /// Heap sequence number of the fired event.
        seq: u64,
    },
    /// The scheduler cancelled an armed event.
    SchedCancel {
        /// Packed event handle that was cancelled.
        handle: u64,
    },
    /// The network delivered a frame to an endpoint.
    LinkDeliver {
        /// Destination node: switch index, or `0x8000_0000 | host`.
        node: u32,
        /// Destination port.
        port: u8,
        /// Frame length in bytes.
        len: u32,
    },
    /// A link (or link direction) changed administrative status.
    LinkStatus {
        /// Link index.
        link: u32,
        /// New status.
        up: bool,
    },
    /// Free-form annotation (stall markers, fault-plan notes, ...).
    Note {
        /// Producer-defined code.
        code: u32,
        /// Producer-defined arguments.
        a: u64,
        /// Producer-defined arguments.
        b: u64,
    },
}

/// One entry of the structured trace ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time of the record, nanoseconds.
    pub at_ns: u64,
    /// Span opened/closed by this record; 0 when the record is not a
    /// span boundary.
    pub span: u64,
    /// Span that was active when the record was emitted; 0 at top level.
    pub cause: u64,
    /// What happened.
    pub kind: RecordKind,
}

/// Short stable labels for event-kind codes, in `EventKind::ALL`
/// (Table 1) order.
const EVENT_KIND_LABELS: [&str; 13] = [
    "ingress",
    "egress",
    "recirculated",
    "generated",
    "transmitted",
    "enqueue",
    "dequeue",
    "overflow",
    "underflow",
    "timer",
    "control_plane",
    "link_status",
    "user",
];

/// Maps an event-kind code (index into `EventKind::ALL`) to its label.
pub fn event_kind_label(code: u8) -> &'static str {
    EVENT_KIND_LABELS
        .get(code as usize)
        .copied()
        .unwrap_or("unknown")
}

/// 32-bit FNV-1a of a register name: the deterministic id that
/// `RegisterFlush`/`Staleness` records carry instead of an allocation.
pub fn register_label(name: &str) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in name.as_bytes() {
        h ^= u32::from(*b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl TraceRecord {
    /// Renders the record as one stable text line.
    pub fn render(&self) -> String {
        format!(
            "{:>12} [span {:>4} cause {:>4}] {}",
            self.at_ns,
            self.span,
            self.cause,
            self.render_body()
        )
    }

    /// Renders the record *without* span/cause ids: `time body`.
    ///
    /// Span ids are allocated sequentially per session, so they depend on
    /// how records were distributed over sessions — under sharded
    /// execution, on the shard count. The canonical form drops them,
    /// leaving a line that is a pure function of the record itself;
    /// sorting canonical lines by `(time, text)` therefore merges
    /// per-shard rings into byte-identical text for any shard count.
    pub fn render_canonical(&self) -> String {
        format!("{:>12} {}", self.at_ns, self.render_body())
    }

    fn render_body(&self) -> String {
        match self.kind {
            RecordKind::EventRaised { kind } => {
                format!("event-raised {}", event_kind_label(kind))
            }
            RecordKind::EventEnqueued { kind } => {
                format!("event-enqueued {}", event_kind_label(kind))
            }
            RecordKind::EventFired { kind } => {
                format!("event-fired {}", event_kind_label(kind))
            }
            RecordKind::HandlerDone { kind } => {
                format!("handler-done {}", event_kind_label(kind))
            }
            RecordKind::PacketRx { switch, port, len } => {
                format!("pkt-rx sw{switch} p{port} {len}B")
            }
            RecordKind::PacketTx { switch, port, len } => {
                format!("pkt-tx sw{switch} p{port} {len}B")
            }
            RecordKind::PacketRecirc { switch, pass } => {
                format!("pkt-recirc sw{switch} pass={pass}")
            }
            RecordKind::PacketDrop { switch, reason } => {
                format!("pkt-drop sw{switch} {}", reason.label())
            }
            RecordKind::QueueDepth {
                port,
                q_bytes,
                q_pkts,
            } => format!("queue-depth p{port} {q_bytes}B/{q_pkts}p"),
            RecordKind::RegisterFlush { register, folds } => {
                format!("reg-flush r{register:08x} folds={folds}")
            }
            RecordKind::Staleness { register, bound } => {
                format!("staleness r{register:08x} bound={bound}")
            }
            RecordKind::FlowCacheAdmit { entries } => {
                format!("cache-admit entries={entries}")
            }
            RecordKind::FlowCacheInvalidate { evicted } => {
                format!("cache-invalidate evicted={evicted}")
            }
            RecordKind::SchedArm { seq, due_ns } => {
                format!("sched-arm seq={seq} due={due_ns}")
            }
            RecordKind::SchedFire { seq } => format!("sched-fire seq={seq}"),
            RecordKind::SchedCancel { handle } => {
                format!("sched-cancel handle={handle:#x}")
            }
            RecordKind::LinkDeliver { node, port, len } => {
                if node & 0x8000_0000 != 0 {
                    format!("link-deliver host{} p{port} {len}B", node & 0x7fff_ffff)
                } else {
                    format!("link-deliver sw{node} p{port} {len}B")
                }
            }
            RecordKind::LinkStatus { link, up } => {
                format!("link-status l{link} {}", if up { "up" } else { "down" })
            }
            RecordKind::Note { code, a, b } => format!("note c{code} a={a} b={b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_codes() {
        for code in 0u8..13 {
            assert_ne!(event_kind_label(code), "unknown");
        }
        assert_eq!(event_kind_label(13), "unknown");
        assert_eq!(event_kind_label(0), "ingress");
        assert_eq!(event_kind_label(12), "user");
    }

    #[test]
    fn register_label_deterministic_and_spread() {
        assert_eq!(register_label("occ"), register_label("occ"));
        assert_ne!(register_label("occ"), register_label("flow_occ"));
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(register_label(""), 0x811c_9dc5);
    }

    #[test]
    fn render_is_stable() {
        let r = TraceRecord {
            at_ns: 1500,
            span: 3,
            cause: 1,
            kind: RecordKind::EventFired { kind: 5 },
        };
        assert_eq!(
            r.render(),
            "        1500 [span    3 cause    1] event-fired enqueue"
        );
        let d = TraceRecord {
            at_ns: 0,
            span: 0,
            cause: 3,
            kind: RecordKind::PacketDrop {
                switch: 1,
                reason: DropReason::RecircLimit,
            },
        };
        assert_eq!(
            d.render(),
            "           0 [span    0 cause    3] pkt-drop sw1 recirc_limit"
        );
    }
}
