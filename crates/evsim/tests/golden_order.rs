//! Golden-order property test for the slab-backed event queue.
//!
//! The slab arena + key heap in `edp_evsim::Sim` is an acceleration
//! structure; its observable firing semantics must be bit-for-bit those
//! of the obvious reference implementation — a flat list scanned for the
//! minimum `(time, seq)` — under arbitrary interleavings of one-shot
//! schedules, periodic timers, pre-run and mid-run cancellations, and
//! handlers that schedule more work. Times are drawn from a tiny range so
//! same-instant ties (the FIFO-order guarantee) are exercised constantly.
//!
//! Both executors log every observable: fired tags in order, and the
//! boolean result of every cancellation. The logs must match exactly.

use edp_evsim::{EventId, Periodic, Sim, SimDuration, SimTime};
use proptest::prelude::*;

/// One build-phase command, applied identically to both executors.
#[derive(Debug, Clone)]
enum Cmd {
    /// One-shot event at absolute time `t`.
    Once { t: u64 },
    /// Periodic event starting at `t`, firing every `period`, `ticks` times.
    Periodic { t: u64, period: u64, ticks: u64 },
    /// Immediate (pre-run) cancel of a previously issued id.
    CancelNow { raw: u64 },
    /// Event at `t` that cancels a previously issued id when it fires.
    CancelAt { t: u64, raw: u64 },
    /// Event at `t` whose handler schedules a child `child_dt` later.
    Nested { t: u64, child_dt: u64 },
}

fn cmd_strategy() -> BoxedStrategy<Cmd> {
    prop_oneof![
        (0u64..16).prop_map(|t| Cmd::Once { t }),
        ((0u64..16), (1u64..4), (1u64..4)).prop_map(|(t, period, ticks)| Cmd::Periodic {
            t,
            period,
            ticks
        }),
        any::<u64>().prop_map(|raw| Cmd::CancelNow { raw }),
        ((0u64..16), any::<u64>()).prop_map(|(t, raw)| Cmd::CancelAt { t, raw }),
        ((0u64..16), (0u64..4)).prop_map(|(t, child_dt)| Cmd::Nested { t, child_dt }),
    ]
    .boxed()
}

// ---------------------------------------------------------------------
// Reference executor: flat list, linear scan for min (time, seq).
// ---------------------------------------------------------------------

#[derive(Debug)]
enum RefAction {
    Once(i64),
    Periodic {
        period: u64,
        left: u64,
        tag: i64,
    },
    Cancel(u64),
    Nested {
        child_dt: u64,
        parent_tag: i64,
        child_tag: i64,
    },
}

#[derive(Debug)]
struct RefEv {
    time: u64,
    seq: u64,
    action: RefAction,
}

#[derive(Debug, Default)]
struct RefModel {
    now: u64,
    next_seq: u64,
    pending: Vec<RefEv>,
    log: Vec<i64>,
}

impl RefModel {
    fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    fn schedule(&mut self, time: u64, action: RefAction) -> u64 {
        let seq = self.alloc_seq();
        self.pending.push(RefEv { time, seq, action });
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        match self.pending.iter().position(|e| e.seq == seq) {
            Some(pos) => {
                self.pending.swap_remove(pos);
                true
            }
            None => false,
        }
    }

    fn run(&mut self) {
        loop {
            let Some(pos) = self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.time, e.seq))
                .map(|(i, _)| i)
            else {
                return;
            };
            let ev = self.pending.swap_remove(pos);
            assert!(ev.time >= self.now);
            self.now = ev.time;
            match ev.action {
                RefAction::Once(tag) => self.log.push(tag),
                RefAction::Periodic { period, left, tag } => {
                    self.log.push(tag);
                    if left > 1 {
                        let time = self.now + period;
                        self.schedule(
                            time,
                            RefAction::Periodic {
                                period,
                                left: left - 1,
                                tag,
                            },
                        );
                    }
                }
                RefAction::Cancel(target) => {
                    let r = self.cancel(target);
                    self.log.push(2000 + r as i64);
                }
                RefAction::Nested {
                    child_dt,
                    parent_tag,
                    child_tag,
                } => {
                    self.log.push(parent_tag);
                    let time = self.now + child_dt;
                    self.schedule(time, RefAction::Once(child_tag));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// The property
// ---------------------------------------------------------------------

fn run_script(cmds: &[Cmd]) -> (Vec<i64>, Vec<i64>, usize) {
    let mut sim: Sim<Vec<i64>> = Sim::new();
    let mut model = RefModel::default();
    let mut ids: Vec<EventId> = Vec::new();
    let mut mids: Vec<u64> = Vec::new();
    let mut build_log_sim: Vec<i64> = Vec::new();
    let mut build_log_model: Vec<i64> = Vec::new();
    let mut next_tag: i64 = 0;
    let mut tag = || {
        next_tag += 1;
        next_tag
    };

    for cmd in cmds {
        match *cmd {
            Cmd::Once { t } => {
                let tg = tag();
                ids.push(sim.schedule_at(
                    SimTime::from_nanos(t),
                    move |w: &mut Vec<i64>, _: &mut Sim<Vec<i64>>| w.push(tg),
                ));
                mids.push(model.schedule(t, RefAction::Once(tg)));
            }
            Cmd::Periodic { t, period, ticks } => {
                let tg = tag();
                let mut left = ticks;
                ids.push(sim.schedule_periodic(
                    SimTime::from_nanos(t),
                    SimDuration::from_nanos(period),
                    move |w: &mut Vec<i64>, _: &mut Sim<Vec<i64>>| {
                        w.push(tg);
                        left -= 1;
                        if left == 0 {
                            Periodic::Stop
                        } else {
                            Periodic::Continue
                        }
                    },
                ));
                mids.push(model.schedule(
                    t,
                    RefAction::Periodic {
                        period,
                        left: ticks,
                        tag: tg,
                    },
                ));
            }
            Cmd::CancelNow { raw } => {
                if ids.is_empty() {
                    continue;
                }
                let k = (raw % ids.len() as u64) as usize;
                build_log_sim.push(2000 + sim.cancel(ids[k]) as i64);
                build_log_model.push(2000 + model.cancel(mids[k]) as i64);
            }
            Cmd::CancelAt { t, raw } => {
                if ids.is_empty() {
                    continue;
                }
                let k = (raw % ids.len() as u64) as usize;
                let target = ids[k];
                let mtarget = mids[k];
                ids.push(sim.schedule_at(
                    SimTime::from_nanos(t),
                    move |w: &mut Vec<i64>, s: &mut Sim<Vec<i64>>| {
                        let r = s.cancel(target);
                        w.push(2000 + r as i64);
                    },
                ));
                mids.push(model.schedule(t, RefAction::Cancel(mtarget)));
            }
            Cmd::Nested { t, child_dt } => {
                let parent_tag = tag();
                let child_tag = tag();
                ids.push(sim.schedule_at(
                    SimTime::from_nanos(t),
                    move |w: &mut Vec<i64>, s: &mut Sim<Vec<i64>>| {
                        w.push(parent_tag);
                        s.schedule_in(
                            SimDuration::from_nanos(child_dt),
                            move |w: &mut Vec<i64>, _: &mut Sim<Vec<i64>>| w.push(child_tag),
                        );
                    },
                ));
                mids.push(model.schedule(
                    t,
                    RefAction::Nested {
                        child_dt,
                        parent_tag,
                        child_tag,
                    },
                ));
            }
        }
    }

    let mut fired_sim = Vec::new();
    sim.run(&mut fired_sim);
    model.run();

    let mut sim_log = build_log_sim;
    sim_log.extend(fired_sim);
    let mut model_log = build_log_model;
    model_log.extend(model.log);
    (sim_log, model_log, sim.pending())
}

proptest! {
    #[test]
    fn slab_queue_fires_in_reference_order(
        cmds in prop::collection::vec(cmd_strategy(), 0..40)
    ) {
        let (sim_log, model_log, sim_pending) = run_script(&cmds);
        prop_assert_eq!(&sim_log, &model_log);
        prop_assert_eq!(sim_pending, 0, "queue fully drained");
    }
}

/// A fixed deep interleaving as a plain test, so a regression shows up
/// even with PROPTEST_CASES=1.
#[test]
fn golden_order_fixed_script() {
    let cmds = vec![
        Cmd::Once { t: 3 },
        Cmd::Periodic {
            t: 0,
            period: 2,
            ticks: 3,
        },
        Cmd::Once { t: 3 },
        Cmd::CancelAt { t: 2, raw: 0 },
        Cmd::Nested { t: 1, child_dt: 0 },
        Cmd::CancelNow { raw: 1 },
        Cmd::Once { t: 4 },
        Cmd::CancelAt { t: 4, raw: 1 },
        Cmd::Nested { t: 4, child_dt: 2 },
        Cmd::Periodic {
            t: 5,
            period: 1,
            ticks: 2,
        },
        Cmd::CancelNow { raw: 9 },
    ];
    let (sim_log, model_log, sim_pending) = run_script(&cmds);
    assert_eq!(sim_log, model_log);
    assert_eq!(sim_pending, 0);
}
