//! Property-based tests for the simulation kernel's core invariants.

use edp_evsim::{Histogram, Sim, SimDuration, SimTime, TimerWheel, Welford};
use proptest::prelude::*;

proptest! {
    /// Events always fire in non-decreasing time order, regardless of the
    /// order they were scheduled in.
    #[test]
    fn events_fire_in_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, _: &mut _| {
                w.push(t)
            });
        }
        let mut fired = Vec::new();
        sim.run(&mut fired);
        prop_assert_eq!(fired.len(), times.len());
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(fired, sorted);
    }

    /// Same-instant events fire in scheduling (FIFO) order.
    #[test]
    fn same_time_fifo(n in 1usize..100, t in 0u64..1000) {
        let mut sim: Sim<Vec<usize>> = Sim::new();
        for i in 0..n {
            sim.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<usize>, _: &mut _| {
                w.push(i)
            });
        }
        let mut fired = Vec::new();
        sim.run(&mut fired);
        prop_assert_eq!(fired, (0..n).collect::<Vec<_>>());
    }

    /// Cancelling an arbitrary subset prevents exactly that subset.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..10_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 100),
    ) {
        let mut sim: Sim<Vec<usize>> = Sim::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                sim.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<usize>, _: &mut _| {
                    w.push(i)
                })
            })
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i % cancel_mask.len()] {
                sim.cancel(*id);
            } else {
                expect.push(i);
            }
        }
        let mut fired = Vec::new();
        sim.run(&mut fired);
        fired.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(fired, expect);
    }

    /// run_until never fires events beyond the deadline and always leaves
    /// `now == deadline` when it had events left.
    #[test]
    fn run_until_respects_deadline(
        times in prop::collection::vec(1u64..100_000, 1..100),
        deadline in 1u64..100_000,
    ) {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, _: &mut _| {
                w.push(t)
            });
        }
        let mut fired = Vec::new();
        sim.run_until(&mut fired, SimTime::from_nanos(deadline));
        prop_assert!(fired.iter().all(|&t| t <= deadline));
        prop_assert_eq!(sim.now(), SimTime::from_nanos(deadline));
        prop_assert_eq!(
            fired.len(),
            times.iter().filter(|&&t| t <= deadline).count()
        );
    }

    /// The timer wheel fires every timer after exactly its delay.
    #[test]
    fn wheel_exact_delays(
        slots in 1usize..64,
        delays in prop::collection::vec(1u64..500, 1..50),
    ) {
        let mut wheel = TimerWheel::new(slots);
        for (i, &d) in delays.iter().enumerate() {
            wheel.arm(d, (i, d));
        }
        let max = *delays.iter().max().unwrap();
        let fired = wheel.advance(max);
        prop_assert_eq!(fired.len(), delays.len());
        for (tick, (_i, d)) in fired {
            prop_assert_eq!(tick, d, "timer armed for {} fired at {}", d, tick);
        }
        prop_assert_eq!(wheel.armed(), 0);
    }

    /// Histogram quantiles are monotone in q and bracket the data.
    #[test]
    fn histogram_quantiles_monotone(values in prop::collection::vec(0u64..1_000_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        let mut prev = 0;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0);
            prop_assert!(q >= prev, "quantiles must be monotone");
            prev = q;
        }
        prop_assert!(h.quantile(1.0) <= max);
        // Bucket resolution bound: p0 can undershoot min by ≤ ~6%.
        prop_assert!(h.quantile(0.0) as f64 >= min as f64 * 0.93 - 1.0);
        prop_assert_eq!(h.max(), max);
    }

    /// Welford's mean matches the naive mean.
    #[test]
    fn welford_mean_matches_naive(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut w = Welford::new();
        for &v in &values {
            w.add(v);
        }
        let naive = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((w.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
    }

    /// Duration arithmetic round-trips through serialization-delay math.
    #[test]
    fn serialization_delay_bounds(bytes in 1u64..100_000, rate in 1_000u64..100_000_000_000) {
        let d = SimDuration::for_bytes_at_rate(bytes, rate);
        let exact_ns = bytes as f64 * 8.0 * 1e9 / rate as f64;
        // Rounds up, never by more than 1 ns.
        prop_assert!(d.as_nanos() as f64 >= exact_ns - 1e-6);
        prop_assert!((d.as_nanos() as f64) < exact_ns + 1.0);
    }
}
