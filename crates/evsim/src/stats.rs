//! Measurement utilities shared by every experiment.
//!
//! Everything here is plain data: counters, streaming mean/variance
//! ([`Welford`]), a log-linear latency [`Histogram`], a [`TimeSeries`]
//! recorder, and small report helpers such as Jain's fairness index.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one, saturating at `u64::MAX` so long soak runs cannot
    /// panic on overflow in debug builds.
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

/// Streaming mean and variance (Welford's online algorithm).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// `Default` must match [`Welford::new`] — a derived default would zero
/// the min/max sentinels and silently report `min() == 0` forever.
impl Default for Welford {
    fn default() -> Self {
        Welford::new()
    }
}

/// A log-linear histogram for non-negative values (e.g. latencies in ns).
///
/// Buckets are powers of two subdivided linearly, HDR-histogram style with
/// 16 sub-buckets per octave: relative error is bounded at ~6% while the
/// range spans the full `u64`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

const SUB_BITS: u32 = 4; // 16 sub-buckets per power of two.

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // 64 octaves * 16 sub-buckets is enough for any u64.
        Histogram {
            counts: vec![0; (64 << SUB_BITS) as usize],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v < (1 << SUB_BITS) {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((v >> shift) & ((1 << SUB_BITS) - 1)) as u32;
        (((msb - SUB_BITS + 1) << SUB_BITS) + sub) as usize
    }

    fn bucket_low(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < (1 << SUB_BITS) {
            return idx;
        }
        let octave = (idx >> SUB_BITS) - 1;
        let sub = idx & ((1 << SUB_BITS) - 1);
        ((1 << SUB_BITS) | sub) << octave
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]`, within the bucket resolution.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q}");
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_low(i).min(self.max);
            }
        }
        self.max
    }

    /// Shorthand for the median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Shorthand for the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A `(time, value)` series recorder with simple summary queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a point. Times must be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t.as_nanos() >= last, "time series going backwards");
        }
        self.points.push((t.as_nanos(), v));
    }

    /// All points as `(ns, value)`.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest recorded value; 0 when empty.
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Time-weighted average of the (step-wise) signal over its span.
    ///
    /// Treats the series as piecewise constant between samples; returns the
    /// plain mean when the span is degenerate.
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return self.points.first().map(|&(_, v)| v).unwrap_or(0.0);
        }
        let mut acc = 0.0;
        let mut dur = 0.0;
        for w in self.points.windows(2) {
            let dt = (w[1].0 - w[0].0) as f64;
            acc += w[0].1 * dt;
            dur += dt;
        }
        if dur == 0.0 {
            let s: f64 = self.points.iter().map(|&(_, v)| v).sum();
            s / self.points.len() as f64
        } else {
            acc / dur
        }
    }
}

/// Jain's fairness index over per-entity allocations: 1.0 is perfectly
/// fair, `1/n` is maximally unfair. Empty input yields 1.0.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

/// Exact percentile over a full sample set (sorts a copy). Prefer
/// [`Histogram::quantile`] for large streams.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q));
    if samples.is_empty() {
        return 0.0;
    }
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let idx = ((q * (v.len() - 1) as f64).round() as usize).min(v.len() - 1);
    v[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn counter_saturates_at_max() {
        let mut c = Counter::new();
        c.add(u64::MAX - 1);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX, "incr past MAX must saturate, not wrap");
        c.add(17);
        assert_eq!(c.get(), u64::MAX, "add past MAX must saturate, not wrap");
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_default_tracks_min_like_new() {
        let mut w = Welford::default();
        w.add(2200.0);
        w.add(81100.0);
        assert_eq!(w.min(), 2200.0, "default must not zero the min sentinel");
        assert_eq!(w.max(), 81100.0);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn histogram_quantile_bounded_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let p50 = h.p50() as f64;
        assert!(
            (p50 - 50_000.0).abs() / 50_000.0 < 0.07,
            "p50 {p50} off by more than bucket error"
        );
        let p99 = h.p99() as f64;
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.07, "p99 {p99}");
        assert!((h.mean() - 50_000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_bucket_monotone() {
        let mut prev = 0;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 1000, 1 << 20, u64::MAX / 2] {
            let b = Histogram::bucket_of(v);
            assert!(b >= prev, "bucket not monotone at {v}");
            prev = b;
            assert!(Histogram::bucket_low(b) <= v, "bucket low above value");
        }
    }

    #[test]
    fn time_series_weighted_mean() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_nanos(0), 10.0);
        ts.push(SimTime::from_nanos(10), 0.0);
        ts.push(SimTime::from_nanos(30), 0.0);
        // 10 for 10 ns, 0 for 20 ns => 100/30.
        assert!((ts.time_weighted_mean() - 100.0 / 30.0).abs() < 1e-12);
        assert_eq!(ts.max_value(), 10.0);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_series_rejects_backwards() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_nanos(5), 1.0);
        ts.push(SimTime::from_nanos(4), 1.0);
    }

    #[test]
    fn jain_extremes() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let unfair = jain_fairness(&[4.0, 0.0, 0.0, 0.0]);
        assert!((unfair - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn percentile_exact() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
