//! Simulated time.
//!
//! All simulation time in the workspace is expressed in integer nanoseconds
//! wrapped in [`SimTime`] (an instant) and [`SimDuration`] (a span). Using
//! integers keeps event ordering exact and the simulation fully
//! deterministic; `f64` time would make event order depend on rounding.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span from an earlier instant to `self`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as "forever".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from a floating-point number of seconds (rounded to
    /// the nearest nanosecond). Panics if `s` is negative or too large.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s <= u64::MAX as f64 / 1e9,
            "duration out of range: {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Length of the span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length of the span in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length of the span in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length of the span in seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the span has zero length.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the span by a float factor (rounded); panics on overflow
    /// or negative factors.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0, "negative duration factor: {factor}");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The time a given number of bytes occupies on a link of `bits_per_sec`.
    ///
    /// This is the canonical serialization-delay helper used by the link and
    /// queue models. Rounds up so back-to-back packets never overlap.
    pub fn for_bytes_at_rate(bytes: u64, bits_per_sec: u64) -> SimDuration {
        assert!(bits_per_sec > 0, "zero link rate");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(bits_per_sec as u128);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d).as_nanos(), 140);
        assert_eq!((t + d) - t, d);
        assert_eq!((t - d).as_nanos(), 60);
        assert_eq!((d * 3).as_nanos(), 120);
        assert_eq!((d / 2).as_nanos(), 20);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(30);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_nanos(), 20);
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn serialization_delay_rounds_up() {
        // 1500 bytes at 10 Gb/s = 1.2 us exactly.
        let d = SimDuration::for_bytes_at_rate(1500, 10_000_000_000);
        assert_eq!(d.as_nanos(), 1_200);
        // 1 byte at 3 bits/s: 8/3 s rounds up.
        let d = SimDuration::for_bytes_at_rate(1, 3);
        assert_eq!(d.as_nanos(), 2_666_666_667);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(7).to_string(), "7ns");
        assert_eq!(SimDuration::from_micros(1).to_string(), "1.000us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
