//! Deterministic randomness for workloads.
//!
//! All stochastic behaviour in the workspace draws from a [`SimRng`] that is
//! seeded explicitly, usually by forking from one experiment master seed via
//! [`SimRng::fork`]. Forking gives each component an independent stream, so
//! adding a new consumer of randomness does not perturb existing ones.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded random number generator with networking-flavoured helpers.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream labelled by `tag`.
    ///
    /// The child seed mixes the tag with fresh output of this RNG, so two
    /// forks with the same tag from the same parent state still differ.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(s)
    }

    /// Derives a *stateless* named stream: a pure function of the master
    /// seed and a label path, independent of any RNG's current state.
    ///
    /// Unlike [`SimRng::fork`], which consumes parent output (so the child
    /// depends on how much the parent has been used), `stream` gives every
    /// consumer the same generator for the same `(master, path)` no matter
    /// when — or on which thread — it is constructed. This is the seeding
    /// scheme the fault-injection layer uses: each fault model draws from
    /// `stream(seed, &[FAULT_DOMAIN, link_id, dir])`, so adding a fault to
    /// one link can never perturb another link's impairments or the
    /// workload RNG, and parallel sweeps stay byte-identical.
    ///
    /// The path is folded through SplitMix64, whose output is equidistributed
    /// over `u64` — distinct paths give statistically independent seeds.
    pub fn stream(master: u64, path: &[u64]) -> SimRng {
        let mut s = splitmix64(master);
        for &p in path {
            s = splitmix64(s ^ splitmix64(p));
        }
        SimRng::seed_from_u64(s)
    }

    /// Uniform `u64` in `[lo, hi)`. Panics if the range is empty.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index(0)");
        self.inner.gen_range(0..n)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Exponentially distributed value with the given mean (inverse CDF).
    ///
    /// Used for Poisson inter-arrival times. Always finite and positive.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "non-positive mean {mean}");
        // 1 - u in (0, 1]: avoids ln(0).
        let u = 1.0 - self.inner.gen::<f64>();
        -mean * u.ln()
    }

    /// Geometric-ish bounded Pareto sample in `[lo, hi]` with shape `alpha`.
    ///
    /// Used for heavy-tailed flow sizes. `alpha` around 1.2–1.5 reproduces
    /// the elephant/mice mix typical of data-center traces.
    pub fn bounded_pareto(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0);
        let u = self.inner.gen::<f64>();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the truncated Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element; `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }
}

/// SplitMix64: one multiply-xorshift round; full-period over `u64`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A Zipf(*n*, *s*) sampler over ranks `0..n` with precomputed CDF.
///
/// Rank 0 is the most popular item. Used to generate skewed flow and key
/// popularity (e.g. NetCache-style workloads where a few keys are hot).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` items with exponent `s` (s = 0 is uniform;
    /// s around 0.9–1.1 matches measured key-value workloads).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(s >= 0.0, "negative Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating error leaving the last bucket slightly < 1.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is exactly one rank (degenerate distribution).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN in CDF"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1 << 40), b.uniform_u64(0, 1 << 40));
        }
    }

    #[test]
    fn forks_are_independent() {
        let mut root = SimRng::seed_from_u64(1);
        let mut a = root.fork(1);
        let mut b = root.fork(1);
        let va: Vec<u64> = (0..10).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb, "same tag from advanced parent must differ");
    }

    #[test]
    fn streams_are_pure_functions_of_seed_and_path() {
        let mut a = SimRng::stream(7, &[1, 2, 3]);
        let mut b = SimRng::stream(7, &[1, 2, 3]);
        let va: Vec<u64> = (0..16).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.uniform_u64(0, u64::MAX - 1)).collect();
        assert_eq!(va, vb, "same (master, path) must be the same stream");
    }

    #[test]
    fn streams_differ_across_paths_and_masters() {
        let draw = |mut r: SimRng| -> Vec<u64> {
            (0..8).map(|_| r.uniform_u64(0, u64::MAX - 1)).collect()
        };
        let base = draw(SimRng::stream(7, &[1, 2]));
        assert_ne!(base, draw(SimRng::stream(7, &[2, 1])), "path order matters");
        assert_ne!(base, draw(SimRng::stream(7, &[1, 2, 0])), "length matters");
        assert_ne!(base, draw(SimRng::stream(8, &[1, 2])), "master matters");
        assert_ne!(base, draw(SimRng::stream(7, &[])), "empty path differs");
    }

    #[test]
    fn exp_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(42);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let got = sum / n as f64;
        assert!(
            (got - mean).abs() < 0.2,
            "exp mean {got} too far from {mean}"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = SimRng::seed_from_u64(9);
        let z = Zipf::new(100, 1.0);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            let r = z.sample(&mut rng);
            counts[r] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 should dominate rank 10");
        assert!(counts[0] > counts[99] * 5, "head vs tail skew missing");
    }

    #[test]
    fn zipf_s0_is_uniformish() {
        let mut rng = SimRng::seed_from_u64(10);
        let z = Zipf::new(4, 0.0);
        let mut counts = vec![0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "uniform bucket {c}");
        }
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.bounded_pareto(100.0, 1_000_000.0, 1.2);
            assert!((100.0..=1_000_000.0 + 1e-6).contains(&v), "{v}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
